//! Property-based tests over randomized graphs and tensors: the invariants
//! that must hold for *any* input, not just the unit-test fixtures.

use wisegraph_testkit::prelude::*;
use std::collections::HashMap;
use wisegraph::dfg::interp::execute;
use wisegraph::dfg::{transform, Binding, Dfg, Dim};
use wisegraph::graph::generate::{rmat, RmatParams};
use wisegraph::graph::{AttrKind, Graph};
use wisegraph::analysis::prelude::verify_repair;
use wisegraph::gtask::{partition, GraphDelta, IncrementalPlan, PartitionTable, Restriction};
use wisegraph::kernels::engine::{execute_parallel_mode, ExecMode};
use wisegraph::kernels::fused::{plan_fusion, FusedPattern};
use wisegraph::kernels::micro::compile;
use wisegraph::models::ModelKind;
use wisegraph::sim::{ComputeClass, DeviceSpec, KernelCost};
use wisegraph::tensor::{init, ops, Tensor};

fn arb_graph(max_v: usize, max_e: usize) -> impl Strategy<Value = Graph> {
    (2usize..max_v, 1usize..max_e, 1usize..6, 0u64..10_000).prop_map(
        |(v, e, t, seed)| {
            rmat(&RmatParams::standard(v, e.max(1), seed).with_edge_types(t))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The DFG transformation search always returns a numerically
    /// equivalent program, for every model and random graph.
    fn transformations_preserve_semantics(
        g in arb_graph(60, 500),
        fi in 2usize..6,
        fo in 2usize..6,
        seed in 0u64..1000,
    ) {
        for model in [ModelKind::Rgcn, ModelKind::Gcn, ModelKind::Sage] {
            let dfg = model.layer_dfg(fi, fo);
            let binding = Binding::from_graph(&g);
            let (opt, _) = transform::optimize(&dfg, &binding);
            let mut inputs: HashMap<String, Tensor> = HashMap::new();
            inputs.insert("h".into(),
                init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, seed));
            inputs.insert("W".into(),
                init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, seed + 1));
            inputs.insert("w".into(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, seed + 2));
            inputs.insert("w_self".into(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, seed + 3));
            inputs.insert("w_neigh".into(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, seed + 4));
            let base = &execute(&dfg, &g, &inputs).unwrap()[0];
            let transformed = &execute(&opt, &g, &inputs).unwrap()[0];
            prop_assert!(
                base.allclose(transformed, 1e-3),
                "{}: diff {}", model.name(), base.max_abs_diff(transformed)
            );
        }
    }

    /// Gather followed by its adjoint scatter computes the same inner
    /// product from both sides: <gather(x, idx), y> == <x, scatter(y, idx)>.
    fn gather_scatter_adjoint(
        rows in 2usize..40,
        cols in 1usize..8,
        idx in prop::collection::vec(0u32..30, 1..80),
        seed in 0u64..1000,
    ) {
        let idx: Vec<u32> = idx.into_iter().map(|i| i % rows as u32).collect();
        let x = init::uniform_tensor(&[rows, cols], -1.0, 1.0, seed);
        let y = init::uniform_tensor(&[idx.len(), cols], -1.0, 1.0, seed + 1);
        let gx = ops::gather_rows(&x, &idx);
        let sy = ops::index_add_rows(rows, &y, &idx);
        let lhs: f32 = gx.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(sy.data()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()),
            "lhs {lhs} rhs {rhs}");
    }

    /// Segment softmax output sums to one within every non-empty segment
    /// and is invariant to a constant shift of the scores.
    fn segment_softmax_invariants(
        seg in prop::collection::vec(0u32..10, 1..60),
        shift in -50.0f32..50.0,
        seed in 0u64..1000,
    ) {
        let n = seg.len();
        let scores = init::uniform_tensor(&[n], -3.0, 3.0, seed);
        let out = ops::segment_softmax(&scores, &seg, 10);
        let mut sums = [0.0f32; 10];
        for (i, &s) in seg.iter().enumerate() {
            sums[s as usize] += out.data()[i];
        }
        for (s, &total) in sums.iter().enumerate() {
            if seg.iter().any(|&x| x as usize == s) {
                prop_assert!((total - 1.0).abs() < 1e-4, "segment {s}: {total}");
            }
        }
        let shifted = ops::map(&scores, |v| v + shift);
        let out2 = ops::segment_softmax(&shifted, &seg, 10);
        prop_assert!(out.allclose(&out2, 1e-4));
    }

    /// Every partition plan preserves edges exactly once and respects every
    /// `Exact` bound; the derived batch and dedup statistics stay in range.
    fn partition_invariants_hold(
        g in arb_graph(100, 800),
        k in 1u64..40,
        which in 0usize..7,
    ) {
        let table = match which {
            0 => PartitionTable::vertex_centric(),
            1 => PartitionTable::edge_centric(),
            2 => PartitionTable::two_d(k),
            3 => PartitionTable::src_batch_per_type(k),
            4 => PartitionTable::dst_batch_min_degree(k),
            5 => PartitionTable::dst_and_type(),
            _ => PartitionTable::edge_batch(k),
        };
        let plan = partition(&g, &table);
        prop_assert_eq!(plan.total_edges(), g.num_edges());
        let mut seen = vec![false; g.num_edges()];
        for t in &plan.tasks {
            prop_assert!(!t.edges.is_empty());
            for &e in &t.edges {
                prop_assert!(!seen[e], "edge {e} duplicated");
                seen[e] = true;
            }
            for (attr, bound) in table.exact_attrs() {
                prop_assert!(t.uniq_of(&g, attr) as u64 <= bound);
            }
        }
        // Derived statistics stay in range.
        let dedup = wisegraph::core::plan::plan_gather_dedup(&g, &plan);
        prop_assert!((0.0..=1.0).contains(&dedup));
        let pad = wisegraph::core::plan::plan_lstm_padding(&g, &plan);
        prop_assert!(pad >= 1.0 - 1e-9);
        let _ = Restriction::Free;
    }

    /// Kernel time is monotone in FLOPs and bytes for every compute class.
    fn kernel_time_monotone(
        flops in 1.0e6f64..1.0e12,
        bytes in 1.0e3f64..1.0e10,
        par in 1.0f64..1.0e6,
        class_idx in 0usize..6,
        k in 1usize..512,
    ) {
        let dev = DeviceSpec::a100_pcie();
        let class = match class_idx {
            0 => ComputeClass::Memory { coalesced: true },
            1 => ComputeClass::Memory { coalesced: false },
            2 => ComputeClass::Elementwise,
            3 => ComputeClass::EdgeWise,
            4 => ComputeClass::Batched { k },
            _ => ComputeClass::DenseMatmul,
        };
        let base = dev.kernel_time(&KernelCost { flops, bytes, parallel_tasks: par, class });
        let more_flops = dev.kernel_time(&KernelCost { flops: flops * 2.0, bytes, parallel_tasks: par, class });
        let more_bytes = dev.kernel_time(&KernelCost { flops, bytes: bytes * 2.0, parallel_tasks: par, class });
        prop_assert!(more_flops >= base);
        prop_assert!(more_bytes >= base);
        prop_assert!(base >= dev.launch_latency);
    }

    /// The greedy partitioner's output is accepted by the static plan
    /// verifier for *arbitrary* partition tables — including tables no
    /// built-in strategy constructs (many restricted attributes at once,
    /// tight and loose bounds mixed).
    fn plan_verifier_accepts_partitioner_output(
        g in arb_graph(80, 600),
        bits in 0u32..65_536,
        k in 1u64..24,
    ) {
        // Two bits per attribute: 2 → Exact(k·(i+1)), 3 → Min, else Free.
        let mut table = PartitionTable::new();
        for (i, &attr) in AttrKind::ALL.iter().enumerate() {
            match (bits >> (2 * i)) & 3 {
                2 => table = table.exact(attr, k * (i as u64 + 1)),
                3 => table = table.min(attr),
                _ => {}
            }
        }
        let plan = partition(&g, &table);
        let diags = wisegraph::analysis::plan::verify_plan(&g, &plan);
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == wisegraph::analysis::Severity::Error)
            .collect();
        prop_assert!(errors.is_empty(), "table {table}: {errors:#?}");
    }

    /// Captured span streams are well-nested for any graph, table, and
    /// worker count, and the deterministic spans appear exactly as many
    /// times as the execution shape dictates: one `engine.execute`, one
    /// `kernel.task` per gTask, one `engine.worker` per occupied chunk.
    fn engine_spans_are_well_nested(
        g in arb_graph(60, 400),
        k in 1u64..16,
        which in 0usize..3,
        threads in 1usize..5,
    ) {
        let table = match which {
            0 => PartitionTable::vertex_centric(),
            1 => PartitionTable::edge_batch(k),
            _ => PartitionTable::two_d(k),
        };
        let plan = partition(&g, &table);
        let dfg = ModelKind::Gcn.layer_dfg(4, 3);
        let mut inputs: HashMap<String, Tensor> = HashMap::new();
        inputs.insert("h".into(),
            init::uniform_tensor(&[g.num_vertices(), 4], -1.0, 1.0, 11));
        inputs.insert("w".into(), init::uniform_tensor(&[4, 3], -1.0, 1.0, 12));
        let engine = wisegraph::kernels::engine::Engine::new(threads);
        let (res, trace) = wisegraph::obs::capture(|| {
            engine.execute(&dfg, &g, &plan, &inputs)
        });
        prop_assert!(res.is_ok());
        prop_assert!(trace.check_nesting().is_ok(), "{:?}", trace.check_nesting());
        prop_assert_eq!(trace.span_count("engine.execute"), 1);
        // Auto mode dispatches each task to exactly one executor: the
        // interpreter ("kernel.task") or the fused path ("kernel.task.fused").
        prop_assert_eq!(
            trace.span_count("kernel.task") + trace.span_count("kernel.task.fused"),
            plan.num_tasks()
        );
        let chunks =
            wisegraph::kernels::engine::chunk_ranges(plan.num_tasks(), threads).len();
        prop_assert_eq!(trace.span_count("engine.worker"), chunks);
    }

    /// Relabeling a graph by any generated permutation preserves every
    /// degree- and type-based statistic that partitioning depends on.
    fn relabel_preserves_partition_statistics(
        g in arb_graph(80, 400),
        seed in 0u64..1000,
    ) {
        // Pseudo-random permutation.
        let n = g.num_vertices();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut state = seed;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let r = g.relabel(&perm);
        let mut a: Vec<u32> = g.in_degree().to_vec();
        let mut b: Vec<u32> = r.in_degree().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        // Type histogram unchanged.
        let hist = |gr: &Graph| {
            let mut h = vec![0usize; gr.num_edge_types()];
            for &t in gr.etype() { h[t as usize] += 1; }
            h
        };
        prop_assert_eq!(hist(&g), hist(&r));
        // Degree-grouped partitioning yields the same task-size multiset.
        let ta = partition(&g, &PartitionTable::dst_degree_grouped());
        let tb = partition(&r, &PartitionTable::dst_degree_grouped());
        let mut sa: Vec<usize> = ta.tasks.iter().map(|t| t.num_edges()).collect();
        let mut sb: Vec<usize> = tb.tasks.iter().map(|t| t.num_edges()).collect();
        sa.sort_unstable();
        sb.sort_unstable();
        prop_assert_eq!(sa, sb);
        let _ = AttrKind::DstDegree;
        let _ = Dim::Vertices;
    }

    /// Fused segment-reduce is bit-identical to the interpreter for
    /// *arbitrary* ragged segment shapes: random edge lists naturally
    /// produce empty segments (isolated destinations), single-element
    /// segments, and heavy hubs. Shrinking converges on the minimal
    /// edge list that would break the bit-identity contract.
    fn fused_segment_reduce_bit_identical_on_ragged_shapes(
        v in 1usize..40,
        raw_edges in prop::collection::vec((0u32..1000, 0u32..1000), 0..150),
        n in 1usize..10,
        threads in 1usize..5,
        batch in 1u64..50,
        seed in 0u64..1000,
    ) {
        let src: Vec<u32> = raw_edges.iter().map(|&(s, _)| s % v as u32).collect();
        let dst: Vec<u32> = raw_edges.iter().map(|&(_, d)| d % v as u32).collect();
        let g = Graph::untyped(v, src, dst);
        // The minimal gather→scatter layer: GCN aggregation without the
        // epilogue, so the whole program is one fused segment-reduce.
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(n)]);
        let src_n = d.edge_attr(AttrKind::SrcId);
        let dst_n = d.edge_attr(AttrKind::DstId);
        let hsrc = d.index(h, src_n);
        let agg = d.index_add(hsrc, dst_n, Dim::Vertices);
        d.mark_output(agg);
        let program = compile(&d, &g).unwrap();
        prop_assert_eq!(
            plan_fusion(&program).patterns(),
            vec![FusedPattern::SegmentReduce]
        );
        let mut globals: HashMap<String, Tensor> = HashMap::new();
        globals.insert(
            "h".to_string(),
            init::uniform_tensor(&[v, n], -1.0, 1.0, seed),
        );
        let plan = partition(&g, &PartitionTable::edge_batch(batch));
        let a = execute_parallel_mode(&d, &g, &plan, &globals, threads, ExecMode::Interpret)
            .unwrap();
        let b = execute_parallel_mode(&d, &g, &plan, &globals, threads, ExecMode::Fused)
            .unwrap();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(x.dims(), y.dims());
            prop_assert_eq!(x.data(), y.data());
        }
    }

    /// Incremental repair under arbitrary insert/delete streams: after
    /// every batch the repaired snapshot covers exactly the live edge set
    /// (tracked independently here), verifies clean under the `C001`
    /// repair verifier — i.e. identically to a from-scratch partition of
    /// the same edges — and honors every `Exact` restriction.
    fn incremental_repair_verifies_clean_under_random_streams(
        g in arb_graph(50, 400),
        batches in prop::collection::vec(
            (prop::collection::vec(0usize..10_000, 0..30),
             prop::collection::vec(0usize..10_000, 0..30)),
            1..8,
        ),
        table_pick in 0usize..4,
    ) {
        let table = match table_pick {
            0 => PartitionTable::vertex_centric(),
            1 => PartitionTable::edge_batch(16),
            2 => PartitionTable::src_batch_per_type(4),
            _ => PartitionTable::dst_and_type(),
        };
        let mut inc = IncrementalPlan::new(&g, table.clone());
        let mut mirror: std::collections::BTreeSet<usize> =
            (0..g.num_edges()).collect();
        for (dels, inss) in batches {
            let delta = GraphDelta {
                delete: dels.into_iter().map(|e| e % g.num_edges()).collect(),
                insert: inss.into_iter().map(|e| e % g.num_edges()).collect(),
            };
            // Deletes apply before inserts, exactly like the plan does.
            for &e in &delta.delete { mirror.remove(&e); }
            for &e in &delta.insert { mirror.insert(e); }
            inc.apply(&g, &delta);
            let live = inc.live_edges();
            prop_assert_eq!(
                &live,
                &mirror.iter().copied().collect::<Vec<_>>(),
                "live set diverged from the independent mirror"
            );
            let snap = inc.snapshot(&g);
            // Exact-once coverage, counted directly.
            let mut seen: Vec<usize> =
                snap.tasks.iter().flat_map(|t| t.edges.iter().copied()).collect();
            seen.sort_unstable();
            prop_assert_eq!(&seen, &live, "snapshot coverage differs from live set");
            // And the full C001 verdict: clean, like a from-scratch plan.
            let diags = verify_repair(&g, &table, &live, &snap);
            prop_assert!(diags.is_empty(), "[{}]: {:#?}", table, diags);
        }
    }

    /// Sharded collectives on arbitrary graphs and shard counts: the
    /// remote-unique sets are ragged (devices with more vertices than
    /// others, shards with zero remote sources, more devices than
    /// vertices), and still every collective conserves bytes, the merged
    /// event order is deterministic, and repeating the run reproduces
    /// outputs and exchange log bit-for-bit.
    fn sharded_exchange_conserves_and_repeats(
        g in arb_graph(50, 400),
        devices in 1usize..9,
        fi in 2usize..5,
        fo in 2usize..5,
        seed in 0u64..1000,
        placement_pick in 0usize..3,
    ) {
        use wisegraph::kernels::cluster::compatible_placements;
        use wisegraph::kernels::ClusterEngine;

        let model = [ModelKind::Gcn, ModelKind::Rgcn, ModelKind::Sage][placement_pick];
        let dfg = model.layer_dfg(fi, fo);
        let plan = partition(&g, &PartitionTable::vertex_centric());
        let mut globals: HashMap<String, Tensor> = HashMap::new();
        globals.insert("h".into(),
            init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, seed));
        globals.insert("W".into(),
            init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, seed + 1));
        globals.insert("w".into(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, seed + 2));
        globals.insert("w_self".into(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, seed + 3));
        globals.insert("w_neigh".into(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, seed + 4));
        let program = compile(&dfg, &g).unwrap();
        for placement in compatible_placements(&program, &g, &globals) {
            let run_once = || {
                let cluster = ClusterEngine::new(devices, 2);
                cluster
                    .execute(&dfg, &g, &plan, &globals, placement)
                    .unwrap_or_else(|e| panic!("{}/{devices}: {e}", placement.name()))
            };
            let a = run_once();
            prop_assert!(
                a.exchange.is_conserved(),
                "{} at {devices} devices: unbalanced exchange", placement.name()
            );
            // Sent and received views must account for the same bytes.
            prop_assert_eq!(a.exchange.bytes_sent(), a.exchange.bytes_received());
            let b = run_once();
            prop_assert_eq!(
                &a.exchange, &b.exchange,
                "{} at {devices} devices: merged event order not reproducible",
                placement.name()
            );
            for (x, y) in a.outputs.iter().zip(b.outputs.iter()) {
                prop_assert_eq!(
                    x.data(), y.data(),
                    "{} at {devices} devices: outputs differ across repeat runs",
                    placement.name()
                );
            }
        }
    }
}
