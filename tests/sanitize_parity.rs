//! Differential harness for the shadow-memory sanitizer (DESIGN.md §12):
//! `ExecMode::Sanitize` must be observation-only. For every built-in
//! model × candidate partition table × 1/2/4 worker threads, a sanitized
//! run must produce outputs *bit-identical* to the default `Auto` engine
//! (which fuses where the cost rule fires) — the shadow recording may
//! never perturb the numerics — and must report zero conflicts on every
//! shipped schedule.

use std::collections::HashMap;
use wisegraph::graph::generate::{rmat, RmatParams};
use wisegraph::graph::Graph;
use wisegraph::gtask::restriction::enumerate_tables;
use wisegraph::gtask::partition;
use wisegraph::kernels::engine::{Engine, ExecMode};
use wisegraph::kernels::micro::{compile, plan_is_dst_complete};
use wisegraph::models::ModelKind;
use wisegraph::tensor::{init, Tensor};

const THREADS: [usize; 3] = [1, 2, 4];
const DIMS: (usize, usize) = (8, 6);

fn graph() -> Graph {
    rmat(&RmatParams {
        num_vertices: 120,
        num_edges: 900,
        a: 0.57,
        b: 0.19,
        c: 0.19,
        num_edge_types: 3,
        seed: 11,
    })
}

fn globals_for(g: &Graph, fi: usize, fo: usize) -> HashMap<String, Tensor> {
    let mut m = HashMap::new();
    m.insert(
        "h".to_string(),
        init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 1),
    );
    m.insert(
        "W".to_string(),
        init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, 2),
    );
    m.insert("w".to_string(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, 3));
    m.insert(
        "w_self".to_string(),
        init::uniform_tensor(&[fi, fo], -1.0, 1.0, 4),
    );
    m.insert(
        "w_neigh".to_string(),
        init::uniform_tensor(&[fi, fo], -1.0, 1.0, 5),
    );
    m.insert(
        "a_src".to_string(),
        init::uniform_tensor(&[fo, 1], -1.0, 1.0, 6),
    );
    m.insert(
        "a_dst".to_string(),
        init::uniform_tensor(&[fo, 1], -1.0, 1.0, 7),
    );
    m
}

#[test]
fn sanitize_is_bit_identical_to_auto_everywhere() {
    let g = graph();
    let (fi, fo) = DIMS;
    let globals = globals_for(&g, fi, fo);
    let mut combos = 0usize;
    for model in [
        ModelKind::Gcn,
        ModelKind::Rgcn,
        ModelKind::Gat,
        ModelKind::Sage,
    ] {
        let dfg = model.layer_dfg(fi, fo);
        let indexing: Vec<_> =
            wisegraph::analysis::prelude::effective_indexing_attrs(&dfg)
                .into_iter()
                .collect();
        let dst_complete_only = compile(&dfg, &g)
            .map(|p| p.requires_dst_complete)
            .unwrap_or(false);
        for table in enumerate_tables(&indexing, &[4, 32]) {
            let plan = partition(&g, &table);
            if dst_complete_only && !plan_is_dst_complete(&g, &plan) {
                continue;
            }
            for threads in THREADS {
                combos += 1;
                let san = Engine::with_mode(threads, ExecMode::Sanitize);
                let sanitized = san
                    .execute(&dfg, &g, &plan, &globals)
                    .unwrap_or_else(|e| {
                        panic!("{model:?} × [{table}] × {threads}: sanitize failed: {e}")
                    });
                let rep = san.last_sanitize().expect("sanitized run leaves a report");
                assert!(
                    rep.conflicts.is_empty(),
                    "{model:?} × [{table}] × {threads}: shipped schedule conflicts"
                );
                assert!(rep.writes_checked > 0, "shadow must observe the scatters");
                let auto = Engine::with_mode(threads, ExecMode::Auto)
                    .execute(&dfg, &g, &plan, &globals)
                    .expect("auto executes");
                assert_eq!(sanitized.len(), auto.len());
                for (s, a) in sanitized.iter().zip(auto.iter()) {
                    assert_eq!(s.shape(), a.shape());
                    assert!(
                        s.data() == a.data(),
                        "{model:?} × [{table}] × {threads}: sanitize diverged \
                         from auto"
                    );
                }
            }
        }
    }
    assert!(combos >= 36, "sweep shrank unexpectedly: {combos} combos");
}
