//! Differential fused-codegen / interpreter harness (bit-identical).
//!
//! The fusion layer (`wisegraph::kernels::fused`) replaces matched
//! micro-kernel chains with specialized cache-blocked loops. Its contract
//! is *bit identity*: for every model, partition table, and thread count,
//! the fused engine must produce exactly the bytes of the interpreter and
//! report exactly the same `Class::Work` counters (tasks, edges, flops,
//! bytes moved). These tests sweep the full cross product and pin that
//! contract; per-pattern entry points below are the registered parity
//! tests `wisegraph-lint` (K006) checks for by name.
//!
//! Parity is asserted per thread count only: changing the thread count
//! changes the reduction chunking, and float addition is not associative.

use std::collections::HashMap;
use wisegraph::analysis::prelude::effective_indexing_attrs;
use wisegraph::dfg::{Dfg, Dim};
use wisegraph::graph::generate::{rmat, RmatParams};
use wisegraph::graph::{AttrKind, Graph};
use wisegraph::gtask::restriction::enumerate_tables;
use wisegraph::gtask::{partition, PartitionTable};
use wisegraph::kernels::engine::{Engine, ExecMode};
use wisegraph::kernels::fused::{plan_fusion, FusedPattern};
use wisegraph::kernels::micro::{compile, plan_is_dst_complete};
use wisegraph::models::ModelKind;
use wisegraph::obs::{counters_to_json, keys, Class};
use wisegraph::tensor::{init, Tensor};

const THREADS: [usize; 3] = [1, 2, 4];
const BATCH_SIZES: [u64; 2] = [4, 32];

fn globals_for(g: &Graph, fi: usize, fo: usize) -> HashMap<String, Tensor> {
    let mut m = HashMap::new();
    m.insert(
        "h".to_string(),
        init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 11),
    );
    m.insert(
        "W".to_string(),
        init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, 12),
    );
    m.insert("w".to_string(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, 13));
    m.insert(
        "w_self".to_string(),
        init::uniform_tensor(&[fi, fo], -1.0, 1.0, 14),
    );
    m.insert(
        "w_neigh".to_string(),
        init::uniform_tensor(&[fi, fo], -1.0, 1.0, 15),
    );
    m.insert(
        "a_src".to_string(),
        init::uniform_tensor(&[fo, 1], -1.0, 1.0, 16),
    );
    m.insert(
        "a_dst".to_string(),
        init::uniform_tensor(&[fo, 1], -1.0, 1.0, 17),
    );
    m
}

/// Runs `dfg` under both engines at `threads` and asserts byte-equal
/// outputs plus identical `Class::Work` counters. Returns the fused
/// engine's outputs for further checks.
fn assert_modes_match(
    dfg: &Dfg,
    g: &Graph,
    table: &PartitionTable,
    globals: &HashMap<String, Tensor>,
    threads: usize,
    ctx: &str,
) -> Vec<Tensor> {
    let plan = partition(g, table);
    let ie = Engine::with_mode(threads, ExecMode::Interpret);
    let fe = Engine::with_mode(threads, ExecMode::Fused);
    let a = ie
        .execute(dfg, g, &plan, globals)
        .unwrap_or_else(|e| panic!("{ctx}: interpreter path: {e}"));
    let b = fe
        .execute(dfg, g, &plan, globals)
        .unwrap_or_else(|e| panic!("{ctx}: fused path: {e}"));
    assert_eq!(a.len(), b.len(), "{ctx}");
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.dims(), y.dims(), "{ctx}");
        assert_eq!(
            x.data(),
            y.data(),
            "{ctx}: fused output not bit-identical at {threads} threads"
        );
    }
    let wa = counters_to_json(&ie.stats().only(&[Class::Work]));
    let wb = counters_to_json(&fe.stats().only(&[Class::Work]));
    assert_eq!(wa, wb, "{ctx}: Work counters diverge at {threads} threads");
    b
}

/// The full sweep: every model × every enumerable table × {1,2,4}
/// threads. Combinations the compiled program can never legally run
/// under (GAT needs destination-complete plans) are skipped, mirroring
/// strategy search and `wisegraph-lint`.
#[test]
fn all_models_all_tables_all_threads_are_bit_identical() {
    let (fi, fo) = (6, 5);
    let g = rmat(&RmatParams::standard(140, 1100, 71).with_edge_types(3));
    let globals = globals_for(&g, fi, fo);
    let mut combos = 0usize;
    for kind in [
        ModelKind::Gcn,
        ModelKind::Rgcn,
        ModelKind::Gat,
        ModelKind::Sage,
    ] {
        let dfg = kind.layer_dfg(fi, fo);
        let indexing: Vec<_> = effective_indexing_attrs(&dfg).into_iter().collect();
        let dst_complete_only = compile(&dfg, &g)
            .map(|p| p.requires_dst_complete)
            .unwrap_or(false);
        for table in enumerate_tables(&indexing, &BATCH_SIZES) {
            let plan = partition(&g, &table);
            if dst_complete_only && !plan_is_dst_complete(&g, &plan) {
                continue;
            }
            for threads in THREADS {
                let ctx = format!("{} × [{table}] × {threads} threads", kind.name());
                assert_modes_match(&dfg, &g, &table, &globals, threads, &ctx);
                combos += 1;
            }
        }
    }
    // The sweep must actually have covered a non-trivial cross product.
    assert!(combos >= 36, "only {combos} combinations exercised");
}

/// `Auto` mode must agree with whichever side the cost rule picked — and
/// the dispatch must be observable: fusing models report fused tasks,
/// GAT (no matching chain) reports none.
#[test]
fn auto_mode_dispatch_is_bit_identical_and_observable() {
    let (fi, fo) = (6, 5);
    let g = rmat(&RmatParams::standard(120, 900, 73).with_edge_types(3));
    let globals = globals_for(&g, fi, fo);
    for (kind, table, fuses) in [
        (ModelKind::Gcn, PartitionTable::edge_batch(32), true),
        (ModelKind::Rgcn, PartitionTable::src_batch_per_type(8), true),
        (ModelKind::Sage, PartitionTable::two_d(4), true),
        (ModelKind::Gat, PartitionTable::vertex_centric(), false),
    ] {
        let dfg = kind.layer_dfg(fi, fo);
        let plan = partition(&g, &table);
        let ie = Engine::with_mode(2, ExecMode::Interpret);
        let ae = Engine::new(2); // Auto is the default mode.
        assert_eq!(ae.mode(), ExecMode::Auto);
        let a = ie.execute(&dfg, &g, &plan, &globals).unwrap();
        let b = ae.execute(&dfg, &g, &plan, &globals).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.data(), y.data(), "{}", kind.name());
        }
        let fused_tasks = ae.stats().count(keys::KERNEL_FUSED_TASKS);
        if fuses {
            assert!(fused_tasks > 0, "{}: Auto did not fuse", kind.name());
        } else {
            assert_eq!(fused_tasks, 0, "{}: Auto fused a non-matching program", kind.name());
        }
        // The interpreter engine must never report fused dispatches.
        assert_eq!(ie.stats().count(keys::KERNEL_FUSED_TASKS), 0);
    }
}

/// Registered parity test for [`FusedPattern::SegmentReduce`]
/// (GatherRows → ScatterAdd; GCN/SAGE neighbor aggregation).
#[test]
fn segment_reduce_fused_matches_interpreter() {
    let (fi, fo) = (6, 5);
    let g = rmat(&RmatParams::standard(130, 1000, 67));
    let globals = globals_for(&g, fi, fo);
    for kind in [ModelKind::Gcn, ModelKind::Sage] {
        let dfg = kind.layer_dfg(fi, fo);
        let program = compile(&dfg, &g).unwrap();
        assert!(
            plan_fusion(&program)
                .patterns()
                .contains(&FusedPattern::SegmentReduce),
            "{}: expected a segment-reduce chain",
            kind.name()
        );
        for table in [
            PartitionTable::vertex_centric(),
            PartitionTable::edge_batch(32),
            PartitionTable::two_d(4),
        ] {
            for threads in THREADS {
                let ctx = format!("segment_reduce {} × [{table}]", kind.name());
                assert_modes_match(&dfg, &g, &table, &globals, threads, &ctx);
            }
        }
    }
}

/// Registered parity test for [`FusedPattern::EdgeBatchMatmul`]
/// (GatherRows → MatMatGlobal → ScatterAdd). No built-in model keeps the
/// projection on the edge stream — GCN/SAGE project after aggregation —
/// so the chain is exercised with a hand-built gather→project→scatter
/// layer, the batched-matmul workload of paper Figure 10.
#[test]
fn edge_batch_matmul_fused_matches_interpreter() {
    let (fi, fo) = (6, 5);
    let mut d = Dfg::new();
    let h = d.input("h", vec![Dim::Vertices, Dim::Lit(fi)]);
    let w = d.input("w", vec![Dim::Lit(fi), Dim::Lit(fo)]);
    let src = d.edge_attr(AttrKind::SrcId);
    let dst = d.edge_attr(AttrKind::DstId);
    let hsrc = d.index(h, src);
    let proj = d.linear(hsrc, w);
    let out = d.index_add(proj, dst, Dim::Vertices);
    d.mark_output(out);

    let g = rmat(&RmatParams::standard(130, 1000, 69));
    let globals = globals_for(&g, fi, fo);
    let program = compile(&d, &g).unwrap();
    assert_eq!(
        plan_fusion(&program).patterns(),
        vec![FusedPattern::EdgeBatchMatmul]
    );
    for table in [
        PartitionTable::vertex_centric(),
        PartitionTable::edge_batch(4),
        PartitionTable::edge_batch(32),
        PartitionTable::two_d(4),
    ] {
        for threads in THREADS {
            let ctx = format!("edge_batch_matmul × [{table}]");
            assert_modes_match(&d, &g, &table, &globals, threads, &ctx);
        }
    }
}

/// Registered parity test for [`FusedPattern::PerTypeBatchedMatmul`]
/// (GatherRows → GatherWeight → PerRowVecMat → ScatterAdd; RGCN's
/// per-edge-type projection).
#[test]
fn per_type_batched_matmul_fused_matches_interpreter() {
    let (fi, fo) = (6, 5);
    let g = rmat(&RmatParams::standard(120, 900, 61).with_edge_types(3));
    let globals = globals_for(&g, fi, fo);
    let dfg = ModelKind::Rgcn.layer_dfg(fi, fo);
    let program = compile(&dfg, &g).unwrap();
    assert_eq!(
        plan_fusion(&program).patterns(),
        vec![FusedPattern::PerTypeBatchedMatmul]
    );
    for table in [
        PartitionTable::vertex_centric(),
        PartitionTable::src_batch_per_type(8),
        PartitionTable::edge_batch(32),
    ] {
        for threads in THREADS {
            let ctx = format!("per_type_batched_matmul × [{table}]");
            assert_modes_match(&dfg, &g, &table, &globals, threads, &ctx);
        }
    }
}

/// Every pattern the codegen can emit is exercised by one of the three
/// tests above; this meta-test keeps the list in sync with the enum so a
/// new pattern cannot land silently (the lint's K006 pass checks the
/// names textually, this checks them at the type level).
#[test]
fn every_fused_pattern_is_registered_here() {
    let registered = [
        "segment_reduce_fused_matches_interpreter",
        "edge_batch_matmul_fused_matches_interpreter",
        "per_type_batched_matmul_fused_matches_interpreter",
    ];
    assert_eq!(FusedPattern::ALL.len(), registered.len());
    for p in FusedPattern::ALL {
        assert!(
            registered.contains(&p.parity_test()),
            "pattern {:?} has no registered parity test",
            p
        );
    }
}
