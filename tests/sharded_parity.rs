//! Differential sharded-cluster / single-engine harness.
//!
//! The cluster layer (`wisegraph::kernels::cluster`) runs one real engine
//! per simulated device and moves embeddings through deterministic
//! collectives. Its contract: for every model, partition table, device
//! count, and *compatible* placement schedule, the assembled outputs
//! match a plain single-engine run — bit-for-bit for the halo schedules
//! (data-parallel, project-then-communicate) and tensor parallelism,
//! whose kernels are row- or column-independent and whose exchanged
//! buffers travel verbatim. Compute-then-reduce re-associates the
//! partial-aggregate sums (canonical source-group order instead of
//! worker order), so it is pinned numerically close to the single engine
//! and *bit-stable across device counts* instead.
//!
//! A second suite pins the joint optimizer's placement selection to the
//! shared Figure-11 volume arithmetic: the schedule the executor selects
//! is exactly the one an independent recomputation predicts, and the
//! closed-form `best_placement_comm` prices the same three-candidate
//! minimum.

use std::collections::HashMap;
use wisegraph::analysis::prelude::effective_indexing_attrs;
use wisegraph::baselines::multi::{max_remote_unique_src, MultiStack};
use wisegraph::core::multi::best_placement_comm;
use wisegraph::core::sharded::select_placement;
use wisegraph::graph::generate::{rmat, RmatParams};
use wisegraph::graph::{Graph, ShardSpec};
use wisegraph::gtask::restriction::enumerate_tables;
use wisegraph::gtask::partition;
use wisegraph::kernels::cluster::compatible_placements;
use wisegraph::kernels::engine::execute_parallel;
use wisegraph::kernels::micro::{compile, plan_is_dst_complete};
use wisegraph::kernels::ClusterEngine;
use wisegraph::models::ModelKind;
use wisegraph::sim::{PlacementKind, PlacementVolumes};
use wisegraph::tensor::{init, Tensor};

/// Device counts the parity sweep runs at (1 pins the degenerate
/// single-device cluster to the plain engine too).
const DEVICES: [usize; 4] = [1, 2, 4, 8];
/// Engine worker threads per device (also the single-engine reference's
/// thread count — parity holds per thread count only).
const THREADS: usize = 2;
const BATCH_SIZES: [u64; 2] = [4, 32];
const MODELS: [ModelKind; 4] = [
    ModelKind::Gcn,
    ModelKind::Rgcn,
    ModelKind::Gat,
    ModelKind::Sage,
];

fn globals_for(g: &Graph, fi: usize, fo: usize) -> HashMap<String, Tensor> {
    let mut m = HashMap::new();
    m.insert(
        "h".to_string(),
        init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 51),
    );
    m.insert(
        "W".to_string(),
        init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, 52),
    );
    m.insert("w".to_string(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, 53));
    m.insert(
        "w_self".to_string(),
        init::uniform_tensor(&[fi, fo], -1.0, 1.0, 54),
    );
    m.insert(
        "w_neigh".to_string(),
        init::uniform_tensor(&[fi, fo], -1.0, 1.0, 55),
    );
    m.insert(
        "a_src".to_string(),
        init::uniform_tensor(&[fo, 1], -1.0, 1.0, 56),
    );
    m.insert(
        "a_dst".to_string(),
        init::uniform_tensor(&[fo, 1], -1.0, 1.0, 57),
    );
    m
}

fn allclose(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.dims() == b.dims()
        && a.data()
            .iter()
            .zip(b.data().iter())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + y.abs()))
}

/// The full sweep: every model × every enumerable table × {2,4,8}
/// devices × every placement the compiled program supports.
/// Combinations the program can never legally run under (GAT needs
/// destination-complete plans) are skipped, mirroring strategy search.
#[test]
fn all_models_all_tables_all_devices_match_single_engine() {
    let (fi, fo) = (6, 5);
    let g = rmat(&RmatParams::standard(140, 1100, 71).with_edge_types(3));
    let globals = globals_for(&g, fi, fo);
    let mut combos = 0usize;
    for kind in MODELS {
        let dfg = kind.layer_dfg(fi, fo);
        let program = compile(&dfg, &g).unwrap();
        let indexing: Vec<_> = effective_indexing_attrs(&dfg).into_iter().collect();
        for table in enumerate_tables(&indexing, &BATCH_SIZES) {
            let plan = partition(&g, &table);
            if program.requires_dst_complete && !plan_is_dst_complete(&g, &plan) {
                continue;
            }
            let reference = execute_parallel(&dfg, &g, &plan, &globals, THREADS)
                .unwrap_or_else(|e| panic!("{} × [{table}]: reference: {e}", kind.name()));
            for placement in compatible_placements(&program, &g, &globals) {
                // Device-count anchor for the compute-then-reduce
                // bit-stability claim.
                let mut anchor: Option<Vec<Tensor>> = None;
                for devices in DEVICES {
                    let ctx = format!(
                        "{} × [{table}] × {} × {devices} devices",
                        kind.name(),
                        placement.name()
                    );
                    let cluster = ClusterEngine::new(devices, THREADS);
                    let run = cluster
                        .execute(&dfg, &g, &plan, &globals, placement)
                        .unwrap_or_else(|e| panic!("{ctx}: {e}"));
                    assert!(run.exchange.is_conserved(), "{ctx}: unbalanced exchange");
                    assert_eq!(reference.len(), run.outputs.len(), "{ctx}");
                    if placement == PlacementKind::ComputeThenReduce {
                        for (a, b) in reference.iter().zip(run.outputs.iter()) {
                            assert!(
                                allclose(b, a, 1e-3),
                                "{ctx}: diverged from the single engine"
                            );
                        }
                        match &anchor {
                            None => anchor = Some(run.outputs),
                            Some(first) => {
                                for (a, b) in first.iter().zip(run.outputs.iter()) {
                                    assert_eq!(
                                        a.data(),
                                        b.data(),
                                        "{ctx}: bits changed with the device count"
                                    );
                                }
                            }
                        }
                    } else {
                        for (a, b) in reference.iter().zip(run.outputs.iter()) {
                            assert_eq!(
                                a.data(),
                                b.data(),
                                "{ctx}: not bit-identical to the single engine"
                            );
                        }
                    }
                    combos += 1;
                }
            }
        }
    }
    // Every model must have contributed, with multiple placements each.
    assert!(combos >= 60, "only {combos} combinations exercised");
}

/// The placement the sharded executor selects is the one the shared
/// volume model predicts, for every model × table — and the closed-form
/// cost model (`best_placement_comm`) prices the identical
/// three-candidate minimum from the same module, so the two multi-device
/// stories cannot drift apart.
#[test]
fn predicted_placement_matches_executed_selection() {
    let (fi, fo) = (6, 5);
    let g = rmat(&RmatParams::standard(140, 1100, 71).with_edge_types(3));
    let globals = globals_for(&g, fi, fo);
    let stack = MultiStack::paper_quad();
    let devices = stack.fabric.num_devices;
    let fabric = &stack.fabric;
    let mut checked = 0usize;
    for kind in MODELS {
        let dfg = kind.layer_dfg(fi, fo);
        let program = compile(&dfg, &g).unwrap();
        let indexing: Vec<_> = effective_indexing_attrs(&dfg).into_iter().collect();
        for table in enumerate_tables(&indexing, &BATCH_SIZES) {
            let plan = partition(&g, &table);
            if program.requires_dst_complete && !plan_is_dst_complete(&g, &plan) {
                continue;
            }
            let choice = select_placement(&program, &g, &globals, devices, fabric, fi, fo);
            // Independent recomputation from the shared module.
            let remote = ShardSpec::new(g.num_vertices(), devices).max_remote_unique_src(&g);
            let vols =
                PlacementVolumes::new(remote, g.num_vertices(), fi, fo, program.out_width);
            let compat = compatible_placements(&program, &g, &globals);
            let (expect, expect_t) = vols.best(&compat, fabric);
            assert_eq!(choice.placement, expect, "{} × [{table}]", kind.name());
            assert_eq!(choice.comm_time, expect_t, "{} × [{table}]", kind.name());
            assert_eq!(choice.candidates.len(), compat.len());
            // The executed run honors the selection.
            let cluster = ClusterEngine::new(2, THREADS);
            let run = cluster
                .execute(&dfg, &g, &plan, &globals, choice.placement)
                .unwrap_or_else(|e| panic!("{} × [{table}]: {e}", kind.name()));
            assert_eq!(run.placement, choice.placement);
            checked += 1;
        }
    }
    assert!(checked >= 20, "only {checked} combinations checked");

    // The closed-form cost model prices the same three-candidate minimum
    // (its accumulator width is the input width: the closed form predates
    // compilation and cannot know the program's out_width).
    let remote = max_remote_unique_src(&g, devices);
    for (f_in, f_out) in [(1024usize, 8usize), (8, 1024), (64, 64)] {
        let vols = PlacementVolumes::new(remote, g.num_vertices(), f_in, f_out, f_in);
        let (_, t) = vols.best(
            &[
                PlacementKind::DataParallel,
                PlacementKind::ProjectThenCommunicate,
                PlacementKind::ComputeThenReduce,
            ],
            fabric,
        );
        let closed = best_placement_comm(&g, &stack, f_in, f_out);
        assert!(
            (closed - t).abs() <= f64::EPSILON * t.max(1.0),
            "closed-form {closed} vs shared-module {t} at ({f_in}, {f_out})"
        );
    }
}
