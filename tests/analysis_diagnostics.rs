//! Broken-fixture tests for the static verifier: each fixture violates
//! exactly one invariant and must trigger the documented diagnostic code
//! (DESIGN.md §8). Together they cover every code the verifier can emit,
//! P001–P004, D001–D003, K001–K006, O001–O002, C001–C002, R001–R005, and
//! S001–S003, plus
//! a clean positive control. The R001 fixture additionally runs under the
//! engine's `ExecMode::Sanitize` shadow-memory sanitizer and asserts the
//! *same* conflict is caught dynamically (DESIGN.md §12).

use std::collections::BTreeMap;
use wisegraph::analysis::prelude::*;
use wisegraph::analysis::verify_execution;
use wisegraph::dfg::{Binding, Dfg, Dim, NodeId, OpKind};
use wisegraph::graph::{AttrKind, Graph};
use wisegraph::gtask::{partition, GTask, PartitionPlan, PartitionTable};
use wisegraph::kernels::micro::{compile, plan_is_dst_complete, EwOp, MicroKernel, Reg};
use wisegraph::models::ModelKind;

/// The worked example of paper Figure 3: 5 vertices, 2 edge types, 11 edges.
fn paper_graph() -> Graph {
    Graph::new(
        5,
        2,
        vec![0, 1, 0, 1, 2, 2, 3, 4, 3, 4, 0],
        vec![0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 4],
        vec![0, 0, 0, 0, 1, 0, 1, 1, 1, 1, 0],
    )
}

fn task(edges: Vec<usize>) -> GTask {
    GTask {
        edges,
        uniq: BTreeMap::new(),
    }
}

fn has(diags: &[Diagnostic], code: Code, needle: &str) -> bool {
    diags
        .iter()
        .any(|d| d.code == code && d.message.contains(needle))
}

// ---------------------------------------------------------------- plans

#[test]
fn p001_overlapping_task_edge_ranges() {
    let g = paper_graph();
    // Edges 4 and 5 appear in both tasks; edge 10 is never covered.
    let plan = PartitionPlan {
        table: PartitionTable::new(),
        tasks: vec![task(vec![0, 1, 2, 3, 4, 5]), task(vec![4, 5, 6, 7, 8, 9])],
    };
    let diags = verify_plan(&g, &plan);
    assert!(has(&diags, Code::PlanEdgeCoverage, "2 gTasks"), "{diags:#?}");
    assert!(has(&diags, Code::PlanEdgeCoverage, "not covered"), "{diags:#?}");
}

#[test]
fn p002_restriction_violated() {
    let g = paper_graph();
    // vertex_centric demands uniq(dst-id) = 1 per task; one task holding
    // every edge has uniq(dst-id) = 5.
    let plan = PartitionPlan {
        table: PartitionTable::vertex_centric(),
        tasks: vec![task((0..g.num_edges()).collect())],
    };
    let diags = verify_plan(&g, &plan);
    assert!(has(&diags, Code::PlanRestriction, "violates"), "{diags:#?}");
}

#[test]
fn p003_empty_task() {
    let g = paper_graph();
    let plan = PartitionPlan {
        table: PartitionTable::new(),
        tasks: vec![task((0..g.num_edges()).collect()), task(vec![])],
    };
    let diags = verify_plan(&g, &plan);
    assert!(has(&diags, Code::PlanEmptyTask, "no edges"), "{diags:#?}");
}

#[test]
fn p004_non_monotone_task_bounds() {
    let g = paper_graph();
    let mut plan = partition(&g, &PartitionTable::vertex_centric());
    assert!(plan.tasks.len() >= 2);
    plan.tasks.swap(0, 1);
    let diags = verify_plan(&g, &plan);
    assert!(has(&diags, Code::PlanTaskOrder, "boundary"), "{diags:#?}");
}

// ----------------------------------------------------------------- DFGs

#[test]
fn d001_dangling_node_reference() {
    let mut dfg = Dfg::new();
    let r = dfg.add_node_unchecked(OpKind::Relu, vec![NodeId(42)], vec![Dim::Edges]);
    dfg.mark_output(r);
    let diags = verify_dfg(&dfg, None);
    assert!(has(&diags, Code::DfgIllFormed, "dangling"), "{diags:#?}");
}

#[test]
fn d002_shape_mismatched_dfg() {
    // Add of a [V, 3] and a [V, 5] tensor: inference rejects it, and the
    // claimed output shape is unreachable.
    let mut dfg = Dfg::new();
    let a = dfg.input("a", vec![Dim::Vertices, Dim::Lit(3)]);
    let b = dfg.input("b", vec![Dim::Vertices, Dim::Lit(5)]);
    let s = dfg.add_node_unchecked(OpKind::Add, vec![a, b], vec![Dim::Vertices, Dim::Lit(3)]);
    dfg.mark_output(s);
    let diags = verify_dfg(&dfg, Some(&Binding::default()));
    assert!(
        has(&diags, Code::DfgShapeMismatch, "shape inference fails"),
        "{diags:#?}"
    );
}

#[test]
fn d003_rewrite_that_drops_an_indexing_attribute() {
    let original = ModelKind::Gcn.layer_dfg(8, 4);
    // A "rewrite" that forgot the src-id gather entirely.
    let mut broken = Dfg::new();
    let h = broken.input("h", vec![Dim::Vertices, Dim::Lit(4)]);
    let r = broken.relu(h);
    broken.mark_output(r);
    let diags = verify_rewrite(&original, &broken, "lossy-pass");
    assert!(
        has(&diags, Code::DfgRewriteChanged, "indexing-attribute set"),
        "{diags:#?}"
    );
}

// -------------------------------------------------------------- kernels

fn raw_program(ops: Vec<MicroKernel>, num_regs: usize) -> wisegraph::kernels::micro::KernelProgram {
    wisegraph::kernels::micro::KernelProgram {
        ops,
        num_regs,
        out_rows: 5,
        out_width: 4,
        reduce_node: NodeId(0),
        prologue: vec![],
        requires_dst_complete: false,
    }
}

#[test]
fn k001_store_before_load() {
    // The ScatterAdd reads r0/r1 before the loads that define them.
    let prog = raw_program(
        vec![
            MicroKernel::ScatterAdd {
                data: Reg(0),
                idx: Reg(1),
            },
            MicroKernel::LoadStream {
                attr: AttrKind::SrcId,
                out: Reg(0),
            },
            MicroKernel::LoadStream {
                attr: AttrKind::DstId,
                out: Reg(1),
            },
        ],
        2,
    );
    let diags = verify_program(&prog);
    assert!(
        has(&diags, Code::KernelUseBeforeDef, "before any micro-kernel writes"),
        "{diags:#?}"
    );
}

#[test]
fn k002_workspace_aliasing() {
    let prog = raw_program(
        vec![
            MicroKernel::LoadStream {
                attr: AttrKind::SrcId,
                out: Reg(0),
            },
            // In-place Relu: out aliases the operand's pooled buffer.
            MicroKernel::Elementwise {
                op: EwOp::Relu,
                a: Reg(0),
                b: None,
                out: Reg(0),
            },
            MicroKernel::ScatterAdd {
                data: Reg(0),
                idx: Reg(0),
            },
        ],
        1,
    );
    let diags = verify_program(&prog);
    assert!(has(&diags, Code::KernelAliasing, "aliases"), "{diags:#?}");
}

#[test]
fn k003_gapped_chunk_mapping() {
    let diags = verify_chunk_ranges(&[0..3, 5..9], 9, 4);
    assert!(
        has(&diags, Code::KernelChunkMapping, "assigned to no chunk"),
        "{diags:#?}"
    );
}

#[test]
fn k004_softmax_program_under_split_destinations() {
    let g = paper_graph();
    let dfg = ModelKind::Gat.layer_dfg(8, 4);
    let prog = compile(&dfg, &g).expect("GAT compiles");
    let plan = partition(&g, &PartitionTable::edge_batch(3));
    assert!(!plan_is_dst_complete(&g, &plan));
    let diags = verify_plan_compat(&g, &plan, &prog);
    assert!(
        has(&diags, Code::KernelPlanIncompatible, "splits some destination"),
        "{diags:#?}"
    );
}

#[test]
fn k005_fusion_plan_dropping_instructions() {
    use wisegraph::kernels::fused::plan_fusion;
    let g = paper_graph();
    let dfg = ModelKind::Gcn.layer_dfg(8, 4);
    let prog = compile(&dfg, &g).expect("GCN compiles");
    let mut fplan = plan_fusion(&prog);
    // A plan that silently drops its last segment no longer covers the
    // program: the fused run would skip real instructions.
    fplan.segments.pop();
    let diags = verify_fusion(&prog, &fplan);
    assert!(
        has(&diags, Code::KernelFusionCoverage, "cover exactly"),
        "{diags:#?}"
    );
    assert_eq!(Code::KernelFusionCoverage.as_str(), "K005");
    // The untampered plan is clean.
    assert!(verify_fusion(&prog, &plan_fusion(&prog)).is_empty());
}

#[test]
fn k006_missing_parity_harness() {
    // A tree with no tests/fused_parity.rs: every pattern is unregistered.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("crates");
    let diags = verify_fused_parity_registry(&root);
    assert!(!diags.is_empty());
    assert!(diags.iter().all(|d| d.code == Code::KernelFusionUntested));
    assert_eq!(Code::KernelFusionUntested.as_str(), "K006");
    // This repo's harness registers every pattern.
    let repo = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    assert!(verify_fused_parity_registry(repo).is_empty());
}

// ------------------------------------------------------- instrumentation

#[test]
fn o001_uninstrumented_execution_path() {
    use wisegraph::analysis::obscheck::check_sources;
    // `execute` loops over tasks but neither opens a span nor calls
    // anything that does.
    let src = "pub fn execute(tasks: &[u32]) -> u32 {\n    tasks.iter().map(|t| helper(*t)).sum()\n}\nfn helper(t: u32) -> u32 { t }\n";
    let diags = check_sources(&[("engine.rs", src, &["execute"])]);
    assert!(
        has(&diags, Code::ObsUncovered, "without an enclosing"),
        "{diags:#?}"
    );
    assert_eq!(Code::ObsUncovered.as_str(), "O001");
    // The fix — a span anywhere along the intra-set call chain — clears it.
    let fixed = "pub fn execute(tasks: &[u32]) -> u32 {\n    tasks.iter().map(|t| helper(*t)).sum()\n}\nfn helper(t: u32) -> u32 {\n    let _s = wisegraph_obs::span!(\"kernel.task\");\n    t\n}\n";
    assert!(check_sources(&[("engine.rs", fixed, &["execute"])]).is_empty());
}

#[test]
fn o001_shipped_sources_are_covered() {
    use wisegraph::analysis::obscheck::verify_instrumentation;
    let report =
        verify_instrumentation(std::path::Path::new(env!("CARGO_MANIFEST_DIR")));
    assert!(report.is_clean(), "{report}");
}

#[test]
fn o002_schedule_phase_not_span_covered() {
    use wisegraph::analysis::obscheck::check_phase_sources;
    // A halo schedule that runs its engines directly, bypassing the
    // phase-recording mailbox calls: the attribution report would never
    // see its compute or exchange.
    let src = "fn run_halo_schedule(&self) -> Vec<u32> {\n    self.engines.iter().map(|e| e.run()).collect()\n}\nfn exchange(&mut self, round: u32) {\n    self.drain(round)\n}\n";
    let req: &[(&str, &[&str])] = &[
        ("run_halo_schedule", &["record_compute", ".exchange("]),
        ("exchange", &["cluster.phase.exchange", "span!"]),
    ];
    let diags = check_phase_sources(&[("cluster.rs", src, req)]);
    assert_eq!(diags.len(), 2, "{diags:#?}");
    assert!(
        has(&diags, Code::ObsPhaseUncovered, "missing phase instrumentation"),
        "{diags:#?}"
    );
    assert_eq!(Code::ObsPhaseUncovered.as_str(), "O002");
    // The fix — routing the phases through their spans / recording
    // calls — clears both.
    let fixed = "fn run_halo_schedule(&self, mb: &mut Mailbox) -> Vec<u32> {\n    let outs = mb.record_compute(|| self.run());\n    mb.exchange(0);\n    outs\n}\nfn exchange(&mut self, round: u32) {\n    let _s = span!(\"cluster.phase.exchange\", round = round);\n    self.drain(round)\n}\n";
    assert!(check_phase_sources(&[("cluster.rs", fixed, req)]).is_empty());
    // A renamed (missing) function is reported, not skipped.
    let gone: &[(&str, &[&str])] = &[("run_devices", &["cluster.device"])];
    let diags = check_phase_sources(&[("cluster.rs", src, gone)]);
    assert!(has(&diags, Code::ObsPhaseUncovered, "not found"), "{diags:#?}");
}

#[test]
fn o002_shipped_sources_are_phase_covered() {
    use wisegraph::analysis::obscheck::verify_phase_instrumentation;
    let report =
        verify_phase_instrumentation(std::path::Path::new(env!("CARGO_MANIFEST_DIR")));
    assert!(report.is_clean(), "{report}");
}

// --------------------------------------------------- cache & repair

#[test]
fn c001_repaired_plan_divergence() {
    use wisegraph::gtask::{GraphDelta, IncrementalPlan};
    let g = paper_graph();
    let table = PartitionTable::vertex_centric();
    let mut inc = IncrementalPlan::new(&g, table.clone());
    inc.apply(&g, &GraphDelta::deleting(vec![4, 8]));
    let live = inc.live_edges();
    let snap = inc.snapshot(&g);
    // The honest repair verifies clean.
    assert!(verify_repair(&g, &table, &live, &snap).is_empty());
    // A doctored snapshot that still covers a deleted edge is C001.
    let mut bad = snap.clone();
    bad.tasks[0].edges.push(4);
    let diags = verify_repair(&g, &table, &live, &bad);
    assert!(
        has(&diags, Code::RepairDivergence, "not in the live set"),
        "{diags:#?}"
    );
    // A snapshot missing a live edge is C001 too.
    let mut lossy = snap;
    lossy.tasks[0].edges.clear();
    lossy.tasks[0].edges.push(live[0]);
    let diags = verify_repair(&g, &table, &live, &lossy);
    assert!(
        has(&diags, Code::RepairDivergence, "not covered"),
        "{diags:#?}"
    );
    assert_eq!(Code::RepairDivergence.as_str(), "C001");
}

#[test]
fn c002_missing_roundtrip_harness() {
    // A tree with no tests/cache_roundtrip.rs: every artifact unregistered.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("crates");
    let diags = verify_cache_roundtrip_registry(&root);
    assert!(!diags.is_empty());
    assert!(diags.iter().all(|d| d.code == Code::CacheArtifactUntested));
    assert_eq!(Code::CacheArtifactUntested.as_str(), "C002");
    // This repo's harness registers every cached artifact type.
    let repo = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    assert!(verify_cache_roundtrip_registry(repo).is_empty());
}

// ------------------------------------------- schedule interference (R)

/// The shared negative fixture for R001: GAT's softmax normalization
/// demands exclusive ownership of each destination row, but `edge_batch(3)`
/// splits destinations across tasks, and with 2 worker slots the overlap
/// lands cross-slot.
fn gat_split_destination_fixture() -> (Graph, wisegraph::dfg::Dfg, PartitionPlan) {
    let g = paper_graph();
    let dfg = ModelKind::Gat.layer_dfg(8, 4);
    let plan = partition(&g, &PartitionTable::edge_batch(3));
    assert!(!plan_is_dst_complete(&g, &plan));
    (g, dfg, plan)
}

#[test]
fn r001_cross_slot_write_overlap() {
    let (g, dfg, plan) = gat_split_destination_fixture();
    let prog = compile(&dfg, &g).expect("GAT compiles");
    let diags = verify_interference(&g, &plan, &prog, 2);
    assert!(
        has(&diags, Code::ScheduleWriteOverlap, "accumulator row"),
        "{diags:#?}"
    );
    assert_eq!(Code::ScheduleWriteOverlap.as_str(), "R001");
    // On one worker slot the overlap is sequential: no R001 (K004 covers
    // the dst-completeness violation separately).
    assert!(
        !verify_interference(&g, &plan, &prog, 1)
            .iter()
            .any(|d| d.code == Code::ScheduleWriteOverlap)
    );
}

#[test]
fn r001_sanitizer_catches_the_same_conflict_dynamically() {
    use wisegraph::kernels::engine::{Engine, ExecMode};
    use wisegraph::tensor::init;
    let (g, dfg, plan) = gat_split_destination_fixture();
    let prog = compile(&dfg, &g).expect("GAT compiles");
    // Static verdict first: the interference pass flags the schedule.
    assert!(verify_interference(&g, &plan, &prog, 2)
        .iter()
        .any(|d| d.code == Code::ScheduleWriteOverlap));
    // Dynamic cross-check: the shadow-memory sanitizer observes the same
    // exclusive-ownership conflict at runtime and hard-errors.
    let mut globals = std::collections::HashMap::new();
    globals.insert(
        "h".to_string(),
        init::uniform_tensor(&[g.num_vertices(), 8], -1.0, 1.0, 1),
    );
    globals.insert("w".to_string(), init::uniform_tensor(&[8, 4], -1.0, 1.0, 2));
    globals.insert("a_src".to_string(), init::uniform_tensor(&[4, 1], -1.0, 1.0, 3));
    globals.insert("a_dst".to_string(), init::uniform_tensor(&[4, 1], -1.0, 1.0, 4));
    let engine = Engine::with_mode(2, ExecMode::Sanitize);
    let err = engine
        .execute(&dfg, &g, &plan, &globals)
        .expect_err("sanitizer must reject the split-destination schedule");
    assert!(err.to_string().contains("sanitizer"), "{err}");
    let rep = engine.last_sanitize().expect("report survives the error");
    assert!(!rep.conflicts.is_empty());
}

#[test]
fn r002_unresolvable_scatter_provenance() {
    // The scatter destination stream is an Elementwise output, not a
    // loaded edge attribute: no task's write rows can be derived.
    let g = paper_graph();
    let plan = partition(&g, &PartitionTable::edge_centric());
    let prog = raw_program(
        vec![
            MicroKernel::LoadStream {
                attr: AttrKind::SrcId,
                out: Reg(0),
            },
            MicroKernel::Elementwise {
                op: EwOp::Relu,
                a: Reg(0),
                b: None,
                out: Reg(1),
            },
            MicroKernel::ScatterAdd {
                data: Reg(0),
                idx: Reg(1),
            },
        ],
        2,
    );
    let diags = verify_interference(&g, &plan, &prog, 2);
    assert!(
        has(&diags, Code::ScheduleReadWrite, "provenance"),
        "{diags:#?}"
    );
    assert_eq!(Code::ScheduleReadWrite.as_str(), "R002");
}

#[test]
fn r003_slot_collisions() {
    // Two chunks mapped onto one worker slot race on its workspace.
    let diags = verify_slot_assignment(&[0, 0], 2);
    assert!(
        has(&diags, Code::ScheduleSlotCollision, "share worker slot"),
        "{diags:#?}"
    );
    // A slot index past the engine's worker count is R003 too.
    let diags = verify_slot_assignment(&[5], 2);
    assert!(has(&diags, Code::ScheduleSlotCollision, "only"), "{diags:#?}");
    assert_eq!(Code::ScheduleSlotCollision.as_str(), "R003");
    // The engine's identity assignment is clean.
    assert!(verify_slot_assignment(&[0, 1, 2], 3).is_empty());
}

#[test]
fn r004_fused_segment_diverging_from_interpreted_accesses() {
    use wisegraph::kernels::fused::{plan_fusion, FusedOp, Segment};
    let g = paper_graph();
    let dfg = ModelKind::Gcn.layer_dfg(8, 4);
    let prog = compile(&dfg, &g).expect("GCN compiles");
    let mut fplan = plan_fusion(&prog);
    assert!(fplan.num_fused() > 0, "GCN must fuse for this fixture");
    // The honest plan agrees with the interpreted access sets.
    assert!(verify_fused_access(&prog, &fplan).is_empty());
    // Rewire the first fused segment's scatter stream: the fused ExecMode
    // would now write via a different stream than the interpreter.
    for seg in &mut fplan.segments {
        if let Segment::Fused(fk) = seg {
            match &mut fk.op {
                FusedOp::SegmentReduce { dst_idx, .. }
                | FusedOp::EdgeBatchMatmul { dst_idx, .. }
                | FusedOp::PerTypeBatchedMatmul { dst_idx, .. } => *dst_idx = Reg(97),
            }
            break;
        }
    }
    let diags = verify_fused_access(&prog, &fplan);
    assert!(
        has(&diags, Code::ScheduleFusedDivergence, "scatters by stream"),
        "{diags:#?}"
    );
    assert_eq!(Code::ScheduleFusedDivergence.as_str(), "R004");
}

#[test]
fn r005_workspace_lifetime_violations() {
    // r0 is leased twice with the first buffer never consumed, then read
    // after the overwrite released it: both R005 shapes in one program.
    let prog = raw_program(
        vec![
            MicroKernel::LoadStream {
                attr: AttrKind::SrcId,
                out: Reg(0),
            },
            MicroKernel::LoadStream {
                attr: AttrKind::DstId,
                out: Reg(0),
            },
            MicroKernel::Elementwise {
                op: EwOp::Relu,
                a: Reg(0),
                b: None,
                out: Reg(1),
            },
        ],
        2,
    );
    let diags = verify_workspace_lifetime(&prog);
    assert!(has(&diags, Code::WorkspaceLifetime, "double-lease"), "{diags:#?}");
    assert!(
        has(&diags, Code::WorkspaceLifetime, "use-after-release"),
        "{diags:#?}"
    );
    assert_eq!(Code::WorkspaceLifetime.as_str(), "R005");
    // Compiled programs are SSA by construction: clean.
    let g = paper_graph();
    let compiled = compile(&ModelKind::Gcn.layer_dfg(8, 4), &g).unwrap();
    assert!(verify_workspace_lifetime(&compiled).is_empty());
}

// ------------------------------------------------------------- controls

#[test]
fn clean_inputs_produce_clean_reports() {
    let g = paper_graph();
    for model in [ModelKind::Gcn, ModelKind::Rgcn, ModelKind::Sage] {
        let dfg = model.layer_dfg(8, 4);
        for table in [
            PartitionTable::vertex_centric(),
            PartitionTable::edge_centric(),
            PartitionTable::two_d(2),
        ] {
            let plan = partition(&g, &table);
            for threads in [1, 3] {
                let report = verify_execution(&dfg, &g, &plan, threads);
                assert!(
                    report.is_clean() && report.warning_count() == 0,
                    "{model:?} × {table}: {report}"
                );
            }
        }
    }
}

// ------------------------------------------------------------- sharding

#[test]
fn s001_duplicated_edge_across_device_plans() {
    let g = paper_graph();
    // Edge 3 appears twice in the plan; each copy lands on exactly one
    // device's filtered plan, so the union covers it twice.
    let plan = PartitionPlan {
        table: PartitionTable::new(),
        tasks: vec![task(vec![0, 1, 2, 3]), task(vec![3, 4, 5, 6, 7, 8, 9, 10])],
    };
    let diags = verify_shard_coverage(&g, &plan, 2);
    assert!(has(&diags, Code::ShardCoverage, "instead of exactly one"), "{diags:#?}");
    assert_eq!(Code::ShardCoverage.as_str(), "S001");
    // Zero devices is its own S001.
    assert!(!verify_shard_coverage(&g, &plan, 0).is_empty());
    // The honest plan at any device count is clean.
    let good = partition(&g, &PartitionTable::vertex_centric());
    for devices in [1usize, 2, 3, 5, 8] {
        assert!(verify_shard_coverage(&g, &good, devices).is_empty());
    }
}

#[test]
fn s002_dropped_message_breaks_conservation() {
    use wisegraph::kernels::cluster::{Direction, ExchangeEvent, ExchangeLog};
    let sent = ExchangeEvent {
        collective: "all_to_all",
        round: 0,
        from: 0,
        to: 1,
        bytes: 64,
        direction: Direction::Sent,
    };
    let received = ExchangeEvent {
        direction: Direction::Received,
        ..sent.clone()
    };
    let balanced = ExchangeLog {
        events: vec![sent.clone(), received],
    };
    assert!(verify_exchange(&balanced).is_empty());
    let dropped = ExchangeLog { events: vec![sent] };
    let diags = verify_exchange(&dropped);
    assert!(has(&diags, Code::ExchangeConservation, "not conserved"), "{diags:#?}");
    assert_eq!(Code::ExchangeConservation.as_str(), "S002");
}

#[test]
fn s003_dst_complete_program_under_tensor_parallelism() {
    use wisegraph::sim::PlacementKind;
    use wisegraph::tensor::init;
    let g = paper_graph();
    // GAT's per-destination softmax needs every in-edge of a destination
    // on one device; the column split of tensor parallelism cannot
    // provide that.
    let dfg = ModelKind::Gat.layer_dfg(4, 3);
    let program = compile(&dfg, &g).unwrap();
    let mut globals = std::collections::HashMap::new();
    globals.insert(
        "h".to_string(),
        init::uniform_tensor(&[g.num_vertices(), 4], -1.0, 1.0, 1),
    );
    globals.insert("w".to_string(), init::uniform_tensor(&[4, 3], -1.0, 1.0, 2));
    globals.insert("a_src".to_string(), init::uniform_tensor(&[3, 1], -1.0, 1.0, 3));
    globals.insert("a_dst".to_string(), init::uniform_tensor(&[3, 1], -1.0, 1.0, 4));
    let diags = verify_placement(&program, &g, &globals, PlacementKind::TensorParallel);
    assert!(has(&diags, Code::PlacementIncompatible, "tensor_parallel"), "{diags:#?}");
    assert_eq!(Code::PlacementIncompatible.as_str(), "S003");
    assert!(
        verify_placement(&program, &g, &globals, PlacementKind::DataParallel).is_empty()
    );
}

#[test]
fn every_documented_code_has_a_triggering_fixture() {
    // Meta-check: the codes asserted across this file cover the verifier's
    // whole vocabulary, so a new code cannot land without a fixture.
    let covered = [
        Code::PlanEdgeCoverage,
        Code::PlanRestriction,
        Code::PlanEmptyTask,
        Code::PlanTaskOrder,
        Code::DfgIllFormed,
        Code::DfgShapeMismatch,
        Code::DfgRewriteChanged,
        Code::KernelUseBeforeDef,
        Code::KernelAliasing,
        Code::KernelChunkMapping,
        Code::KernelPlanIncompatible,
        Code::KernelFusionCoverage,
        Code::KernelFusionUntested,
        Code::ObsUncovered,
        Code::RepairDivergence,
        Code::CacheArtifactUntested,
        Code::ScheduleWriteOverlap,
        Code::ScheduleReadWrite,
        Code::ScheduleSlotCollision,
        Code::ScheduleFusedDivergence,
        Code::WorkspaceLifetime,
        Code::ShardCoverage,
        Code::ExchangeConservation,
        Code::PlacementIncompatible,
    ];
    let strs: Vec<&str> = covered.iter().map(|c| c.as_str()).collect();
    for family in ["P", "D", "K", "O", "C", "R", "S"] {
        assert!(strs.iter().any(|s| s.starts_with(family)));
    }
    assert_eq!(strs.len(), 24);
}
