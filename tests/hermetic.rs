//! Hermeticity guard: the build environment has no crate registry, so
//! every dependency in every manifest of this workspace must be a `path`
//! dependency (directly or via `workspace = true`). This test scans all
//! `Cargo.toml` files and fails listing each offending declaration, so a
//! registry or git dependency cannot land silently.

use std::path::{Path, PathBuf};
use wisegraph_testkit::hermetic::{scan_sources, scan_workspace};

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR of this integration test is the workspace root
    // (the root package doubles as the workspace).
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn collect_manifests(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable dir").flatten() {
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" && name != ".git" {
                collect_manifests(&path, out);
            }
        } else if name == "Cargo.toml" {
            out.push(path);
        }
    }
}

#[test]
fn every_dependency_in_every_manifest_is_a_path_dependency() {
    let violations = scan_workspace(workspace_root());
    assert!(
        violations.is_empty(),
        "non-hermetic dependencies found:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_scan_covers_the_root_and_every_crate_manifest() {
    // Guard the guard: if the workspace gains a crate (or a manifest moves)
    // this count documents that the scanner saw it.
    let mut manifests = Vec::new();
    collect_manifests(&workspace_root(), &mut manifests);
    assert_eq!(
        manifests.len(),
        15,
        "expected root + 14 crate manifests, found: {manifests:?}"
    );
    // Every member listed in crates/ has a manifest.
    for crate_dir in std::fs::read_dir(workspace_root().join("crates"))
        .expect("crates dir")
        .flatten()
    {
        assert!(
            crate_dir.path().join("Cargo.toml").is_file(),
            "missing manifest in {:?}",
            crate_dir.path()
        );
    }
}

#[test]
fn no_unsafe_or_nondeterminism_in_shipped_sources() {
    // Shipped (non-test) code must stay safe and run-to-run deterministic:
    // no `unsafe` blocks, no `SystemTime`, no iteration over `HashMap`s
    // (whose order varies between runs — sort first or use a BTreeMap), and
    // no `Instant` outside `crates/obs/src/clock.rs` — the workspace's one
    // sanctioned monotonic-clock site (all other timing goes through
    // `wisegraph_obs::clock`).
    let violations = scan_sources(workspace_root());
    assert!(
        violations.is_empty(),
        "unsafe/nondeterminism findings in shipped sources:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_root_lockfile_contains_only_workspace_packages() {
    // A second, independent line of defense: Cargo.lock must reference no
    // external source (`source = "registry+..."` / `git+...` entries).
    let lock = workspace_root().join("Cargo.lock");
    if !lock.is_file() {
        return; // not yet generated — nothing to leak
    }
    let text = std::fs::read_to_string(&lock).expect("readable lockfile");
    for (idx, line) in text.lines().enumerate() {
        assert!(
            !line.trim_start().starts_with("source ="),
            "Cargo.lock:{}: external package source: {}",
            idx + 1,
            line.trim()
        );
    }
}
