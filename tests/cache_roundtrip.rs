//! Byte-roundtrip registry for the planning cache (the `C002` gate).
//!
//! Every artifact type the content-addressed store can hold
//! (`wisegraph::cache::CachedArtifact::ALL`) must be pinned byte-stable
//! here: decode(encode(x)) must reproduce `x`, and re-encoding the
//! decoded value must reproduce the original bytes bit for bit. The
//! per-artifact entry points below are the registered roundtrip tests
//! `wisegraph-lint` (C002) checks for by name — renaming one without
//! updating `CachedArtifact::roundtrip_test()` fails the lint.
//!
//! Byte stability is load-bearing, not cosmetic: cache keys hash these
//! encodings, and hits decode stored bytes instead of returning live
//! objects, so any drift between encoder and decoder silently poisons
//! every warm run.

use wisegraph::cache::artifact::{
    decode_dfg, decode_plan, decode_program, encode_dfg, encode_plan, encode_program,
};
use wisegraph::cache::CachedArtifact;
use wisegraph::dfg::{transform, Binding};
use wisegraph::graph::generate::{rmat, RmatParams};
use wisegraph::graph::{AttrKind, Graph};
use wisegraph::gtask::restriction::enumerate_tables;
use wisegraph::gtask::{partition, partition_edges};
use wisegraph::kernels::micro::compile;
use wisegraph::models::ModelKind;

const MODELS: [ModelKind; 4] = [
    ModelKind::Gcn,
    ModelKind::Rgcn,
    ModelKind::Gat,
    ModelKind::Sage,
];

fn graph() -> Graph {
    rmat(&RmatParams::standard(96, 800, 33).with_edge_types(3))
}

/// Registered roundtrip test for [`CachedArtifact::PartitionPlan`]:
/// plans from every enumerable table — full-graph and live-subset —
/// survive encode → decode → encode byte-identically.
#[test]
fn roundtrip_partition_plan() {
    let g = graph();
    let indexing = [AttrKind::SrcId, AttrKind::DstId, AttrKind::EdgeType];
    for table in enumerate_tables(&indexing, &[4, 32]) {
        let full = partition(&g, &table);
        let live: Vec<usize> = (0..g.num_edges()).filter(|e| e % 3 != 1).collect();
        let sub = partition_edges(&g, &table, &live);
        for plan in [&full, &sub] {
            let bytes = encode_plan(plan);
            let back = decode_plan(&bytes).expect("legal plan decodes");
            assert_eq!(back, *plan, "value roundtrip: [{table}]");
            assert_eq!(encode_plan(&back), bytes, "byte stability: [{table}]");
        }
    }
}

/// Registered roundtrip test for [`CachedArtifact::TransformedDfg`]:
/// base and transform-optimized DFGs of all four models survive
/// encode → decode → encode byte-identically.
#[test]
fn roundtrip_transformed_dfg() {
    let g = graph();
    let binding = Binding::from_graph(&g);
    for model in MODELS {
        let base = model.layer_dfg(16, 8);
        let (opt, _) = transform::optimize(&base, &binding);
        for dfg in [&base, &opt] {
            let bytes = encode_dfg(dfg);
            let back = decode_dfg(&bytes).expect("legal DFG decodes");
            assert_eq!(back.len(), dfg.len(), "{model:?}");
            assert_eq!(back.outputs(), dfg.outputs(), "{model:?}");
            for (a, b) in back.nodes().iter().zip(dfg.nodes()) {
                assert_eq!(a.kind, b.kind, "{model:?}");
                assert_eq!(a.inputs, b.inputs, "{model:?}");
                assert_eq!(a.shape, b.shape, "{model:?}");
            }
            assert_eq!(encode_dfg(&back), bytes, "byte stability: {model:?}");
        }
    }
}

/// Registered roundtrip test for [`CachedArtifact::KernelProgram`]:
/// compiled micro-kernel programs of all four models survive
/// encode → decode → encode byte-identically.
#[test]
fn roundtrip_kernel_program() {
    let g = graph();
    let binding = Binding::from_graph(&g);
    for model in MODELS {
        let (dfg, _) = transform::optimize(&model.layer_dfg(16, 8), &binding);
        let p = compile(&dfg, &g).expect("models compile");
        let bytes = encode_program(&p);
        let back = decode_program(&bytes).expect("legal program decodes");
        assert_eq!(back.ops, p.ops, "{model:?}");
        assert_eq!(back.num_regs, p.num_regs, "{model:?}");
        assert_eq!(back.out_rows, p.out_rows, "{model:?}");
        assert_eq!(back.out_width, p.out_width, "{model:?}");
        assert_eq!(back.reduce_node, p.reduce_node, "{model:?}");
        assert_eq!(back.prologue, p.prologue, "{model:?}");
        assert_eq!(
            back.requires_dst_complete, p.requires_dst_complete,
            "{model:?}"
        );
        assert_eq!(encode_program(&back), bytes, "byte stability: {model:?}");
    }
}

/// The registry itself is coherent: three artifact types, distinct
/// names, distinct tags, and each `roundtrip_test` name matches a test
/// in this file (self-check of the C002 contract).
#[test]
fn registry_names_match_this_harness() {
    let src = include_str!("cache_roundtrip.rs");
    assert_eq!(CachedArtifact::ALL.len(), 3);
    for a in CachedArtifact::ALL {
        assert!(
            src.contains(&format!("fn {}(", a.roundtrip_test())),
            "artifact `{}` expects `fn {}` here",
            a.name(),
            a.roundtrip_test()
        );
    }
}
