//! Cross-crate integration tests: the full WiseGraph pipeline from graph
//! data to optimized plans, execution, and training.

use wisegraph::baselines::{Baseline, LayerDims};
use wisegraph::core::plan::{ExecutionPlan, OpPartitionKind};
use wisegraph::core::WiseGraph;
use wisegraph::dfg::interp::execute;
use wisegraph::dfg::Binding;
use wisegraph::graph::generate::{labeled_graph, rmat, LabeledParams, RmatParams};
use wisegraph::graph::Graph;
use wisegraph::gtask::{classify_outliers, partition, PartitionTable};
use wisegraph::models::ModelKind;
use wisegraph::sim::DeviceSpec;
use wisegraph::tensor::{init, Tensor};
use std::collections::HashMap;

fn test_graph(seed: u64) -> Graph {
    rmat(&RmatParams::standard(3000, 40_000, seed).with_edge_types(6))
}

/// The headline pipeline: optimize every model on a power-law graph and
/// beat the strongest baseline.
#[test]
fn full_pipeline_beats_baselines_for_every_model() {
    let g = test_graph(1);
    let dev = DeviceSpec::a100_pcie();
    let dims = LayerDims::paper_single(64, 16);
    let wg = WiseGraph::new(dev);
    for model in ModelKind::ALL {
        let ours = wg.optimize(&g, model, &dims);
        assert!(!ours.oom, "{} should fit", model.name());
        let best = Baseline::columns_for(model)
            .into_iter()
            .map(|b| b.estimate(&g, model, &dims, &dev).time_per_iter)
            .fold(f64::INFINITY, f64::min);
        assert!(
            ours.time_per_iter < best,
            "{}: ours {} vs best baseline {}",
            model.name(),
            ours.time_per_iter,
            best
        );
    }
}

/// Transformed plans must stay numerically equivalent to the naive DFG
/// when executed by the interpreter — across all models with dense inputs.
#[test]
fn optimized_plans_execute_equivalently() {
    let g = test_graph(2);
    let binding = Binding::from_graph(&g);
    let (fi, fo) = (6, 5);
    for model in [ModelKind::Rgcn, ModelKind::Gcn, ModelKind::Sage] {
        let dfg = model.layer_dfg(fi, fo);
        let plan = ExecutionPlan::build(
            &g,
            PartitionTable::src_batch_per_type(16),
            &dfg,
            OpPartitionKind::Fused,
        );
        let mut inputs: HashMap<String, Tensor> = HashMap::new();
        inputs.insert(
            "h".into(),
            init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 3),
        );
        inputs.insert(
            "W".into(),
            init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, 4),
        );
        inputs.insert("w".into(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, 5));
        inputs.insert(
            "w_self".into(),
            init::uniform_tensor(&[fi, fo], -1.0, 1.0, 6),
        );
        inputs.insert(
            "w_neigh".into(),
            init::uniform_tensor(&[fi, fo], -1.0, 1.0, 7),
        );
        let base = &execute(&dfg, &g, &inputs).unwrap()[0];
        let opt = &execute(&plan.dfg, &g, &inputs).unwrap()[0];
        assert!(
            base.allclose(opt, 1e-3),
            "{}: transformed plan diverges by {}",
            model.name(),
            base.max_abs_diff(opt)
        );
        let _ = binding.edges;
    }
}

/// The greedy partitioner, outlier classifier, and scheduler compose
/// without losing edges — across a grid of tables.
#[test]
fn partition_outlier_schedule_composition() {
    let g = test_graph(3);
    let dev = DeviceSpec::a100_pcie();
    for table in [
        PartitionTable::vertex_centric(),
        PartitionTable::src_batch_per_type(32),
        PartitionTable::two_d(8),
        PartitionTable::dst_batch_min_degree(16),
        PartitionTable::edge_batch(64),
    ] {
        let plan = partition(&g, &table);
        assert_eq!(plan.total_edges(), g.num_edges(), "{table}");
        let classes = classify_outliers(
            &g,
            &plan,
            &wisegraph::gtask::outlier::OutlierConfig::default(),
        );
        assert_eq!(classes.len(), plan.num_tasks());
        let dfg = ModelKind::Gcn.layer_dfg(16, 16);
        let eplan = ExecutionPlan::build_untransformed(
            &g,
            table.clone(),
            &dfg,
            OpPartitionKind::Fused,
        );
        let cmp = wisegraph::core::joint::compare_scheduling(
            &eplan,
            &g,
            &dev,
            &wisegraph::core::joint::DifferentiationConfig::default(),
        );
        assert!(cmp.differentiated <= cmp.uniform * 1.001, "{table}");
    }
}

/// Real training on a labeled graph converges for all trainable models.
#[test]
fn training_converges_end_to_end() {
    use wisegraph::core::trainer::train_full_graph;
    use wisegraph::models::{Gat, Gcn, GnnModel, Rgcn, Sage};
    let data = labeled_graph(&LabeledParams {
        num_vertices: 400,
        num_classes: 5,
        feature_dim: 16,
        num_edge_types: 3,
        homophily: 0.85,
        noise: 0.6,
        seed: 17,
        ..Default::default()
    });
    let dims = [16usize, 24, 5];
    let mut models: Vec<Box<dyn GnnModel>> = vec![
        Box::new(Gcn::new(&dims, 1)),
        Box::new(Sage::new(&dims, 2)),
        Box::new(Gat::new(&dims, 3)),
        Box::new(Rgcn::new(&dims, 3, 4)),
    ];
    for model in &mut models {
        let stats = train_full_graph(model.as_mut(), &data, 25, 0.01);
        let last = stats.last().unwrap();
        assert!(
            last.loss < stats[0].loss,
            "{}: loss did not drop",
            model.name()
        );
        assert!(
            last.test_accuracy > 0.5,
            "{}: accuracy {}",
            model.name(),
            last.test_accuracy
        );
    }
}

/// OOM detection: a Reddit-scale tensor-centric plan must not fit, while
/// WiseGraph's fused plan must.
#[test]
fn memory_pressure_differentiates_systems() {
    use wisegraph::graph::DatasetKind;
    let spec = DatasetKind::Reddit.spec();
    let g = spec.build();
    let dev = DeviceSpec::a100_pcie();
    let dims = LayerDims::paper_single(spec.feature_dim, spec.num_classes);
    let pyg = Baseline::PygT.estimate(&g, ModelKind::Gat, &dims, &dev);
    assert!(
        pyg.memory_bytes * spec.scale() > dev.mem_capacity,
        "tensor-centric GAT must exceed device memory at full scale"
    );
    let wg = WiseGraph::new(dev);
    let ours = wg.optimize(&g, ModelKind::Gat, &dims);
    assert!(
        ours.memory_bytes * spec.scale() < dev.mem_capacity,
        "WiseGraph's fused plan must fit: {} bytes",
        ours.memory_bytes * spec.scale()
    );
}

/// Multi-GPU: WiseGraph's placement is never worse than both static
/// strategies on any layer shape.
#[test]
fn placement_lower_envelope() {
    use wisegraph::baselines::{MultiGpuSystem, MultiStack};
    use wisegraph::core::multi;
    let g = test_graph(4);
    let stack = MultiStack::paper_quad();
    for f_in in [32usize, 128, 512] {
        for hidden in [16usize, 64, 256] {
            let ours = multi::first_layer_time(&g, f_in, hidden, &stack);
            let dgl = MultiGpuSystem::Dgl.first_layer_time(&g, f_in, hidden, &stack);
            let p3 = MultiGpuSystem::P3.first_layer_time(&g, f_in, hidden, &stack);
            assert!(
                ours <= dgl.min(p3) * 1.001,
                "f_in {f_in} hidden {hidden}: ours {ours}, dgl {dgl}, p3 {p3}"
            );
        }
    }
}
