//! Failure-injection and degenerate-input tests: the system must handle
//! pathological graphs gracefully (empty features, isolated vertices,
//! self-loops, single-type graphs, hub-only topologies).

use std::collections::HashMap;
use wisegraph::baselines::{Baseline, LayerDims};
use wisegraph::core::plan::{ExecutionPlan, OpPartitionKind};
use wisegraph::core::WiseGraph;
use wisegraph::dfg::interp::execute;
use wisegraph::graph::Graph;
use wisegraph::gtask::{partition, PartitionTable};
use wisegraph::models::ModelKind;
use wisegraph::sim::DeviceSpec;
use wisegraph::tensor::{init, Tensor};

/// A single self-loop: the smallest legal graph.
#[test]
fn single_self_loop() {
    let g = Graph::untyped(1, vec![0], vec![0]);
    for table in [
        PartitionTable::vertex_centric(),
        PartitionTable::edge_centric(),
        PartitionTable::two_d(4),
    ] {
        let plan = partition(&g, &table);
        assert_eq!(plan.num_tasks(), 1);
        assert_eq!(plan.total_edges(), 1);
    }
    let dfg = ModelKind::Gcn.layer_dfg(3, 2);
    let mut inputs: HashMap<String, Tensor> = HashMap::new();
    inputs.insert("h".into(), Tensor::ones(&[1, 3]));
    inputs.insert("w".into(), Tensor::ones(&[3, 2]));
    let out = &execute(&dfg, &g, &inputs).unwrap()[0];
    assert_eq!(out.dims(), &[1, 2]);
    assert!(out.all_finite());
}

/// Many isolated vertices: aggregation outputs zero rows, models must not
/// produce NaNs (degree normalization divides by max(deg, 1)).
#[test]
fn mostly_isolated_vertices() {
    let g = Graph::untyped(100, vec![0, 1], vec![2, 2]);
    let dfg = ModelKind::Sage.layer_dfg(4, 3);
    let mut inputs: HashMap<String, Tensor> = HashMap::new();
    inputs.insert("h".into(), init::uniform_tensor(&[100, 4], -1.0, 1.0, 1));
    inputs.insert("w_self".into(), init::uniform_tensor(&[4, 3], -1.0, 1.0, 2));
    inputs.insert("w_neigh".into(), init::uniform_tensor(&[4, 3], -1.0, 1.0, 3));
    let out = &execute(&dfg, &g, &inputs).unwrap()[0];
    assert!(out.all_finite(), "degree normalization must not divide by 0");
}

/// A pure star (one hub) stresses every outlier path at once.
#[test]
fn star_graph_full_pipeline() {
    let n = 600;
    let src: Vec<u32> = (1..n as u32).collect();
    let dst = vec![0u32; n - 1];
    let g = Graph::untyped(n, src, dst);
    let dev = DeviceSpec::a100_pcie();
    let wg = WiseGraph::new(dev);
    let dims = LayerDims::paper_single(16, 4);
    for model in [ModelKind::Gcn, ModelKind::Gat] {
        let out = wg.optimize(&g, model, &dims);
        assert!(out.time_per_iter.is_finite() && out.time_per_iter > 0.0);
        assert!(!out.oom);
    }
}

/// A graph where every edge has the same type behaves identically under
/// type-restricted and unrestricted tables.
#[test]
fn single_type_graph_type_restriction_is_noop() {
    let g = wisegraph::graph::generate::rmat(
        &wisegraph::graph::generate::RmatParams::standard(200, 1500, 9),
    );
    let a = partition(&g, &PartitionTable::vertex_centric());
    let b = partition(&g, &PartitionTable::dst_and_type());
    assert_eq!(a.num_tasks(), b.num_tasks());
    let sizes = |p: &wisegraph::gtask::PartitionPlan| {
        let mut s: Vec<usize> = p.tasks.iter().map(|t| t.num_edges()).collect();
        s.sort_unstable();
        s
    };
    assert_eq!(sizes(&a), sizes(&b));
}

/// Degenerate feature dimensions (width 1) flow through every model DFG.
#[test]
fn width_one_features() {
    let g = wisegraph::graph::generate::rmat(
        &wisegraph::graph::generate::RmatParams::standard(50, 300, 5)
            .with_edge_types(2),
    );
    for model in ModelKind::ALL {
        let dfg = model.layer_dfg(1, 1);
        let mut inputs: HashMap<String, Tensor> = HashMap::new();
        inputs.insert("h".into(), init::uniform_tensor(&[50, 1], -1.0, 1.0, 1));
        inputs.insert("W".into(), init::uniform_tensor(&[2, 1, 1], -1.0, 1.0, 2));
        inputs.insert("w".into(), init::uniform_tensor(&[1, 1], -1.0, 1.0, 3));
        inputs.insert("a_src".into(), init::uniform_tensor(&[1, 1], -1.0, 1.0, 4));
        inputs.insert("a_dst".into(), init::uniform_tensor(&[1, 1], -1.0, 1.0, 5));
        inputs.insert("wx".into(), init::uniform_tensor(&[1, 4], -1.0, 1.0, 6));
        inputs.insert("wh".into(), init::uniform_tensor(&[1, 4], -1.0, 1.0, 7));
        inputs.insert("b".into(), init::uniform_tensor(&[4], -1.0, 1.0, 8));
        inputs.insert("w_out".into(), init::uniform_tensor(&[1, 1], -1.0, 1.0, 9));
        inputs.insert("w_self".into(), init::uniform_tensor(&[1, 1], -1.0, 1.0, 10));
        inputs.insert("w_neigh".into(), init::uniform_tensor(&[1, 1], -1.0, 1.0, 11));
        let out = execute(&dfg, &g, &inputs)
            .unwrap_or_else(|e| panic!("{}: {e}", model.name()));
        assert!(out[0].all_finite(), "{}", model.name());
    }
}

/// Plans built on a subgraph with a missing edge type (type id never used)
/// still estimate and execute.
#[test]
fn sparse_type_usage() {
    // 4 declared types but only type 0 and 3 appear.
    let g = Graph::new(
        20,
        4,
        vec![0, 1, 2, 3, 4, 5],
        vec![1, 2, 3, 4, 5, 6],
        vec![0, 0, 3, 3, 0, 3],
    );
    let dev = DeviceSpec::a100_pcie();
    let dfg = ModelKind::Rgcn.layer_dfg(4, 4);
    let plan = ExecutionPlan::build(
        &g,
        PartitionTable::src_batch_per_type(4),
        &dfg,
        OpPartitionKind::Fused,
    );
    let est = plan.estimate(&g, &dev);
    assert!(est.time.is_finite() && est.time > 0.0);
    // Baselines too.
    let dims = LayerDims {
        f_in: 4,
        hidden: 4,
        classes: 2,
        layers: 2,
    };
    for b in Baseline::columns_for(ModelKind::Rgcn) {
        let e = b.estimate(&g, ModelKind::Rgcn, &dims, &dev);
        assert!(e.time_per_iter.is_finite());
    }
}

/// The fused kernels unroll output columns in `LANES`-wide chunks with a
/// scalar remainder loop; feature dims that are below, straddle, and
/// just-past lane multiples (1, 3, 5, 7, 17) must all stay bit-identical
/// to the interpreter — across every fusion pattern.
#[test]
fn fused_parity_at_odd_feature_dims() {
    use wisegraph::dfg::{Dfg, Dim};
    use wisegraph::graph::AttrKind;
    use wisegraph::kernels::engine::{execute_parallel_mode, ExecMode};
    use wisegraph::kernels::fused::{plan_fusion, LANES};
    use wisegraph::kernels::micro::compile;

    let g = wisegraph::graph::generate::rmat(
        &wisegraph::graph::generate::RmatParams::standard(60, 450, 31)
            .with_edge_types(3),
    );
    assert_eq!(LANES, 4, "dims below cover the lane remainder paths");
    for dim in [1usize, 3, 5, 7, 17] {
        // Hand-built gather→project→scatter exercises EdgeBatchMatmul;
        // the models cover SegmentReduce (GCN) and PerTypeBatchedMatmul
        // (RGCN) at the same widths.
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(dim)]);
        let w = d.input("w", vec![Dim::Lit(dim), Dim::Lit(dim)]);
        let src = d.edge_attr(AttrKind::SrcId);
        let dst = d.edge_attr(AttrKind::DstId);
        let hsrc = d.index(h, src);
        let proj = d.linear(hsrc, w);
        let out = d.index_add(proj, dst, Dim::Vertices);
        d.mark_output(out);

        let gcn = ModelKind::Gcn.layer_dfg(dim, dim);
        let rgcn = ModelKind::Rgcn.layer_dfg(dim, dim);
        for (name, dfg) in [("matmul", &d), ("gcn", &gcn), ("rgcn", &rgcn)] {
            let program = compile(dfg, &g).unwrap();
            assert!(
                plan_fusion(&program).num_fused() > 0,
                "{name} dim {dim}: nothing fused"
            );
            let mut globals: HashMap<String, Tensor> = HashMap::new();
            globals.insert(
                "h".into(),
                init::uniform_tensor(&[g.num_vertices(), dim], -1.0, 1.0, 41),
            );
            globals.insert(
                "w".into(),
                init::uniform_tensor(&[dim, dim], -1.0, 1.0, 42),
            );
            globals.insert(
                "W".into(),
                init::uniform_tensor(&[3, dim, dim], -1.0, 1.0, 43),
            );
            let plan = partition(&g, &PartitionTable::edge_batch(32));
            for threads in [1usize, 2, 4] {
                let a = execute_parallel_mode(
                    dfg, &g, &plan, &globals, threads, ExecMode::Interpret,
                )
                .unwrap();
                let b = execute_parallel_mode(
                    dfg, &g, &plan, &globals, threads, ExecMode::Fused,
                )
                .unwrap();
                assert_eq!(
                    a[0].data(),
                    b[0].data(),
                    "{name} dim {dim} not bit-identical at {threads} threads"
                );
            }
        }
    }
}

/// A gTask with zero edges is a legal (if degenerate) input to the fused
/// executor: it must leave the output untouched and account exactly one
/// task, zero edges, zero flops — the same as the interpreter.
#[test]
fn zero_edge_gtask_is_a_fused_noop() {
    use wisegraph::kernels::fused::{plan_fusion, run_task_fused};
    use wisegraph::kernels::micro::{compile, run_task_ws, TaskWorkspace};
    use wisegraph::obs::Class;

    let g = wisegraph::graph::generate::rmat(
        &wisegraph::graph::generate::RmatParams::standard(40, 250, 33),
    );
    let dfg = ModelKind::Gcn.layer_dfg(4, 3);
    let program = compile(&dfg, &g).unwrap();
    let fplan = plan_fusion(&program);
    assert!(fplan.num_fused() > 0);
    let mut globals: HashMap<String, Tensor> = HashMap::new();
    globals.insert("h".into(), init::uniform_tensor(&[40, 4], -1.0, 1.0, 51));
    globals.insert("w".into(), init::uniform_tensor(&[4, 3], -1.0, 1.0, 52));

    let empty: [usize; 0] = [];
    let mut a = Tensor::zeros(&[program.out_rows, program.out_width]);
    let mut b = a.clone();
    let mut tws_i = TaskWorkspace::new();
    let mut tws_f = TaskWorkspace::new();
    run_task_ws(&program, &g, &globals, &empty, &mut a, &mut tws_i);
    run_task_fused(&program, &fplan, &g, &globals, &empty, &mut b, &mut tws_f);
    assert_eq!(a.data(), b.data());
    assert!(b.data().iter().all(|&x| x == 0.0), "no edges may write output");
    let wi = tws_i.stats().only(&[Class::Work]);
    let wf = tws_f.stats().only(&[Class::Work]);
    assert_eq!(
        wisegraph::obs::counters_to_json(&wi),
        wisegraph::obs::counters_to_json(&wf)
    );
    assert_eq!(wi.count(wisegraph::obs::keys::KERNEL_TASKS), 1);
    assert_eq!(wi.count(wisegraph::obs::keys::KERNEL_EDGES), 0);
}

/// Optimizer output is deterministic: two searches on the same input give
/// identical plans and times.
#[test]
fn optimizer_is_deterministic() {
    let g = wisegraph::graph::generate::rmat(
        &wisegraph::graph::generate::RmatParams::standard(800, 9000, 77)
            .with_edge_types(3),
    );
    let dims = LayerDims::paper_single(32, 8);
    let a = WiseGraph::new(DeviceSpec::a100_pcie()).optimize(&g, ModelKind::Rgcn, &dims);
    let b = WiseGraph::new(DeviceSpec::a100_pcie()).optimize(&g, ModelKind::Rgcn, &dims);
    assert_eq!(a.per_layer[0].table, b.per_layer[0].table);
    assert_eq!(a.per_layer[0].op_partition, b.per_layer[0].op_partition);
    assert!((a.time_per_iter - b.time_per_iter).abs() < 1e-12);
}
