//! Determinism harness for the causal trace and critical-path report.
//!
//! The cluster stamps every collective message with deterministic
//! `(device, round, seq)` endpoint ids and records per-device phase
//! timelines whose logical costs are pure functions of (graph, plan,
//! placement, device count). This suite pins that contract the same way
//! `obs_determinism.rs` pins the counter layer:
//!
//! * the merged causal edge list (`CausalLog::to_json`) and the
//!   Work-class attribution report (`AttributionReport::work_json`) are
//!   byte-identical across repeated runs AND across per-device engine
//!   thread counts 1/2/4, at each of 2/4/8 devices — the wall-clock
//!   overlay may differ, the gateable view may not;
//! * folding a captured span stream back into device timelines
//!   (`timelines_from_trace`) reproduces the logical view of the
//!   timelines the cluster recorded directly, and analyzing the folded
//!   timelines yields the same Work-class report — the trace alone is
//!   enough to re-derive the attribution.

use std::collections::HashMap;
use wisegraph::graph::generate::{rmat, RmatParams};
use wisegraph::graph::Graph;
use wisegraph::gtask::{partition, PartitionTable};
use wisegraph::kernels::cluster::compatible_placements;
use wisegraph::kernels::micro::compile;
use wisegraph::kernels::ClusterEngine;
use wisegraph::models::ModelKind;
use wisegraph::obs::critical::{analyze, timelines_from_trace};
use wisegraph::obs::{capture, DeviceTimeline};
use wisegraph::tensor::{init, Tensor};

/// Device counts the stability sweep runs at.
const DEVICES: [usize; 3] = [2, 4, 8];
/// Per-device engine worker threads the Work view must be invariant to.
const THREAD_SWEEP: [usize; 3] = [1, 2, 4];
const MODELS: [ModelKind; 4] = [
    ModelKind::Gcn,
    ModelKind::Rgcn,
    ModelKind::Gat,
    ModelKind::Sage,
];

fn globals_for(g: &Graph, fi: usize, fo: usize) -> HashMap<String, Tensor> {
    let mut m = HashMap::new();
    m.insert(
        "h".to_string(),
        init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 61),
    );
    m.insert(
        "W".to_string(),
        init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, 62),
    );
    m.insert("w".to_string(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, 63));
    m.insert(
        "w_self".to_string(),
        init::uniform_tensor(&[fi, fo], -1.0, 1.0, 64),
    );
    m.insert(
        "w_neigh".to_string(),
        init::uniform_tensor(&[fi, fo], -1.0, 1.0, 65),
    );
    m.insert(
        "a_src".to_string(),
        init::uniform_tensor(&[fo, 1], -1.0, 1.0, 66),
    );
    m.insert(
        "a_dst".to_string(),
        init::uniform_tensor(&[fo, 1], -1.0, 1.0, 67),
    );
    m
}

/// Every model × compatible placement × {2,4,8} devices: the causal edge
/// list and the Work-class attribution report are byte-identical across
/// a repeated run and across the 1/2/4 per-device thread sweep.
#[test]
fn causal_edges_and_work_report_are_bit_stable() {
    let (fi, fo) = (6, 5);
    let g = rmat(&RmatParams::standard(140, 1100, 71).with_edge_types(3));
    let globals = globals_for(&g, fi, fo);
    let plan = partition(&g, &PartitionTable::vertex_centric());
    for kind in MODELS {
        let dfg = kind.layer_dfg(fi, fo);
        let program = compile(&dfg, &g).unwrap();
        for placement in compatible_placements(&program, &g, &globals) {
            for devices in DEVICES {
                let ctx = format!(
                    "{} × {} × {devices} devices",
                    kind.name(),
                    placement.name()
                );
                let mut edges_ref: Option<String> = None;
                let mut work_ref: Option<String> = None;
                // Thread sweep plus one repeat of the middle count: the
                // repeat pins run-to-run identity, the sweep pins
                // thread-count invariance.
                for threads in [1usize, 2, 2, 4] {
                    assert!(THREAD_SWEEP.contains(&threads));
                    let cluster = ClusterEngine::new(devices, threads);
                    let run = cluster
                        .execute_program(&program, &dfg, &g, &plan, &globals, placement)
                        .unwrap_or_else(|e| panic!("{ctx}: {e}"));
                    let edges = run.causal.to_json();
                    let work = run
                        .attribution()
                        .unwrap_or_else(|e| panic!("{ctx}: attribution: {e}"))
                        .work_json();
                    match &edges_ref {
                        None => edges_ref = Some(edges),
                        Some(first) => assert_eq!(
                            first, &edges,
                            "{ctx}: causal edge list varies ({threads} threads)"
                        ),
                    }
                    match &work_ref {
                        None => work_ref = Some(work),
                        Some(first) => assert_eq!(
                            first, &work,
                            "{ctx}: Work-class report varies ({threads} threads)"
                        ),
                    }
                }
            }
        }
    }
}

/// Folding a captured span stream reproduces the directly recorded
/// timelines (logical view) and the same Work-class report: the Chrome
/// trace is not a lossy rendering of the attribution inputs.
#[test]
fn trace_folding_reproduces_the_recorded_timelines() {
    let (fi, fo) = (6, 5);
    let g = rmat(&RmatParams::standard(140, 1100, 71).with_edge_types(3));
    let globals = globals_for(&g, fi, fo);
    let plan = partition(&g, &PartitionTable::vertex_centric());
    for kind in [ModelKind::Gcn, ModelKind::Rgcn] {
        let dfg = kind.layer_dfg(fi, fo);
        let program = compile(&dfg, &g).unwrap();
        for placement in compatible_placements(&program, &g, &globals) {
            let ctx = format!("{} × {}", kind.name(), placement.name());
            let (run, trace) = capture(|| {
                let cluster = ClusterEngine::new(4, 2);
                cluster
                    .execute_program(&program, &dfg, &g, &plan, &globals, placement)
                    .unwrap_or_else(|e| panic!("{ctx}: {e}"))
            });
            let mut folded = timelines_from_trace(&trace)
                .unwrap_or_else(|e| panic!("{ctx}: fold: {e}"));
            folded.sort_by_key(|tl| tl.device);
            let folded: Vec<DeviceTimeline> =
                folded.iter().map(DeviceTimeline::logical).collect();
            let direct: Vec<DeviceTimeline> =
                run.timelines.iter().map(DeviceTimeline::logical).collect();
            assert_eq!(folded, direct, "{ctx}: folded timelines diverge");
            let from_trace = analyze(&folded, &run.causal)
                .unwrap_or_else(|e| panic!("{ctx}: analyze folded: {e}"));
            let from_run = run
                .attribution()
                .unwrap_or_else(|e| panic!("{ctx}: attribution: {e}"));
            assert_eq!(
                from_trace.work_json(),
                from_run.work_json(),
                "{ctx}: trace-derived report diverges"
            );
        }
    }
}
