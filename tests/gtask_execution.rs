//! The correctness contract of gTask-based execution: executing a DFG one
//! gTask at a time and summing the reduction outputs reproduces the
//! whole-graph result, for every partition plan.

use std::collections::HashMap;
use wisegraph::dfg::interp::{execute, execute_on_edges};
use wisegraph::graph::generate::{rmat, RmatParams};
use wisegraph::gtask::{partition, PartitionTable};
use wisegraph::models::ModelKind;
use wisegraph::tensor::{init, ops, Tensor};

fn inputs_for(
    g: &wisegraph::graph::Graph,
    fi: usize,
    fo: usize,
) -> HashMap<String, Tensor> {
    let mut inputs = HashMap::new();
    inputs.insert(
        "h".into(),
        init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 11),
    );
    inputs.insert(
        "W".into(),
        init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, 12),
    );
    inputs
}

/// RGCN output is additive over any edge partition: Σ_task out_task == out.
#[test]
fn rgcn_is_additive_over_every_plan() {
    let g = rmat(&RmatParams::standard(80, 700, 21).with_edge_types(3));
    let (fi, fo) = (5, 4);
    let dfg = ModelKind::Rgcn.layer_dfg(fi, fo);
    let inputs = inputs_for(&g, fi, fo);
    let whole = &execute(&dfg, &g, &inputs).unwrap()[0];
    for table in [
        PartitionTable::vertex_centric(),
        PartitionTable::edge_centric(),
        PartitionTable::src_batch_per_type(8),
        PartitionTable::two_d(4),
        PartitionTable::dst_batch_min_degree(8),
        PartitionTable::edge_batch(33),
    ] {
        let plan = partition(&g, &table);
        let mut acc = Tensor::zeros(whole.dims());
        for task in &plan.tasks {
            let part = &execute_on_edges(&dfg, &g, &inputs, &task.edges).unwrap()[0];
            acc = ops::add(&acc, part);
        }
        assert!(
            whole.allclose(&acc, 1e-3),
            "{table}: per-task sum diverges by {}",
            whole.max_abs_diff(&acc)
        );
    }
}

/// The same contract holds for the *transformed* RGCN DFG (unique value
/// extraction + indexing swapping are applied per task scope).
#[test]
fn transformed_rgcn_is_additive() {
    use wisegraph::dfg::{transform, Binding};
    let g = rmat(&RmatParams::standard(50, 400, 23).with_edge_types(4));
    let (fi, fo) = (4, 3);
    let dfg = ModelKind::Rgcn.layer_dfg(fi, fo);
    let binding = Binding::from_graph(&g);
    let (opt, _) = transform::optimize(&dfg, &binding);
    let inputs = inputs_for(&g, fi, fo);
    let whole = &execute(&dfg, &g, &inputs).unwrap()[0];
    let plan = partition(&g, &PartitionTable::src_batch_per_type(8));
    let mut acc = Tensor::zeros(whole.dims());
    for task in &plan.tasks {
        let part = &execute_on_edges(&opt, &g, &inputs, &task.edges).unwrap()[0];
        acc = ops::add(&acc, part);
    }
    assert!(
        whole.allclose(&acc, 1e-3),
        "transformed per-task sum diverges by {}",
        whole.max_abs_diff(&acc)
    );
}

/// GAT's per-destination softmax is NOT edge-additive — but it *is* exact
/// for plans whose tasks hold entire destinations (uniq(dst-id)=1 tasks
/// contain all of a destination's in-edges), which is why GAT-class plans
/// restrict dst-id.
#[test]
fn gat_requires_destination_complete_tasks() {
    let g = rmat(&RmatParams::standard(60, 500, 25));
    let (fi, fo) = (4, 3);
    let dfg = ModelKind::Gat.layer_dfg(fi, fo);
    let mut inputs = HashMap::new();
    inputs.insert(
        "h".into(),
        init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 31),
    );
    inputs.insert("w".into(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, 32));
    inputs.insert(
        "a_src".into(),
        init::uniform_tensor(&[fo, 1], -1.0, 1.0, 33),
    );
    inputs.insert(
        "a_dst".into(),
        init::uniform_tensor(&[fo, 1], -1.0, 1.0, 34),
    );
    let whole = &execute(&dfg, &g, &inputs).unwrap()[0];

    // Destination-complete plan: exact.
    let plan = partition(&g, &PartitionTable::vertex_centric());
    let mut acc = Tensor::zeros(whole.dims());
    for task in &plan.tasks {
        let part = &execute_on_edges(&dfg, &g, &inputs, &task.edges).unwrap()[0];
        acc = ops::add(&acc, part);
    }
    assert!(
        whole.allclose(&acc, 1e-3),
        "dst-complete tasks must be exact: diff {}",
        whole.max_abs_diff(&acc)
    );

    // Destination-splitting plan: softmax normalization breaks.
    let plan = partition(&g, &PartitionTable::edge_batch(7));
    let mut acc = Tensor::zeros(whole.dims());
    for task in &plan.tasks {
        let part = &execute_on_edges(&dfg, &g, &inputs, &task.edges).unwrap()[0];
        acc = ops::add(&acc, part);
    }
    assert!(
        !whole.allclose(&acc, 1e-3),
        "splitting destinations must change per-destination softmax results"
    );
}
