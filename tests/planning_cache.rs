//! Planning-cache equivalence harness (DESIGN.md §11).
//!
//! The content-addressed `PlanCache` may change *when* planning work
//! happens — never *what* executes. These tests pin that contract:
//!
//! * a warm-cache run (partition, transformed DFG, and kernel program all
//!   decoded from stored bytes) produces bit-identical outputs and
//!   bit-identical `Class::Work` counters to an uncached run, for every
//!   model and for 1/2/4 engine threads;
//! * a delta through `DynamicPlanner` invalidates exactly the stale
//!   live-set entries, reseeds the repaired plan, and the warm execution
//!   over the new live set is bit-identical to a from-scratch partition
//!   of the same edges;
//! * warm lookups are hits (the cache actually works) and everything the
//!   cache reports is `Resource`-class, invisible to the Work view.

use std::collections::HashMap;
use wisegraph::cache::PlanCache;
use wisegraph::core::dynamic::DynamicPlanner;
use wisegraph::dfg::{transform, Binding};
use wisegraph::graph::generate::{rmat, RmatParams};
use wisegraph::graph::Graph;
use wisegraph::gtask::{partition_edges, GraphDelta, PartitionTable};
use wisegraph::kernels::engine::Engine;
use wisegraph::kernels::micro::compile;
use wisegraph::models::ModelKind;
use wisegraph::obs::{counters_to_json, Class, Counters};
use wisegraph::tensor::{init, Tensor};

const THREADS: [usize; 3] = [1, 2, 4];
const DIMS: (usize, usize) = (8, 6);

fn graph() -> Graph {
    rmat(&RmatParams::standard(200, 1600, 23).with_edge_types(4))
}

fn globals_for(g: &Graph, fi: usize, fo: usize) -> HashMap<String, Tensor> {
    let mut m = HashMap::new();
    m.insert(
        "h".to_string(),
        init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 11),
    );
    m.insert(
        "W".to_string(),
        init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, 12),
    );
    m.insert("w".to_string(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, 13));
    m.insert(
        "w_self".to_string(),
        init::uniform_tensor(&[fi, fo], -1.0, 1.0, 14),
    );
    m.insert(
        "w_neigh".to_string(),
        init::uniform_tensor(&[fi, fo], -1.0, 1.0, 15),
    );
    m.insert(
        "a_src".to_string(),
        init::uniform_tensor(&[fo, 1], -1.0, 1.0, 16),
    );
    m.insert(
        "a_dst".to_string(),
        init::uniform_tensor(&[fo, 1], -1.0, 1.0, 17),
    );
    m
}

fn work_json(c: &Counters) -> String {
    counters_to_json(&c.only(&[Class::Work]))
}

/// Warm-cache execution is bit-identical — outputs and Work counters —
/// to the uncached pipeline, for every model at 1/2/4 threads.
#[test]
fn warm_cache_runs_are_bit_identical_to_cold() {
    let g = graph();
    let (fi, fo) = DIMS;
    let globals = globals_for(&g, fi, fo);
    let table = PartitionTable::vertex_centric();
    for model in [
        ModelKind::Gcn,
        ModelKind::Rgcn,
        ModelKind::Gat,
        ModelKind::Sage,
    ] {
        let base = model.layer_dfg(fi, fo);

        // Prime one cache so the measured run below is fully warm.
        let mut cache = PlanCache::new();
        let _ = cache.partition_cached(&g, &table);
        let pre_dfg = cache.transform_cached(&g, &base);
        let _ = cache.compile_cached(&g, &pre_dfg).expect("models compile");
        let fills = cache.misses();

        for threads in THREADS {
            // Uncached reference pipeline.
            let binding = Binding::from_graph(&g);
            let (dfg, _) = transform::optimize(&base, &binding);
            let program = compile(&dfg, &g).expect("models compile");
            let plan = wisegraph::gtask::partition(&g, &table);
            let engine = Engine::new(threads);
            let cold = engine
                .execute_program(&program, &dfg, &g, &plan, &globals)
                .expect("cold run executes");
            let cold_work = work_json(&engine.stats());

            // Warm pipeline: every artifact decoded from the store.
            let w_plan = cache.partition_cached(&g, &table);
            let w_dfg = cache.transform_cached(&g, &base);
            let w_program = cache.compile_cached(&g, &w_dfg).expect("warm compile");
            let w_engine = Engine::new(threads);
            let warm = w_engine
                .execute_program(&w_program, &w_dfg, &g, &w_plan, &globals)
                .expect("warm run executes");
            let warm_work = work_json(&w_engine.stats());

            assert_eq!(cold.len(), warm.len(), "{model:?} × {threads}");
            for (a, b) in cold.iter().zip(&warm) {
                assert_eq!(
                    a.data(),
                    b.data(),
                    "{model:?} × {threads} threads: warm output differs"
                );
            }
            assert_eq!(
                cold_work, warm_work,
                "{model:?} × {threads} threads: Work counters differ"
            );
        }
        // Every post-priming lookup was a hit: 3 stages × 3 thread counts.
        assert_eq!(cache.misses(), fills, "{model:?}: warm lookups recomputed");
        assert_eq!(cache.hits(), 9, "{model:?}: expected 9 warm hits");
    }
}

/// A delta invalidates the stale live-set entries, the repair verifies
/// clean, and warm execution over the repaired plan is bit-identical to
/// executing a from-scratch partition of the same live edges.
#[test]
fn delta_invalidates_and_repaired_execution_matches_scratch() {
    let g = graph();
    let (fi, fo) = DIMS;
    let globals = globals_for(&g, fi, fo);
    let base = ModelKind::Gcn.layer_dfg(fi, fo);
    let table = PartitionTable::vertex_centric();

    let mut dp = DynamicPlanner::new(&g, table.clone());
    let engine = Engine::new(2);
    let _ = dp.execute(&g, &base, &globals, &engine).expect("initial run");

    let delta = GraphDelta {
        insert: vec![],
        delete: (0..g.num_edges()).filter(|e| e % 5 == 0).collect(),
    };
    let out = dp.apply(&g, &delta);
    assert!(out.is_clean(), "repair diverged: {:#?}", out.diagnostics);
    assert!(!out.rebuilt);
    assert!(
        out.invalidated >= 1,
        "stale live-set entries must be dropped"
    );

    for threads in THREADS {
        let eng = Engine::new(threads);
        let warm = dp.execute(&g, &base, &globals, &eng).expect("warm run");
        let warm_work = work_json(&eng.stats());

        // From-scratch reference over the same live set.
        let live = dp.live_edges();
        let plan = partition_edges(&g, &table, &live);
        let binding = Binding::from_graph(&g);
        let (dfg, _) = transform::optimize(&base, &binding);
        let program = compile(&dfg, &g).expect("compiles");
        let reng = Engine::new(threads);
        let scratch = reng
            .execute_program(&program, &dfg, &g, &plan, &globals)
            .expect("scratch run");
        let scratch_work = work_json(&reng.stats());

        assert_eq!(warm.len(), scratch.len());
        for (a, b) in warm.iter().zip(&scratch) {
            assert_eq!(
                a.data(),
                b.data(),
                "{threads} threads: repaired-plan output diverges from scratch"
            );
        }
        assert_eq!(
            warm_work, scratch_work,
            "{threads} threads: Work counters diverge"
        );
    }
}

/// Everything the cache reports is Resource-class: the Work view of a
/// counter registry is unchanged by recording cache counters into it.
#[test]
fn cache_counters_never_touch_the_work_view() {
    let g = graph();
    let mut cache = PlanCache::new();
    let table = PartitionTable::edge_batch(32);
    let _ = cache.partition_cached(&g, &table);
    let _ = cache.partition_cached(&g, &table);
    let mut c = Counters::new();
    let before = work_json(&c);
    cache.record_counters(&mut c);
    assert_eq!(work_json(&c), before, "cache counters leaked into Work");
    assert!(!c.is_empty(), "cache counters were recorded at all");
}
