//! Golden-fixture tests for the greedy partitioner (paper §4.2, Figure 7).
//!
//! Each test pins the partitioner's output on the paper's example graph to a
//! hand-computed plan: the exact task boundaries AND the exact edge order
//! inside each task, not just the invariants. The restriction tables are the
//! special cases of §4 — `uniq(dst-id)=1` must reproduce the vertex-centric
//! plan, `uniq(edge-id)=1` the edge-centric plan, `uniq(dst-id)=k &
//! uniq(src-id)=k` the 2-D plan, `uniq(src-id)=min` a source-sorted single
//! task, and the empty table the identity plan.
//!
//! The fixture graph (Figure 7a's heterogeneous graph):
//!
//! ```text
//! edge id :  0  1  2  3  4  5  6  7  8  9 10
//! src     :  0  1  0  1  2  2  3  4  3  4  0
//! dst     :  0  0  1  1  1  2  2  2  3  3  4
//! type    :  a  a  a  a  b  a  b  b  b  b  a
//! ```

use wisegraph::graph::{AttrKind, Graph};
use wisegraph::gtask::{partition, PartitionPlan, PartitionTable};

fn paper_graph() -> Graph {
    Graph::new(
        5,
        2,
        vec![0, 1, 0, 1, 2, 2, 3, 4, 3, 4, 0],
        vec![0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 4],
        vec![0, 0, 0, 0, 1, 0, 1, 1, 1, 1, 0],
    )
}

/// The plan's tasks as bare edge-id lists, in plan order.
fn edge_lists(plan: &PartitionPlan) -> Vec<Vec<usize>> {
    plan.tasks.iter().map(|t| t.edges.clone()).collect()
}

#[test]
fn uniq_dst_1_reproduces_the_vertex_centric_plan() {
    // Sort key [dst-id, edge-id]; the scan cuts at every destination
    // change. One task per destination, edges in id order within each.
    let plan = partition(&paper_graph(), &PartitionTable::vertex_centric());
    assert_eq!(
        edge_lists(&plan),
        vec![vec![0, 1], vec![2, 3, 4], vec![5, 6, 7], vec![8, 9], vec![10]]
    );
    for t in &plan.tasks {
        assert_eq!(t.uniq[&AttrKind::DstId], 1);
    }
}

#[test]
fn uniq_edge_1_reproduces_the_edge_centric_plan() {
    // Every edge id is unique, so the bound cuts after every edge: the
    // plan degenerates to one singleton task per edge, in id order.
    let plan = partition(&paper_graph(), &PartitionTable::edge_centric());
    let expected: Vec<Vec<usize>> = (0..11).map(|e| vec![e]).collect();
    assert_eq!(edge_lists(&plan), expected);
    for t in &plan.tasks {
        assert_eq!(t.uniq[&AttrKind::EdgeId], 1);
    }
}

#[test]
fn uniq_src_2_and_dst_2_reproduce_the_2d_plan() {
    // Sort key [src-id, dst-id, edge-id] (src-id precedes dst-id in the
    // canonical attribute order). Scan order is
    //   e0(0,0) e2(0,1) e10(0,4) e1(1,0) e3(1,1) e4(2,1) e5(2,2)
    //   e6(3,2) e8(3,3) e7(4,2) e9(4,3)
    // and the ≤2-sources × ≤2-destinations bound cuts at e10 (3rd dst of
    // src 0), e3 (3rd dst of {0,1} block), and e6 (3rd src of the block).
    let plan = partition(&paper_graph(), &PartitionTable::two_d(2));
    assert_eq!(
        edge_lists(&plan),
        vec![vec![0, 2], vec![10, 1], vec![3, 4, 5], vec![6, 8, 7, 9]]
    );
    for t in &plan.tasks {
        assert!(t.uniq[&AttrKind::SrcId] <= 2);
        assert!(t.uniq[&AttrKind::DstId] <= 2);
    }
}

#[test]
fn uniq_src_min_sorts_by_source_without_cutting() {
    // `min` drives the sort but never cuts, so the whole graph stays one
    // task with edges grouped by source — the layout a gather-friendly
    // kernel wants — and the achieved uniq(src-id) is recorded.
    let g = paper_graph();
    let plan = partition(&g, &PartitionTable::new().min(AttrKind::SrcId));
    assert_eq!(
        edge_lists(&plan),
        vec![vec![0, 2, 10, 1, 3, 4, 5, 6, 8, 7, 9]]
    );
    assert_eq!(plan.tasks[0].uniq[&AttrKind::SrcId], 5);
}

#[test]
fn unrestricted_table_is_the_identity_plan() {
    // No restricted attribute → no sort, no cut: one task, original order.
    let g = paper_graph();
    let plan = partition(&g, &PartitionTable::new());
    assert_eq!(edge_lists(&plan), vec![(0..11).collect::<Vec<usize>>()]);
    assert!(plan.tasks[0].uniq.is_empty());
}

#[test]
fn uniq_dst_and_type_1_reproduces_figure7d() {
    // Destinations 1 and 2 mix types a and b, so each splits in two; the
    // other destinations are single-type. Equal bounds tie-break on the
    // canonical attribute order, so the sort key is [dst-id, edge-type]
    // and the per-destination runs split by type in place.
    let plan = partition(&paper_graph(), &PartitionTable::dst_and_type());
    assert_eq!(
        edge_lists(&plan),
        vec![
            vec![0, 1],
            vec![2, 3],
            vec![4],
            vec![5],
            vec![6, 7],
            vec![8, 9],
            vec![10]
        ]
    );
}
