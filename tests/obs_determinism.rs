//! The observability determinism contract, end to end: counter snapshots
//! from real executions must be *bit-identical* — across consecutive runs
//! at a fixed thread count (`Work` + `Resource`), and across 1/2/4 engine
//! threads for the `Work` class, which by definition describes the
//! computation rather than how it was scheduled. The comparisons go
//! through the serialized metrics JSON, so they also pin the exporter's
//! byte stability (key order, number formatting).

use std::collections::HashMap;
use wisegraph::graph::generate::{rmat, RmatParams};
use wisegraph::graph::Graph;
use wisegraph::gtask::{partition, PartitionTable};
use wisegraph::kernels::engine::Engine;
use wisegraph::models::ModelKind;
use wisegraph::obs::{counters_from_json, counters_to_json, Class, Counters};
use wisegraph::tensor::{init, Tensor};

fn graph() -> Graph {
    rmat(&RmatParams::standard(200, 1600, 17).with_edge_types(3))
}

fn globals(g: &Graph, fi: usize, fo: usize) -> HashMap<String, Tensor> {
    let mut m = HashMap::new();
    m.insert(
        "h".to_string(),
        init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 1),
    );
    m.insert(
        "W".to_string(),
        init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, 2),
    );
    m.insert("w".to_string(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, 3));
    m
}

/// One profiling pass: GCN and RGCN under two tables, all counters merged
/// under `model.table.` prefixes — the same shape `wisegraph-prof` emits.
fn run_once(threads: usize) -> Counters {
    let g = graph();
    let (fi, fo) = (6, 4);
    let inputs = globals(&g, fi, fo);
    let mut all = Counters::new();
    for (model, slug) in [(ModelKind::Gcn, "gcn"), (ModelKind::Rgcn, "rgcn")] {
        let dfg = model.layer_dfg(fi, fo);
        for (tname, table) in [
            ("vertex_centric", PartitionTable::vertex_centric()),
            ("edge_batch_32", PartitionTable::edge_batch(32)),
        ] {
            let plan = partition(&g, &table);
            let mut combo = Counters::new();
            plan.record_counters(&mut combo);
            let engine = Engine::new(threads);
            engine
                .execute(&dfg, &g, &plan, &inputs)
                .expect("combination executes");
            combo.merge(&engine.stats());
            all.merge_prefixed(&format!("{slug}.{tname}"), &combo);
        }
    }
    all
}

#[test]
fn consecutive_runs_are_bit_identical() {
    let a = counters_to_json(&run_once(2));
    let b = counters_to_json(&run_once(2));
    assert_eq!(a, b, "counter snapshots must not vary run to run");
    // And the snapshot survives a serialization round trip byte-for-byte.
    let back = counters_from_json(&a).expect("valid metrics JSON");
    assert_eq!(counters_to_json(&back), a);
}

#[test]
fn work_counters_are_invariant_across_thread_counts() {
    let views: Vec<Counters> = [1usize, 2, 4].iter().map(|&t| run_once(t)).collect();
    let work: Vec<String> = views
        .iter()
        .map(|c| counters_to_json(&c.only(&[Class::Work])))
        .collect();
    assert_eq!(work[0], work[1], "Work counters differ between 1 and 2 threads");
    assert_eq!(work[0], work[2], "Work counters differ between 1 and 4 threads");
    // The non-Work remainder is exactly the scheduling-dependent part:
    // engine.threads (and with it the pool shape) legitimately varies.
    assert_eq!(
        views[0].count("gcn.vertex_centric.engine.threads"),
        1,
        "Resource counters describe the actual schedule"
    );
    assert_eq!(views[2].count("gcn.vertex_centric.engine.threads"), 4);
}

#[test]
fn snapshots_describe_real_work() {
    // Guard against the vacuous pass: the snapshots compared above must
    // actually contain kernel/partition work, not empty registries.
    let c = run_once(2);
    assert!(c.count("gcn.vertex_centric.kernel.edges") > 0);
    assert!(c.count("gcn.vertex_centric.kernel.flops") > 0);
    assert!(c.count("rgcn.edge_batch_32.partition.tasks") > 0);
    assert!(
        c.gauge("gcn.vertex_centric.partition.dedup_ratio.dst-id")
            .is_some(),
        "dedup ratio gauges recorded"
    );
}
