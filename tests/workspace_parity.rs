//! Workspace-path / allocating-path parity (bit-identical).
//!
//! The buffer pool only changes where memory comes from, never what is
//! computed: pooled buffers are zero-filled on checkout and the allocating
//! `ops` wrappers delegate to the same `_into` kernels the workspace path
//! uses. These tests pin that invariant end to end — for every model the
//! engine can run, the persistent-workspace executor must produce exactly
//! the bytes of the allocating executor at the same thread count.
//!
//! Parity is asserted per thread count only: changing the thread count
//! changes the reduction chunking, and float addition is not associative.

use std::collections::HashMap;
use wisegraph::graph::generate::{rmat, RmatParams};
use wisegraph::graph::Graph;
use wisegraph::gtask::{partition, PartitionTable};
use wisegraph::kernels::engine::{execute_parallel, execute_parallel_alloc, Engine};
use wisegraph::models::ModelKind;
use wisegraph::tensor::{init, Tensor};

fn globals_for(g: &Graph, fi: usize, fo: usize) -> HashMap<String, Tensor> {
    let mut m = HashMap::new();
    m.insert(
        "h".to_string(),
        init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 11),
    );
    m.insert(
        "W".to_string(),
        init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, 12),
    );
    m.insert("w".to_string(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, 13));
    m.insert(
        "w_self".to_string(),
        init::uniform_tensor(&[fi, fo], -1.0, 1.0, 14),
    );
    m.insert(
        "w_neigh".to_string(),
        init::uniform_tensor(&[fi, fo], -1.0, 1.0, 15),
    );
    m.insert(
        "a_src".to_string(),
        init::uniform_tensor(&[fo, 1], -1.0, 1.0, 16),
    );
    m.insert(
        "a_dst".to_string(),
        init::uniform_tensor(&[fo, 1], -1.0, 1.0, 17),
    );
    m
}

/// The per-model seeded workload: graph + partition table the model's
/// compiled program accepts (GAT's per-destination softmax needs a
/// destination-complete plan).
fn workload(kind: ModelKind) -> (Graph, PartitionTable) {
    match kind {
        ModelKind::Rgcn => (
            rmat(&RmatParams::standard(120, 900, 61).with_edge_types(3)),
            PartitionTable::src_batch_per_type(8),
        ),
        ModelKind::Gat => (
            rmat(&RmatParams::standard(100, 800, 63)),
            PartitionTable::vertex_centric(),
        ),
        ModelKind::Sage => (
            rmat(&RmatParams::standard(110, 850, 65)),
            PartitionTable::edge_batch(32),
        ),
        ModelKind::Gcn => (
            rmat(&RmatParams::standard(130, 1000, 67)),
            PartitionTable::two_d(4),
        ),
        ModelKind::SageLstm => unreachable!("LSTM order is not task-decomposable"),
    }
}

fn assert_parity(kind: ModelKind) {
    let (fi, fo) = (6, 5);
    let (g, table) = workload(kind);
    let dfg = kind.layer_dfg(fi, fo);
    let globals = globals_for(&g, fi, fo);
    let plan = partition(&g, &table);
    for threads in [1usize, 2, 4] {
        let alloc = execute_parallel_alloc(&dfg, &g, &plan, &globals, threads)
            .unwrap_or_else(|e| panic!("{} alloc path: {e}", kind.name()));
        let pooled = execute_parallel(&dfg, &g, &plan, &globals, threads)
            .unwrap_or_else(|e| panic!("{} workspace path: {e}", kind.name()));
        assert_eq!(alloc.len(), pooled.len(), "{}", kind.name());
        for (a, p) in alloc.iter().zip(pooled.iter()) {
            assert_eq!(a.dims(), p.dims(), "{}", kind.name());
            assert_eq!(
                a.data(),
                p.data(),
                "{} not bit-identical at {threads} threads",
                kind.name()
            );
        }
    }
}

#[test]
fn gcn_workspace_path_is_bit_identical() {
    assert_parity(ModelKind::Gcn);
}

#[test]
fn rgcn_workspace_path_is_bit_identical() {
    assert_parity(ModelKind::Rgcn);
}

#[test]
fn gat_workspace_path_is_bit_identical() {
    assert_parity(ModelKind::Gat);
}

#[test]
fn sage_workspace_path_is_bit_identical() {
    assert_parity(ModelKind::Sage);
}

#[test]
fn warm_engine_stays_bit_identical() {
    // A warm pool (second call onward) must still match the allocating
    // path exactly — reuse may never leak state between calls.
    let (fi, fo) = (6, 5);
    let (g, table) = workload(ModelKind::Rgcn);
    let dfg = ModelKind::Rgcn.layer_dfg(fi, fo);
    let globals = globals_for(&g, fi, fo);
    let plan = partition(&g, &table);
    let engine = Engine::new(3);
    let alloc = execute_parallel_alloc(&dfg, &g, &plan, &globals, 3).unwrap();
    for call in 0..3 {
        let pooled = engine.execute(&dfg, &g, &plan, &globals).unwrap();
        assert_eq!(alloc[0].data(), pooled[0].data(), "call {call}");
    }
}
