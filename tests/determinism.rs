//! Determinism guarantees: every randomized component of the repro is
//! seeded, and the same seed must give bit-identical results — across two
//! consecutive runs in one process, and when the same work is computed
//! concurrently from many threads. Reproducibility of the paper's tables
//! and figures depends on this.
//!
//! "Bit-identical" is literal: floating-point outputs are compared via
//! `f32::to_bits`, not with a tolerance.

use wisegraph::graph::generate::{labeled_graph, rmat, LabeledParams, RmatParams};
use wisegraph::graph::sample::{neighbor_sample, SampleConfig};
use wisegraph::graph::{Csr, Graph};
use wisegraph::gtask::{partition, PartitionPlan, PartitionTable};
use wisegraph::tensor::init;

fn graph_fingerprint(g: &Graph) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    (g.src().to_vec(), g.dst().to_vec(), g.etype().to_vec())
}

fn plan_fingerprint(p: &PartitionPlan) -> Vec<(Vec<usize>, Vec<usize>)> {
    p.tasks
        .iter()
        .map(|t| (t.edges.clone(), t.uniq.values().copied().collect()))
        .collect()
}

#[test]
fn rmat_is_bit_identical_across_runs() {
    let params = RmatParams::standard(2000, 16_000, 42).with_edge_types(4);
    let a = rmat(&params);
    let b = rmat(&params);
    assert_eq!(graph_fingerprint(&a), graph_fingerprint(&b));
    // And a different seed actually changes the stream.
    let c = rmat(&RmatParams::standard(2000, 16_000, 43).with_edge_types(4));
    assert_ne!(graph_fingerprint(&a), graph_fingerprint(&c));
}

#[test]
fn labeled_graph_is_bit_identical_across_runs() {
    let params = LabeledParams {
        num_vertices: 500,
        seed: 7,
        ..LabeledParams::default()
    };
    let a = labeled_graph(&params);
    let b = labeled_graph(&params);
    assert_eq!(graph_fingerprint(&a.graph), graph_fingerprint(&b.graph));
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.train_idx, b.train_idx);
    assert_eq!(a.test_idx, b.test_idx);
    let bits = |f: &[f32]| f.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
    assert_eq!(bits(&a.features), bits(&b.features));
}

#[test]
fn neighbor_sampling_is_bit_identical_across_runs() {
    let g = rmat(&RmatParams::standard(3000, 30_000, 9));
    let csr = Csr::in_of(&g);
    let cfg = SampleConfig {
        num_seeds: 64,
        fanouts: vec![10, 5],
        seed: 11,
    };
    let a = neighbor_sample(&g, &csr, &cfg);
    let b = neighbor_sample(&g, &csr, &cfg);
    assert_eq!(a.seeds, b.seeds);
    assert_eq!(a.vertex_map, b.vertex_map);
    assert_eq!(graph_fingerprint(&a.graph), graph_fingerprint(&b.graph));
}

#[test]
fn tensor_init_is_bit_identical_across_runs() {
    let a = init::uniform_tensor(&[128, 64], -1.0, 1.0, 3);
    let b = init::uniform_tensor(&[128, 64], -1.0, 1.0, 3);
    let bits = |t: &wisegraph::tensor::Tensor| {
        t.data().iter().map(|x| x.to_bits()).collect::<Vec<u32>>()
    };
    assert_eq!(bits(&a), bits(&b));
    assert_ne!(bits(&a), bits(&init::uniform_tensor(&[128, 64], -1.0, 1.0, 4)));
}

#[test]
fn partition_plans_are_identical_across_runs() {
    let g = rmat(&RmatParams::standard(1000, 8000, 17).with_edge_types(4));
    for table in [
        PartitionTable::vertex_centric(),
        PartitionTable::two_d(8),
        PartitionTable::src_batch_per_type(16),
        PartitionTable::dst_batch_min_degree(8),
    ] {
        let a = partition(&g, &table);
        let b = partition(&g, &table);
        assert_eq!(
            plan_fingerprint(&a),
            plan_fingerprint(&b),
            "plan for `{table}` differs between runs"
        );
    }
}

/// The full seeded pipeline (generate → sample → partition) run
/// concurrently from 1, 2, 4, and 8 threads must produce exactly the
/// single-threaded result on every thread: no iteration-order or
/// shared-state dependence anywhere.
#[test]
fn seeded_pipeline_is_identical_across_thread_counts() {
    let run = || {
        let g = rmat(&RmatParams::standard(1500, 12_000, 23).with_edge_types(4));
        let csr = Csr::in_of(&g);
        let sub = neighbor_sample(
            &g,
            &csr,
            &SampleConfig {
                num_seeds: 32,
                fanouts: vec![8, 4],
                seed: 29,
            },
        );
        let plan = partition(&sub.graph, &PartitionTable::two_d(8));
        (
            graph_fingerprint(&g),
            sub.vertex_map.clone(),
            graph_fingerprint(&sub.graph),
            plan_fingerprint(&plan),
        )
    };
    let reference = run();
    for threads in [1usize, 2, 4, 8] {
        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads).map(|_| s.spawn(run)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        for (i, r) in results.iter().enumerate() {
            assert_eq!(
                r, &reference,
                "thread {i} of {threads} diverged from the sequential result"
            );
        }
    }
}
