#!/usr/bin/env bash
# Canonical offline check for this repository: builds the whole workspace
# in release mode and runs every test, all without touching a crate
# registry. CI and pre-merge runs should invoke exactly this script.
#
# Tests run in both profiles: debug catches overflow/debug-assert issues,
# release catches optimizer-dependent ones and reuses the artifacts the
# build step already produced. After the tests, two static gates run:
# clippy with warnings denied, and wisegraph-lint (the pre-execution
# plan/DFG/kernel verifier, DESIGN.md §8) over every built-in model ×
# partition strategy.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo test --release -q --offline --workspace
cargo clippy --all-targets --offline --workspace -- -D warnings
cargo run --release --offline --bin wisegraph-lint
