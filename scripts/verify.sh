#!/usr/bin/env bash
# Canonical offline check for this repository: builds the whole workspace
# in release mode and runs every test, all without touching a crate
# registry. CI and pre-merge runs should invoke exactly this script.
#
# Tests run in both profiles: debug catches overflow/debug-assert issues,
# release catches optimizer-dependent ones and reuses the artifacts the
# build step already produced.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo test --release -q --offline --workspace
