#!/usr/bin/env bash
# Canonical offline check for this repository: builds the whole workspace
# in release mode and runs every test, all without touching a crate
# registry. CI and pre-merge runs should invoke exactly this script.
#
# Tests run in both profiles: debug catches overflow/debug-assert issues,
# release catches optimizer-dependent ones and reuses the artifacts the
# build step already produced. The fused-codegen differential harness
# (tests/fused_parity.rs, DESIGN.md §10) additionally runs by name so the
# bit-identity gate is explicit in the log, not buried in the workspace
# sweep, and likewise the planning-cache equivalence harness
# (tests/planning_cache.rs, DESIGN.md §11: warm-cache runs bit-identical
# to cold across thread counts), and the sharded multi-device determinism
# suite (tests/sharded_parity.rs, DESIGN.md §13: cluster runs at 1/2/4/8
# devices match the single engine bit-for-bit for every compatible
# placement schedule, and the executor's placement selection equals the
# shared cost model's prediction), and the causal-trace determinism suite
# (tests/causal_determinism.rs, DESIGN.md §14: merged causal edge lists
# and Work-class critical-path reports bit-identical across runs, thread
# counts, and 2/4/8 devices). After the tests, three gates run: clippy
# with warnings denied,
# wisegraph-lint (the pre-execution plan/DFG/kernel/instrumentation/
# fusion verifier, DESIGN.md §8, including the O002 cluster-phase
# coverage pass) over every built-in model × partition
# strategy — once human-readable and once as --json, whose stable machine
# output is asserted to report zero errors (DESIGN.md §12) — and
# wisegraph-prof --critical-path --check (the counter-regression gate,
# DESIGN.md §9: run-to-run and cross-thread determinism plus tolerance
# bands against results/prof_baseline.json, now covering the Work-class
# critical-path attribution, with the deterministic report regenerated
# into results/prof_critical.json).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo test --release -q --offline --workspace
cargo test --release -q --offline --test fused_parity
cargo test --release -q --offline --test planning_cache
cargo test --release -q --offline --test sharded_parity
cargo test --release -q --offline --test causal_determinism
cargo clippy --all-targets --offline --workspace -- -D warnings
cargo run --release --offline --bin wisegraph-lint
lint_json="$(cargo run --release --offline --bin wisegraph-lint -- --json)"
grep -q '"tool": "wisegraph-lint"' <<<"$lint_json"
grep -q '"errors": 0,' <<<"$lint_json"
cargo run --release --offline --bin wisegraph-prof -- --critical-path --check
