#!/usr/bin/env bash
# Canonical offline check for this repository: builds the whole workspace
# in release mode and runs every test, all without touching a crate
# registry. CI and pre-merge runs should invoke exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
