//! Multi-GPU planning for a recommendation-scale graph.
//!
//! Recommendation systems are one of the paper's motivating applications:
//! bipartite-ish user/item graphs too large for one device. This example
//! partitions a large interaction graph across 4 simulated A100s and shows
//! how WiseGraph's operation placement (communicate inputs vs. outputs,
//! §5.4) adapts per layer while the static strategies (DGL data parallel,
//! P3 hybrid) do not.
//!
//! Run with: `cargo run --example recommender_multigpu`

use wisegraph::baselines::single::LayerDims;
use wisegraph::baselines::{MultiGpuSystem, MultiStack};
use wisegraph::core::multi;
use wisegraph::graph::generate::{rmat, RmatParams};
use wisegraph::models::ModelKind;

fn main() {
    // Interaction graph: 200K users+items, 3M interactions, heavy skew
    // (popular items).
    let graph = rmat(&RmatParams::standard(200_000, 3_000_000, 99));
    let stack = MultiStack::paper_quad();
    println!(
        "interaction graph: {}V / {}E on {} devices over PCIe",
        graph.num_vertices(),
        graph.num_edges(),
        stack.fabric.num_devices
    );

    let dims = LayerDims {
        f_in: 256, // rich item embeddings
        hidden: 64,
        classes: 32,
        layers: 2,
    };

    println!("\nper-layer communication placement (WiseGraph):");
    for l in 0..dims.layers {
        let (fi, fo) = dims.layer_io(l);
        let comm = multi::best_placement_comm(&graph, &stack, fi, fo);
        let remote =
            wisegraph::baselines::multi::max_remote_unique_src(&graph, 4) as f64;
        let input_side = stack.fabric.all_to_all(remote * fi as f64 * 4.0);
        let output_side = stack
            .fabric
            .reduce_scatter(graph.num_vertices() as f64 * fo as f64 * 4.0);
        let choice = if (comm - input_side).abs() < 1e-12 {
            "communicate inputs (all-to-all)"
        } else if (comm - output_side).abs() < 1e-12 {
            "compute first, reduce outputs"
        } else {
            "project first, then all-to-all"
        };
        println!(
            "  layer {l}: {fi}->{fo}, {:.2} ms -- {choice}",
            comm * 1e3
        );
    }

    println!("\nepoch time comparison (SAGE):");
    for sys in [MultiGpuSystem::Dgl, MultiGpuSystem::Roc] {
        let t = sys.iteration_time(&graph, ModelKind::Sage, &dims, &stack);
        println!("  {:<10} {:>8.2} ms", sys.name(), t * 1e3);
    }
    let ours = multi::iteration_time(&graph, ModelKind::Sage, &dims, &stack);
    println!("  {:<10} {:>8.2} ms  <- WiseGraph", "WiseGraph", ours * 1e3);
}
