//! Sampled-graph (mini-batch) training with plan reuse.
//!
//! Full-graph training does not fit every budget; the paper's §6.3 extends
//! WiseGraph to sampled training: tune the partition plan on a few sampled
//! subgraphs, then reuse it for all later iterations while the CPU
//! partitions the next batch in the background.
//!
//! Run with: `cargo run --example sampled_training`

use wisegraph::baselines::single::LayerDims;
use wisegraph::core::plan::ExecutionPlan;
use wisegraph::core::WiseGraph;
use wisegraph::graph::generate::{rmat, RmatParams};
use wisegraph::graph::sample::{neighbor_sample, SampleConfig};
use wisegraph::graph::Csr;
use wisegraph::models::ModelKind;
use wisegraph::sim::DeviceSpec;

fn main() {
    let full = rmat(&RmatParams::standard(100_000, 1_200_000, 5).with_edge_types(8));
    let csr = Csr::in_of(&full);
    println!(
        "full graph: {}V / {}E; sampling 1000 seeds, fan-out 20-15-10",
        full.num_vertices(),
        full.num_edges()
    );

    // Tune once on the first sampled subgraph.
    let device = DeviceSpec::a100_pcie();
    let wisegraph = WiseGraph::new(device);
    let dims = LayerDims {
        f_in: 128,
        hidden: 128,
        classes: 40,
        layers: 3,
    };
    let first = neighbor_sample(&full, &csr, &SampleConfig::paper_default(0));
    let tuned = wisegraph.optimize(&first.graph, ModelKind::Rgcn, &dims);
    let table = tuned.per_layer[0].table.clone();
    let op = tuned.per_layer[0].op_partition;
    println!("tuned plan: {table} / {op:?}");

    // Reuse the plan across fresh samples: partition-only per iteration.
    println!("\niterating with the reused plan:");
    for it in 1..=5u64 {
        let sub = neighbor_sample(&full, &csr, &SampleConfig::paper_default(it));
        let dfg = ModelKind::Rgcn.layer_dfg(dims.hidden, dims.hidden);
        let plan = ExecutionPlan::build(&sub.graph, table.clone(), &dfg, op);
        let est = plan.estimate(&sub.graph, &device);
        println!(
            "  iter {it}: subgraph {}V/{}E -> {} gTasks, {:.3} ms/layer",
            sub.graph.num_vertices(),
            sub.graph.num_edges(),
            plan.partition.num_tasks(),
            est.time * 1e3
        );
    }
    println!(
        "\nNo re-tuning per iteration: sampled subgraphs share the same \
         structural pattern, so the plan transfers (§6.3, Figure 21)."
    );
}
