//! Micro-kernel composition in action: compile a model layer to an
//! explicit kernel program and execute it per gTask.
//!
//! Shows the three-phase execution WiseGraph generates (paper §5.3):
//! a *prologue* of edge-independent precomputation, a *per-task program*
//! of composed micro-kernels, and an *epilogue* of whole-graph operations
//! — and verifies the result against the reference interpreter.
//!
//! Run with: `cargo run --example compiled_kernels`

use std::collections::HashMap;
use std::time::Instant;
use wisegraph::dfg::interp::execute;
use wisegraph::dfg::{transform, Binding};
use wisegraph::graph::generate::{rmat, RmatParams};
use wisegraph::gtask::{partition, PartitionTable};
use wisegraph::kernels::engine::execute_parallel;
use wisegraph::kernels::micro::{compile, execute_by_plan};
use wisegraph::models::ModelKind;
use wisegraph::tensor::init;

fn main() {
    let g = rmat(&RmatParams::standard(20_000, 250_000, 7).with_edge_types(8));
    let (fi, fo) = (64, 64);
    let dfg = ModelKind::Rgcn.layer_dfg(fi, fo);
    let binding = Binding::from_graph(&g);
    let (optimized, _) = transform::optimize(&dfg, &binding);

    let mut globals = HashMap::new();
    globals.insert(
        "h".to_string(),
        init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 1),
    );
    globals.insert(
        "W".to_string(),
        init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, 2),
    );

    // Show the compiled program.
    let program = compile(&optimized, &g).expect("RGCN compiles");
    println!(
        "compiled kernel: {} micro-kernels, {} registers, {} prologue \
         precomputations",
        program.ops.len(),
        program.num_regs,
        program.prologue.len()
    );
    for (i, op) in program.ops.iter().enumerate() {
        println!("  [{i}] {op:?}");
    }

    // Execute per gTask and compare against the reference interpreter.
    let plan = partition(&g, &PartitionTable::src_batch_per_type(128));
    println!("\nplan: {} -> {} gTasks", plan.table, plan.num_tasks());

    let t0 = Instant::now();
    let reference = &execute(&dfg, &g, &globals).unwrap()[0];
    let t_interp = t0.elapsed();

    let t0 = Instant::now();
    let sequential = &execute_by_plan(&optimized, &g, &plan, &globals).unwrap()[0];
    let t_seq = t0.elapsed();

    let t0 = Instant::now();
    let parallel = &execute_parallel(&optimized, &g, &plan, &globals, 2).unwrap()[0];
    let t_par = t0.elapsed();

    println!(
        "\ninterpreter (naive DFG):     {:>8.1} ms",
        t_interp.as_secs_f64() * 1e3
    );
    println!(
        "compiled per-gTask kernels:  {:>8.1} ms (diff {:.2e})",
        t_seq.as_secs_f64() * 1e3,
        reference.max_abs_diff(sequential)
    );
    println!(
        "parallel engine (2 threads): {:>8.1} ms (diff {:.2e})",
        t_par.as_secs_f64() * 1e3,
        reference.max_abs_diff(parallel)
    );
    assert!(reference.allclose(sequential, 1e-2));
    assert!(reference.allclose(parallel, 1e-2));
    println!("\nall three executions agree.");
}
