//! Quickstart: optimize a GNN workload with WiseGraph end to end.
//!
//! Builds a power-law graph, asks WiseGraph to jointly partition graph
//! data and operations for an RGCN layer stack, and compares the resulting
//! execution plan against the classic baselines — the paper's headline
//! experiment in miniature.
//!
//! Run with: `cargo run --example quickstart`

use wisegraph::baselines::{Baseline, LayerDims};
use wisegraph::core::WiseGraph;
use wisegraph::graph::generate::{rmat, RmatParams};
use wisegraph::models::ModelKind;
use wisegraph::sim::DeviceSpec;

fn main() {
    // 1. Graph data: 50K vertices, 600K edges, 8 relation types, skewed
    //    like a real-world graph.
    let graph = rmat(&RmatParams::standard(50_000, 600_000, 42).with_edge_types(8));
    println!(
        "graph: {} vertices, {} edges, {} edge types",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_edge_types()
    );

    // 2. Model: a 3-layer RGCN, 128-d inputs, 256-d hidden, 40 classes.
    let model = ModelKind::Rgcn;
    let dims = LayerDims::paper_single(128, 40);

    // 3. Let WiseGraph search the joint partition space.
    let device = DeviceSpec::a100_pcie();
    let wisegraph = WiseGraph::new(device);
    let optimized = wisegraph.optimize(&graph, model, &dims);

    let plan = &optimized.per_layer[0];
    println!("\nchosen graph partition:   {}", plan.table);
    println!("chosen operation partition: {:?}", plan.op_partition);
    println!(
        "gTasks: {} (median {} edges), batch {} rows per task",
        plan.partition.num_tasks(),
        plan.partition.median_task_edges(),
        plan.ctx.batch_rows
    );
    println!(
        "simulated training iteration: {:.2} ms",
        optimized.time_per_iter * 1e3
    );

    // 4. Compare with the baselines the paper evaluates against.
    println!("\nbaseline comparison (per iteration):");
    for b in Baseline::columns_for(model) {
        let est = b.estimate(&graph, model, &dims, &device);
        println!(
            "  {:<10} {:>8.2} ms{}",
            b.label(model),
            est.time_per_iter * 1e3,
            if est.oom { "  (OOM)" } else { "" }
        );
    }
    println!(
        "  {:<10} {:>8.2} ms  <- WiseGraph",
        "Our-gT",
        optimized.time_per_iter * 1e3
    );

    let s = wisegraph.stats();
    println!(
        "\nsearch: {} plans evaluated, {} pruned by the cost model",
        s.evaluated, s.pruned
    );
}
