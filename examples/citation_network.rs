//! Node classification on a citation-network-style graph: real training.
//!
//! The paper's intro motivates GNNs with learning applications on graph
//! data; this example trains GCN, SAGE and GAT on a synthetic homophilous
//! citation network (papers cite papers in their own field) and reports
//! test accuracy — the same machinery behind the Figure 14 accuracy
//! experiment.
//!
//! Run with: `cargo run --example citation_network`

use wisegraph::core::trainer::train_full_graph;
use wisegraph::graph::generate::{labeled_graph, LabeledParams};
use wisegraph::models::{Gat, Gcn, GnnModel, Sage};

fn main() {
    // A "citation network": 2000 papers in 10 fields, ~8 citations each,
    // 70% of citations stay within the field.
    let data = labeled_graph(&LabeledParams {
        num_vertices: 2000,
        avg_degree: 8,
        feature_dim: 48,
        num_classes: 10,
        homophily: 0.7,
        noise: 1.8,
        num_edge_types: 1,
        seed: 7,
    });
    println!(
        "citation network: {} papers, {} citations, {} fields",
        data.graph.num_vertices(),
        data.graph.num_edges(),
        data.num_classes
    );

    let dims = [data.feature_dim, 64, data.num_classes];
    let mut models: Vec<Box<dyn GnnModel>> = vec![
        Box::new(Gcn::new(&dims, 1)),
        Box::new(Sage::new(&dims, 2)),
        Box::new(Gat::new(&dims, 3)),
    ];
    for model in &mut models {
        let stats = train_full_graph(model.as_mut(), &data, 40, 0.01);
        let first = stats.first().expect("at least one epoch");
        let last = stats.last().expect("at least one epoch");
        println!(
            "{:<6} loss {:.3} -> {:.3}, test accuracy {:.1}% -> {:.1}%",
            model.name(),
            first.loss,
            last.loss,
            100.0 * first.test_accuracy,
            100.0 * last.test_accuracy
        );
    }
}
