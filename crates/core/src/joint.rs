//! Joint optimization: differentiated scheduling of outlier gTasks (§6.2).
//!
//! After classifying gTasks (underfill / overfill / frequent-value), the
//! scheduler rewrites their execution:
//!
//! - **underfill** tasks drop the batched micro-kernel and run edge-wise —
//!   no padding waste — at *low* priority (they fill scheduling gaps);
//! - **overfill** tasks get extra compute resources (a dedicated kernel
//!   with more thread blocks and shared memory) and the *highest* priority
//!   so they start first and do not produce a long tail;
//! - **frequent-value** tasks fetch precomputed shared work, roughly
//!   halving their duration.

use crate::plan::ExecutionPlan;
use wisegraph_graph::Graph;
use wisegraph_gtask::outlier::{classify_outliers, summarize, OutlierConfig, OutlierSummary};
use wisegraph_gtask::OutlierKind;
use wisegraph_sim::{schedule, DeviceSpec};

/// Resource/priority adjustments applied per outlier class.
#[derive(Clone, Copy, Debug)]
pub struct DifferentiationConfig {
    /// Edge-wise execution is this factor less efficient *per edge* than
    /// batched execution (but pays no padding).
    pub edgewise_penalty: f64,
    /// Duration multiplier for overfill tasks given extra resources.
    pub overfill_speedup: f64,
    /// Duration multiplier for frequent-value tasks after precomputing the
    /// shared workload.
    pub frequent_speedup: f64,
}

impl Default for DifferentiationConfig {
    fn default() -> Self {
        Self {
            edgewise_penalty: 2.0,
            overfill_speedup: 0.7,
            frequent_speedup: 0.5,
        }
    }
}

/// The outcome of scheduling one plan with and without differentiation.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleComparison {
    /// Makespan with uniform execution (seconds).
    pub uniform: f64,
    /// Makespan with differentiated outlier execution (seconds).
    pub differentiated: f64,
    /// Share of uniform execution time spent in outlier tasks.
    pub outlier_time_fraction: f64,
    /// Outlier classification summary.
    pub summary: OutlierSummary,
}

/// Schedules the plan's per-task work uniformly and with differentiated
/// outlier handling, returning both makespans.
pub fn compare_scheduling(
    plan: &ExecutionPlan,
    g: &Graph,
    dev: &DeviceSpec,
    cfg: &DifferentiationConfig,
) -> ScheduleComparison {
    let durations = plan.task_durations(g, dev);
    let classes = classify_outliers(g, &plan.partition, &OutlierConfig::default());
    let summary = summarize(&plan.partition, &classes);
    let uniform = schedule::makespan_uniform(&durations, dev.num_sms);

    let outlier_time: f64 = durations
        .iter()
        .zip(classes.iter())
        .filter(|(_, c)| c.is_some())
        .map(|(&d, _)| d)
        .sum();
    let total_time: f64 = durations.iter().sum();

    let median_edges = plan.partition.median_task_edges().max(1) as f64;
    let tasks: Vec<schedule::ScheduledTask> = durations
        .iter()
        .zip(classes.iter())
        .zip(plan.partition.tasks.iter())
        .map(|((&d, class), task)| match class {
            // Underfill: edge-wise execution removes batch padding. The
            // uniform duration was padded to the median task size; the
            // edge-wise version costs per actual edge, with a per-edge
            // efficiency penalty, and runs last.
            Some(OutlierKind::Underfill) => {
                let padded_units = (task.num_edges() as f64).max(median_edges);
                let edgewise =
                    d * (task.num_edges() as f64 / padded_units) * cfg.edgewise_penalty;
                schedule::ScheduledTask {
                    // Never worse than the padded batch execution.
                    duration: edgewise.min(d),
                    priority: -1,
                }
            }
            Some(OutlierKind::Overfill) => schedule::ScheduledTask {
                duration: d * cfg.overfill_speedup,
                priority: 2,
            },
            Some(OutlierKind::FrequentValue) => schedule::ScheduledTask {
                duration: d * cfg.frequent_speedup,
                priority: 1,
            },
            None => schedule::ScheduledTask {
                duration: d,
                priority: 0,
            },
        })
        .collect();
    let differentiated = schedule::makespan(&tasks, dev.num_sms);

    ScheduleComparison {
        uniform,
        differentiated,
        outlier_time_fraction: if total_time > 0.0 {
            outlier_time / total_time
        } else {
            0.0
        },
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::OpPartitionKind;
    use wisegraph_graph::generate::{rmat, RmatParams};
    use wisegraph_gtask::PartitionTable;
    use wisegraph_models::ModelKind;

    #[test]
    fn differentiation_never_hurts_on_skewed_graphs() {
        // Power-law graph + vertex-centric: hub vertices create overfill
        // tasks and a long tail; differentiated execution shortens it.
        let g = rmat(&RmatParams::standard(4000, 60_000, 3).with_edge_types(4));
        let dev = DeviceSpec::a100_pcie();
        let dfg = ModelKind::Gat.layer_dfg(64, 64);
        let plan = crate::plan::ExecutionPlan::build_untransformed(
            &g,
            PartitionTable::vertex_centric(),
            &dfg,
            OpPartitionKind::Fused,
        );
        let cmp = compare_scheduling(&plan, &g, &dev, &DifferentiationConfig::default());
        assert!(
            cmp.differentiated <= cmp.uniform * 1.001,
            "uniform {} vs differentiated {}",
            cmp.uniform,
            cmp.differentiated
        );
        assert!(cmp.summary.overfill > 0, "hubs should overfill: {:?}", cmp.summary);
    }

    #[test]
    fn outlier_fraction_is_substantial_on_power_law() {
        // §7.3: "52.9% of execution time is spent on outlier gTasks on
        // average" — a large share, driven by the degree skew.
        let g = rmat(&RmatParams::standard(4000, 60_000, 5).with_edge_types(4));
        let dev = DeviceSpec::a100_pcie();
        let dfg = ModelKind::Rgcn.layer_dfg(64, 64);
        let plan = crate::plan::ExecutionPlan::build_untransformed(
            &g,
            PartitionTable::new()
                .exact(wisegraph_graph::AttrKind::DstId, 1)
                .exact(wisegraph_graph::AttrKind::EdgeId, 32),
            &dfg,
            OpPartitionKind::Fused,
        );
        let cmp = compare_scheduling(&plan, &g, &dev, &DifferentiationConfig::default());
        assert!(
            cmp.outlier_time_fraction > 0.2,
            "outlier fraction {}",
            cmp.outlier_time_fraction
        );
    }

    #[test]
    fn balanced_plans_see_little_change() {
        let g = rmat(&RmatParams::standard(2000, 30_000, 7));
        let dev = DeviceSpec::a100_pcie();
        let dfg = ModelKind::Gcn.layer_dfg(32, 32);
        let plan = crate::plan::ExecutionPlan::build_untransformed(
            &g,
            PartitionTable::edge_batch(32),
            &dfg,
            OpPartitionKind::Fused,
        );
        let cmp = compare_scheduling(&plan, &g, &dev, &DifferentiationConfig::default());
        // Edge batching is balanced by construction: differentiation
        // changes the makespan by < 20%.
        let ratio = cmp.differentiated / cmp.uniform;
        assert!((0.5..=1.01).contains(&ratio), "ratio {ratio}");
    }
}
