//! WiseGraph: the end-to-end joint-partition workflow (paper §3, Figure 4).
//!
//! Given graph data and a GNN model, WiseGraph
//!
//! 1. identifies the model's indexing edge attributes and generates
//!    candidate **graph partition plans** (`wisegraph-gtask`);
//! 2. extracts gTask-level **data patterns** and generates candidate
//!    **operation partition plans** — DFG transformations, kernel
//!    generation contexts, operation placements (`wisegraph-dfg`,
//!    `wisegraph-kernels`);
//! 3. **jointly optimizes**: splits regular from outlier gTasks, applies
//!    differentiated scheduling, and searches the plan space with a cost
//!    model (pruning) and a plan cache.
//!
//! Modules:
//!
//! - [`plan`]: executable plans — a partition table, a transformed DFG, an
//!   operation partition, and the derived kernel context — plus their
//!   simulated time/memory evaluation;
//! - [`dynamic`]: the delta driver — incremental gTask repair, `C001`
//!   verification against a from-scratch partition, and content-keyed
//!   cache invalidation/reseeding per edge batch;
//! - [`joint`]: outlier-aware differentiated scheduling (Figure 12/19);
//! - [`optimizer`]: the staged search with pruning and caching (Figure 16,
//!   §6.3), producing the final `OptimizedModel` estimate;
//! - [`multi`]: multi-device operation placement driven by the
//!   changing-data-volume pattern (Table 2, Figure 20);
//! - [`sharded`]: real sharded multi-device execution — placement
//!   selection over the compatible schedules of a compiled layer, run on
//!   a `wisegraph_kernels::cluster::ClusterEngine`;
//! - [`sampled`]: sampled-graph training support — plan reuse across
//!   subgraphs and overlapped partitioning (Figure 21);
//! - [`trainer`]: full-graph training driver for the accuracy experiments
//!   (Figure 14).

pub mod dynamic;
pub mod joint;
pub mod multi;
pub mod optimizer;
pub mod plan;
pub mod sampled;
pub mod sharded;
pub mod trainer;

pub use dynamic::{DynamicPlanner, RepairOutcome};
pub use sharded::{execute_sharded, execute_sharded_layer, select_placement, PlacementChoice};
pub use optimizer::{OptimizedModel, SearchStage, SearchTrace, WiseGraph};
pub use plan::{ExecutionPlan, PlanEstimate};
