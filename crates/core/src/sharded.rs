//! Sharded multi-device execution with optimizer-selected placement.
//!
//! This is the executable end of the §5.4 story: the graph is partitioned
//! across N simulated devices (each a real engine on its own thread,
//! `wisegraph_kernels::cluster`), and the *placement* of communication
//! relative to computation is chosen per layer by the same
//! changing-data-volume arithmetic the closed-form cost model uses
//! ([`wisegraph_sim::PlacementVolumes`], also behind
//! [`crate::multi::best_placement_comm`]). The selector only considers
//! schedules the compiled program can actually run
//! ([`compatible_placements`]), which is where the executed path goes
//! beyond the closed form: tensor parallelism needs a sliceable weight,
//! compute-then-reduce needs a prologue-free source-gathering program.

use std::collections::HashMap;

use wisegraph_dfg::Dfg;
use wisegraph_graph::{Graph, ShardSpec};
use wisegraph_gtask::PartitionPlan;
use wisegraph_kernels::cluster::{compatible_placements, ClusterEngine, ClusterRun};
use wisegraph_kernels::micro::{compile, CompileError, KernelProgram};
use wisegraph_obs::{keys, span, Counters};
use wisegraph_sim::{Fabric, PlacementKind, PlacementVolumes};
use wisegraph_tensor::Tensor;

/// The outcome of pricing a layer's compatible placements.
#[derive(Clone, Debug)]
pub struct PlacementChoice {
    /// The selected (cheapest-communication) schedule.
    pub placement: PlacementKind,
    /// Its fabric-priced communication time (seconds).
    pub comm_time: f64,
    /// Every compatible candidate with its priced communication time, in
    /// [`PlacementKind::ALL`] order.
    pub candidates: Vec<(PlacementKind, f64)>,
}

/// Prices every placement the compiled `program` can run and returns the
/// cheapest, using the shared Figure-11 volume arithmetic with the
/// per-device remote-unique source count of an even `devices`-way vertex
/// shard. `f_in`/`f_out` are the layer's embedding widths; the
/// accumulator width comes from the program itself.
///
/// # Panics
///
/// Panics if `devices` is zero.
pub fn select_placement(
    program: &KernelProgram,
    g: &Graph,
    globals: &HashMap<String, Tensor>,
    devices: usize,
    fabric: &Fabric,
    f_in: usize,
    f_out: usize,
) -> PlacementChoice {
    let mut sp = span!("sharded.select_placement", devices = devices);
    let spec = ShardSpec::new(g.num_vertices(), devices);
    let remote = spec.max_remote_unique_src(g);
    let vols = PlacementVolumes::new(remote, g.num_vertices(), f_in, f_out, program.out_width);
    let compat = compatible_placements(program, g, globals);
    let candidates: Vec<(PlacementKind, f64)> = compat
        .iter()
        .map(|&p| (p, vols.comm_time(p, fabric)))
        .collect();
    let (placement, comm_time) = vols.best(&compat, fabric);
    // Span args are numeric; record the candidate's ALL-order index.
    sp.arg(
        "placement",
        PlacementKind::ALL.iter().position(|&p| p == placement).unwrap_or(0) as u64,
    );
    PlacementChoice {
        placement,
        comm_time,
        candidates,
    }
}

/// Compiles the layer, selects the cheapest compatible placement for the
/// cluster's device count, and executes it.
///
/// # Errors
///
/// Fails if the DFG does not compile or the selected schedule's runtime
/// preconditions fail (see [`ClusterEngine::execute`]).
///
/// # Panics
///
/// Panics if a device or worker thread panics.
#[allow(clippy::too_many_arguments)]
pub fn execute_sharded(
    cluster: &ClusterEngine,
    dfg: &Dfg,
    g: &Graph,
    plan: &PartitionPlan,
    globals: &HashMap<String, Tensor>,
    fabric: &Fabric,
    f_in: usize,
    f_out: usize,
) -> Result<(ClusterRun, PlacementChoice), CompileError> {
    execute_sharded_layer(cluster, dfg, g, plan, globals, fabric, f_in, f_out, 0)
}

/// [`execute_sharded`] for one layer of a multi-layer model: stamps
/// `layer` on the cluster's phase spans, timeline segments, and causal
/// attribution ([`ClusterEngine::set_layer`]) so per-layer overlap
/// headroom in the [`ClusterRun::attribution`] report names the layer
/// that could have posted its sends earlier.
///
/// # Errors
///
/// See [`execute_sharded`].
///
/// # Panics
///
/// Panics if a device or worker thread panics.
#[allow(clippy::too_many_arguments)]
pub fn execute_sharded_layer(
    cluster: &ClusterEngine,
    dfg: &Dfg,
    g: &Graph,
    plan: &PartitionPlan,
    globals: &HashMap<String, Tensor>,
    fabric: &Fabric,
    f_in: usize,
    f_out: usize,
    layer: u32,
) -> Result<(ClusterRun, PlacementChoice), CompileError> {
    let mut sp = span!(
        "sharded.execute",
        devices = cluster.devices(),
        layer = layer
    );
    let program = compile(dfg, g)?;
    let choice = select_placement(
        &program,
        g,
        globals,
        cluster.devices(),
        fabric,
        f_in,
        f_out,
    );
    cluster.set_layer(layer);
    let run = cluster.execute_program(&program, dfg, g, plan, globals, choice.placement)?;
    sp.arg("comm_bytes", run.exchange.bytes_sent());
    Ok((run, choice))
}

/// Max-over-mean device work ratio from per-device counter snapshots,
/// measured in kernel FLOPs (1.0 = perfectly balanced). Tensor
/// parallelism splits columns instead of vertices, so it sits at ~1.0
/// where graph-partition schedules inherit the shard skew.
pub fn device_work_skew(per_device: &[Counters]) -> f64 {
    let flops: Vec<u64> = per_device
        .iter()
        .map(|c| c.count(keys::KERNEL_FLOPS))
        .collect();
    let max = flops.iter().copied().max().unwrap_or(0) as f64;
    let mean = flops.iter().sum::<u64>() as f64 / flops.len().max(1) as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_graph::generate::{rmat, RmatParams};
    use wisegraph_gtask::{partition, PartitionTable};
    use wisegraph_models::ModelKind;
    use wisegraph_tensor::init;

    #[test]
    fn selection_agrees_with_the_executed_run() {
        let g = rmat(&RmatParams::standard(120, 950, 31));
        let (f_in, f_out) = (6, 4);
        let dfg = ModelKind::Gcn.layer_dfg(f_in, f_out);
        let plan = partition(&g, &PartitionTable::vertex_centric());
        let mut globals = HashMap::new();
        globals.insert(
            "h".to_string(),
            init::uniform_tensor(&[g.num_vertices(), f_in], -1.0, 1.0, 91),
        );
        globals.insert(
            "w".to_string(),
            init::uniform_tensor(&[f_in, f_out], -1.0, 1.0, 92),
        );
        let cluster = ClusterEngine::new(2, 2);
        let fabric = Fabric::pcie4_quad();
        let (run, choice) =
            execute_sharded(&cluster, &dfg, &g, &plan, &globals, &fabric, f_in, f_out)
                .expect("sharded run");
        assert_eq!(run.placement, choice.placement);
        assert!(run.exchange.is_conserved());
        assert!(choice
            .candidates
            .iter()
            .all(|&(_, t)| t >= choice.comm_time));
        assert!(device_work_skew(&run.per_device) >= 1.0);
    }
}
