//! Full-graph training driver for the accuracy experiments (Figure 14).
//!
//! WiseGraph's optimizations re-partition work but compute numerically
//! equivalent results (the DFG transformations are equivalence-preserving,
//! §5.2), so its training curves match the baseline's. This driver trains
//! the real models and records per-epoch loss and test accuracy.

use wisegraph_graph::generate::LabeledGraph;
use wisegraph_models::{accuracy, features_tensor, train_epoch, GnnModel};
use wisegraph_tensor::{Adam, Tensor};

/// Per-epoch training statistics.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Training loss.
    pub loss: f32,
    /// Test accuracy.
    pub test_accuracy: f64,
}

/// Trains a model on a labeled graph for `epochs`, recording stats.
pub fn train_full_graph(
    model: &mut dyn GnnModel,
    data: &LabeledGraph,
    epochs: usize,
    lr: f32,
) -> Vec<EpochStats> {
    let feats = features_tensor(
        &data.features,
        data.graph.num_vertices(),
        data.feature_dim,
    );
    let mut opt = Adam::new(lr);
    (0..epochs)
        .map(|epoch| {
            let loss = train_epoch(
                model,
                &mut opt,
                &data.graph,
                &feats,
                &data.labels,
                &data.train_idx,
            );
            let test_accuracy =
                accuracy(model, &data.graph, &feats, &data.labels, &data.test_idx);
            EpochStats {
                epoch,
                loss,
                test_accuracy,
            }
        })
        .collect()
}

/// Final test accuracy after training (convenience for Figure 14a).
pub fn final_accuracy(
    model: &mut dyn GnnModel,
    data: &LabeledGraph,
    epochs: usize,
    lr: f32,
) -> f64 {
    train_full_graph(model, data, epochs, lr)
        .last()
        .map(|s| s.test_accuracy)
        .unwrap_or(0.0)
}

/// The features tensor of a labeled graph (re-exported helper).
pub fn features_of(data: &LabeledGraph) -> Tensor {
    features_tensor(
        &data.features,
        data.graph.num_vertices(),
        data.feature_dim,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_graph::generate::{labeled_graph, LabeledParams};
    use wisegraph_models::{Gat, Sage};

    fn dataset() -> LabeledGraph {
        labeled_graph(&LabeledParams {
            num_vertices: 300,
            num_classes: 4,
            feature_dim: 16,
            homophily: 0.9,
            noise: 0.5,
            seed: 77,
            ..Default::default()
        })
    }

    #[test]
    fn training_curves_improve() {
        let data = dataset();
        let mut model = Sage::new(&[16, 32, 4], 1);
        let stats = train_full_graph(&mut model, &data, 25, 0.01);
        assert_eq!(stats.len(), 25);
        assert!(stats[24].loss < stats[0].loss * 0.8);
        assert!(stats[24].test_accuracy > stats[0].test_accuracy);
    }

    #[test]
    fn gat_and_sage_reach_similar_accuracy() {
        // Figure 14a: both models land within a few points of each other
        // on the same data (and of the DGL-style baseline — which is the
        // same numeric computation).
        let data = dataset();
        let mut sage = Sage::new(&[16, 32, 4], 2);
        let mut gat = Gat::new(&[16, 32, 4], 3);
        let a_sage = final_accuracy(&mut sage, &data, 30, 0.01);
        let a_gat = final_accuracy(&mut gat, &data, 30, 0.01);
        assert!(a_sage > 0.6 && a_gat > 0.6, "sage {a_sage}, gat {a_gat}");
        assert!((a_sage - a_gat).abs() < 0.25);
    }
}
