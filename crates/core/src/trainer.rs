//! Full-graph training driver for the accuracy experiments (Figure 14).
//!
//! WiseGraph's optimizations re-partition work but compute numerically
//! equivalent results (the DFG transformations are equivalence-preserving,
//! §5.2), so its training curves match the baseline's. This driver trains
//! the real models and records per-epoch loss and test accuracy.

use wisegraph_graph::generate::LabeledGraph;
use wisegraph_models::{accuracy_ws, features_tensor, train_epoch_ws, GnnModel};
use wisegraph_tensor::{Adam, Tensor, Workspace};

/// Per-epoch training statistics.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Training loss.
    pub loss: f32,
    /// Test accuracy.
    pub test_accuracy: f64,
}

/// Trains a model on a labeled graph for `epochs`, recording stats.
///
/// Tape storage is pooled in a [`Workspace`] that persists across epochs,
/// so epoch `n + 1`'s forward/backward passes reuse epoch `n`'s buffers.
/// Call [`train_full_graph_ws`] to keep the pool (and read its counters)
/// across runs.
pub fn train_full_graph(
    model: &mut dyn GnnModel,
    data: &LabeledGraph,
    epochs: usize,
    lr: f32,
) -> Vec<EpochStats> {
    let mut ws = Workspace::new();
    train_full_graph_ws(model, data, epochs, lr, &mut ws)
}

/// [`train_full_graph`] with a caller-owned buffer pool.
///
/// `ws.stats()` after the call reports buffers created vs. reused and the
/// peak resident bytes of the pool — in steady state every epoch past the
/// first should be served (almost) entirely from recycled buffers.
pub fn train_full_graph_ws(
    model: &mut dyn GnnModel,
    data: &LabeledGraph,
    epochs: usize,
    lr: f32,
    ws: &mut Workspace,
) -> Vec<EpochStats> {
    let _sp = wisegraph_obs::span!("train.full_graph", epochs = epochs);
    let feats = features_tensor(
        &data.features,
        data.graph.num_vertices(),
        data.feature_dim,
    );
    let mut opt = Adam::new(lr);
    (0..epochs)
        .map(|epoch| {
            let _esp = wisegraph_obs::span!("train.epoch", epoch = epoch);
            let loss = train_epoch_ws(
                model,
                &mut opt,
                &data.graph,
                &feats,
                &data.labels,
                &data.train_idx,
                ws,
            );
            let test_accuracy = accuracy_ws(
                model,
                &data.graph,
                &feats,
                &data.labels,
                &data.test_idx,
                ws,
            );
            EpochStats {
                epoch,
                loss,
                test_accuracy,
            }
        })
        .collect()
}

/// Final test accuracy after training (convenience for Figure 14a).
pub fn final_accuracy(
    model: &mut dyn GnnModel,
    data: &LabeledGraph,
    epochs: usize,
    lr: f32,
) -> f64 {
    train_full_graph(model, data, epochs, lr)
        .last()
        .map(|s| s.test_accuracy)
        .unwrap_or(0.0)
}

/// The features tensor of a labeled graph (re-exported helper).
pub fn features_of(data: &LabeledGraph) -> Tensor {
    features_tensor(
        &data.features,
        data.graph.num_vertices(),
        data.feature_dim,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_graph::generate::{labeled_graph, LabeledParams};
    use wisegraph_models::{Gat, Sage};

    fn dataset() -> LabeledGraph {
        labeled_graph(&LabeledParams {
            num_vertices: 300,
            num_classes: 4,
            feature_dim: 16,
            homophily: 0.9,
            noise: 0.5,
            seed: 77,
            ..Default::default()
        })
    }

    #[test]
    fn training_curves_improve() {
        let data = dataset();
        let mut model = Sage::new(&[16, 32, 4], 1);
        let stats = train_full_graph(&mut model, &data, 25, 0.01);
        assert_eq!(stats.len(), 25);
        assert!(stats[24].loss < stats[0].loss * 0.8);
        assert!(stats[24].test_accuracy > stats[0].test_accuracy);
    }

    #[test]
    fn workspace_recycles_across_training_epochs() {
        let data = dataset();
        let mut model = Sage::new(&[16, 32, 4], 4);
        let mut ws = Workspace::new();
        // One warm-up epoch fills the pool with every shape the loop needs.
        train_full_graph_ws(&mut model, &data, 1, 0.01, &mut ws);
        let warm = ws.stats();
        train_full_graph_ws(&mut model, &data, 3, 0.01, &mut ws);
        let after = ws.stats();
        use wisegraph_obs::{keys, pool_reuse_ratio};
        assert!(
            after.count(keys::POOL_REUSED) > warm.count(keys::POOL_REUSED),
            "later epochs must draw from the pool"
        );
        // Bounded creation: three more epochs of identical shapes must not
        // grow the pool.
        assert_eq!(
            after.count(keys::POOL_CREATED),
            warm.count(keys::POOL_CREATED),
            "steady-state epochs must not allocate new buffers"
        );
        assert!(after.count(keys::POOL_PEAK) > 0);
        assert!(
            pool_reuse_ratio(&after) > 0.5,
            "ratio {}",
            pool_reuse_ratio(&after)
        );
    }

    #[test]
    fn workspace_training_is_bit_identical_to_allocating() {
        let data = dataset();
        // Same seed → same initial parameters for both runs.
        let mut a = Sage::new(&[16, 32, 4], 9);
        let mut b = Sage::new(&[16, 32, 4], 9);
        let alloc = train_full_graph(&mut a, &data, 3, 0.01);
        let mut ws = Workspace::new();
        let pooled = train_full_graph_ws(&mut b, &data, 3, 0.01, &mut ws);
        for (x, y) in alloc.iter().zip(pooled.iter()) {
            assert_eq!(x.loss.to_bits(), y.loss.to_bits(), "epoch {}", x.epoch);
            assert_eq!(x.test_accuracy, y.test_accuracy);
        }
    }

    #[test]
    fn gat_and_sage_reach_similar_accuracy() {
        // Figure 14a: both models land within a few points of each other
        // on the same data (and of the DGL-style baseline — which is the
        // same numeric computation).
        let data = dataset();
        let mut sage = Sage::new(&[16, 32, 4], 2);
        let mut gat = Gat::new(&[16, 32, 4], 3);
        let a_sage = final_accuracy(&mut sage, &data, 30, 0.01);
        let a_gat = final_accuracy(&mut gat, &data, 30, 0.01);
        assert!(a_sage > 0.6 && a_gat > 0.6, "sage {a_sage}, gat {a_gat}");
        assert!((a_sage - a_gat).abs() < 0.25);
    }
}
