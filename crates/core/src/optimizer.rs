//! The staged plan search (Figure 4e, Figure 16) with pruning and caching
//! (§6.3).

use crate::joint::{compare_scheduling, DifferentiationConfig};
use crate::plan::{ExecutionPlan, OpPartitionKind};
use std::collections::HashMap;
use std::sync::Mutex;
use wisegraph_baselines::single::{persistent_bytes, LayerDims, TRAIN_FACTOR};
use wisegraph_dfg::{analysis, transform, Binding};
use wisegraph_graph::Graph;
use wisegraph_gtask::restriction::enumerate_tables;
use wisegraph_gtask::PartitionTable;
use wisegraph_models::ModelKind;
use wisegraph_sim::DeviceSpec;

/// The three search stages of Figure 16.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchStage {
    /// Trying graph partition tables.
    GraphPartition,
    /// Trying DFG transformations and kernel groupings.
    OperationPartition,
    /// Differentiated outlier scheduling.
    JointOptimization,
}

/// Throughput observed at each search step (edges/second, forward pass).
#[derive(Clone, Debug, Default)]
pub struct SearchTrace {
    /// `(stage, throughput)` per tuning step, in search order.
    pub points: Vec<(SearchStage, f64)>,
}

impl SearchTrace {
    /// Best throughput reached up to and including each point.
    pub fn best_so_far(&self) -> Vec<f64> {
        let mut best = 0.0f64;
        self.points
            .iter()
            .map(|&(_, t)| {
                best = best.max(t);
                best
            })
            .collect()
    }
}

/// The result of optimizing one model on one graph.
#[derive(Clone, Debug)]
pub struct OptimizedModel {
    /// The chosen per-layer plans.
    pub per_layer: Vec<ExecutionPlan>,
    /// Simulated training time per iteration (forward + backward).
    pub time_per_iter: f64,
    /// Peak device memory in bytes.
    pub memory_bytes: f64,
    /// Whether the plan exceeds device memory.
    pub oom: bool,
    /// The tuning trace (Figure 16).
    pub trace: SearchTrace,
}

/// The WiseGraph optimizer: searches the joint space of graph and operation
/// partition plans for a model on a graph.
pub struct WiseGraph {
    /// Device model used for pricing plans.
    pub device: DeviceSpec,
    /// `Exact(k)` batch sizes swept during plan enumeration.
    pub batch_sizes: Vec<u64>,
    cache: Mutex<HashMap<String, f64>>,
    stats: Mutex<SearchStats>,
}

/// Counters for the tuning-cost analysis (§6.3, Table 3).
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Plans rejected by the cost model without full evaluation.
    pub pruned: usize,
    /// Evaluations answered from the plan cache.
    pub cache_hits: usize,
    /// Full plan evaluations performed.
    pub evaluated: usize,
}

impl WiseGraph {
    /// Creates an optimizer for a device with the default batch sweep.
    pub fn new(device: DeviceSpec) -> Self {
        Self {
            device,
            batch_sizes: vec![32, 64, 128, 256],
            cache: Mutex::new(HashMap::new()),
            stats: Mutex::new(SearchStats::default()),
        }
    }

    /// Returns the accumulated search statistics.
    pub fn stats(&self) -> SearchStats {
        *self.stats.lock().unwrap()
    }

    fn cached_estimate(
        &self,
        key: String,
        g: &Graph,
        plan: &ExecutionPlan,
    ) -> f64 {
        if let Some(&t) = self.cache.lock().unwrap().get(&key) {
            self.stats.lock().unwrap().cache_hits += 1;
            return t;
        }
        let t = plan.estimate(g, &self.device).time;
        self.cache.lock().unwrap().insert(key, t);
        self.stats.lock().unwrap().evaluated += 1;
        t
    }

    /// Cost-model score of a partition table (§6.3): predicted time from
    /// workload, memory volume and parallelism *without* running the
    /// partitioner or pricing a full plan. The expected batch is read off
    /// the table's `Exact` bounds; the score combines compute at the batch's
    /// efficiency with memory traffic at its coalescing level.
    fn table_score(
        &self,
        table: &PartitionTable,
        workload: &analysis::Workload,
    ) -> f64 {
        let batch = table
            .exact_attrs()
            .iter()
            .map(|&(_, k)| k)
            .max()
            .unwrap_or(1)
            .min(4096) as usize;
        let class = if batch <= 1 {
            wisegraph_sim::ComputeClass::EdgeWise
        } else {
            wisegraph_sim::ComputeClass::Batched { k: batch }
        };
        workload.flops() / self.device.effective_flops(class)
            + workload.bytes() / self.device.effective_bw(class)
    }

    /// Runs the three-stage search and returns the optimized model plus
    /// its trace.
    pub fn optimize(&self, g: &Graph, model: ModelKind, dims: &LayerDims) -> OptimizedModel {
        let repr_dfg = model.layer_dfg(dims.hidden, dims.hidden);
        let attrs: Vec<_> = analysis::indexing_attrs(&repr_dfg).into_iter().collect();
        let tables = enumerate_tables(&attrs, &self.batch_sizes);
        let edges = g.num_edges() as f64;
        let mut trace = SearchTrace::default();

        // Stage 1 — graph partition: original DFG, fused kernels. The cost
        // model prunes tables whose predicted time is far above the best
        // score seen, without partitioning them.
        let binding = Binding::from_graph(g);
        let base_workload = analysis::workload(&repr_dfg, &binding);
        let mut best_table: Option<(PartitionTable, f64)> = None;
        let mut best_score = f64::INFINITY;
        for table in tables {
            let score = self.table_score(&table, &base_workload);
            if score > 4.0 * best_score {
                self.stats.lock().unwrap().pruned += 1;
                continue;
            }
            best_score = best_score.min(score);
            let plan = ExecutionPlan::build_untransformed(
                g,
                table.clone(),
                &repr_dfg,
                OpPartitionKind::Fused,
            );
            let key = format!("g|{}|{}|{}x{}", table, model.name(), dims.hidden, dims.hidden);
            let t = self.cached_estimate(key, g, &plan);
            trace.points.push((SearchStage::GraphPartition, edges / t));
            if best_table.as_ref().is_none_or(|(_, bt)| t < *bt) {
                best_table = Some((table, t));
            }
        }
        let (table, _) = best_table.expect("at least one table survives");

        // Stage 2 — operation partition: DFG transformation × grouping.
        // Variants whose DFG-level workload (computation + memory volume)
        // is far above the best candidate's are ruled out by the cost
        // model without pricing (§6.3 pruning).
        let mut best: Option<(ExecutionPlan, f64)> = None;
        let mut best_stage2_cost = f64::INFINITY;
        for transformed in [true, false] {
            for op in OpPartitionKind::ALL {
                let plan = if transformed {
                    ExecutionPlan::build(g, table.clone(), &repr_dfg, op)
                } else {
                    ExecutionPlan::build_untransformed(g, table.clone(), &repr_dfg, op)
                };
                let cost = transform::transform_cost(&analysis::workload(
                    &plan.dfg, &binding,
                ));
                if cost > 10.0 * best_stage2_cost {
                    self.stats.lock().unwrap().pruned += 1;
                    continue;
                }
                best_stage2_cost = best_stage2_cost.min(cost);
                let key = format!(
                    "o|{}|{}|{}|{:?}|{}",
                    table,
                    model.name(),
                    transformed,
                    op,
                    dims.hidden
                );
                let t = self.cached_estimate(key, g, &plan);
                trace
                    .points
                    .push((SearchStage::OperationPartition, edges / t));
                if best.as_ref().is_none_or(|(_, bt)| t < *bt) {
                    best = Some((plan, t));
                }
            }
        }
        let (best_plan, best_time) = best.expect("operation partition produced a plan");

        // Stage 3 — joint optimization: differentiated outlier scheduling.
        let cmp = compare_scheduling(&best_plan, g, &self.device, &DifferentiationConfig::default());
        let joint_time = (best_time - cmp.uniform + cmp.differentiated).max(best_time * 0.05);
        trace
            .points
            .push((SearchStage::JointOptimization, edges / joint_time));

        // Apply the chosen configuration to every layer.
        let joint_gain = joint_time / best_time;
        let mut total = 0.0;
        let mut transient: f64 = 0.0;
        let mut per_layer = Vec::new();
        for l in 0..dims.layers {
            let (fi, fo) = dims.layer_io(l);
            let dfg = model.layer_dfg(fi, fo);
            let plan = ExecutionPlan::build(g, table.clone(), &dfg, best_plan.op_partition);
            let est = plan.estimate(g, &self.device);
            total += est.time * joint_gain;
            transient = transient.max(est.transient_bytes);
            per_layer.push(plan);
        }
        let memory = persistent_bytes(g, dims) + transient;
        OptimizedModel {
            per_layer,
            time_per_iter: total * TRAIN_FACTOR,
            memory_bytes: memory,
            oom: memory > self.device.mem_capacity,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_baselines::Baseline;
    use wisegraph_graph::DatasetKind;

    #[test]
    fn wisegraph_beats_all_baselines_on_complex_models() {
        // The headline claim (C1): ~2× over the best baseline for models
        // with complex neural operations.
        let spec = DatasetKind::Arxiv.spec();
        let g = spec.build();
        let dev = DeviceSpec::a100_pcie();
        let dims = LayerDims::paper_single(spec.feature_dim, spec.num_classes);
        let wg = WiseGraph::new(dev);
        for model in [ModelKind::Rgcn, ModelKind::Gat] {
            let ours = wg.optimize(&g, model, &dims);
            let best_baseline = Baseline::columns_for(model)
                .into_iter()
                .map(|b| b.estimate(&g, model, &dims, &dev).time_per_iter)
                .fold(f64::INFINITY, f64::min);
            assert!(
                ours.time_per_iter < best_baseline,
                "{}: ours {} vs best baseline {}",
                model.name(),
                ours.time_per_iter,
                best_baseline
            );
        }
    }

    #[test]
    fn search_trace_improves_monotonically_in_best_so_far() {
        let spec = DatasetKind::Arxiv.spec();
        let g = spec.build();
        let wg = WiseGraph::new(DeviceSpec::a100_pcie());
        let dims = LayerDims::paper_single(spec.feature_dim, spec.num_classes);
        let out = wg.optimize(&g, ModelKind::Rgcn, &dims);
        let best = out.trace.best_so_far();
        assert!(best.len() >= 3, "trace should have several steps");
        for w in best.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // All three stages appear.
        for stage in [
            SearchStage::GraphPartition,
            SearchStage::OperationPartition,
            SearchStage::JointOptimization,
        ] {
            assert!(out.trace.points.iter().any(|&(s, _)| s == stage));
        }
    }

    #[test]
    fn cache_hits_on_repeated_optimization() {
        let spec = DatasetKind::Arxiv.spec();
        let g = spec.build();
        let wg = WiseGraph::new(DeviceSpec::a100_pcie());
        let dims = LayerDims::paper_single(spec.feature_dim, spec.num_classes);
        let _ = wg.optimize(&g, ModelKind::Gcn, &dims);
        let evaluated_first = wg.stats().evaluated;
        let _ = wg.optimize(&g, ModelKind::Gcn, &dims);
        let s = wg.stats();
        assert!(s.cache_hits > 0, "second run should hit the cache");
        assert_eq!(
            s.evaluated, evaluated_first,
            "second run should evaluate nothing new"
        );
    }

    #[test]
    fn pruning_rejects_some_plans() {
        let spec = DatasetKind::Arxiv.spec();
        let g = spec.build();
        let wg = WiseGraph::new(DeviceSpec::a100_pcie());
        let dims = LayerDims::paper_single(spec.feature_dim, spec.num_classes);
        let _ = wg.optimize(&g, ModelKind::Rgcn, &dims);
        assert!(wg.stats().pruned > 0, "{:?}", wg.stats());
    }
}
