//! Sampled-graph training support (§6.3 "Working with sampled graph
//! training", Figure 21).
//!
//! Two observations make WiseGraph practical for sampled training:
//!
//! 1. subgraphs drawn by the same sampler share structure, so a plan tuned
//!    on a few samples transfers to the rest (no per-iteration tuning);
//! 2. graph partitioning by the chosen table can run on CPU threads
//!    overlapped with training, so its overhead hides behind the epoch.

use crate::plan::{ExecutionPlan, OpPartitionKind};
use crate::optimizer::WiseGraph;
use std::collections::HashMap;
use wisegraph_baselines::single::LayerDims;
use wisegraph_graph::sample::{neighbor_sample, SampleConfig};
use wisegraph_graph::{Csr, Graph};
use wisegraph_gtask::{partition, PartitionTable};
use wisegraph_kernels::engine::Engine;
use wisegraph_models::ModelKind;
use wisegraph_obs::clock::Stopwatch;
use wisegraph_obs::{keys, Class, Counters};
use wisegraph_tensor::init;

/// Relative performance of reusing one searched plan across fresh samples,
/// versus re-optimizing per sample (Figure 21a's `full-opt` vs `reuse`).
///
/// Returns the mean, over samples, of `t_optimal / t_reused` (≤ 1).
pub fn plan_reuse_relative_perf(
    g: &Graph,
    model: ModelKind,
    dims: &LayerDims,
    wg: &WiseGraph,
    cfg: &SampleConfig,
    num_samples: usize,
) -> f64 {
    assert!(num_samples >= 2, "need a tuning sample plus test samples");
    let csr = Csr::in_of(g);
    // Tune on the first sample.
    let first = neighbor_sample(g, &csr, cfg);
    let tuned = wg.optimize(&first.graph, model, dims);
    let table = tuned.per_layer[0].table.clone();
    let op = tuned.per_layer[0].op_partition;
    let mut ratios = Vec::new();
    for i in 1..num_samples {
        let sub = neighbor_sample(
            g,
            &csr,
            &SampleConfig {
                seed: cfg.seed + i as u64,
                ..cfg.clone()
            },
        );
        // Reused plan: same table + op partition, re-partition only.
        let dfg = model.layer_dfg(dims.hidden, dims.hidden);
        let reused = ExecutionPlan::build(&sub.graph, table.clone(), &dfg, op);
        let t_reused = reused.estimate(&sub.graph, &wg.device).time;
        // Per-sample optimum.
        let opt = wg.optimize(&sub.graph, model, dims);
        let t_opt = opt.time_per_iter
            / (dims.layers as f64 * wisegraph_baselines::single::TRAIN_FACTOR);
        ratios.push((t_opt / t_reused).min(1.0));
    }
    ratios.iter().sum::<f64>() / ratios.len() as f64
}

/// Wall-clock times of sampling alone versus sampling plus plan-driven
/// partitioning, with the partitioning fanned out over `threads` CPU
/// threads (Figure 21b). Returns `(sample_seconds, sample_plus_partition
/// _seconds)` for `num_samples` subgraphs.
pub fn sampling_overhead(
    g: &Graph,
    table: &PartitionTable,
    cfg: &SampleConfig,
    num_samples: usize,
    threads: usize,
) -> (f64, f64) {
    assert!(threads > 0, "need at least one thread");
    let csr = Csr::in_of(g);
    let t = Stopwatch::start();
    let subs: Vec<_> = (0..num_samples)
        .map(|i| {
            neighbor_sample(
                g,
                &csr,
                &SampleConfig {
                    seed: cfg.seed + i as u64,
                    ..cfg.clone()
                },
            )
        })
        .collect();
    let sample_time = t.elapsed_seconds();

    let t = Stopwatch::start();
    std::thread::scope(|s| {
        for chunk in subs.chunks(num_samples.div_ceil(threads)) {
            s.spawn(move || {
                for sub in chunk {
                    let plan = partition(&sub.graph, table);
                    std::hint::black_box(plan.num_tasks());
                }
            });
        }
    });
    let partition_time = t.elapsed_seconds();
    (sample_time, sample_time + partition_time)
}

/// Deterministic work accounting for the partition fan-out in
/// [`sampling_overhead`]: draws the same subgraphs, splits them across
/// `threads` workers exactly as the timed path does
/// (`chunks(num_samples.div_ceil(threads))`), and records the number of
/// edges partitioned by each worker under the `fanout.*` counter keys:
/// `fanout.worker.NN.edges` per worker, [`keys::FANOUT_TOTAL_EDGES`]
/// summed across workers, and [`keys::FANOUT_CRITICAL_EDGES`] — the
/// longest per-worker entry, i.e. the fan-out's critical path — so
/// overhead claims can be asserted on work counters instead of noisy
/// wall-clock times. All keys are [`Class::Work`].
pub fn partition_fanout_work(
    g: &Graph,
    table: &PartitionTable,
    cfg: &SampleConfig,
    num_samples: usize,
    threads: usize,
) -> Counters {
    assert!(threads > 0, "need at least one thread");
    let csr = Csr::in_of(g);
    let subs: Vec<_> = (0..num_samples)
        .map(|i| {
            neighbor_sample(
                g,
                &csr,
                &SampleConfig {
                    seed: cfg.seed + i as u64,
                    ..cfg.clone()
                },
            )
        })
        .collect();
    let mut c = Counters::new();
    for (w, chunk) in subs.chunks(num_samples.div_ceil(threads)).enumerate() {
        let edges: u64 = chunk
            .iter()
            .map(|sub| partition(&sub.graph, table).total_edges() as u64)
            .sum();
        c.add(keys::fanout_worker_edges(w), edges);
        c.add(keys::FANOUT_TOTAL_EDGES, edges);
        c.record_max(keys::FANOUT_CRITICAL_EDGES, edges, Class::Work);
    }
    c
}

/// Executes one GCN layer on each of `num_samples` sampled subgraphs
/// through a single persistent [`Engine`], returning the merged workspace
/// counters.
///
/// This is the buffer-pool analogue of plan reuse (observation 1 above):
/// subgraphs drawn by the same sampler have similar sizes, so they fall
/// into the same power-of-two size classes and the engine's per-worker
/// pools — warmed by the first sample — serve every later sample without
/// fresh allocation.
///
/// # Panics
///
/// Panics if `threads == 0` or the GCN layer fails to compile per task.
pub fn sampled_execution_reuse(
    g: &Graph,
    table: &PartitionTable,
    cfg: &SampleConfig,
    num_samples: usize,
    threads: usize,
    (f_in, f_out): (usize, usize),
) -> Counters {
    let csr = Csr::in_of(g);
    let engine = Engine::new(threads);
    let dfg = ModelKind::Gcn.layer_dfg(f_in, f_out);
    let w = init::uniform_tensor(&[f_in, f_out], -1.0, 1.0, cfg.seed ^ 0x5EED);
    for i in 0..num_samples {
        let sub = neighbor_sample(
            g,
            &csr,
            &SampleConfig {
                seed: cfg.seed + i as u64,
                ..cfg.clone()
            },
        );
        let plan = partition(&sub.graph, table);
        let mut globals = HashMap::new();
        globals.insert(
            "h".to_string(),
            init::uniform_tensor(
                &[sub.graph.num_vertices(), f_in],
                -1.0,
                1.0,
                cfg.seed + i as u64,
            ),
        );
        globals.insert("w".to_string(), w.clone());
        engine
            .execute(&dfg, &sub.graph, &plan, &globals)
            .expect("GCN layer executes per task");
    }
    engine.stats()
}

/// Convenience: one full sampled-training iteration estimate (sample →
/// partition with a reused plan → simulated execution).
pub fn sampled_iteration_estimate(
    g: &Graph,
    model: ModelKind,
    dims: &LayerDims,
    wg: &WiseGraph,
    table: &PartitionTable,
    op: OpPartitionKind,
    seed: u64,
) -> f64 {
    let csr = Csr::in_of(g);
    let sub = neighbor_sample(g, &csr, &SampleConfig::paper_default(seed));
    let mut total = 0.0;
    for l in 0..dims.layers {
        let (fi, fo) = dims.layer_io(l);
        let dfg = model.layer_dfg(fi, fo);
        let plan = ExecutionPlan::build(&sub.graph, table.clone(), &dfg, op);
        total += plan.estimate(&sub.graph, &wg.device).time;
    }
    total * wisegraph_baselines::single::TRAIN_FACTOR
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_graph::generate::{rmat, RmatParams};
    use wisegraph_sim::DeviceSpec;

    fn parent_graph() -> Graph {
        rmat(&RmatParams::standard(20_000, 200_000, 31).with_edge_types(4))
    }

    #[test]
    fn reused_plans_stay_near_optimal() {
        // Figure 21a: reuse achieves ~91% of full optimization.
        let g = parent_graph();
        let wg = WiseGraph::new(DeviceSpec::a100_pcie());
        let dims = LayerDims {
            f_in: 64,
            hidden: 64,
            classes: 16,
            layers: 2,
        };
        let cfg = SampleConfig {
            num_seeds: 200,
            fanouts: vec![10, 10],
            seed: 1,
        };
        let rel =
            plan_reuse_relative_perf(&g, ModelKind::Rgcn, &dims, &wg, &cfg, 3);
        assert!(
            rel > 0.6,
            "reused plan should stay near optimal, got {rel}"
        );
    }

    #[test]
    fn more_threads_shrink_partition_overhead() {
        // The wall-clock version of this assertion was flaky (CI boxes may
        // expose one core, where fanning out cannot win), so the claim is
        // made on deterministic work counters: fanning the same samples
        // over 4 workers conserves total partitioning work while strictly
        // shrinking the per-worker critical path.
        let g = parent_graph();
        let cfg = SampleConfig {
            num_seeds: 800,
            fanouts: vec![15, 10],
            seed: 5,
        };
        let table = PartitionTable::two_d(8);
        let w1 = partition_fanout_work(&g, &table, &cfg, 8, 1);
        let w4 = partition_fanout_work(&g, &table, &cfg, 8, 4);
        let workers = |c: &Counters| {
            (0..8)
                .map(|i| c.count(&keys::fanout_worker_edges(i)))
                .filter(|&e| e > 0)
                .count()
        };
        assert_eq!(workers(&w1), 1);
        assert_eq!(workers(&w4), 4, "8 samples over 4 workers → 4 chunks of 2");
        let total = w1.count(keys::FANOUT_TOTAL_EDGES);
        assert!(total > 0, "samples must contain edges");
        assert_eq!(
            w1.count(keys::FANOUT_CRITICAL_EDGES),
            total,
            "one worker's critical path is the whole job"
        );
        assert_eq!(
            w4.count(keys::FANOUT_TOTAL_EDGES),
            total,
            "fan-out must conserve total partitioning work"
        );
        let critical = w4.count(keys::FANOUT_CRITICAL_EDGES);
        assert!(
            critical < total,
            "critical path {critical} must shrink below the serial total {total}"
        );
        let again = partition_fanout_work(&g, &table, &cfg, 8, 4);
        assert_eq!(
            wisegraph_obs::counters_to_json(&again),
            wisegraph_obs::counters_to_json(&w4),
            "work accounting must be deterministic run to run"
        );
        // The timed path still exists and agrees on shape; its durations
        // are reported, not asserted.
        let (s, t) = sampling_overhead(&g, &table, &cfg, 2, 2);
        assert!(t >= s);
    }

    #[test]
    fn persistent_engine_recycles_across_samples() {
        let g = rmat(&RmatParams::standard(5_000, 40_000, 13));
        let cfg = SampleConfig {
            num_seeds: 100,
            fanouts: vec![10, 5],
            seed: 21,
        };
        let stats = sampled_execution_reuse(
            &g,
            &PartitionTable::edge_batch(64),
            &cfg,
            4,
            2,
            (16, 8),
        );
        assert!(
            stats.count(keys::POOL_REUSED) > 0,
            "samples after the first must reuse"
        );
        let ratio = wisegraph_obs::pool_reuse_ratio(&stats);
        assert!(ratio > 0.5, "pool should serve most checkouts, ratio {ratio}");
    }

    #[test]
    fn sampled_iteration_estimate_is_positive() {
        let g = parent_graph();
        let wg = WiseGraph::new(DeviceSpec::a100_pcie());
        let dims = LayerDims {
            f_in: 64,
            hidden: 64,
            classes: 16,
            layers: 3,
        };
        let t = sampled_iteration_estimate(
            &g,
            ModelKind::Sage,
            &dims,
            &wg,
            &PartitionTable::edge_batch(64),
            OpPartitionKind::Fused,
            7,
        );
        assert!(t > 0.0);
    }
}
