//! The dynamic-graph planning driver: incremental repair + cache reuse.
//!
//! A [`DynamicPlanner`] owns the three pieces the delta path needs and
//! keeps them coherent:
//!
//! 1. an [`IncrementalPlan`] that repairs only the gTasks an edge
//!    insert/delete stream touches (O(delta), not O(E log E));
//! 2. a content-addressed [`PlanCache`] whose entries are keyed by the
//!    live edge set's content hash, so a delta invalidates exactly the
//!    entries of the *previous* live set — transformed DFGs and compiled
//!    programs keyed by the full graph survive untouched;
//! 3. the `C001` verifier ([`verify_repair`]): after every batch the
//!    repaired snapshot must verify identically to a from-scratch
//!    partition of the same live set. If it does not — which would mean a
//!    repair bug, not bad input — the planner falls back to a rebuild and
//!    reports the divergence instead of caching a corrupt plan.
//!
//! The verified snapshot is then seeded back into the cache under the new
//! live-set key, so the next [`DynamicPlanner::plan`] (and every engine
//! run behind it) is a hit.

use std::collections::HashMap;

use wisegraph_analysis::repair::verify_repair;
use wisegraph_analysis::{Diagnostic, Severity};
use wisegraph_cache::PlanCache;
use wisegraph_dfg::Dfg;
use wisegraph_graph::Graph;
use wisegraph_gtask::{
    DeltaStats, GraphDelta, IncrementalPlan, PartitionPlan, PartitionTable,
};
use wisegraph_kernels::engine::Engine;
use wisegraph_kernels::micro::CompileError;
use wisegraph_obs::{span, Counters};
use wisegraph_tensor::Tensor;

/// What one delta batch did: the raw apply stats, the repair verifier's
/// findings, and how the cache reacted.
#[derive(Clone, Debug)]
pub struct RepairOutcome {
    /// Insert/delete/ignore accounting from the incremental apply.
    pub stats: DeltaStats,
    /// `C001` findings of the repaired snapshot (empty on a clean repair).
    pub diagnostics: Vec<Diagnostic>,
    /// True when the verifier rejected the repair and the planner rebuilt
    /// the plan from scratch instead of trusting it.
    pub rebuilt: bool,
    /// Cache entries dropped because their live-set key went stale.
    pub invalidated: usize,
}

impl RepairOutcome {
    /// True when the repair verified clean (no error-severity findings).
    pub fn is_clean(&self) -> bool {
        self.diagnostics
            .iter()
            .all(|d| d.severity != Severity::Error)
    }
}

/// Incremental planning driver for a mutating edge set over a fixed
/// universe graph.
#[derive(Debug)]
pub struct DynamicPlanner {
    cache: PlanCache,
    inc: IncrementalPlan,
    /// Content key of the *current* live set — the component under which
    /// this planner's cache entries are filed, and the one invalidated
    /// when the next delta changes the set.
    graph_key: u64,
}

impl DynamicPlanner {
    /// Creates a planner with every edge of `g` live, seeding the cache
    /// with the initial (full) partition so the first lookup hits.
    pub fn new(g: &Graph, table: PartitionTable) -> Self {
        let inc = IncrementalPlan::new(g, table);
        let graph_key = PlanCache::graph_key(g);
        let mut cache = PlanCache::new();
        cache.insert_plan(graph_key, &inc.snapshot(g));
        Self {
            cache,
            inc,
            graph_key,
        }
    }

    /// The canonical cache key of a live set: the full-graph hash when
    /// every edge is live (so the static and dynamic paths share entries),
    /// the subset hash otherwise. `live` must be sorted ascending.
    fn key_for(g: &Graph, live: &[usize]) -> u64 {
        if live.len() == g.num_edges() {
            PlanCache::graph_key(g)
        } else {
            PlanCache::graph_edges_key(g, live)
        }
    }

    /// Applies one insert/delete batch: repairs the affected gTasks,
    /// verifies the repaired snapshot against a from-scratch partition
    /// (`C001`), invalidates exactly the cache entries keyed by the old
    /// live set, and seeds the verified plan under the new key.
    pub fn apply(&mut self, g: &Graph, delta: &GraphDelta) -> RepairOutcome {
        let _sp = span!(
            "core.dynamic.apply",
            inserts = delta.insert.len(),
            deletes = delta.delete.len()
        );
        let stats = self.inc.apply(g, delta);
        let live = self.inc.live_edges();
        let mut snap = self.inc.snapshot(g);
        let diagnostics = verify_repair(g, self.inc.table(), &live, &snap);
        let rebuilt = diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error);
        if rebuilt {
            // Never cache a plan the verifier rejected: rebuild from the
            // live set and serve that instead.
            self.inc = IncrementalPlan::new_over(g, self.inc.table().clone(), &live);
            snap = self.inc.snapshot(g);
        }
        let invalidated = self.cache.invalidate_graph(self.graph_key);
        self.graph_key = Self::key_for(g, &live);
        self.cache.insert_plan(self.graph_key, &snap);
        RepairOutcome {
            stats,
            diagnostics,
            rebuilt,
            invalidated,
        }
    }

    /// The current partition plan over the live edge set, served through
    /// the cache (a hit after every [`DynamicPlanner::apply`], since apply
    /// seeds the repaired snapshot).
    pub fn plan(&mut self, g: &Graph) -> PartitionPlan {
        let live = self.inc.live_edges();
        self.cache.partition_edges_cached(g, self.inc.table(), &live)
    }

    /// Plans and executes `base_dfg` over the live edge set: cached
    /// transform, cached compile, cached partition, then
    /// [`Engine::execute_program`] — a fully warm call never partitions,
    /// rewrites, or compiles.
    pub fn execute(
        &mut self,
        g: &Graph,
        base_dfg: &Dfg,
        globals: &HashMap<String, Tensor>,
        engine: &Engine,
    ) -> Result<Vec<Tensor>, CompileError> {
        let plan = self.plan(g);
        let dfg = self.cache.transform_cached(g, base_dfg);
        let program = self.cache.compile_cached(g, &dfg)?;
        engine.execute_program(&program, &dfg, g, &plan, globals)
    }

    /// Edges currently live, ascending.
    pub fn live_edges(&self) -> Vec<usize> {
        self.inc.live_edges()
    }

    /// Number of live edges.
    pub fn num_live_edges(&self) -> usize {
        self.inc.num_live_edges()
    }

    /// The underlying incremental plan (read-only).
    pub fn incremental(&self) -> &IncrementalPlan {
        &self.inc
    }

    /// The underlying cache (read-only; for hit/miss assertions).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Records the cache's Resource-class counters into `c`.
    pub fn record_counters(&self, c: &mut Counters) {
        self.cache.record_counters(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_graph::generate::{rmat, RmatParams};
    use wisegraph_models::ModelKind;
    use wisegraph_tensor::init;

    fn graph() -> Graph {
        rmat(&RmatParams::standard(60, 400, 51).with_edge_types(3))
    }

    fn globals(g: &Graph, fi: usize, fo: usize) -> HashMap<String, Tensor> {
        let mut m = HashMap::new();
        m.insert(
            "h".to_string(),
            init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 7),
        );
        m.insert(
            "w".to_string(),
            init::uniform_tensor(&[fi, fo], -1.0, 1.0, 8),
        );
        m
    }

    #[test]
    fn deltas_repair_verify_clean_and_reseed_the_cache() {
        let g = graph();
        let mut dp = DynamicPlanner::new(&g, PartitionTable::vertex_centric());
        let out = dp.apply(&g, &GraphDelta::deleting(vec![1, 5, 9, 33]));
        assert!(out.is_clean(), "{:#?}", out.diagnostics);
        assert!(!out.rebuilt);
        assert_eq!(out.stats.removed, 4);
        assert!(out.invalidated >= 1, "old live-set entries must drop");
        // The reseeded snapshot serves the next lookup as a hit.
        let before = dp.cache().hits();
        let plan = dp.plan(&g);
        assert_eq!(dp.cache().hits(), before + 1);
        assert_eq!(plan.total_edges(), g.num_edges() - 4);
    }

    #[test]
    fn reinserting_everything_returns_to_the_full_graph_key() {
        let g = graph();
        let mut dp = DynamicPlanner::new(&g, PartitionTable::edge_batch(16));
        dp.apply(&g, &GraphDelta::deleting(vec![2, 3]));
        dp.apply(&g, &GraphDelta::inserting(vec![2, 3]));
        assert_eq!(dp.num_live_edges(), g.num_edges());
        assert_eq!(dp.graph_key, PlanCache::graph_key(&g));
    }

    #[test]
    fn execute_is_fully_warm_after_one_cold_run() {
        let g = graph();
        let base = ModelKind::Gcn.layer_dfg(4, 3);
        let gl = globals(&g, 4, 3);
        let engine = Engine::new(2);
        let mut dp = DynamicPlanner::new(&g, PartitionTable::vertex_centric());
        let cold = dp.execute(&g, &base, &gl, &engine).unwrap();
        let (h0, m0) = (dp.cache().hits(), dp.cache().misses());
        let warm = dp.execute(&g, &base, &gl, &engine).unwrap();
        assert_eq!(dp.cache().misses(), m0, "warm run must not recompute");
        assert_eq!(dp.cache().hits(), h0 + 3, "plan, transform, compile all hit");
        assert_eq!(cold.len(), warm.len());
        for (a, b) in cold.iter().zip(&warm) {
            assert_eq!(a.data(), b.data(), "warm output must be bit-identical");
        }
    }

    #[test]
    fn execute_after_delta_runs_over_the_live_subset() {
        let g = graph();
        let base = ModelKind::Gcn.layer_dfg(4, 3);
        let gl = globals(&g, 4, 3);
        let engine = Engine::new(1);
        let mut dp = DynamicPlanner::new(&g, PartitionTable::vertex_centric());
        let full = dp.execute(&g, &base, &gl, &engine).unwrap();
        let out = dp.apply(&g, &GraphDelta::deleting((0..g.num_edges() / 2).collect()));
        assert!(out.is_clean(), "{:#?}", out.diagnostics);
        let half = dp.execute(&g, &base, &gl, &engine).unwrap();
        assert_eq!(full.len(), half.len());
        // Dropping half the edges must change the aggregation output.
        assert!(full
            .iter()
            .zip(&half)
            .any(|(a, b)| a.data() != b.data()));
    }
}
