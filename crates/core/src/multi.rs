//! Multi-device operation placement (paper §5.4).
//!
//! Communication operations either move or reduce data, so their order
//! with respect to computation can be swapped. WiseGraph picks, per layer,
//! whichever side of the computation has the smaller data volume — the
//! *changing data volume* pattern: if an operation shrinks data along the
//! vertex or embedding dimension, communicate its output; otherwise its
//! input.

use std::sync::OnceLock;

use wisegraph_baselines::multi::{max_remote_unique_src, MultiStack};
use wisegraph_baselines::single::{layer_compute_time, LayerDims, TRAIN_FACTOR};
use wisegraph_graph::Graph;
use wisegraph_models::ModelKind;
use wisegraph_sim::{PlacementKind, PlacementVolumes};

/// This repo's own interpreter-vs-fused executor timings, committed by the
/// `testkit::bench` harness. The per-device compute gain is derived from
/// these rather than hardcoded, so the cost model tracks what the
/// executor actually achieves on this machine.
const EXECUTOR_BENCH: &str = include_str!("../../../results/BENCH_executor.json");

/// Paper fallbacks (§7.2): single-GPU speedups of ~2.6× for complex
/// models and ~1.13× for simple ones. Used only if the committed bench
/// file is missing the interp/fused timing pairs.
const PAPER_SPEEDUP_COMPLEX: f64 = 2.6;
const PAPER_SPEEDUP_SIMPLE: f64 = 1.13;

/// Parses `(complex, simple)` fused-over-interp speedups out of the bench
/// JSON: for every `(group, case)` with a `{case}_interp` counterpart the
/// ratio `interp_median / fused_median` is one sample; samples geomean per
/// model class (complex = rgcn + gat, simple = gcn + sage).
fn parse_speedups(text: &str) -> Option<(f64, f64)> {
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let pat = format!("\"{key}\": ");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        let end = rest.find([',', '}'])?;
        Some(rest[..end].trim().trim_matches('"'))
    }
    let mut medians = std::collections::BTreeMap::new();
    for line in text.lines() {
        if let (Some(g), Some(c), Some(m)) = (
            field(line, "group"),
            field(line, "case"),
            field(line, "median_ns"),
        ) {
            if let Ok(ns) = m.parse::<f64>() {
                medians.insert((g.to_string(), c.to_string()), ns);
            }
        }
    }
    let mut log_sum = [0.0f64; 2];
    let mut count = [0usize; 2];
    for ((group, case), interp_ns) in &medians {
        let Some(base) = case.strip_suffix("_interp") else {
            continue;
        };
        let Some(fused_ns) = medians.get(&(group.clone(), base.to_string())) else {
            continue;
        };
        if *fused_ns <= 0.0 || *interp_ns <= 0.0 {
            continue;
        }
        let class = match group.as_str() {
            "rgcn" | "gat" => 0,
            "gcn" | "sage" => 1,
            _ => continue,
        };
        log_sum[class] += (interp_ns / fused_ns).ln();
        count[class] += 1;
    }
    if count[0] == 0 || count[1] == 0 {
        return None;
    }
    Some((
        (log_sum[0] / count[0] as f64).exp(),
        (log_sum[1] / count[1] as f64).exp(),
    ))
}

/// `(complex, simple)` single-device speedups of the fused executor over
/// the interpreter, measured from the committed bench results (paper
/// constants as fallback).
fn measured_speedups() -> (f64, f64) {
    static SPEEDUPS: OnceLock<(f64, f64)> = OnceLock::new();
    *SPEEDUPS.get_or_init(|| {
        parse_speedups(EXECUTOR_BENCH)
            .unwrap_or((PAPER_SPEEDUP_COMPLEX, PAPER_SPEEDUP_SIMPLE))
    })
}

/// WiseGraph's per-device compute gain relative to the DGL-style kernels:
/// the inverse of the measured single-device fused-executor speedup for
/// the model's class.
fn compute_gain(model: ModelKind) -> f64 {
    let (complex, simple) = measured_speedups();
    1.0 / if model.is_complex() { complex } else { simple }
}

/// Communication time for one layer under the best placement.
///
/// Candidates (Figure 11 — the execution order of communication and
/// computation can be swapped because collectives move or reduce data):
/// - data parallel, communicate-then-compute: all-to-all of the unique
///   remote *input* embeddings (`remote × f_in`);
/// - project-then-communicate (MLP placed on the remote device, Fig. 11c):
///   all-to-all of the projected embeddings (`remote × f_out`) — wins when
///   the volume shrinks at the embedding dimension;
/// - compute-then-reduce (index-add placed on all devices, Fig. 11d):
///   partial aggregates reduced at the *output* volume (`V × f_out`
///   reduce-scatter) — wins when the volume shrinks at the vertex
///   dimension.
///
/// The payload arithmetic lives in [`wisegraph_sim::PlacementVolumes`],
/// shared with the sharded executor's placement selector
/// (`crate::sharded`), so predicted and executed decisions use identical
/// formulas. The closed-form model prices only the three Figure-11
/// candidates: whether tensor parallelism is even expressible for a layer
/// depends on its compiled program (a sliceable weight, no dst-complete
/// reduction), which only the executor can check.
pub fn best_placement_comm(
    g: &Graph,
    stack: &MultiStack,
    f_in: usize,
    f_out: usize,
) -> f64 {
    let remote = max_remote_unique_src(g, stack.fabric.num_devices);
    let vols = PlacementVolumes::new(remote, g.num_vertices(), f_in, f_out, f_in);
    vols.best(
        &[
            PlacementKind::DataParallel,
            PlacementKind::ProjectThenCommunicate,
            PlacementKind::ComputeThenReduce,
        ],
        &stack.fabric,
    )
    .1
}

/// Per-iteration multi-device training time for WiseGraph.
pub fn iteration_time(
    g: &Graph,
    model: ModelKind,
    dims: &LayerDims,
    stack: &MultiStack,
) -> f64 {
    let d = stack.fabric.num_devices as f64;
    let gain = compute_gain(model);
    let mut total = 0.0;
    for l in 0..dims.layers {
        let (fi, fo) = dims.layer_io(l);
        let comp = layer_compute_time(g, model, fi, fo, &stack.device) * gain / d;
        let comm = best_placement_comm(g, stack, fi, fo);
        // gTask-level pipelining: communication for one set of gTasks
        // overlaps computation of another (§5.4 placement at gTask
        // granularity), so a layer costs the longer of the two streams.
        total += comp.max(comm) * TRAIN_FACTOR;
    }
    total
}

/// First-GCN-layer time (the Figure 20 sweep) for WiseGraph.
pub fn first_layer_time(g: &Graph, f_in: usize, hidden: usize, stack: &MultiStack) -> f64 {
    let d = stack.fabric.num_devices as f64;
    let comp = layer_compute_time(g, ModelKind::Gcn, f_in, hidden, &stack.device)
        * compute_gain(ModelKind::Gcn)
        / d;
    let comm = best_placement_comm(g, stack, f_in, hidden);
    comp.max(comm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_baselines::MultiGpuSystem;
    use wisegraph_graph::DatasetKind;

    #[test]
    fn gains_derive_from_committed_executor_timings() {
        // The committed bench file must actually parse — the paper
        // constants are a fallback, not the normal path.
        let (complex, simple) = parse_speedups(EXECUTOR_BENCH)
            .expect("results/BENCH_executor.json has interp/fused pairs");
        // Fused execution is a real speedup for both classes, and the
        // complex models (batched typed matmuls fuse away more interpreter
        // overhead) gain more than the simple ones — the shape §7.2 reports.
        assert!(complex > 1.0 && simple > 1.0, "{complex} {simple}");
        assert!(complex > simple, "{complex} vs {simple}");
        assert!(compute_gain(ModelKind::Rgcn) < compute_gain(ModelKind::Gcn));
        assert!((compute_gain(ModelKind::Gcn) - 1.0 / simple).abs() < 1e-12);
    }

    #[test]
    fn ours_beats_dgl_and_p3_across_hidden_dims() {
        // Figure 20: WiseGraph "consistently achieves the shortest
        // execution time" while DGL and P3 each lose in some regime.
        let g = DatasetKind::FriendSterSample.spec().build();
        let stack = MultiStack::paper_quad();
        let f_in = 384;
        for hidden in [32usize, 64, 128, 256, 512, 1024] {
            let ours = first_layer_time(&g, f_in, hidden, &stack);
            let dgl = MultiGpuSystem::Dgl.first_layer_time(&g, f_in, hidden, &stack);
            let p3 = MultiGpuSystem::P3.first_layer_time(&g, f_in, hidden, &stack);
            assert!(
                ours <= dgl * 1.001 && ours <= p3 * 1.001,
                "hidden {hidden}: ours {ours}, dgl {dgl}, p3 {p3}"
            );
        }
    }

    #[test]
    fn placement_picks_smaller_volume() {
        let g = DatasetKind::PapersSample.spec().build();
        let stack = MultiStack::paper_quad();
        // Huge input features, tiny output: communicating after the
        // projection (volume shrinks at the embedding dimension) wins —
        // and is far below the input-side volume.
        let comm_small_out = best_placement_comm(&g, &stack, 1024, 8);
        let remote = max_remote_unique_src(&g, 4) as f64;
        let projected = stack.fabric.all_to_all(remote * 8.0 * 4.0);
        let out_side = stack.fabric.reduce_scatter(g.num_vertices() as f64 * 8.0 * 4.0);
        assert!((comm_small_out - projected.min(out_side)).abs() <= f64::EPSILON);
        let in_side = stack.fabric.all_to_all(remote * 1024.0 * 4.0);
        assert!(comm_small_out < in_side / 10.0);
        // Tiny input, huge output: input-side wins.
        let comm_small_in = best_placement_comm(&g, &stack, 8, 1024);
        let remote = max_remote_unique_src(&g, 4) as f64;
        let in_side = stack.fabric.all_to_all(remote * 8.0 * 4.0);
        assert!((comm_small_in - in_side).abs() / in_side < 1e-9);
    }

    #[test]
    fn full_epoch_beats_table2_baselines() {
        // Table 2 shape: WiseGraph fastest on full-graph multi-GPU.
        let g = DatasetKind::Papers.spec().build();
        let stack = MultiStack::paper_quad();
        let dims = LayerDims {
            f_in: 128,
            hidden: 32,
            classes: 172,
            layers: 3,
        };
        let ours = iteration_time(&g, ModelKind::Sage, &dims, &stack);
        for sys in [MultiGpuSystem::Dgl, MultiGpuSystem::Roc, MultiGpuSystem::Dgcl] {
            let t = sys.iteration_time(&g, ModelKind::Sage, &dims, &stack);
            assert!(ours < t, "{}: ours {ours} vs {t}", sys.name());
        }
    }
}
