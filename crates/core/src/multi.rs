//! Multi-device operation placement (paper §5.4).
//!
//! Communication operations either move or reduce data, so their order
//! with respect to computation can be swapped. WiseGraph picks, per layer,
//! whichever side of the computation has the smaller data volume — the
//! *changing data volume* pattern: if an operation shrinks data along the
//! vertex or embedding dimension, communicate its output; otherwise its
//! input.

use wisegraph_baselines::multi::{max_remote_unique_src, MultiStack};
use wisegraph_baselines::single::{layer_compute_time, LayerDims, TRAIN_FACTOR};
use wisegraph_graph::Graph;
use wisegraph_models::ModelKind;

/// WiseGraph's per-device compute gain relative to the DGL-style kernels,
/// from the single-GPU plan optimization (batched fused kernels): the
/// measured single-GPU speedups are ~2.6× for complex models and ~1.13×
/// for simple ones (§7.2).
fn compute_gain(model: ModelKind) -> f64 {
    if model.is_complex() {
        1.0 / 2.6
    } else {
        1.0 / 1.13
    }
}

/// Communication time for one layer under the best placement.
///
/// Candidates (Figure 11 — the execution order of communication and
/// computation can be swapped because collectives move or reduce data):
/// - data parallel, communicate-then-compute: all-to-all of the unique
///   remote *input* embeddings (`remote × f_in`);
/// - project-then-communicate (MLP placed on the remote device, Fig. 11c):
///   all-to-all of the projected embeddings (`remote × f_out`) — wins when
///   the volume shrinks at the embedding dimension;
/// - compute-then-reduce (index-add placed on all devices, Fig. 11d):
///   partial aggregates reduced at the *output* volume (`V × f_out`
///   reduce-scatter) — wins when the volume shrinks at the vertex
///   dimension.
pub fn best_placement_comm(
    g: &Graph,
    stack: &MultiStack,
    f_in: usize,
    f_out: usize,
) -> f64 {
    let remote = max_remote_unique_src(g, stack.fabric.num_devices) as f64;
    let v = g.num_vertices() as f64;
    let input_side = stack.fabric.all_to_all(remote * f_in as f64 * 4.0);
    let projected_side = stack.fabric.all_to_all(remote * f_out as f64 * 4.0);
    let output_side = stack.fabric.reduce_scatter(v * f_out as f64 * 4.0);
    input_side.min(projected_side).min(output_side)
}

/// Per-iteration multi-device training time for WiseGraph.
pub fn iteration_time(
    g: &Graph,
    model: ModelKind,
    dims: &LayerDims,
    stack: &MultiStack,
) -> f64 {
    let d = stack.fabric.num_devices as f64;
    let gain = compute_gain(model);
    let mut total = 0.0;
    for l in 0..dims.layers {
        let (fi, fo) = dims.layer_io(l);
        let comp = layer_compute_time(g, model, fi, fo, &stack.device) * gain / d;
        let comm = best_placement_comm(g, stack, fi, fo);
        // gTask-level pipelining: communication for one set of gTasks
        // overlaps computation of another (§5.4 placement at gTask
        // granularity), so a layer costs the longer of the two streams.
        total += comp.max(comm) * TRAIN_FACTOR;
    }
    total
}

/// First-GCN-layer time (the Figure 20 sweep) for WiseGraph.
pub fn first_layer_time(g: &Graph, f_in: usize, hidden: usize, stack: &MultiStack) -> f64 {
    let d = stack.fabric.num_devices as f64;
    let comp = layer_compute_time(g, ModelKind::Gcn, f_in, hidden, &stack.device)
        * compute_gain(ModelKind::Gcn)
        / d;
    let comm = best_placement_comm(g, stack, f_in, hidden);
    comp.max(comm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_baselines::MultiGpuSystem;
    use wisegraph_graph::DatasetKind;

    #[test]
    fn ours_beats_dgl_and_p3_across_hidden_dims() {
        // Figure 20: WiseGraph "consistently achieves the shortest
        // execution time" while DGL and P3 each lose in some regime.
        let g = DatasetKind::FriendSterSample.spec().build();
        let stack = MultiStack::paper_quad();
        let f_in = 384;
        for hidden in [32usize, 64, 128, 256, 512, 1024] {
            let ours = first_layer_time(&g, f_in, hidden, &stack);
            let dgl = MultiGpuSystem::Dgl.first_layer_time(&g, f_in, hidden, &stack);
            let p3 = MultiGpuSystem::P3.first_layer_time(&g, f_in, hidden, &stack);
            assert!(
                ours <= dgl * 1.001 && ours <= p3 * 1.001,
                "hidden {hidden}: ours {ours}, dgl {dgl}, p3 {p3}"
            );
        }
    }

    #[test]
    fn placement_picks_smaller_volume() {
        let g = DatasetKind::PapersSample.spec().build();
        let stack = MultiStack::paper_quad();
        // Huge input features, tiny output: communicating after the
        // projection (volume shrinks at the embedding dimension) wins —
        // and is far below the input-side volume.
        let comm_small_out = best_placement_comm(&g, &stack, 1024, 8);
        let remote = max_remote_unique_src(&g, 4) as f64;
        let projected = stack.fabric.all_to_all(remote * 8.0 * 4.0);
        let out_side = stack.fabric.reduce_scatter(g.num_vertices() as f64 * 8.0 * 4.0);
        assert!((comm_small_out - projected.min(out_side)).abs() <= f64::EPSILON);
        let in_side = stack.fabric.all_to_all(remote * 1024.0 * 4.0);
        assert!(comm_small_out < in_side / 10.0);
        // Tiny input, huge output: input-side wins.
        let comm_small_in = best_placement_comm(&g, &stack, 8, 1024);
        let remote = max_remote_unique_src(&g, 4) as f64;
        let in_side = stack.fabric.all_to_all(remote * 8.0 * 4.0);
        assert!((comm_small_in - in_side).abs() / in_side < 1e-9);
    }

    #[test]
    fn full_epoch_beats_table2_baselines() {
        // Table 2 shape: WiseGraph fastest on full-graph multi-GPU.
        let g = DatasetKind::Papers.spec().build();
        let stack = MultiStack::paper_quad();
        let dims = LayerDims {
            f_in: 128,
            hidden: 32,
            classes: 172,
            layers: 3,
        };
        let ours = iteration_time(&g, ModelKind::Sage, &dims, &stack);
        for sys in [MultiGpuSystem::Dgl, MultiGpuSystem::Roc, MultiGpuSystem::Dgcl] {
            let t = sys.iteration_time(&g, ModelKind::Sage, &dims, &stack);
            assert!(ours < t, "{}: ours {ours} vs {t}", sys.name());
        }
    }
}
