//! Executable plans and their evaluation.
//!
//! An [`ExecutionPlan`] is the product of joint partitioning for one model
//! layer: the graph partition table (→ gTasks), the (possibly transformed)
//! DFG, the operation partition, and the kernel context derived from the
//! plan's data patterns. Evaluating a plan prices its kernels on the device
//! model and schedules its per-task work onto execution units.

use wisegraph_cache::PlanCache;
use wisegraph_dfg::{transform, Binding, Dfg};
use wisegraph_graph::{AttrKind, Graph};
use wisegraph_gtask::{partition, PartitionPlan, PartitionTable};
use wisegraph_kernels::{
    generate::{boundary_bytes, generate_kernels},
    GeneratedKernel, KernelContext, OpPartition,
};
use wisegraph_sim::{schedule, ComputeClass, DeviceSpec};

/// How the operation partition groups the DFG.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpPartitionKind {
    /// Every op in its own kernel.
    Separate,
    /// Everything fused.
    Fused,
    /// Dense producers separate, per-edge chain fused.
    DenseSeparateRestFused,
}

impl OpPartitionKind {
    /// All candidates considered by the optimizer.
    pub const ALL: [OpPartitionKind; 3] = [
        OpPartitionKind::Separate,
        OpPartitionKind::Fused,
        OpPartitionKind::DenseSeparateRestFused,
    ];

    /// Builds the concrete partition for a DFG.
    pub fn build(self, dfg: &Dfg) -> OpPartition {
        match self {
            OpPartitionKind::Separate => OpPartition::separate(dfg),
            OpPartitionKind::Fused => OpPartition::fused(dfg),
            OpPartitionKind::DenseSeparateRestFused => {
                OpPartition::dense_separate_rest_fused(dfg)
            }
        }
    }
}

/// One layer's joint plan.
#[derive(Clone, Debug)]
pub struct ExecutionPlan {
    /// The graph partition table.
    pub table: PartitionTable,
    /// The generated gTasks.
    pub partition: PartitionPlan,
    /// The (possibly transformed) DFG.
    pub dfg: Dfg,
    /// Operation partition choice.
    pub op_partition: OpPartitionKind,
    /// Kernel-generation context derived from the plan's data patterns.
    pub ctx: KernelContext,
}

/// Simulated evaluation of a plan.
#[derive(Clone, Copy, Debug)]
pub struct PlanEstimate {
    /// Forward time (seconds) with uniform task scheduling.
    pub time: f64,
    /// Transient (materialized-intermediate) device memory in bytes.
    pub transient_bytes: f64,
}

/// The batch size the plan's gTasks offer to kernels: the median, over
/// tasks, of the largest `Exact(k > 1)` attribute's achieved uniqueness
/// (the *batched data* pattern of §5.1). Plans restricting everything to
/// one value offer no batching.
pub fn plan_batch_rows(g: &Graph, plan: &PartitionPlan) -> usize {
    let batched_attrs: Vec<AttrKind> = plan
        .table
        .exact_attrs()
        .iter()
        .filter(|&&(_, k)| k > 1)
        .map(|&(a, _)| a)
        .collect();
    if batched_attrs.is_empty() {
        return 1;
    }
    let mut sizes: Vec<usize> = plan
        .tasks
        .iter()
        .map(|t| {
            batched_attrs
                .iter()
                .map(|&a| t.uniq_of(g, a))
                .max()
                .unwrap_or(1)
        })
        .collect();
    sizes.sort_unstable();
    sizes[sizes.len() / 2].max(1)
}

/// Gather-deduplication factor of a plan: the fraction of raw per-edge
/// source gathers that remain after per-task dedup (the *duplicated data*
/// pattern, §5.1). Plans grouping edges by source read each unique source
/// row once per task.
pub fn plan_gather_dedup(g: &Graph, plan: &PartitionPlan) -> f64 {
    let total: usize = plan.total_edges();
    if total == 0 {
        return 1.0;
    }
    let unique_loads: usize = plan
        .tasks
        .iter()
        .map(|t| t.uniq_of(g, AttrKind::SrcId))
        .sum();
    (unique_loads as f64 / total as f64).clamp(0.0, 1.0)
}

/// Edge-weighted mean, over tasks, of the padding a batched LSTM pays:
/// within one batch every sequence is padded to the longest, so the waste
/// is `max(degree) / mean(degree)` over the task's destinations. Plans
/// restricting `uniq(dst-degree)` (exactly or to `min`) keep this near 1.
pub fn plan_lstm_padding(g: &Graph, plan: &PartitionPlan) -> f64 {
    let mut weighted = 0.0f64;
    let mut total = 0.0f64;
    for task in &plan.tasks {
        let mut dsts: Vec<u32> = task.edges.iter().map(|&e| g.dst()[e]).collect();
        dsts.sort_unstable();
        dsts.dedup();
        let degs: Vec<f64> = dsts
            .iter()
            .map(|&d| g.in_degree()[d as usize] as f64)
            .collect();
        let max = degs.iter().copied().fold(0.0, f64::max);
        let mean = degs.iter().sum::<f64>() / degs.len() as f64;
        let pad = if mean > 0.0 { max / mean } else { 1.0 };
        weighted += pad * task.num_edges() as f64;
        total += task.num_edges() as f64;
    }
    let pad = if total > 0.0 { weighted / total } else { 1.0 };
    // Fragmentation: if a destination's in-edges are split across tasks,
    // its LSTM state must be re-loaded and serialized per fragment.
    let mut pairs = 0usize;
    let mut all_dsts: Vec<u32> = Vec::new();
    for task in &plan.tasks {
        let mut dsts: Vec<u32> = task.edges.iter().map(|&e| g.dst()[e]).collect();
        dsts.sort_unstable();
        dsts.dedup();
        pairs += dsts.len();
        all_dsts.extend(dsts);
    }
    all_dsts.sort_unstable();
    all_dsts.dedup();
    let frag = pairs as f64 / all_dsts.len().max(1) as f64;
    pad * frag
}

fn has_lstm(dfg: &Dfg) -> bool {
    dfg.nodes()
        .iter()
        .any(|n| matches!(n.kind, wisegraph_dfg::OpKind::LstmAggregate { .. }))
}

fn has_per_edge_linear(dfg: &Dfg) -> bool {
    let live = dfg.live_set();
    dfg.nodes().iter().enumerate().any(|(i, n)| {
        live[i] && matches!(n.kind, wisegraph_dfg::OpKind::PerEdgeLinear)
    })
}

/// Builds the kernel context for a plan, applying the data-pattern rules
/// the plan's gTasks reveal: batch size, gather dedup, LSTM padding, and
/// the per-edge-weight constraint (a `PerEdgeLinear` batch needs a single
/// weight per task, i.e. `uniq(edge-type) = 1`).
fn derive_ctx(
    g: &Graph,
    plan: &PartitionPlan,
    table: &PartitionTable,
    dfg: &Dfg,
) -> KernelContext {
    let mut batch = plan_batch_rows(g, plan);
    if has_per_edge_linear(dfg)
        && table.restriction(AttrKind::EdgeType)
            != wisegraph_gtask::Restriction::Exact(1)
    {
        // Mixed weights within a task: no matrix batching possible.
        batch = 1;
    }
    // Dedup happens in shared memory: only the unique rows that fit on
    // chip are loaded once. Batches wider than the on-chip row budget
    // realize proportionally less of the plan's deduplication.
    let width = gather_width(dfg).max(1);
    let rows_fit = (49_152 / (4 * width)).max(1) as f64;
    let dedup = plan_gather_dedup(g, plan);
    let realized = (rows_fit / batch.max(1) as f64).min(1.0);
    let effective_dedup = dedup * realized + 1.0 * (1.0 - realized);
    // Scatter fragmentation: one read-modify-write per (task, destination)
    // fragment.
    let fragments: usize = plan
        .tasks
        .iter()
        .map(|t| t.uniq_of(g, AttrKind::DstId))
        .sum();
    let scatter = (fragments as f64 / plan.total_edges().max(1) as f64).clamp(0.0, 1.0);
    let mut ctx = KernelContext::gtask(plan.num_tasks() as f64, batch)
        .with_gather_dedup(effective_dedup)
        .with_scatter_dedup(scatter);
    if has_lstm(dfg) {
        ctx = ctx.with_lstm_padding(plan_lstm_padding(g, plan));
    }
    ctx
}

/// The widest feature dimension any live `Index` gather produces — the row
/// width that must fit in shared memory for per-task dedup.
fn gather_width(dfg: &Dfg) -> usize {
    let live = dfg.live_set();
    dfg.nodes()
        .iter()
        .enumerate()
        .filter(|(i, n)| {
            live[*i]
                && matches!(
                    n.kind,
                    wisegraph_dfg::OpKind::Index | wisegraph_dfg::OpKind::Index2D
                )
        })
        .filter_map(|(_, n)| match n.shape.last() {
            Some(&wisegraph_dfg::Dim::Lit(w)) => Some(w),
            _ => None,
        })
        .max()
        .unwrap_or(1)
}

impl ExecutionPlan {
    /// Builds a plan: partitions the graph, derives the kernel context from
    /// the gTask patterns, and transform-optimizes the DFG under the
    /// whole-scope binding.
    pub fn build(
        g: &Graph,
        table: PartitionTable,
        base_dfg: &Dfg,
        op_partition: OpPartitionKind,
    ) -> Self {
        let plan = partition(g, &table);
        let binding = Binding::from_graph(g);
        let (dfg, _) = transform::optimize(base_dfg, &binding);
        // Context rules apply to the DFG that will actually run (e.g. the
        // per-edge-weight constraint disappears once the transformation
        // replaces `PerEdgeLinear` with a pairwise table).
        let ctx = derive_ctx(g, &plan, &table, &dfg);
        Self {
            table,
            partition: plan,
            dfg,
            op_partition,
            ctx,
        }
    }

    /// Like [`ExecutionPlan::build`], but serves the partition and the
    /// transformed DFG through a content-addressed [`PlanCache`]: a warm
    /// cache skips both the O(E log E) partitioner and the rewrite
    /// pipeline, decoding the stored artifacts instead. The kernel
    /// context is derived fresh either way (it is cheap and depends only
    /// on the two cached artifacts).
    pub fn build_cached(
        g: &Graph,
        table: PartitionTable,
        base_dfg: &Dfg,
        op_partition: OpPartitionKind,
        cache: &mut PlanCache,
    ) -> Self {
        let plan = cache.partition_cached(g, &table);
        let dfg = cache.transform_cached(g, base_dfg);
        let ctx = derive_ctx(g, &plan, &table, &dfg);
        Self {
            table,
            partition: plan,
            dfg,
            op_partition,
            ctx,
        }
    }

    /// Builds a plan *without* DFG transformation (for ablations and the
    /// staged search).
    pub fn build_untransformed(
        g: &Graph,
        table: PartitionTable,
        base_dfg: &Dfg,
        op_partition: OpPartitionKind,
    ) -> Self {
        let plan = partition(g, &table);
        let ctx = derive_ctx(g, &plan, &table, base_dfg);
        Self {
            table,
            partition: plan,
            dfg: base_dfg.clone(),
            op_partition,
            ctx,
        }
    }

    /// Generates this plan's kernels.
    pub fn kernels(&self, g: &Graph) -> Vec<GeneratedKernel> {
        let binding = Binding::from_graph(g);
        let part = self.op_partition.build(&self.dfg);
        generate_kernels(&self.dfg, &binding, &part, &self.ctx)
    }

    /// Per-gTask durations of the fused (per-task) kernels under uniform
    /// execution: each task occupies a batch slot, so underfilled tasks are
    /// padded to the plan's batch granularity.
    pub fn task_durations(&self, g: &Graph, dev: &DeviceSpec) -> Vec<f64> {
        let kernels = self.kernels(g);
        // Only per-task kernels (those whose parallelism comes from tasks)
        // are spread over tasks; pure dense kernels run monolithically.
        let per_task_time: f64 = kernels
            .iter()
            .filter(|k| {
                !matches!(
                    k.cost.class,
                    ComputeClass::DenseMatmul | ComputeClass::Elementwise
                )
            })
            .map(|k| dev.kernel_time(&k.cost) - dev.launch_latency)
            .sum();
        let median = self.partition.median_task_edges().max(1);
        let padded: Vec<f64> = self
            .partition
            .tasks
            .iter()
            .map(|t| t.num_edges().max(median) as f64)
            .collect();
        let total_padded: f64 = padded.iter().sum();
        padded
            .into_iter()
            .map(|p| per_task_time * p / total_padded.max(1.0))
            .collect()
    }

    /// Evaluates the plan: kernel roofline times, with the per-task kernels
    /// replaced by a list-scheduled makespan so load imbalance is visible.
    pub fn estimate(&self, g: &Graph, dev: &DeviceSpec) -> PlanEstimate {
        let binding = Binding::from_graph(g);
        let part = self.op_partition.build(&self.dfg);
        let kernels = generate_kernels(&self.dfg, &binding, &part, &self.ctx);
        let mut time = 0.0;
        for k in &kernels {
            time += dev.kernel_time(&k.cost);
        }
        // Imbalance correction: replace the ideal per-task span by the
        // scheduled makespan (uniform priorities).
        let durations = self.task_durations(g, dev);
        if !durations.is_empty() {
            let ideal: f64 = durations.iter().sum::<f64>() / dev.num_sms as f64;
            let scheduled = schedule::makespan_uniform(&durations, dev.num_sms);
            time += scheduled - ideal;
        }
        PlanEstimate {
            time,
            transient_bytes: boundary_bytes(&self.dfg, &binding, &part),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_graph::generate::{rmat, RmatParams};
    use wisegraph_models::ModelKind;

    fn test_graph() -> Graph {
        rmat(&RmatParams::standard(2000, 30_000, 17).with_edge_types(4))
    }

    #[test]
    fn batch_rows_reflects_table() {
        let g = test_graph();
        let vc = partition(&g, &PartitionTable::vertex_centric());
        assert_eq!(plan_batch_rows(&g, &vc), 1);
        let batched = partition(&g, &PartitionTable::src_batch_per_type(32));
        let b = plan_batch_rows(&g, &batched);
        assert!(b > 4 && b <= 32, "batch {b}");
        let eb = partition(&g, &PartitionTable::edge_batch(64));
        assert_eq!(plan_batch_rows(&g, &eb), 64);
    }

    #[test]
    fn gtask_plan_beats_vertex_centric_for_rgcn() {
        let g = test_graph();
        let dev = DeviceSpec::a100_pcie();
        let dfg = ModelKind::Rgcn.layer_dfg(64, 64);
        let vc = ExecutionPlan::build_untransformed(
            &g,
            PartitionTable::vertex_centric(),
            &dfg,
            OpPartitionKind::Fused,
        );
        let ours = ExecutionPlan::build(
            &g,
            PartitionTable::src_batch_per_type(64),
            &dfg,
            OpPartitionKind::DenseSeparateRestFused,
        );
        let t_vc = vc.estimate(&g, &dev).time;
        let t_ours = ours.estimate(&g, &dev).time;
        assert!(
            t_ours < t_vc / 2.0,
            "ours {t_ours} vs vertex-centric {t_vc}"
        );
    }

    #[test]
    fn estimate_is_positive_and_memory_sane() {
        let g = test_graph();
        let dev = DeviceSpec::a100_pcie();
        let dfg = ModelKind::Gcn.layer_dfg(32, 32);
        for kind in OpPartitionKind::ALL {
            let plan = ExecutionPlan::build(
                &g,
                PartitionTable::edge_batch(64),
                &dfg,
                kind,
            );
            let est = plan.estimate(&g, &dev);
            assert!(est.time > 0.0);
            assert!(est.transient_bytes >= 0.0);
        }
        // Fused keeps everything on chip.
        let fused = ExecutionPlan::build(
            &g,
            PartitionTable::edge_batch(64),
            &dfg,
            OpPartitionKind::Fused,
        );
        assert_eq!(fused.estimate(&g, &dev).transient_bytes, 0.0);
    }

    #[test]
    fn task_durations_cover_all_tasks() {
        let g = test_graph();
        let dev = DeviceSpec::a100_pcie();
        let dfg = ModelKind::Gcn.layer_dfg(32, 32);
        let plan = ExecutionPlan::build(
            &g,
            PartitionTable::vertex_centric(),
            &dfg,
            OpPartitionKind::Fused,
        );
        let d = plan.task_durations(&g, &dev);
        assert_eq!(d.len(), plan.partition.num_tasks());
        assert!(d.iter().all(|&t| t >= 0.0));
        assert!(d.iter().sum::<f64>() > 0.0);
    }
}
