//! Mini property-testing harness: strategies, seeded case generation,
//! greedy failure shrinking, and a `proptest!`-compatible macro.
//!
//! A [`Strategy`] draws a *sample* (its internal representation) from the
//! deterministic [`Rng`], turns samples into test *values*, and proposes
//! simpler samples when a value fails. The runner generates `cases` values,
//! and on the first failure walks the shrink candidates greedily — taking
//! the first candidate that still fails, repeating until none does — then
//! panics with the minimal counterexample and the seed to replay the run.
//!
//! Strategies compose the way `proptest`'s do: ranges are strategies,
//! tuples of strategies are strategies (this is how multi-argument
//! `proptest!` blocks work), [`collection::vec`] builds vectors, and
//! [`Strategy::prop_map`] derives one strategy from another while keeping
//! the *input* shrinkable (the mapped value is recomputed from the shrunk
//! input, so even opaque values like whole graphs shrink meaningfully).

use crate::rng::Rng;
use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A property-test failure: either a `prop_assert!` message or a caught
/// panic.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// What a property body returns: `Ok(())` or the first failed assertion.
pub type TestResult = Result<(), TestCaseError>;

/// Runner configuration. `seed` can be overridden with the
/// `TESTKIT_SEED` environment variable to replay a failure.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Upper bound on shrink attempts after a failure.
    pub max_shrink_iters: u32,
    /// Base seed for case generation (deterministic by default).
    pub seed: u64,
}

impl ProptestConfig {
    /// The default configuration with a custom case count.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_shrink_iters: 2048,
            seed: 0x5EED_CAFE_F00D_0001,
        }
    }
}

/// A generator of test values with shrinking.
pub trait Strategy {
    /// The value handed to the property body.
    type Value: Debug;
    /// The internal representation a value is derived from (what actually
    /// shrinks).
    type Sample: Clone;

    /// Draws a sample from the generator.
    fn sample(&self, rng: &mut Rng) -> Self::Sample;

    /// Produces the test value for a sample. Must be deterministic: the
    /// runner re-derives values while shrinking.
    fn value(&self, sample: &Self::Sample) -> Self::Value;

    /// Proposes strictly simpler samples, simplest first. An empty vector
    /// means the sample is minimal.
    fn shrink(&self, sample: &Self::Sample) -> Vec<Self::Sample>;

    /// Derives a strategy by mapping values; shrinking happens on the
    /// underlying samples and the map is re-applied.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    type Sample = S::Sample;

    fn sample(&self, rng: &mut Rng) -> Self::Sample {
        self.inner.sample(rng)
    }

    fn value(&self, sample: &Self::Sample) -> T {
        (self.f)(self.inner.value(sample))
    }

    fn shrink(&self, sample: &Self::Sample) -> Vec<Self::Sample> {
        self.inner.shrink(sample)
    }
}

macro_rules! uint_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            type Sample = $t;

            fn sample(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }

            fn value(&self, s: &$t) -> $t {
                *s
            }

            fn shrink(&self, &v: &$t) -> Vec<$t> {
                // Bisection ladder: the lower bound, then candidates
                // approaching `v` from below by halving gaps. Greedy
                // descent over these converges like a binary search, so
                // the runner reaches the exact boundary value.
                let lo = self.start;
                if v == lo {
                    return Vec::new();
                }
                let mut out = vec![lo];
                let mut gap = (v - lo) / 2;
                while gap > 0 {
                    let cand = v - gap;
                    if cand != lo {
                        out.push(cand);
                    }
                    gap /= 2;
                }
                out
            }
        }
    )+};
}

uint_strategy!(usize, u64, u32, u16, u8);

macro_rules! float_strategy {
    ($($t:ty, $draw:ident);+ $(;)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            type Sample = $t;

            fn sample(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.$draw()
            }

            fn value(&self, s: &$t) -> $t {
                *s
            }

            fn shrink(&self, &v: &$t) -> Vec<$t> {
                // Shrink toward zero when the range allows it, else toward
                // the lower bound.
                let target = if self.start <= 0.0 && 0.0 < self.end {
                    0.0
                } else {
                    self.start
                };
                if v == target {
                    return Vec::new();
                }
                let mut out = vec![target];
                let mut gap = (v - target) / 2.0;
                for _ in 0..8 {
                    let cand = v - gap;
                    if cand != target && cand != v {
                        out.push(cand);
                    }
                    gap /= 2.0;
                }
                out
            }
        }
    )+};
}

float_strategy!(f32, f32; f64, f64);

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            type Sample = ($($S::Sample,)+);

            fn sample(&self, rng: &mut Rng) -> Self::Sample {
                ($(self.$idx.sample(rng),)+)
            }

            fn value(&self, s: &Self::Sample) -> Self::Value {
                ($(self.$idx.value(&s.$idx),)+)
            }

            fn shrink(&self, s: &Self::Sample) -> Vec<Self::Sample> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&s.$idx) {
                        let mut c = s.clone();
                        c.$idx = cand;
                        out.push(c);
                    }
                )+
                out
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::*;

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `elem`. Shrinks by halving, dropping the last element, and
    /// shrinking individual elements.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        type Sample = Vec<S::Sample>;

        fn sample(&self, rng: &mut Rng) -> Self::Sample {
            let n = rng.range_usize(self.len.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }

        fn value(&self, s: &Self::Sample) -> Self::Value {
            s.iter().map(|e| self.elem.value(e)).collect()
        }

        fn shrink(&self, s: &Self::Sample) -> Vec<Self::Sample> {
            let mut out = Vec::new();
            let min = self.len.start;
            if s.len() > min {
                let half = (s.len() / 2).max(min);
                if half < s.len() {
                    out.push(s[..half].to_vec());
                }
                out.push(s[..s.len() - 1].to_vec());
            }
            for i in 0..s.len() {
                for cand in self.elem.shrink(&s[i]) {
                    let mut t = s.clone();
                    t[i] = cand;
                    out.push(t);
                }
            }
            out
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

fn run_one<S: Strategy, F: Fn(S::Value) -> TestResult>(
    strategy: &S,
    test: &F,
    sample: &S::Sample,
) -> Option<String> {
    let value = strategy.value(sample);
    match catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(Ok(())) => None,
        Ok(Err(e)) => Some(e.0),
        Err(payload) => Some(panic_message(payload)),
    }
}

/// Runs a property over `cfg.cases` generated values, shrinking the first
/// failure to a (locally) minimal counterexample.
///
/// # Panics
///
/// Panics with the minimal counterexample, the failure message, and the
/// replay seed if any case fails.
pub fn run<S: Strategy, F: Fn(S::Value) -> TestResult>(
    cfg: &ProptestConfig,
    strategy: S,
    test: F,
) {
    let seed = std::env::var("TESTKIT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(cfg.seed);
    let mut rng = Rng::seed_from_u64(seed);
    for case in 0..cfg.cases {
        let sample = strategy.sample(&mut rng);
        let Some(first_err) = run_one(&strategy, &test, &sample) else {
            continue;
        };
        // Greedy shrink: follow the first failing candidate until no
        // candidate fails or the iteration budget runs out.
        let mut cur = sample;
        let mut cur_err = first_err;
        let mut iters = 0u32;
        let mut steps = 0u32;
        'outer: while iters < cfg.max_shrink_iters {
            for cand in strategy.shrink(&cur) {
                iters += 1;
                if let Some(e) = run_one(&strategy, &test, &cand) {
                    cur = cand;
                    cur_err = e;
                    steps += 1;
                    continue 'outer;
                }
                if iters >= cfg.max_shrink_iters {
                    break 'outer;
                }
            }
            break;
        }
        panic!(
            "[testkit] property failed (case {case} of {}, seed {seed})\n\
             minimal counterexample (after {steps} shrink steps): {:?}\n\
             failure: {}\n\
             replay with TESTKIT_SEED={seed}",
            cfg.cases,
            strategy.value(&cur),
            cur_err,
        );
    }
}

/// Drop-in replacement for `proptest::proptest!`: takes an optional
/// `#![proptest_config(...)]` header and one or more property functions
/// with `name in strategy` arguments, and expands each to a `#[test]`
/// driven by [`run`].
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __cfg: $crate::prop::ProptestConfig = $cfg;
                let __strategy = ($($strat,)+);
                $crate::prop::run(&__cfg, __strategy, |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::prop::ProptestConfig::default())]
            $( $(#[$meta])* fn $name ( $($arg in $strat),+ ) $body )*
        }
    };
}

/// `assert!` for property bodies: fails the case (triggering shrinking)
/// instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::prop::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::prop::TestCaseError(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::prop::TestCaseError(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($a),
                    stringify!($b),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::prop::TestCaseError(
                format!($($fmt)+),
            ));
        }
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if __l == __r {
            return ::core::result::Result::Err($crate::prop::TestCaseError(
                format!(
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($a),
                    stringify!($b),
                    __l
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn failure_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let payload = catch_unwind(f).expect_err("property should fail");
        if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else {
            panic!("unexpected panic payload");
        }
    }

    /// The acceptance demo: a deliberately failing property (`v < 10` over
    /// `0..1000`) must shrink to the *exact* minimal counterexample, 10.
    #[test]
    fn shrinking_reaches_minimal_integer_counterexample() {
        let msg = failure_message(|| {
            run(&ProptestConfig::with_cases(64), 0u64..1000, |v| {
                if v < 10 {
                    Ok(())
                } else {
                    Err(TestCaseError(format!("{v} is too big")))
                }
            });
        });
        assert!(
            msg.contains("minimal counterexample") && msg.contains(": 10\n"),
            "expected minimal counterexample 10 in:\n{msg}"
        );
    }

    /// Vectors shrink both in length and element values: the minimal
    /// counterexample for "no element is ≥ 50" is the single vector `[50]`.
    #[test]
    fn shrinking_minimizes_vectors() {
        let msg = failure_message(|| {
            run(
                &ProptestConfig::with_cases(128),
                collection::vec(0u32..100, 0..30),
                |v| {
                    if v.iter().all(|&x| x < 50) {
                        Ok(())
                    } else {
                        Err(TestCaseError("big element".into()))
                    }
                },
            );
        });
        assert!(
            msg.contains("[50]"),
            "expected [50] as the minimal vector in:\n{msg}"
        );
    }

    /// Tuples shrink one coordinate at a time; the mapped sum shrinks via
    /// its inputs.
    #[test]
    fn shrinking_works_through_tuples_and_map() {
        let msg = failure_message(|| {
            let strategy = (0u64..100, 0u64..100).prop_map(|(a, b)| a + b);
            run(&ProptestConfig::with_cases(256), strategy, |sum| {
                if sum < 30 {
                    Ok(())
                } else {
                    Err(TestCaseError("sum too big".into()))
                }
            });
        });
        assert!(
            msg.contains(": 30\n"),
            "expected minimal sum 30 in:\n{msg}"
        );
    }

    #[test]
    fn panics_in_the_body_are_treated_as_failures_and_shrunk() {
        let msg = failure_message(|| {
            run(&ProptestConfig::with_cases(64), 0usize..100, |v| {
                assert!(v < 7, "plain assert fired");
                Ok(())
            });
        });
        assert!(msg.contains(": 7\n"), "expected 7 in:\n{msg}");
        assert!(msg.contains("plain assert fired"), "{msg}");
    }

    #[test]
    fn passing_properties_run_all_cases_silently() {
        let counted = std::cell::Cell::new(0u32);
        run(&ProptestConfig::with_cases(24), 1u32..50, |v| {
            counted.set(counted.get() + 1);
            if v >= 1 {
                Ok(())
            } else {
                Err(TestCaseError("unreachable".into()))
            }
        });
        assert_eq!(counted.get(), 24);
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let cfg = ProptestConfig::default();
        let strat = (0u64..1_000_000, 0.0f64..1.0);
        let draw = || {
            let mut rng = Rng::seed_from_u64(cfg.seed);
            (0..20).map(|_| strat.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    // The macro itself, compiled and run exactly as downstream crates use
    // it (multiple properties, config header, doc comments, trailing
    // commas).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Addition commutes.
        fn macro_smoke_addition(a in 0u32..1000, b in 0u32..1000,) {
            prop_assert_eq!(a + b, b + a);
        }

        /// Sorting is idempotent on generated vectors.
        fn macro_smoke_sort(v in prop::collection::vec(0u32..50, 1..20)) {
            let mut once = v.clone();
            once.sort_unstable();
            let mut twice = once.clone();
            twice.sort_unstable();
            prop_assert_eq!(&once, &twice);
            prop_assert!(once.len() == v.len(), "length preserved");
            prop_assert_ne!(once.len(), 0);
        }
    }
}
