//! Workspace hermeticity scanner.
//!
//! The build environment has no crate registry, so every dependency in
//! every `Cargo.toml` must be a `path` dependency (or `workspace = true`,
//! resolving to a `path` entry in `[workspace.dependencies]`). This module
//! parses the workspace's manifests with a purpose-built line scanner (no
//! TOML crate — that would itself be a registry dependency) and reports
//! anything that would hit the registry: bare version strings, `version`,
//! `git`, or `registry` keys.
//!
//! The guard test in `tests/hermetic.rs` fails the build if this scanner
//! reports anything, so a registry dependency cannot land silently.

use std::fs;
use std::path::{Path, PathBuf};

/// One non-hermetic dependency declaration.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Manifest the declaration appears in.
    pub manifest: String,
    /// 1-based line number.
    pub line: usize,
    /// Dependency name as written.
    pub dependency: String,
    /// Why it is not hermetic.
    pub reason: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: `{}` {}",
            self.manifest, self.line, self.dependency, self.reason
        )
    }
}

/// Scans every `Cargo.toml` under `root` (skipping `target/` and `.git/`)
/// and returns all non-`path` dependency declarations.
pub fn scan_workspace(root: impl AsRef<Path>) -> Vec<Violation> {
    let mut manifests = Vec::new();
    collect_manifests(root.as_ref(), &mut manifests);
    manifests.sort();
    assert!(
        !manifests.is_empty(),
        "no Cargo.toml found under {}",
        root.as_ref().display()
    );
    let mut out = Vec::new();
    for m in manifests {
        let text = fs::read_to_string(&m)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", m.display()));
        out.extend(scan_str(&text, &m.display().to_string()));
    }
    out
}

fn collect_manifests(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "target" && name != ".git" {
                collect_manifests(&path, out);
            }
        } else if name == "Cargo.toml" {
            out.push(path);
        }
    }
}

/// Scans one manifest's text. `origin` labels violations (usually the
/// file path).
pub fn scan_str(text: &str, origin: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').trim().to_string();
            // A `[dependencies.foo]` table declares the dependency `foo`
            // directly; its keys are checked below.
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        if let Some(dep) = dep_subtable_name(&section) {
            // Inside `[dependencies.foo]` / `[workspace.dependencies.foo]`.
            if matches!(key, "version" | "git" | "registry" | "branch" | "tag" | "rev") {
                out.push(Violation {
                    manifest: origin.to_string(),
                    line: idx + 1,
                    dependency: dep.to_string(),
                    reason: format!("sets `{key}` (registry/git source) — only `path` dependencies are allowed"),
                });
            }
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        // `name.workspace = true` defers to [workspace.dependencies],
        // which this scanner checks too.
        if key.ends_with(".workspace") {
            continue;
        }
        if value.starts_with('{') {
            let has = |k: &str| {
                value
                    .trim_matches(|c| c == '{' || c == '}')
                    .split(',')
                    .any(|kv| kv.split('=').next().is_some_and(|n| n.trim() == k))
            };
            if has("workspace") {
                continue;
            }
            for bad in ["version", "git", "registry"] {
                if has(bad) {
                    out.push(Violation {
                        manifest: origin.to_string(),
                        line: idx + 1,
                        dependency: key.to_string(),
                        reason: format!("sets `{bad}` (registry/git source) — only `path` dependencies are allowed"),
                    });
                }
            }
            if !has("path") && !has("workspace") {
                out.push(Violation {
                    manifest: origin.to_string(),
                    line: idx + 1,
                    dependency: key.to_string(),
                    reason: "has no `path` key — only `path` dependencies are allowed".into(),
                });
            }
        } else {
            // `name = "1.2"` — a bare registry version requirement.
            out.push(Violation {
                manifest: origin.to_string(),
                line: idx + 1,
                dependency: key.to_string(),
                reason: format!("is a registry version requirement ({value}) — only `path` dependencies are allowed"),
            });
        }
    }
    out
}

fn is_dep_section(section: &str) -> bool {
    section == "dependencies"
        || section == "dev-dependencies"
        || section == "build-dependencies"
        || section == "workspace.dependencies"
        || section.ends_with(".dependencies")
        || section.ends_with(".dev-dependencies")
        || section.ends_with(".build-dependencies")
}

/// For `[dependencies.foo]`-style subtables, returns `foo`.
fn dep_subtable_name(section: &str) -> Option<&str> {
    for prefix in [
        "dependencies.",
        "dev-dependencies.",
        "build-dependencies.",
        "workspace.dependencies.",
    ] {
        if let Some(rest) = section.strip_prefix(prefix) {
            if !rest.is_empty() && !rest.contains('.') {
                return Some(rest);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_workspace_deps_pass() {
        let toml = r#"
[package]
name = "x"
version = "0.1.0"

[workspace.dependencies]
a = { path = "crates/a" }

[dependencies]
a.workspace = true
b = { path = "../b" }

[dev-dependencies]
c = { path = "../c" }
"#;
        assert!(scan_str(toml, "test").is_empty());
    }

    #[test]
    fn bare_version_is_flagged() {
        let toml = "[dependencies]\nrand = \"0.8\"\n";
        let v = scan_str(toml, "test");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].dependency, "rand");
        assert!(v[0].reason.contains("registry version"));
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn inline_version_git_and_registry_keys_are_flagged() {
        let toml = "[dev-dependencies]\n\
                    a = { version = \"1\", path = \"../a\" }\n\
                    b = { git = \"https://example.com/b\" }\n\
                    c = { path = \"../c\" }\n";
        let v = scan_str(toml, "test");
        let deps: Vec<&str> = v.iter().map(|x| x.dependency.as_str()).collect();
        assert!(deps.contains(&"a"), "{v:?}");
        assert!(deps.contains(&"b"), "{v:?}");
        assert!(!deps.contains(&"c"), "{v:?}");
    }

    #[test]
    fn workspace_dependencies_section_is_scanned() {
        let toml = "[workspace.dependencies]\nproptest = \"1\"\nours = { path = \"crates/ours\" }\n";
        let v = scan_str(toml, "test");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].dependency, "proptest");
    }

    #[test]
    fn dep_subtables_are_scanned() {
        let toml = "[dependencies.serde]\nversion = \"1\"\nfeatures = [\"derive\"]\n";
        let v = scan_str(toml, "test");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].dependency, "serde");
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let toml = "[package]\nname = \"x\"\nversion = \"0.1.0\"\n\n[profile.dev]\nopt-level = 1\n\n[features]\ndefault = []\n";
        assert!(scan_str(toml, "test").is_empty());
    }

    #[test]
    fn target_specific_dependencies_are_scanned() {
        let toml = "[target.'cfg(unix)'.dependencies]\nlibc = \"0.2\"\n";
        let v = scan_str(toml, "test");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].dependency, "libc");
    }
}
