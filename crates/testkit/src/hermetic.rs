//! Workspace hermeticity scanner.
//!
//! The build environment has no crate registry, so every dependency in
//! every `Cargo.toml` must be a `path` dependency (or `workspace = true`,
//! resolving to a `path` entry in `[workspace.dependencies]`). This module
//! parses the workspace's manifests with a purpose-built line scanner (no
//! TOML crate — that would itself be a registry dependency) and reports
//! anything that would hit the registry: bare version strings, `version`,
//! `git`, or `registry` keys.
//!
//! The guard test in `tests/hermetic.rs` fails the build if this scanner
//! reports anything, so a registry dependency cannot land silently.

use std::fs;
use std::path::{Path, PathBuf};

/// One non-hermetic dependency declaration.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Manifest the declaration appears in.
    pub manifest: String,
    /// 1-based line number.
    pub line: usize,
    /// Dependency name as written.
    pub dependency: String,
    /// Why it is not hermetic.
    pub reason: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: `{}` {}",
            self.manifest, self.line, self.dependency, self.reason
        )
    }
}

/// Scans every `Cargo.toml` under `root` (skipping `target/` and `.git/`)
/// and returns all non-`path` dependency declarations.
pub fn scan_workspace(root: impl AsRef<Path>) -> Vec<Violation> {
    let mut manifests = Vec::new();
    collect_manifests(root.as_ref(), &mut manifests);
    manifests.sort();
    assert!(
        !manifests.is_empty(),
        "no Cargo.toml found under {}",
        root.as_ref().display()
    );
    let mut out = Vec::new();
    for m in manifests {
        let text = fs::read_to_string(&m)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", m.display()));
        out.extend(scan_str(&text, &m.display().to_string()));
    }
    out
}

fn collect_manifests(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "target" && name != ".git" {
                collect_manifests(&path, out);
            }
        } else if name == "Cargo.toml" {
            out.push(path);
        }
    }
}

/// Scans one manifest's text. `origin` labels violations (usually the
/// file path).
pub fn scan_str(text: &str, origin: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').trim().to_string();
            // A `[dependencies.foo]` table declares the dependency `foo`
            // directly; its keys are checked below.
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        if let Some(dep) = dep_subtable_name(&section) {
            // Inside `[dependencies.foo]` / `[workspace.dependencies.foo]`.
            if matches!(key, "version" | "git" | "registry" | "branch" | "tag" | "rev") {
                out.push(Violation {
                    manifest: origin.to_string(),
                    line: idx + 1,
                    dependency: dep.to_string(),
                    reason: format!("sets `{key}` (registry/git source) — only `path` dependencies are allowed"),
                });
            }
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        // `name.workspace = true` defers to [workspace.dependencies],
        // which this scanner checks too.
        if key.ends_with(".workspace") {
            continue;
        }
        if value.starts_with('{') {
            let has = |k: &str| {
                value
                    .trim_matches(|c| c == '{' || c == '}')
                    .split(',')
                    .any(|kv| kv.split('=').next().is_some_and(|n| n.trim() == k))
            };
            if has("workspace") {
                continue;
            }
            for bad in ["version", "git", "registry"] {
                if has(bad) {
                    out.push(Violation {
                        manifest: origin.to_string(),
                        line: idx + 1,
                        dependency: key.to_string(),
                        reason: format!("sets `{bad}` (registry/git source) — only `path` dependencies are allowed"),
                    });
                }
            }
            if !has("path") && !has("workspace") {
                out.push(Violation {
                    manifest: origin.to_string(),
                    line: idx + 1,
                    dependency: key.to_string(),
                    reason: "has no `path` key — only `path` dependencies are allowed".into(),
                });
            }
        } else {
            // `name = "1.2"` — a bare registry version requirement.
            out.push(Violation {
                manifest: origin.to_string(),
                line: idx + 1,
                dependency: key.to_string(),
                reason: format!("is a registry version requirement ({value}) — only `path` dependencies are allowed"),
            });
        }
    }
    out
}

/// One determinism/safety finding in a shipped source file.
#[derive(Clone, Debug)]
pub struct SourceViolation {
    /// Source file the finding appears in.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired (`unsafe`, `SystemTime`, `hashmap-iteration`,
    /// `monotonic-clock`).
    pub pattern: String,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl std::fmt::Display for SourceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.pattern, self.excerpt
        )
    }
}

/// Files allowed to use `Instant` directly: the observability crate's
/// clock module is the workspace's single monotonic-clock site — all other
/// shipped code times via `wisegraph_obs::clock`.
pub const CLOCK_ALLOWLIST: [&str; 1] = ["crates/obs/src/clock.rs"];

/// `true` when `file` is one of the [`CLOCK_ALLOWLIST`] sites.
pub fn is_clock_allowlisted(file: &str) -> bool {
    CLOCK_ALLOWLIST.iter().any(|a| file.ends_with(a))
}

/// Scans every shipped `.rs` file under `root` for `unsafe` blocks and
/// nondeterminism sources: `SystemTime`, iteration over `HashMap`s (whose
/// order varies run to run — shipped code must iterate `BTreeMap`s or
/// sorted vectors instead), and direct `Instant` use outside the
/// [`CLOCK_ALLOWLIST`] (wall-clock reads must route through the single
/// site in `wisegraph_obs::clock`, keeping timing an overlay that can
/// never feed back into deterministic work).
///
/// "Shipped" excludes `target/`, `.git/`, and `tests/`, `benches/`,
/// `examples/` directories; `#[cfg(test)]` modules inside shipped files
/// are skipped too (tests may iterate however they like).
pub fn scan_sources(root: impl AsRef<Path>) -> Vec<SourceViolation> {
    let mut files = Vec::new();
    collect_sources(root.as_ref(), &mut files);
    files.sort();
    let mut out = Vec::new();
    for f in files {
        let text = fs::read_to_string(&f)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", f.display()));
        let file = f.display().to_string();
        let allowed_clock = is_clock_allowlisted(&file);
        out.extend(
            scan_source_str(&text, &file)
                .into_iter()
                .filter(|v| !(allowed_clock && v.pattern == "monotonic-clock")),
        );
    }
    out
}

fn collect_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !matches!(&*name, "target" | ".git" | "tests" | "benches" | "examples") {
                collect_sources(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Scans one source file's text. `origin` labels findings (usually the
/// file path). Line-based and approximate by design: string literals and
/// `//` comments are stripped before matching, `#[cfg(test)]` items are
/// skipped by brace counting.
pub fn scan_source_str(text: &str, origin: &str) -> Vec<SourceViolation> {
    // Pass 1: strip literals/comments and mark test-only lines.
    let mut lines = Vec::new(); // (1-based line, cleaned, raw)
    let mut pending_test = false; // saw `#[cfg(test)]`, awaiting the item
    let mut in_test = false;
    let mut test_depth = 0i64;
    for (idx, raw) in text.lines().enumerate() {
        let cleaned = strip_literals(raw);
        let opens = cleaned.matches('{').count() as i64;
        let closes = cleaned.matches('}').count() as i64;
        if in_test {
            test_depth += opens - closes;
            if test_depth <= 0 {
                in_test = false;
            }
            continue;
        }
        if cleaned.contains("#[cfg(test)]") {
            pending_test = true;
            continue;
        }
        if pending_test {
            if opens > 0 {
                test_depth = opens - closes;
                in_test = test_depth > 0;
                pending_test = false;
                continue;
            }
            if cleaned.contains(';') {
                // `mod tests;` — an out-of-line module; the tests/ dir
                // exclusion covers its file.
                pending_test = false;
                continue;
            }
            // Attribute stack (`#[cfg(test)]` + more attributes): keep
            // waiting for the item's opening brace.
            continue;
        }
        lines.push((idx + 1, cleaned, raw.trim().to_string()));
    }

    // Pass 2: which identifiers name HashMaps in this file?
    let mut maps: Vec<String> = Vec::new();
    for (_, cleaned, _) in &lines {
        collect_hashmap_idents(cleaned, &mut maps);
    }
    maps.sort();
    maps.dedup();

    // Pass 3: findings.
    let mut out = Vec::new();
    let mut push = |line: usize, pattern: &str, raw: &str| {
        out.push(SourceViolation {
            file: origin.to_string(),
            line,
            pattern: pattern.to_string(),
            excerpt: raw.to_string(),
        });
    };
    for (line, cleaned, raw) in &lines {
        if contains_word(cleaned, "unsafe") {
            push(*line, "unsafe", raw);
        }
        if cleaned.contains("SystemTime") {
            push(*line, "SystemTime", raw);
        }
        if contains_word(cleaned, "Instant") {
            push(*line, "monotonic-clock", raw);
        }
        if let Some(ident) = hashmap_iteration(cleaned, &maps) {
            push(
                *line,
                "hashmap-iteration",
                &format!("`{ident}` is a HashMap: {raw}"),
            );
        }
    }
    out
}

/// Replaces string and char literals with empty ones and drops `//`
/// comments, so pattern matching sees only code.
fn strip_literals(line: &str) -> String {
    let chars: Vec<char> = line.chars().collect();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            break;
        }
        if c == '"' {
            i += 1;
            while i < chars.len() && chars[i] != '"' {
                i += if chars[i] == '\\' { 2 } else { 1 };
            }
            i += 1;
            out.push_str("\"\"");
            continue;
        }
        if c == '\'' {
            // `'x'` / `'\n'` are char literals; `'a` (no closing quote
            // nearby) is a lifetime and passes through.
            if chars.get(i + 1) == Some(&'\\') {
                i += 2;
                while i < chars.len() && chars[i] != '\'' {
                    i += 1;
                }
                i += 1;
                out.push_str("''");
                continue;
            }
            if chars.get(i + 2) == Some(&'\'') {
                i += 3;
                out.push_str("''");
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// `true` if `word` appears delimited by non-identifier characters.
fn contains_word(s: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = s[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let ok_before = start == 0 || !s[..start].ends_with(is_ident_char);
        let ok_after = !s[end..].starts_with(is_ident_char);
        if ok_before && ok_after {
            return true;
        }
        from = end;
    }
    false
}

/// Last identifier of `s`, ignoring trailing whitespace.
fn trailing_ident(s: &str) -> Option<String> {
    let t = s.trim_end();
    let rev: String = t.chars().rev().take_while(|&c| is_ident_char(c)).collect();
    if rev.is_empty() || rev.chars().all(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(rev.chars().rev().collect())
    }
}

/// Strips a trailing module path (`std::collections::`) from `s`.
fn strip_path_prefix(s: &str) -> &str {
    let mut s = s;
    while let Some(rest) = s.strip_suffix("::") {
        s = rest.trim_end_matches(is_ident_char);
    }
    s
}

/// Records identifiers bound to `HashMap`s on this line: type ascriptions
/// (`name: HashMap<`, `name: &mut HashMap<`) and constructor assignments
/// (`name = HashMap::new()`, `name = HashMap::with_capacity(..)`).
fn collect_hashmap_idents(cleaned: &str, out: &mut Vec<String>) {
    let mut from = 0;
    while let Some(pos) = cleaned[from..].find("HashMap") {
        let at = from + pos;
        from = at + "HashMap".len();
        let before = strip_path_prefix(&cleaned[..at]);
        let after = &cleaned[from..];
        let binder = if after.starts_with('<') {
            // `name: HashMap<..>` — strip reference sigils between the
            // colon and the type.
            let b = before
                .trim_end()
                .trim_end_matches('&')
                .trim_end();
            let b = b.strip_suffix("mut").unwrap_or(b).trim_end();
            b.strip_suffix(':').map(str::to_string)
        } else if after.starts_with("::new") || after.starts_with("::with_capacity") {
            before.trim_end().strip_suffix('=').map(str::to_string)
        } else {
            None
        };
        if let Some(b) = binder {
            if let Some(ident) = trailing_ident(&b) {
                out.push(ident);
            }
        }
    }
}

/// If this line iterates one of `maps`, returns the map's name. Covers
/// explicit iterator methods and `for _ in [&[mut ]]name` loops.
fn hashmap_iteration(cleaned: &str, maps: &[String]) -> Option<String> {
    const METHODS: [&str; 7] = [
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".drain(",
    ];
    for m in METHODS {
        let mut from = 0;
        while let Some(pos) = cleaned[from..].find(m) {
            let at = from + pos;
            from = at + m.len();
            if let Some(ident) = trailing_ident(&cleaned[..at]) {
                if maps.contains(&ident) {
                    return Some(ident);
                }
            }
        }
    }
    // `for k in &name {` / `for (k, v) in name {`
    if let Some(rest) = cleaned.trim_start().strip_prefix("for ") {
        if let Some((_, tail)) = rest.split_once(" in ") {
            let expr = tail.trim_start().trim_start_matches('&');
            let expr = expr.strip_prefix("mut ").unwrap_or(expr).trim_start();
            let ident: String = expr.chars().take_while(|&c| is_ident_char(c)).collect();
            let after = &expr[ident.len()..];
            // Only a bare binding (`name {`): method calls were handled
            // above and field accesses are not resolvable per-file.
            if after.trim_start().starts_with('{') && maps.contains(&ident) {
                return Some(ident);
            }
        }
    }
    None
}

fn is_dep_section(section: &str) -> bool {
    section == "dependencies"
        || section == "dev-dependencies"
        || section == "build-dependencies"
        || section == "workspace.dependencies"
        || section.ends_with(".dependencies")
        || section.ends_with(".dev-dependencies")
        || section.ends_with(".build-dependencies")
}

/// For `[dependencies.foo]`-style subtables, returns `foo`.
fn dep_subtable_name(section: &str) -> Option<&str> {
    for prefix in [
        "dependencies.",
        "dev-dependencies.",
        "build-dependencies.",
        "workspace.dependencies.",
    ] {
        if let Some(rest) = section.strip_prefix(prefix) {
            if !rest.is_empty() && !rest.contains('.') {
                return Some(rest);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_workspace_deps_pass() {
        let toml = r#"
[package]
name = "x"
version = "0.1.0"

[workspace.dependencies]
a = { path = "crates/a" }

[dependencies]
a.workspace = true
b = { path = "../b" }

[dev-dependencies]
c = { path = "../c" }
"#;
        assert!(scan_str(toml, "test").is_empty());
    }

    #[test]
    fn bare_version_is_flagged() {
        let toml = "[dependencies]\nrand = \"0.8\"\n";
        let v = scan_str(toml, "test");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].dependency, "rand");
        assert!(v[0].reason.contains("registry version"));
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn inline_version_git_and_registry_keys_are_flagged() {
        let toml = "[dev-dependencies]\n\
                    a = { version = \"1\", path = \"../a\" }\n\
                    b = { git = \"https://example.com/b\" }\n\
                    c = { path = \"../c\" }\n";
        let v = scan_str(toml, "test");
        let deps: Vec<&str> = v.iter().map(|x| x.dependency.as_str()).collect();
        assert!(deps.contains(&"a"), "{v:?}");
        assert!(deps.contains(&"b"), "{v:?}");
        assert!(!deps.contains(&"c"), "{v:?}");
    }

    #[test]
    fn workspace_dependencies_section_is_scanned() {
        let toml = "[workspace.dependencies]\nproptest = \"1\"\nours = { path = \"crates/ours\" }\n";
        let v = scan_str(toml, "test");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].dependency, "proptest");
    }

    #[test]
    fn dep_subtables_are_scanned() {
        let toml = "[dependencies.serde]\nversion = \"1\"\nfeatures = [\"derive\"]\n";
        let v = scan_str(toml, "test");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].dependency, "serde");
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let toml = "[package]\nname = \"x\"\nversion = \"0.1.0\"\n\n[profile.dev]\nopt-level = 1\n\n[features]\ndefault = []\n";
        assert!(scan_str(toml, "test").is_empty());
    }

    #[test]
    fn target_specific_dependencies_are_scanned() {
        let toml = "[target.'cfg(unix)'.dependencies]\nlibc = \"0.2\"\n";
        let v = scan_str(toml, "test");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].dependency, "libc");
    }

    #[test]
    fn unsafe_blocks_are_flagged_with_location() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let v = scan_source_str(src, "x.rs");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].pattern, "unsafe");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].file, "x.rs");
    }

    #[test]
    fn system_time_is_flagged() {
        let src = "use std::time::SystemTime;\n";
        let v = scan_source_str(src, "x.rs");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].pattern, "SystemTime");
    }

    #[test]
    fn direct_instant_use_is_flagged() {
        let src = "use std::time::Instant;\nfn f() { let _t = Instant::now(); }\n";
        let v = scan_source_str(src, "x.rs");
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.pattern == "monotonic-clock"));
        // An identifier merely containing the word does not fire.
        assert!(scan_source_str("fn g(instantaneous: u32) {}\n", "x.rs").is_empty());
    }

    #[test]
    fn clock_allowlist_matches_by_suffix() {
        assert!(is_clock_allowlisted("/root/repo/crates/obs/src/clock.rs"));
        assert!(!is_clock_allowlisted("/root/repo/crates/core/src/sampled.rs"));
    }

    #[test]
    fn hashmap_iteration_is_flagged_for_known_maps() {
        let src = "use std::collections::HashMap;\n\
                   fn f(counts: &HashMap<u32, usize>, v: Vec<u32>) {\n\
                   \x20   for (k, c) in counts.iter() {\n\
                   \x20       let _ = (k, c);\n\
                   \x20   }\n\
                   \x20   for x in v.iter() {\n\
                   \x20       let _ = x;\n\
                   \x20   }\n\
                   }\n";
        let v = scan_source_str(src, "x.rs");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].pattern, "hashmap-iteration");
        assert_eq!(v[0].line, 3);
        assert!(v[0].excerpt.contains("counts"));
    }

    #[test]
    fn hashmap_lookups_and_for_loops_by_name() {
        let src = "fn g() {\n\
                   \x20   let mut m = std::collections::HashMap::new();\n\
                   \x20   m.insert(1u32, 2u32);\n\
                   \x20   let _ = m.get(&1);\n\
                   \x20   for kv in &m {\n\
                   \x20       let _ = kv;\n\
                   \x20   }\n\
                   }\n";
        let v = scan_source_str(src, "x.rs");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 5, "only the loop, not insert/get: {v:?}");
    }

    #[test]
    fn cfg_test_modules_comments_and_strings_are_skipped() {
        let src = "fn shipped() {}\n\
                   // unsafe in a comment is fine\n\
                   const MSG: &str = \"unsafe SystemTime\";\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \x20   fn helper(m: std::collections::HashMap<u32, u32>) {\n\
                   \x20       unsafe { std::hint::unreachable_unchecked() }\n\
                   \x20       for k in m.keys() {\n\
                   \x20           let _ = k;\n\
                   \x20       }\n\
                   \x20   }\n\
                   }\n\
                   fn also_shipped() {}\n";
        let v = scan_source_str(src, "x.rs");
        assert!(v.is_empty(), "{v:?}");
    }
}
