//! Deterministic, seedable PRNG: xoshiro256++ seeded through splitmix64.
//!
//! The whole workspace routes its randomness through this one generator so
//! that every graph, sample, and weight tensor is a pure function of its
//! `u64` seed — the determinism tests in `tests/determinism.rs` rely on it.
//! xoshiro256++ passes BigCrush and is a few instructions per draw;
//! splitmix64 turns any seed (including 0) into a full 256-bit state.

use std::ops::Range;

const F64_SCALE: f64 = 1.0 / (1u64 << 53) as f64;
const F32_SCALE: f32 = 1.0 / (1u64 << 24) as f32;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose entire stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        Self {
            s: [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * F64_SCALE
    }

    /// Uniform in `[0, 1)` with 24 bits of precision.
    pub fn f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * F32_SCALE
    }

    /// Uniform integer in `[0, n)`, unbiased (Lemire's multiply-shift with
    /// rejection).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform in the half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, r: Range<u64>) -> u64 {
        assert!(r.start < r.end, "empty range");
        r.start + self.below(r.end - r.start)
    }

    /// Uniform `usize` in the half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_usize(&mut self, r: Range<usize>) -> usize {
        self.range_u64(r.start as u64..r.end as u64) as usize
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.f32()
    }

    /// `true` with probability `p`.
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seed_identical_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::seed_from_u64(0);
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn unit_floats_in_range_and_centered() {
        let mut r = Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| {
                let v = r.f64();
                assert!((0.0..1.0).contains(&v));
                v
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let v32 = r.f32();
        assert!((0.0..1.0).contains(&v32));
    }

    #[test]
    fn below_covers_range_without_bias() {
        let mut r = Rng::seed_from_u64(11);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[r.below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng::seed_from_u64(13);
        for _ in 0..1000 {
            let v = r.range_usize(10..20);
            assert!((10..20).contains(&v));
            let f = r.range_f32(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&f));
            let g = r.range_f64(5.0, 6.0);
            assert!((5.0..6.0).contains(&g));
        }
        let hits = (0..1000).filter(|_| r.bool_with(0.25)).count();
        assert!((150..350).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(17);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        assert_ne!(xs, (0..100).collect::<Vec<u32>>());
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }
}
