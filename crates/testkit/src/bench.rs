//! Tiny wall-clock bench harness: warmup, median-of-N, JSON output.
//!
//! The in-repo replacement for `criterion`, shaped for `harness = false`
//! bench targets:
//!
//! ```no_run
//! use wisegraph_testkit::bench::{black_box, Bench};
//!
//! fn main() {
//!     let mut b = Bench::new("my_suite");
//!     b.group("adds")
//!         .sample_size(20)
//!         .bench_function("u64", || {
//!             black_box(1u64 + black_box(2));
//!         });
//!     b.finish();
//! }
//! ```
//!
//! Each case runs `sample_size / 5 + 1` warmup iterations, then
//! `sample_size` timed iterations; the report keeps the median, minimum,
//! and mean. `finish()` prints a table and writes the machine-readable
//! JSON report to `target/testkit-bench/<suite>.json` (override with
//! `WG_BENCH_JSON`; override the default sample count with
//! `WG_BENCH_SAMPLES`).

pub use std::hint::black_box;
use std::path::PathBuf;
use wisegraph_obs::clock::Stopwatch;

/// One measured case.
#[derive(Clone, Debug)]
pub struct Record {
    /// Benchmark group name.
    pub group: String,
    /// Case name within the group.
    pub case: String,
    /// Timed iterations.
    pub samples: u32,
    /// Median time per iteration, nanoseconds.
    pub median_ns: u128,
    /// Fastest iteration, nanoseconds.
    pub min_ns: u128,
    /// Mean time per iteration, nanoseconds.
    pub mean_ns: u128,
}

/// A bench suite accumulating [`Record`]s.
pub struct Bench {
    suite: String,
    default_samples: u32,
    env_samples: Option<u32>,
    results: Vec<Record>,
}

impl Bench {
    /// Creates a suite; `WG_BENCH_SAMPLES`, when set, forces the sample
    /// count of every case — it overrides per-group [`Group::sample_size`]
    /// calls too, so a runtime knob can shrink or grow a whole suite.
    /// Unset, the default is 10 per case.
    pub fn new(suite: &str) -> Self {
        let env_samples = std::env::var("WG_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse::<u32>().ok())
            .map(|n| n.max(1));
        Self {
            suite: suite.to_string(),
            default_samples: env_samples.unwrap_or(10),
            env_samples,
            results: Vec::new(),
        }
    }

    /// Starts (or continues) a named group of cases.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            samples: self.default_samples,
            name: name.to_string(),
            bench: self,
        }
    }

    /// All records measured so far.
    pub fn results(&self) -> &[Record] {
        &self.results
    }

    /// Serializes the suite report as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"suite\": \"{}\",\n  \"results\": [\n",
            escape(&self.suite)
        ));
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"group\": \"{}\", \"case\": \"{}\", \"samples\": {}, \
                 \"median_ns\": {}, \"min_ns\": {}, \"mean_ns\": {}}}{}\n",
                escape(&r.group),
                escape(&r.case),
                r.samples,
                r.median_ns,
                r.min_ns,
                r.mean_ns,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Prints the report table and writes the JSON file. Returns the path
    /// written, if any.
    pub fn finish(self) -> Option<PathBuf> {
        println!("\n## bench suite: {}\n", self.suite);
        println!("| group | case | median | min | mean |");
        println!("|---|---|---|---|---|");
        for r in &self.results {
            println!(
                "| {} | {} | {} | {} | {} |",
                r.group,
                r.case,
                fmt_ns(r.median_ns),
                fmt_ns(r.min_ns),
                fmt_ns(r.mean_ns)
            );
        }
        let path = std::env::var("WG_BENCH_JSON").map(PathBuf::from).ok().or_else(|| {
            Some(PathBuf::from(format!("target/testkit-bench/{}.json", self.suite)))
        })?;
        if let Some(dir) = path.parent() {
            if std::fs::create_dir_all(dir).is_err() {
                eprintln!("[bench] cannot create {}", dir.display());
                return None;
            }
        }
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => {
                println!("\n[bench] wrote {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("[bench] cannot write {}: {e}", path.display());
                None
            }
        }
    }
}

/// A group of cases sharing a sample count.
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
    samples: u32,
}

impl Group<'_> {
    /// Sets the timed-iteration count for subsequent cases. Ignored when
    /// `WG_BENCH_SAMPLES` is set: the environment override wins, so the
    /// knob works even for suites that set explicit per-group sizes.
    pub fn sample_size(&mut self, n: u32) -> &mut Self {
        if self.bench.env_samples.is_none() {
            self.samples = n.max(1);
        }
        self
    }

    /// Measures one case: warmup, then `samples` timed iterations.
    pub fn bench_function(&mut self, case: &str, mut f: impl FnMut()) -> &mut Self {
        for _ in 0..(self.samples / 5 + 1) {
            f();
        }
        let mut times: Vec<u128> = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let t = Stopwatch::start();
            f();
            times.push(u128::from(t.elapsed_ns()));
        }
        times.sort_unstable();
        let record = Record {
            group: self.name.clone(),
            case: case.to_string(),
            samples: self.samples,
            median_ns: times[times.len() / 2],
            min_ns: times[0],
            mean_ns: times.iter().sum::<u128>() / times.len() as u128,
        };
        eprintln!(
            "[bench] {}/{}: median {} (min {}, {} samples)",
            record.group,
            record.case,
            fmt_ns(record.median_ns),
            fmt_ns(record.min_ns),
            record.samples
        );
        self.bench.results.push(record);
        self
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut b = Bench::new("unit");
        b.group("spin").sample_size(5).bench_function("noop", || {
            black_box(0u64);
        });
        assert_eq!(b.results().len(), 1);
        let r = &b.results()[0];
        assert_eq!((r.group.as_str(), r.case.as_str()), ("spin", "noop"));
        assert_eq!(r.samples, 5);
        assert!(r.min_ns <= r.median_ns);
        let json = b.to_json();
        assert!(json.contains("\"suite\": \"unit\""));
        assert!(json.contains("\"case\": \"noop\""));
    }

    #[test]
    fn median_orders_cases_correctly() {
        // `black_box` each element: a bare `(0..n).sum()` gets strength-
        // reduced to a closed form in release builds, making both cases
        // O(1) and the ordering assertion meaningless.
        fn opaque_sum(n: u64) -> u64 {
            (0..n).map(black_box).sum()
        }
        let mut b = Bench::new("unit2");
        {
            let mut g = b.group("sums");
            g.sample_size(5);
            g.bench_function("small", || {
                black_box(opaque_sum(1_000));
            });
            g.bench_function("large", || {
                black_box(opaque_sum(2_000_000));
            });
        }
        let small = b.results()[0].median_ns;
        let large = b.results()[1].median_ns;
        assert!(large > small, "large {large} vs small {small}");
    }

    #[test]
    fn json_escapes_quotes() {
        let mut b = Bench::new("q\"uote");
        b.group("g").sample_size(1).bench_function("c", || {});
        assert!(b.to_json().contains("q\\\"uote"));
    }

    #[test]
    fn env_sample_override_beats_explicit_sample_size() {
        // Constructed directly rather than via the environment so the test
        // cannot race other tests that call `Bench::new`.
        let mut b = Bench {
            suite: "env".to_string(),
            default_samples: 4,
            env_samples: Some(4),
            results: Vec::new(),
        };
        b.group("g").sample_size(100).bench_function("c", || {
            black_box(0u64);
        });
        assert_eq!(b.results()[0].samples, 4);
    }
}
