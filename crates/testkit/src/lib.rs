//! Hermetic in-repo test toolkit.
//!
//! The build environment has no crate registry, so everything the workspace
//! needs for randomized testing and benchmarking lives here, on `std` alone:
//!
//! - [`rng`]: a deterministic, seedable PRNG (splitmix64-seeded
//!   xoshiro256++) with the handful of distributions the generators and
//!   initializers use — the in-repo replacement for `rand`;
//! - [`prop`]: a mini property-testing harness — strategies, seeded case
//!   generation, greedy failure shrinking, and a `proptest!`-compatible
//!   macro — the in-repo replacement for `proptest`;
//! - [`bench`]: a wall-clock bench harness (warmup + median-of-N + JSON
//!   output) — the in-repo replacement for `criterion`;
//! - [`hermetic`]: a `Cargo.toml` scanner that detects non-`path`
//!   dependencies, backing the workspace's hermeticity guard test.
//!
//! # Writing a property test
//!
//! ```
//! use wisegraph_testkit::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!
//!     /// Reversing twice is the identity.
//!     fn reverse_roundtrip(v in prop::collection::vec(0u32..100, 0..20)) {
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         prop_assert_eq!(v, w);
//!     }
//! }
//! ```
//!
//! On failure the harness greedily shrinks the failing case (integers
//! toward their lower bound, vectors by dropping elements) and panics with
//! the minimal counterexample it reached plus the seed to reproduce it.

pub mod bench;
pub mod hermetic;
pub mod prop;
pub mod rng;

/// Everything a property test needs: the [`proptest!`] macro family, the
/// [`prop::Strategy`] trait (for `.prop_map`), [`prop::ProptestConfig`],
/// and the [`prop`] module itself (for `prop::collection::vec`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::prop::{ProptestConfig, Strategy, TestCaseError};
    pub use crate::rng::Rng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}
