//! Sharded-execution verification (`S001`–`S003`).
//!
//! The cluster layer (`wisegraph_kernels::cluster`) distributes one plan
//! across simulated devices and moves real buffers through deterministic
//! collectives. Three invariants make that sound, and this pass proves
//! the static ones and audits the dynamic one:
//!
//! - **Shard coverage** (`S001`): the contiguous vertex shard must tile
//!   the vertex space, and the per-device destination-filtered plans must
//!   together cover every edge of the original plan exactly once while
//!   preserving task slots (the slot identity is what keeps float
//!   addition order — and therefore bits — independent of the device
//!   count).
//! - **Exchange conservation** (`S002`): every byte a device reports
//!   sending must be reported received by exactly one peer in the same
//!   collective round, and vice versa — a mismatch means a collective
//!   dropped or duplicated a message.
//! - **Placement compatibility** (`S003`): a schedule must only run
//!   programs whose access structure it can partition (the
//!   [`wisegraph_kernels::cluster::placement_compatible`] rules); a
//!   selector that picks an incompatible schedule would wedge or corrupt
//!   a collective.

use std::collections::HashMap;

use crate::{push_capped, Code, Diagnostic, Span};
use wisegraph_graph::{Graph, ShardSpec};
use wisegraph_gtask::PartitionPlan;
use wisegraph_kernels::cluster::{placement_compatible, ExchangeLog};
use wisegraph_kernels::micro::KernelProgram;
use wisegraph_sim::PlacementKind;
use wisegraph_tensor::Tensor;

/// `S001`: the `devices`-way contiguous shard tiles the vertex space and
/// the destination-filtered per-device plans cover `plan`'s edges exactly
/// once with task slots preserved.
pub fn verify_shard_coverage(
    g: &Graph,
    plan: &PartitionPlan,
    devices: usize,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if devices == 0 {
        out.push(Diagnostic::error(
            Code::ShardCoverage,
            Span::Global,
            "cannot shard across zero devices",
        ));
        return out;
    }
    let v = g.num_vertices();
    let spec = ShardSpec::new(v, devices);
    // The contiguous ranges must tile [0, v) in device order, and the
    // point lookup must agree with the range it falls in.
    let mut next = 0usize;
    for d in 0..devices {
        let r = spec.owned_range(d);
        if r.start != next {
            out.push(Diagnostic::error(
                Code::ShardCoverage,
                Span::Device(d),
                format!(
                    "owned range starts at {} but the previous device ended at {next}",
                    r.start
                ),
            ));
        }
        next = r.end;
        // Empty ranges (more devices than vertices) own nothing to probe.
        for probe in [r.start, r.end.saturating_sub(1)] {
            if r.start < r.end && probe < v && spec.owner(probe as u32) != d {
                out.push(Diagnostic::error(
                    Code::ShardCoverage,
                    Span::Device(d),
                    format!(
                        "vertex {probe} lies in device {d}'s range but owner() says {}",
                        spec.owner(probe as u32)
                    ),
                ));
            }
        }
    }
    if next != v {
        out.push(Diagnostic::error(
            Code::ShardCoverage,
            Span::Global,
            format!("shard ranges end at {next}, not the vertex count {v}"),
        ));
    }
    // Destination-filtered plans: exactly-once edge coverage with slot
    // identity.
    let mut seen = vec![0u32; g.num_edges()];
    let mut slot_findings = Vec::new();
    for d in 0..devices {
        let fplan = plan.filtered(g, |e| spec.owner(g.dst()[e]) == d);
        if fplan.num_tasks() != plan.num_tasks() {
            slot_findings.push(Diagnostic::error(
                Code::ShardCoverage,
                Span::Device(d),
                format!(
                    "filtered plan has {} task slots, the original {} — slot \
                     identity (and with it cross-device bit determinism) is lost",
                    fplan.num_tasks(),
                    plan.num_tasks()
                ),
            ));
        }
        for t in &fplan.tasks {
            for &e in &t.edges {
                if spec.owner(g.dst()[e]) != d {
                    slot_findings.push(Diagnostic::error(
                        Code::ShardCoverage,
                        Span::Edge(e),
                        format!("edge assigned to device {d} but its destination is owned elsewhere"),
                    ));
                }
                seen[e] = seen[e].saturating_add(1);
            }
        }
    }
    let mut coverage_findings = Vec::new();
    for t in &plan.tasks {
        for &e in &t.edges {
            if seen[e] != 1 {
                coverage_findings.push(Diagnostic::error(
                    Code::ShardCoverage,
                    Span::Edge(e),
                    format!(
                        "edge covered by {} device plans instead of exactly one",
                        seen[e]
                    ),
                ));
            }
        }
    }
    push_capped(&mut out, slot_findings);
    push_capped(&mut out, coverage_findings);
    out
}

/// `S002`: every sent message in `log` pairs with exactly one received
/// message of the same collective, round, endpoints, and size.
pub fn verify_exchange(log: &ExchangeLog) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !log.is_conserved() {
        out.push(
            Diagnostic::error(
                Code::ExchangeConservation,
                Span::Global,
                format!(
                    "exchange log is not conserved: {} bytes sent vs {} bytes \
                     received across {} messages",
                    log.bytes_sent(),
                    log.bytes_received(),
                    log.messages_sent()
                ),
            )
            .with_suggestion(
                "a collective dropped or duplicated a message; check the \
                 mailbox round/seq discipline",
            ),
        );
    }
    out
}

/// `S003`: `placement` can legally run `program` — the check a selector
/// must consult before committing devices to a collective schedule.
pub fn verify_placement(
    program: &KernelProgram,
    g: &Graph,
    globals: &HashMap<String, Tensor>,
    placement: PlacementKind,
) -> Vec<Diagnostic> {
    match placement_compatible(program, g, globals, placement) {
        Ok(()) => Vec::new(),
        Err(why) => vec![Diagnostic::error(
            Code::PlacementIncompatible,
            Span::Global,
            format!("schedule `{}` cannot run this program: {why}", placement.name()),
        )
        .with_suggestion(
            "restrict selection to wisegraph_kernels::cluster::compatible_placements",
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_graph::generate::{rmat, RmatParams};
    use wisegraph_gtask::{partition, PartitionTable};
    use wisegraph_kernels::micro::compile;
    use wisegraph_models::ModelKind;
    use wisegraph_tensor::init;

    fn setup() -> (Graph, PartitionPlan) {
        let g = rmat(&RmatParams::standard(90, 700, 13));
        let plan = partition(&g, &PartitionTable::vertex_centric());
        (g, plan)
    }

    #[test]
    fn clean_shard_passes_and_zero_devices_fails() {
        let (g, plan) = setup();
        for devices in [1usize, 2, 3, 8] {
            let ds = verify_shard_coverage(&g, &plan, devices);
            assert!(ds.is_empty(), "{devices}: {ds:?}");
        }
        let ds = verify_shard_coverage(&g, &plan, 0);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code.as_str(), "S001");
    }

    #[test]
    fn incompatible_placement_is_s003() {
        let g = rmat(&RmatParams::standard(60, 300, 17));
        let dfg = ModelKind::Gat.layer_dfg(4, 3);
        let program = compile(&dfg, &g).unwrap();
        let mut globals = HashMap::new();
        globals.insert(
            "h".to_string(),
            init::uniform_tensor(&[g.num_vertices(), 4], -1.0, 1.0, 1),
        );
        globals.insert("w".to_string(), init::uniform_tensor(&[4, 3], -1.0, 1.0, 2));
        globals.insert("a_src".to_string(), init::uniform_tensor(&[3, 1], -1.0, 1.0, 3));
        globals.insert("a_dst".to_string(), init::uniform_tensor(&[3, 1], -1.0, 1.0, 4));
        let ds = verify_placement(&program, &g, &globals, PlacementKind::TensorParallel);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code.as_str(), "S003");
        assert!(verify_placement(&program, &g, &globals, PlacementKind::DataParallel)
            .is_empty());
    }

    #[test]
    fn empty_exchange_log_is_conserved() {
        assert!(verify_exchange(&ExchangeLog::default()).is_empty());
    }
}
