//! Pre-execution static verification.
//!
//! WiseGraph's correctness rests on invariants that the rest of the
//! workspace checks only dynamically, if at all: every partition plan must
//! cover each edge exactly once while honoring its `uniq(attr)`
//! restrictions (paper §4.2), DFG rewrites must preserve shapes and the
//! indexing-attribute set (§5.1), and fused kernels must compose
//! load/compute/store micro-kernels without register or workspace aliasing
//! (§5.2). This crate proves those properties *before* a single epoch
//! runs, and fails fast with a precise, structured [`Diagnostic`] instead
//! of silently training on a corrupt partition.
//!
//! Four passes:
//!
//! - [`plan`]: exact-once edge coverage, `Exact`/`Min` restriction
//!   satisfaction, non-empty and monotone gTask bounds (codes `P...`);
//! - [`dfgcheck`]: DFG well-formedness (acyclicity, no dangling node ids),
//!   full dimension inference, and rewrite-equivalence checks for
//!   `cse`/`prune_dead`/unique-extraction (codes `D...`);
//! - [`kernel`]: micro-kernel sequence legality (loads precede computes
//!   precede stores per register), workspace aliasing hazards, and the
//!   engine's deterministic chunk-to-slot mapping (codes `K...`);
//! - [`obscheck`]: span-instrumentation coverage of the execution entry
//!   points, so the observability layer cannot silently erode (code
//!   `O001`), and phase coverage of the cluster schedules and mailbox
//!   operations that feed causal tracing (code `O002`);
//! - [`repair`]: incremental-repair equivalence — a repaired plan must
//!   verify identically to a from-scratch partition of the same live edge
//!   set — and the cached-artifact roundtrip-test registry (codes `C...`);
//! - [`interference`]: schedule-level race freedom — per-gTask symbolic
//!   access sets, write-overlap and provenance checks across co-scheduled
//!   worker slots, fused-vs-interpreted access divergence, and workspace
//!   lifetime (use-after-release / double-lease) over pooled registers
//!   (codes `R...`); the dynamic counterpart is the engine's
//!   `ExecMode::Sanitize` shadow-memory sanitizer;
//! - [`sharding`]: sharded multi-device invariants — vertex-shard tiling
//!   and exactly-once edge coverage of the per-device filtered plans,
//!   collective exchange conservation, and placement/program
//!   compatibility (codes `S...`).
//!
//! [`verify_execution`] composes all applicable passes for one
//! (DFG, graph, plan, engine) combination; the `wisegraph-lint` binary
//! runs it over every built-in model × partition strategy as a tier-1
//! gate.

pub mod dfgcheck;
pub mod interference;
pub mod kernel;
pub mod obscheck;
pub mod plan;
pub mod repair;
pub mod sharding;

use std::fmt;
use wisegraph_dfg::{Binding, Dfg};
use wisegraph_graph::Graph;
use wisegraph_gtask::PartitionPlan;
use wisegraph_kernels::micro::compile;

/// How bad a finding is. `Error` findings make a [`Report`] fail (and
/// `wisegraph-lint` exit nonzero); `Warning` findings are advisory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not provably wrong.
    Warning,
    /// A proven invariant violation: executing would be incorrect.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes, one per invariant family. The string forms
/// (`P001`, `D002`, ...) are part of the tool's interface: tests assert
/// them and DESIGN.md §8 documents them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// An edge is missing from, duplicated across, or out of range for
    /// the plan's gTasks.
    PlanEdgeCoverage,
    /// A gTask violates (or disagrees with) a table restriction.
    PlanRestriction,
    /// A gTask holds no edges.
    PlanEmptyTask,
    /// gTask edges are not monotone in the partitioner's sort-key order.
    PlanTaskOrder,
    /// Dangling node ids, forward references, or dangling outputs.
    DfgIllFormed,
    /// Dimension inference disagrees with a stored shape, or a symbolic
    /// dimension cannot be evaluated under the binding.
    DfgShapeMismatch,
    /// A rewrite changed the indexing-attribute set or the outputs.
    DfgRewriteChanged,
    /// A register is read before any micro-kernel writes it, or the
    /// program never stores.
    KernelUseBeforeDef,
    /// A micro-kernel writes a register it also reads (or two of its
    /// results share a register): an in-place workspace hazard.
    KernelAliasing,
    /// The engine's chunk-to-slot mapping has a gap, overlap, or more
    /// chunks than worker slots.
    KernelChunkMapping,
    /// The compiled program and the partition plan cannot run together.
    KernelPlanIncompatible,
    /// A fused plan does not cover the program's instructions exactly
    /// once, or a fused segment does not replace the instructions it
    /// claims to (pattern mismatch, escaping intermediate register).
    KernelFusionCoverage,
    /// A fusion pattern has no registered interpreter-parity test in
    /// `tests/fused_parity.rs`.
    KernelFusionUntested,
    /// An execution entry point runs without an enclosing observability
    /// span (or the instrumentation-coverage table is stale).
    ObsUncovered,
    /// A cluster schedule phase or mailbox operation runs without its
    /// required phase span / phase-recording call, so the causal trace
    /// and critical-path attribution would silently lose that phase.
    ObsPhaseUncovered,
    /// An incrementally repaired plan diverges from a from-scratch
    /// partition of the same live edge set: different coverage, a violated
    /// restriction, or a different verification verdict.
    RepairDivergence,
    /// A cached artifact type has no registered byte-roundtrip test in
    /// `tests/cache_roundtrip.rs`.
    CacheArtifactUntested,
    /// Two co-scheduled gTasks write overlapping accumulator rows and the
    /// overlap is not an accumulation the engine's deterministic merge
    /// handles (the program's stores assume exclusive row ownership).
    ScheduleWriteOverlap,
    /// A scatter destination's row provenance is not statically
    /// resolvable, so read-write/write-write disjointness of co-scheduled
    /// gTasks cannot be proven.
    ScheduleReadWrite,
    /// The schedule maps two concurrently executing chunks onto one
    /// worker slot (or a slot outside the engine), racing on the slot's
    /// task workspace and partial accumulator.
    ScheduleSlotCollision,
    /// A fused segment's derived access set (globals read, scatter
    /// destination) diverges from the interpreted instructions it
    /// replaces.
    ScheduleFusedDivergence,
    /// A register's pooled buffer is re-leased while unconsumed
    /// (double-lease) or read across a release point
    /// (use-after-release): the single-assignment discipline backing the
    /// workspace pool's recycle-on-overwrite semantics is broken.
    WorkspaceLifetime,
    /// The vertex shard does not tile the vertex space, or the
    /// per-device destination-filtered plans do not cover every edge
    /// exactly once with task slots preserved.
    ShardCoverage,
    /// A collective exchange log is not conserved: a sent message has no
    /// matching receipt (or vice versa).
    ExchangeConservation,
    /// A placement schedule was asked to run a program whose access
    /// structure it cannot partition.
    PlacementIncompatible,
}

impl Code {
    /// The stable short form used in output and tests.
    pub const fn as_str(self) -> &'static str {
        match self {
            Code::PlanEdgeCoverage => "P001",
            Code::PlanRestriction => "P002",
            Code::PlanEmptyTask => "P003",
            Code::PlanTaskOrder => "P004",
            Code::DfgIllFormed => "D001",
            Code::DfgShapeMismatch => "D002",
            Code::DfgRewriteChanged => "D003",
            Code::KernelUseBeforeDef => "K001",
            Code::KernelAliasing => "K002",
            Code::KernelChunkMapping => "K003",
            Code::KernelPlanIncompatible => "K004",
            Code::KernelFusionCoverage => "K005",
            Code::KernelFusionUntested => "K006",
            Code::ObsUncovered => "O001",
            Code::ObsPhaseUncovered => "O002",
            Code::RepairDivergence => "C001",
            Code::CacheArtifactUntested => "C002",
            Code::ScheduleWriteOverlap => "R001",
            Code::ScheduleReadWrite => "R002",
            Code::ScheduleSlotCollision => "R003",
            Code::ScheduleFusedDivergence => "R004",
            Code::WorkspaceLifetime => "R005",
            Code::ShardCoverage => "S001",
            Code::ExchangeConservation => "S002",
            Code::PlacementIncompatible => "S003",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in the verified artifact a finding is anchored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Span {
    /// The artifact as a whole.
    Global,
    /// One gTask, by index in the plan.
    Task(usize),
    /// One edge, by id.
    Edge(usize),
    /// One DFG node, by index.
    Node(usize),
    /// One micro-kernel, by position in the program.
    KernelOp(usize),
    /// One engine chunk, by worker-slot index.
    Chunk(usize),
    /// One simulated device, by index in the cluster.
    Device(usize),
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Global => f.write_str("global"),
            Span::Task(i) => write!(f, "task {i}"),
            Span::Edge(e) => write!(f, "edge {e}"),
            Span::Node(n) => write!(f, "node {n}"),
            Span::KernelOp(j) => write!(f, "kernel op {j}"),
            Span::Chunk(c) => write!(f, "chunk {c}"),
            Span::Device(d) => write!(f, "device {d}"),
        }
    }
}

/// One structured finding of a verifier pass.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// The invariant family violated.
    pub code: Code,
    /// Anchor within the artifact.
    pub span: Span,
    /// What exactly is wrong, with the observed values.
    pub message: String,
    /// How to fix it, when the pass can tell.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// An error finding.
    pub fn error(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            span,
            message: message.into(),
            suggestion: None,
        }
    }

    /// A warning finding.
    pub fn warning(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Self::error(code, span, message)
        }
    }

    /// Attaches a fix suggestion.
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.span, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, " (help: {s})")?;
        }
        Ok(())
    }
}

/// An ordered collection of diagnostics with severity accounting.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends a pass's findings.
    pub fn extend(&mut self, ds: Vec<Diagnostic>) {
        self.diagnostics.extend(ds);
    }

    /// Number of `Error` findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of `Warning` findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// `true` when no finding is an error (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// The distinct codes present, in canonical order.
    pub fn codes(&self) -> Vec<Code> {
        let mut out: Vec<Code> = self.diagnostics.iter().map(|d| d.code).collect();
        out.sort();
        out.dedup();
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        )
    }
}

/// Runs every applicable pass for executing `dfg` over `plan` on `g` with
/// an engine of `threads` worker slots: DFG well-formedness and dimension
/// inference, plan legality, micro-kernel program legality,
/// program↔plan compatibility, and the chunk-to-slot mapping.
///
/// A DFG that does not compile to a per-task program is reported as a
/// [`Code::KernelPlanIncompatible`] error (there is no legal way to run it
/// under this execution model), so the report stays purely static.
pub fn verify_execution(
    dfg: &Dfg,
    g: &Graph,
    plan: &PartitionPlan,
    threads: usize,
) -> Report {
    let mut report = Report::new();
    let binding = Binding::from_graph(g);
    report.extend(dfgcheck::verify_dfg(dfg, Some(&binding)));
    report.extend(plan::verify_plan(g, plan));
    match compile(dfg, g) {
        Ok(program) => {
            report.extend(kernel::verify_program(&program));
            report.extend(kernel::verify_plan_compat(g, plan, &program));
            report.extend(kernel::verify_chunk_mapping(plan.num_tasks(), threads));
            let fplan = wisegraph_kernels::fused::plan_fusion(&program);
            report.extend(kernel::verify_fusion(&program, &fplan));
            report.extend(interference::verify_fused_access(&program, &fplan));
            report.extend(interference::verify_workspace_lifetime(&program));
            report.extend(interference::verify_interference(g, plan, &program, threads));
        }
        Err(e) => report.push(Diagnostic::error(
            Code::KernelPlanIncompatible,
            Span::Global,
            format!("the DFG does not compile to a per-task program: {e}"),
        )),
    }
    report
}

/// Caps a burst of same-code findings: the first [`DIAG_CAP`] are kept
/// verbatim; the rest collapse into one summarizing finding so a
/// million-edge coverage failure stays readable.
pub(crate) fn push_capped(out: &mut Vec<Diagnostic>, found: Vec<Diagnostic>) {
    /// Per-category finding cap.
    const DIAG_CAP: usize = 8;
    let extra = found.len().saturating_sub(DIAG_CAP);
    let tail = found.get(DIAG_CAP.saturating_sub(1)).map(|d| (d.severity, d.code));
    out.extend(found.into_iter().take(DIAG_CAP));
    if let (Some((severity, code)), true) = (tail, extra > 0) {
        out.push(Diagnostic {
            severity,
            code,
            span: Span::Global,
            message: format!("... and {extra} more findings of this kind"),
            suggestion: None,
        });
    }
}

/// Bundles `Binding` lookups the passes share; re-exported for callers
/// composing their own pipelines.
pub mod prelude {
    pub use crate::dfgcheck::{effective_indexing_attrs, verify_dfg, verify_rewrite};
    pub use crate::interference::{
        summarize_plan, task_access, verify_fused_access, verify_interference,
        verify_slot_assignment, verify_workspace_lifetime, TaskAccess,
    };
    pub use crate::kernel::{
        verify_chunk_mapping, verify_chunk_ranges, verify_fused_parity_registry,
        verify_fusion, verify_plan_compat, verify_program,
    };
    pub use crate::obscheck::{
        check_phase_sources, verify_instrumentation, verify_phase_instrumentation,
    };
    pub use crate::plan::verify_plan;
    pub use crate::repair::{verify_cache_roundtrip_registry, verify_repair};
    pub use crate::sharding::{verify_exchange, verify_placement, verify_shard_coverage};
    pub use crate::{Code, Diagnostic, Report, Severity, Span};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_rendering_includes_code_span_and_suggestion() {
        let d = Diagnostic::error(
            Code::PlanEdgeCoverage,
            Span::Edge(7),
            "edge 7 is not covered by any gTask",
        )
        .with_suggestion("re-run the greedy partitioner");
        let s = d.to_string();
        assert!(s.contains("error[P001]"), "{s}");
        assert!(s.contains("edge 7"), "{s}");
        assert!(s.contains("help:"), "{s}");
    }

    #[test]
    fn report_counts_and_cleanliness() {
        let mut r = Report::new();
        assert!(r.is_clean());
        r.push(Diagnostic::warning(Code::PlanRestriction, Span::Task(0), "w"));
        assert!(r.is_clean());
        r.push(Diagnostic::error(Code::DfgIllFormed, Span::Node(1), "e"));
        assert!(!r.is_clean());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert_eq!(r.codes(), vec![Code::PlanRestriction, Code::DfgIllFormed]);
    }

    #[test]
    fn capping_collapses_bursts() {
        let mk = |i| {
            Diagnostic::error(Code::PlanEdgeCoverage, Span::Edge(i), format!("edge {i}"))
        };
        let mut out = Vec::new();
        push_capped(&mut out, (0..20).map(mk).collect());
        assert_eq!(out.len(), 9, "8 kept + 1 summary");
        assert!(out[8].message.contains("12 more"), "{}", out[8].message);
        let mut small = Vec::new();
        push_capped(&mut small, (0..3).map(mk).collect());
        assert_eq!(small.len(), 3);
    }
}
