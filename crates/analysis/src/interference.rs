//! Schedule-interference analysis and workspace lifetime (codes `R001`–`R005`).
//!
//! The engine's parallelism rests on one claim: co-scheduled gTasks never
//! step on each other. Concretely, every worker scatters into a private
//! accumulator and the partials reduce in ascending slot order, so
//! cross-task writes to the same accumulator row are *legal accumulation*
//! — unless the program's stores assume exclusive row ownership
//! (per-destination normalization, [`KernelProgram::requires_dst_complete`]),
//! in which case overlap silently corrupts the normalization. This module
//! proves the claim statically, per (graph, plan, program, threads)
//! combination:
//!
//! - [`task_access`] / [`summarize_plan`] derive each gTask's symbolic
//!   access set — globals read, accumulator rows written, exclusivity —
//!   from the same [`summarize`] access summary the fusion matcher's
//!   confinement checks consume, so matcher and verifier can never drift;
//! - [`verify_interference`] checks every pair of gTasks co-scheduled by
//!   [`chunk_ranges`] across worker slots: write-write overlap that the
//!   deterministic merge does *not* handle is `R001`, and a scatter
//!   destination whose row provenance cannot be resolved statically
//!   (so disjointness cannot be proven) is `R002`;
//! - [`verify_slot_assignment`] proves a chunk-to-slot assignment gives
//!   every concurrent chunk a private slot (`R003`);
//! - [`verify_fused_access`] re-derives each fused segment's access set
//!   from the interpreted instructions it replaces and requires them to
//!   agree (`R004`) — interpreted and fused `ExecMode`s must touch the
//!   same buffers;
//! - [`verify_workspace_lifetime`] enforces the single-assignment
//!   discipline backing the workspace pool's recycle-on-overwrite
//!   semantics: a re-leased register whose previous buffer was never
//!   consumed, or a read across a release point, is `R005`.
//!
//! The dynamic counterpart is the engine's `ExecMode::Sanitize`
//! shadow-memory sanitizer, which records per-cell last writers during a
//! real execution; `wisegraph-lint` pass 7 cross-checks the two — a
//! runtime conflict on a schedule this module declared safe is a hard
//! error.

use crate::{push_capped, Code, Diagnostic, Span};
use std::collections::{btree_map::Entry, BTreeMap, BTreeSet};
use wisegraph_graph::Graph;
use wisegraph_gtask::{GTask, PartitionPlan};
use wisegraph_kernels::engine::chunk_ranges;
use wisegraph_kernels::fused::{FusedOp, FusedPlan, Segment};
use wisegraph_kernels::micro::{
    global_inputs, summarize, AccessSummary, KernelProgram, MicroKernel, Reg,
};

/// The symbolic access set of one gTask under a compiled program: which
/// global buffers it reads, which accumulator rows it writes, and whether
/// its stores assume exclusive row ownership.
#[derive(Clone, Debug)]
pub struct TaskAccess {
    /// Task index in the plan.
    pub task: usize,
    /// Named global tensors the program reads (feature matrices, weight
    /// tables, prologue pseudo-globals). Read-only in task scope, shared
    /// by every worker.
    pub globals_read: BTreeSet<String>,
    /// Accumulator rows the task's scatter stores write — exact when
    /// every store's destination stream resolves to an edge attribute,
    /// `None` when some destination's provenance is unknown.
    pub write_rows: Option<BTreeSet<u64>>,
    /// `true` when the program's stores assume exclusive ownership of
    /// the rows they write: overlap with any co-scheduled writer is then
    /// an error, not an accumulation.
    pub exclusive: bool,
}

/// Derives the symbolic access set of one gTask from the shared program
/// [`AccessSummary`]: scatter destinations resolve through the summary's
/// stream provenance to edge attributes, whose value sets over the task's
/// edges are exactly the accumulator rows written.
pub fn task_access(
    g: &Graph,
    task_idx: usize,
    task: &GTask,
    program: &KernelProgram,
    summary: &AccessSummary,
) -> TaskAccess {
    let globals_read = summary
        .global_reads
        .iter()
        .map(|(_, name)| name.clone())
        .collect();
    let mut rows = BTreeSet::new();
    let mut resolvable = true;
    for &(_, _, idx) in &summary.scatter_stores {
        match summary.stream_origin.get(idx.0).copied().flatten() {
            Some(attr) => rows.extend(task.attr_rows(g, attr)),
            None => resolvable = false,
        }
    }
    TaskAccess {
        task: task_idx,
        globals_read,
        write_rows: resolvable.then_some(rows),
        exclusive: program.requires_dst_complete,
    }
}

/// Per-task access summaries for a whole plan under one compiled program.
pub fn summarize_plan(
    g: &Graph,
    plan: &PartitionPlan,
    program: &KernelProgram,
) -> Vec<TaskAccess> {
    let summary = summarize(program);
    plan.tasks
        .iter()
        .enumerate()
        .map(|(i, t)| task_access(g, i, t, program, &summary))
        .collect()
}

/// Schedule-level interference check (codes `R001`, `R002`, and a re-check
/// of `R003` on the engine's own assignment).
///
/// Models exactly what the engine will do: tasks split into
/// [`chunk_ranges`]`(num_tasks, threads)` contiguous chunks, chunk `i` on
/// worker slot `i`, all chunks concurrent. For every pair of co-scheduled
/// tasks (different slots) it proves write-write disjointness of the
/// accumulator rows — or proves the only overlap is plain scatter-add
/// accumulation, which the engine's ascending-order merge handles
/// deterministically. Programs whose stores assume exclusive row
/// ownership get the strict check; a destination stream whose provenance
/// cannot be resolved makes the proof impossible and is reported instead
/// of assumed safe.
///
/// Reads never interfere: named globals (including prologue
/// pseudo-globals) are read-only in task scope, and the only write target
/// outside the register file is the per-worker private accumulator.
pub fn verify_interference(
    g: &Graph,
    plan: &PartitionPlan,
    program: &KernelProgram,
    threads: usize,
) -> Vec<Diagnostic> {
    let mut found = Vec::new();
    let summary = summarize(program);
    for &(pc, _, idx) in &summary.scatter_stores {
        if summary.stream_origin.get(idx.0).copied().flatten().is_none() {
            found.push(
                Diagnostic::error(
                    Code::ScheduleReadWrite,
                    Span::KernelOp(pc),
                    format!(
                        "scatter destination stream r{} has no statically \
                         resolvable edge-attribute provenance; write sets of \
                         co-scheduled gTasks cannot be proven disjoint",
                        idx.0
                    ),
                )
                .with_suggestion(
                    "scatter by a LoadStream-ed attribute (or its Unique values)",
                ),
            );
        }
    }
    if threads == 0 || plan.num_tasks() == 0 {
        let mut out = Vec::new();
        push_capped(&mut out, found);
        return out;
    }

    let ranges = chunk_ranges(plan.num_tasks(), threads);
    // The engine's own assignment is the identity; prove it anyway so the
    // R003 invariant is checked on the path that matters, not only for
    // hypothetical external schedules.
    let slots: Vec<usize> = (0..ranges.len()).collect();
    found.extend(slot_findings(&slots, threads));

    // Write-write: merge-safe programs need no row reasoning at all — any
    // overlap is accumulation by construction. Exclusive programs get a
    // linear-time row→first-writer sweep instead of pairwise
    // intersection.
    if program.requires_dst_complete {
        let mut slot_of = vec![0usize; plan.num_tasks()];
        for (slot, r) in ranges.iter().enumerate() {
            for t in r.clone() {
                slot_of[t] = slot;
            }
        }
        let accesses = summarize_plan(g, plan, program);
        let mut owner: BTreeMap<u64, usize> = BTreeMap::new();
        let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();
        for a in &accesses {
            let Some(rows) = &a.write_rows else { continue };
            for &row in rows {
                match owner.entry(row) {
                    Entry::Vacant(v) => {
                        v.insert(a.task);
                    }
                    Entry::Occupied(o) => {
                        let first = *o.get();
                        if slot_of[first] != slot_of[a.task]
                            && reported.insert((first, a.task))
                        {
                            found.push(Diagnostic::error(
                                Code::ScheduleWriteOverlap,
                                Span::Task(a.task),
                                format!(
                                    "writes accumulator row {row} concurrently \
                                     with task {first} (worker slots {} and {}); \
                                     the program's per-destination \
                                     normalization assumes exclusive row \
                                     ownership, so this overlap is not an \
                                     accumulation the deterministic merge \
                                     handles",
                                    slot_of[a.task], slot_of[first]
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    push_capped(&mut out, found);
    out
}

/// Proves a chunk-to-slot assignment gives every concurrently executing
/// chunk a private worker slot (code `R003`): slots in range, no two
/// chunks sharing one. The engine's identity assignment trivially passes;
/// this entry point exists so future schedulers (work stealing, sharded
/// multi-device placement) can be proven against the same invariant.
pub fn verify_slot_assignment(slots: &[usize], threads: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    push_capped(&mut out, slot_findings(slots, threads));
    out
}

fn slot_findings(slots: &[usize], threads: usize) -> Vec<Diagnostic> {
    let mut found = Vec::new();
    let mut seen: BTreeMap<usize, usize> = BTreeMap::new();
    for (chunk, &slot) in slots.iter().enumerate() {
        if slot >= threads {
            found.push(Diagnostic::error(
                Code::ScheduleSlotCollision,
                Span::Chunk(chunk),
                format!(
                    "assigned to worker slot {slot}, but the engine has only \
                     {threads} slot(s)"
                ),
            ));
        }
        if let Some(&prev) = seen.get(&slot) {
            found.push(Diagnostic::error(
                Code::ScheduleSlotCollision,
                Span::Chunk(chunk),
                format!(
                    "chunks {prev} and {chunk} share worker slot {slot}; \
                     concurrent chunks would race on the slot's task \
                     workspace and partial accumulator"
                ),
            ));
        }
        seen.insert(slot, chunk);
    }
    found
}

/// Fused-vs-interpreted access agreement (code `R004`): for every fused
/// segment, re-derives the access set of the interpreted instructions it
/// replaces (named globals read, scatter destination stream) and requires
/// the lowered [`FusedOp`]'s wiring to match. Guarantees the interference
/// verdict proven on the interpreted program transfers to the fused
/// `ExecMode`s — both schedules touch exactly the same buffers.
pub fn verify_fused_access(
    program: &KernelProgram,
    fplan: &FusedPlan,
) -> Vec<Diagnostic> {
    let mut found = Vec::new();
    for seg in &fplan.segments {
        let Segment::Fused(fk) = seg else { continue };
        let (claimed_globals, claimed_dst): (BTreeSet<&str>, Reg) = match &fk.op {
            FusedOp::SegmentReduce { src, dst_idx, .. } => {
                ([src.as_str()].into_iter().collect(), *dst_idx)
            }
            FusedOp::EdgeBatchMatmul { src, w, dst_idx, .. } => {
                ([src.as_str(), w.as_str()].into_iter().collect(), *dst_idx)
            }
            FusedOp::PerTypeBatchedMatmul { h, w, dst_idx, .. } => {
                ([h.as_str(), w.as_str()].into_iter().collect(), *dst_idx)
            }
        };
        let mut derived_globals: BTreeSet<&str> = BTreeSet::new();
        let mut derived_dst = None;
        let mut out_of_range = false;
        for pc in fk.pcs.clone() {
            let Some(op) = program.ops.get(pc) else {
                out_of_range = true;
                continue;
            };
            derived_globals.extend(global_inputs(op));
            if let MicroKernel::ScatterAdd { idx, .. } = op {
                derived_dst = Some(*idx);
            }
        }
        if out_of_range {
            found.push(Diagnostic::error(
                Code::ScheduleFusedDivergence,
                Span::KernelOp(fk.pcs.start),
                format!(
                    "fused segment claims pcs {:?} past the end of the \
                     program ({} ops)",
                    fk.pcs,
                    program.ops.len()
                ),
            ));
            continue;
        }
        if derived_globals != claimed_globals {
            found.push(Diagnostic::error(
                Code::ScheduleFusedDivergence,
                Span::KernelOp(fk.pcs.start),
                format!(
                    "fused segment reads globals {claimed_globals:?} but the \
                     interpreted instructions it replaces read \
                     {derived_globals:?}; the two ExecModes would touch \
                     different buffers"
                ),
            ));
        }
        if derived_dst != Some(claimed_dst) {
            found.push(Diagnostic::error(
                Code::ScheduleFusedDivergence,
                Span::KernelOp(fk.pcs.start),
                format!(
                    "fused segment scatters by stream r{}, but the \
                     interpreted instructions it replaces scatter by {}",
                    claimed_dst.0,
                    derived_dst
                        .map(|r| format!("r{}", r.0))
                        .unwrap_or_else(|| "no store at all".to_string())
                ),
            ));
        }
    }
    let mut out = Vec::new();
    push_capped(&mut out, found);
    out
}

/// Workspace lifetime pass (code `R005`): liveness over registers backed
/// by pooled buffers. The workspace pool recycles a register's previous
/// buffer the moment the register is overwritten (`set_reg`), so the
/// compiled-program contract is single assignment. Two violations:
///
/// - **double-lease** — a register is written again while the buffer from
///   its previous write was never read: a lease was taken and recycled
///   unconsumed;
/// - **use-after-release** — a register is read after an overwrite
///   released the buffer its earlier value lived in; under buffer
///   recycling the read no longer observes the value the data flow
///   promised.
///
/// Compiled programs are SSA by construction ([`compile`] allocates a
/// fresh register per node) and verify clean; this pass keeps that
/// guarantee under future hand-built or transformed programs. Distinct
/// from the K002 aliasing warning, which flags a *single* instruction
/// reading and writing one register.
///
/// [`compile`]: wisegraph_kernels::micro::compile
pub fn verify_workspace_lifetime(program: &KernelProgram) -> Vec<Diagnostic> {
    let summary = summarize(program);
    let mut found = Vec::new();
    for r in 0..summary.writes.len() {
        let writes = &summary.writes[r];
        if writes.len() <= 1 {
            continue;
        }
        let reads = &summary.reads[r];
        for win in writes.windows(2) {
            let (w1, w2) = (win[0], win[1]);
            if !reads.iter().any(|&pc| pc > w1 && pc < w2) {
                found.push(
                    Diagnostic::error(
                        Code::WorkspaceLifetime,
                        Span::KernelOp(w2),
                        format!(
                            "double-lease: register r{r} is re-leased here \
                             while the buffer leased at op {w1} was never \
                             consumed; the pool recycles it unread"
                        ),
                    )
                    .with_suggestion(
                        "compiled programs assign each register exactly once; \
                         allocate a fresh register for the new value",
                    ),
                );
            }
        }
        for &rd in reads {
            if let Some(&release) = writes.iter().skip(1).rfind(|&&w| w < rd)
            {
                found.push(Diagnostic::error(
                    Code::WorkspaceLifetime,
                    Span::KernelOp(rd),
                    format!(
                        "use-after-release: reads register r{r}, but the \
                         overwrite at op {release} already released the \
                         buffer holding the value defined at op {} back to \
                         the pool",
                        writes[0]
                    ),
                ));
            }
        }
    }
    let mut out = Vec::new();
    push_capped(&mut out, found);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_gtask::{partition, PartitionTable};
    use wisegraph_kernels::fused::plan_fusion;
    use wisegraph_kernels::micro::compile;
    use wisegraph_models::ModelKind;

    fn paper_graph() -> Graph {
        Graph::new(
            5,
            2,
            vec![0, 1, 0, 1, 2, 2, 3, 4, 3, 4, 0],
            vec![0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 4],
            vec![0, 0, 0, 0, 1, 0, 1, 1, 1, 1, 0],
        )
    }

    #[test]
    fn shipped_models_are_interference_free_at_every_thread_count() {
        let g = paper_graph();
        for kind in [
            ModelKind::Gcn,
            ModelKind::Rgcn,
            ModelKind::Gat,
            ModelKind::Sage,
        ] {
            let program = compile(&kind.layer_dfg(4, 3), &g).unwrap();
            let table = if program.requires_dst_complete {
                PartitionTable::vertex_centric()
            } else {
                PartitionTable::edge_batch(3)
            };
            let plan = partition(&g, &table);
            for threads in [1, 2, 4, 8] {
                let ds = verify_interference(&g, &plan, &program, threads);
                assert!(ds.is_empty(), "{} x{threads}: {ds:?}", kind.name());
                assert!(verify_workspace_lifetime(&program).is_empty());
                assert!(
                    verify_fused_access(&program, &plan_fusion(&program)).is_empty()
                );
            }
        }
    }

    #[test]
    fn task_access_resolves_scatter_rows_to_dst_ids() {
        let g = paper_graph();
        let program = compile(&ModelKind::Gcn.layer_dfg(4, 3), &g).unwrap();
        let plan = partition(&g, &PartitionTable::vertex_centric());
        let accesses = summarize_plan(&g, &plan, &program);
        assert_eq!(accesses.len(), plan.num_tasks());
        for (a, task) in accesses.iter().zip(&plan.tasks) {
            let rows = a.write_rows.as_ref().expect("GCN scatter resolves");
            let expected = task.attr_rows(&g, wisegraph_graph::AttrKind::DstId);
            assert_eq!(*rows, expected);
        }
        // Vertex-centric tasks write pairwise-disjoint rows.
        let mut all = BTreeSet::new();
        for a in &accesses {
            for &r in a.write_rows.as_ref().unwrap() {
                assert!(all.insert(r), "row {r} written by two tasks");
            }
        }
    }

    #[test]
    fn slot_assignment_collisions_are_r003() {
        let clean = verify_slot_assignment(&[0, 1, 2], 3);
        assert!(clean.is_empty(), "{clean:?}");
        let shared = verify_slot_assignment(&[0, 0], 2);
        assert!(shared.iter().any(|d| d.code == Code::ScheduleSlotCollision));
        let out_of_range = verify_slot_assignment(&[5], 2);
        assert!(
            out_of_range.iter().any(|d| d.code == Code::ScheduleSlotCollision),
            "{out_of_range:?}"
        );
    }
}
