//! DFG verification (codes `D001`–`D003`).
//!
//! Three questions are answered before any execution:
//!
//! 1. Is the graph *well-formed*? Node inputs must reference earlier nodes
//!    (the `Dfg` vector order is the topological order, so a forward
//!    reference is a cycle or corruption) and outputs must exist (`D001`).
//! 2. Do the stored shapes agree with a full re-run of shape inference,
//!    and is every symbolic dimension evaluable under the scope's
//!    [`Binding`] (`D002`)?
//! 3. Did a rewrite pass preserve the model's observable interface — its
//!    indexing-attribute set, output arity, and output shapes (`D003`)?

use crate::{push_capped, Code, Diagnostic, Span};
use std::collections::BTreeSet;
use wisegraph_dfg::analysis::indexing_attrs;
use wisegraph_dfg::dim::{Binding, Dim};
use wisegraph_dfg::{Dfg, NodeId, OpKind};
use wisegraph_graph::AttrKind;

/// Statically verifies one DFG. `binding` enables dimension-evaluability
/// checks (`None` skips them: pure structural verification).
pub fn verify_dfg(dfg: &Dfg, binding: Option<&Binding>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = dfg.len();

    // --- D001: well-formedness ---------------------------------------
    // Nodes whose inputs are broken: shape inference over them would read
    // garbage, so they are excluded from the D002 pass below.
    let mut bad = vec![false; n];
    let mut form_diags = Vec::new();
    for (i, node) in dfg.nodes().iter().enumerate() {
        for &NodeId(p) in &node.inputs {
            if p >= n {
                bad[i] = true;
                form_diags.push(Diagnostic::error(
                    Code::DfgIllFormed,
                    Span::Node(i),
                    format!("input NodeId({p}) is dangling (the DFG has {n} nodes)"),
                ));
            } else if p >= i {
                bad[i] = true;
                form_diags.push(
                    Diagnostic::error(
                        Code::DfgIllFormed,
                        Span::Node(i),
                        format!(
                            "input NodeId({p}) does not precede its consumer; node order \
                             must be topological, so this is a cycle or a forward reference"
                        ),
                    )
                    .with_suggestion("build DFGs through the checked builder API"),
                );
            }
        }
    }
    for &NodeId(o) in dfg.outputs() {
        if o >= n {
            form_diags.push(Diagnostic::error(
                Code::DfgIllFormed,
                Span::Global,
                format!("output NodeId({o}) is dangling (the DFG has {n} nodes)"),
            ));
        }
    }
    if dfg.outputs().is_empty() {
        form_diags.push(Diagnostic::warning(
            Code::DfgIllFormed,
            Span::Global,
            "the DFG declares no outputs; every node is dead",
        ));
    }
    push_capped(&mut out, form_diags);

    // --- D002: shape inference and dimension evaluability ------------
    let mut shape_diags = Vec::new();
    for (i, node) in dfg.nodes().iter().enumerate() {
        if bad[i] {
            continue;
        }
        // Inputs/EdgeAttr streams carry declared shapes; everything else
        // must match re-inference from its (already validated) inputs.
        if !node.inputs.is_empty() || !matches!(node.kind, OpKind::Input { .. }) {
            let in_shapes: Vec<_> = node
                .inputs
                .iter()
                .map(|&NodeId(p)| dfg.node(NodeId(p)).shape.clone())
                .collect();
            match node.kind.output_shape(&in_shapes) {
                Ok(inferred) => {
                    if inferred != node.shape {
                        shape_diags.push(
                            Diagnostic::error(
                                Code::DfgShapeMismatch,
                                Span::Node(i),
                                format!(
                                    "stored shape {:?} disagrees with inferred shape {:?}",
                                    node.shape, inferred
                                ),
                            )
                            .with_suggestion("re-infer shapes instead of storing them by hand"),
                        );
                    }
                }
                Err(e) => {
                    shape_diags.push(Diagnostic::error(
                        Code::DfgShapeMismatch,
                        Span::Node(i),
                        format!("shape inference fails for {:?}: {e}", node.kind),
                    ));
                }
            }
        }
        if let Some(b) = binding {
            for &d in &node.shape {
                if let Dim::Unique(a) = d {
                    if !b.unique.contains_key(&a) {
                        shape_diags.push(
                            Diagnostic::error(
                                Code::DfgShapeMismatch,
                                Span::Node(i),
                                format!(
                                    "dimension uniq({a}) cannot be evaluated: the binding \
                                     records no unique count for {a}"
                                ),
                            )
                            .with_suggestion(
                                "build the binding with Binding::from_graph/from_edge_set",
                            ),
                        );
                    }
                }
            }
        }
    }
    push_capped(&mut out, shape_diags);
    out
}

/// The attribute set a rewrite must preserve: the base indexing attributes
/// plus attributes reaching indexing ops through `UniqueValues`/`UniqueMap`
/// streams (unique extraction rewires `EdgeAttr(a)` into those, which must
/// still count as "indexes by `a`").
pub fn effective_indexing_attrs(dfg: &Dfg) -> BTreeSet<AttrKind> {
    let mut attrs = indexing_attrs(dfg);
    let consumers = dfg.consumers();
    for (i, node) in dfg.nodes().iter().enumerate() {
        let attr = match node.kind {
            OpKind::UniqueValues(a) | OpKind::UniqueMap(a) => a,
            _ => continue,
        };
        let drives_indexing = consumers[i].iter().any(|&c| {
            matches!(
                dfg.node(c).kind,
                OpKind::Index
                    | OpKind::Index2D
                    | OpKind::IndexAdd { .. }
                    | OpKind::LstmAggregate { .. }
                    | OpKind::SegmentSoftmax
            )
        });
        if drives_indexing {
            attrs.insert(attr);
        }
    }
    attrs
}

/// Checks that a rewrite pass (`cse`, `prune_dead`, unique extraction,
/// indexing swap, …) preserved the model's observable interface. `pass`
/// names the transformation in the diagnostics.
pub fn verify_rewrite(original: &Dfg, rewritten: &Dfg, pass: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let before = effective_indexing_attrs(original);
    let after = effective_indexing_attrs(rewritten);
    if before != after {
        let fmt = |s: &BTreeSet<AttrKind>| {
            s.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(", ")
        };
        out.push(
            Diagnostic::error(
                Code::DfgRewriteChanged,
                Span::Global,
                format!(
                    "pass `{pass}` changed the indexing-attribute set from {{{}}} to {{{}}}",
                    fmt(&before),
                    fmt(&after)
                ),
            )
            .with_suggestion("a rewrite may restructure indexing, not re-target it"),
        );
    }
    if original.outputs().len() != rewritten.outputs().len() {
        out.push(Diagnostic::error(
            Code::DfgRewriteChanged,
            Span::Global,
            format!(
                "pass `{pass}` changed the output count from {} to {}",
                original.outputs().len(),
                rewritten.outputs().len()
            ),
        ));
    } else {
        for (k, (&a, &b)) in original
            .outputs()
            .iter()
            .zip(rewritten.outputs())
            .enumerate()
        {
            let (NodeId(a), NodeId(b)) = (a, b);
            if a >= original.len() || b >= rewritten.len() {
                continue; // D001 territory; reported by verify_dfg.
            }
            let (sa, sb) = (&original.node(NodeId(a)).shape, &rewritten.node(NodeId(b)).shape);
            if sa != sb {
                out.push(Diagnostic::error(
                    Code::DfgRewriteChanged,
                    Span::Global,
                    format!(
                        "pass `{pass}` changed the shape of output #{k} from {sa:?} to {sb:?}"
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_dfg::passes::{cse, prune_dead};
    use wisegraph_dfg::transform;

    fn gcn_like() -> Dfg {
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(8)]);
        let w = d.input("W", vec![Dim::Lit(8), Dim::Lit(4)]);
        let src = d.edge_attr(AttrKind::SrcId);
        let dst = d.edge_attr(AttrKind::DstId);
        let hw = d.linear(h, w);
        let gathered = d.index(hw, src);
        let agg = d.index_add(gathered, dst, Dim::Vertices);
        let norm = d.scale_by_degree_inv(agg);
        let out = d.relu(norm);
        d.mark_output(out);
        d
    }

    #[test]
    fn builder_output_is_clean() {
        let d = gcn_like();
        assert!(verify_dfg(&d, None).is_empty());
        let mut b = Binding::default();
        b.unique.insert(AttrKind::SrcId, 3);
        assert!(verify_dfg(&d, Some(&b)).is_empty());
    }

    #[test]
    fn dangling_and_forward_inputs_are_d001() {
        let mut d = Dfg::new();
        d.add_node_unchecked(OpKind::Relu, vec![NodeId(7)], vec![Dim::Edges]);
        let mut fwd = Dfg::new();
        fwd.add_node_unchecked(OpKind::Relu, vec![NodeId(1)], vec![Dim::Edges]);
        fwd.add_node_unchecked(OpKind::Relu, vec![NodeId(0)], vec![Dim::Edges]);
        for (dfg, what) in [(&d, "dangling"), (&fwd, "forward")] {
            let diags = verify_dfg(dfg, None);
            assert!(
                diags.iter().any(|x| x.code == Code::DfgIllFormed
                    && x.severity == crate::Severity::Error),
                "{what}: {diags:#?}"
            );
        }
    }

    #[test]
    fn dangling_output_is_d001() {
        let mut d = gcn_like();
        d.mark_output(NodeId(99));
        let diags = verify_dfg(&d, None);
        assert!(diags.iter().any(|x| x.code == Code::DfgIllFormed
            && x.message.contains("output NodeId(99)")));
    }

    #[test]
    fn no_outputs_is_a_d001_warning() {
        let mut d = Dfg::new();
        d.input("h", vec![Dim::Vertices, Dim::Lit(4)]);
        let diags = verify_dfg(&d, None);
        assert!(diags.iter().any(|x| x.code == Code::DfgIllFormed
            && x.severity == crate::Severity::Warning));
    }

    #[test]
    fn stored_shape_disagreement_is_d002() {
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(8)]);
        // Relu preserves shape; claim it doesn't.
        let r = d.add_node_unchecked(OpKind::Relu, vec![h], vec![Dim::Vertices, Dim::Lit(2)]);
        d.mark_output(r);
        let diags = verify_dfg(&d, None);
        assert!(diags.iter().any(|x| x.code == Code::DfgShapeMismatch
            && x.message.contains("disagrees")));
    }

    #[test]
    fn uninferable_shape_is_d002() {
        let mut d = Dfg::new();
        let a = d.input("a", vec![Dim::Vertices, Dim::Lit(3)]);
        let b = d.input("b", vec![Dim::Vertices, Dim::Lit(5)]);
        // Add of mismatched widths: the checked builder would panic.
        let s = d.add_node_unchecked(OpKind::Add, vec![a, b], vec![Dim::Vertices, Dim::Lit(3)]);
        d.mark_output(s);
        let diags = verify_dfg(&d, None);
        assert!(diags.iter().any(|x| x.code == Code::DfgShapeMismatch
            && x.message.contains("shape inference fails")));
    }

    #[test]
    fn unevaluable_unique_dim_is_d002() {
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Unique(AttrKind::SrcId), Dim::Lit(4)]);
        d.mark_output(h);
        // Binding::default() records no unique counts.
        let diags = verify_dfg(&d, Some(&Binding::default()));
        assert!(diags.iter().any(|x| x.code == Code::DfgShapeMismatch
            && x.message.contains("cannot be evaluated")));
    }

    #[test]
    fn repo_passes_preserve_the_interface() {
        let d = gcn_like();
        assert!(verify_rewrite(&d, &cse(&d), "cse").is_empty());
        assert!(verify_rewrite(&d, &prune_dead(&d), "prune_dead").is_empty());
        if let Some(ex) = transform::extract_unique(&d, AttrKind::SrcId) {
            assert!(verify_rewrite(&d, &ex, "extract_unique").is_empty());
        }
    }

    #[test]
    fn dropped_indexing_attr_is_d003() {
        let d = gcn_like();
        let mut stripped = Dfg::new();
        let h = stripped.input("h", vec![Dim::Vertices, Dim::Lit(4)]);
        let r = stripped.relu(h);
        stripped.mark_output(r);
        let diags = verify_rewrite(&d, &stripped, "bogus");
        assert!(diags.iter().any(|x| x.code == Code::DfgRewriteChanged
            && x.message.contains("indexing-attribute set")));
    }

    #[test]
    fn changed_output_shape_is_d003() {
        let d = gcn_like();
        let mut other = gcn_like();
        let extra = other.edge_attr(AttrKind::EdgeType);
        other.mark_output(extra);
        let diags = verify_rewrite(&d, &other, "bogus");
        assert!(diags.iter().any(|x| x.code == Code::DfgRewriteChanged
            && x.message.contains("output count")));
    }

    #[test]
    fn unique_extraction_attrs_still_count() {
        let d = gcn_like();
        if let Some(ex) = transform::extract_unique(&d, AttrKind::SrcId) {
            assert!(effective_indexing_attrs(&ex).contains(&AttrKind::SrcId));
        }
    }
}
