//! Span-instrumentation coverage (`O001`) and cluster phase coverage
//! (`O002`).
//!
//! The observability layer only describes what it is told about: a hot
//! execution path that never opens a `wisegraph_obs::span!` is invisible
//! to `wisegraph-prof`'s timeline and workload-skew tables. This
//! pass keeps the instrumented surface from silently eroding. For each
//! entry point in [`REQUIRED`] it proves, by static source inspection,
//! that the function is *covered*: its body opens a span directly, or it
//! calls (possibly through a chain of same-set functions) a function that
//! does. An uncovered entry point — or a missing one, which usually means
//! a rename this table did not follow — is a [`Code::ObsUncovered`] error.
//!
//! The analysis is deliberately textual, like `testkit::hermetic`'s
//! scanner: comments and literals are stripped, `#[cfg(test)]` modules are
//! skipped, function bodies are extracted by brace matching, and the call
//! graph is resolved by bare name across the whole scanned file set (the
//! engine's entry points delegate to `micro.rs` workers, so coverage must
//! propagate across files). Bare-name resolution over-approximates real
//! dispatch, but only toward *accepting* instrumentation — a false
//! "covered" requires a same-named covered function, and the entry points
//! here have distinctive names.

use crate::{Code, Diagnostic, Report, Span};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// The execution entry points that must be span-covered, per file
/// (paths relative to the workspace root).
pub const REQUIRED: &[(&str, &[&str])] = &[
    (
        "crates/kernels/src/engine.rs",
        &[
            "execute",
            "execute_program",
            "execute_program_with_prologue",
            "accumulate_program",
            "execute_parallel",
            "execute_parallel_mode",
            "execute_parallel_alloc",
        ],
    ),
    (
        "crates/kernels/src/cluster.rs",
        &["execute", "execute_program", "run_devices"],
    ),
    (
        "crates/core/src/sharded.rs",
        &["select_placement", "execute_sharded"],
    ),
    (
        "crates/kernels/src/micro.rs",
        &[
            "run_task",
            "run_task_ws",
            "run_task_ws_shadow",
            "run_epilogue",
            "execute_by_plan",
        ],
    ),
    ("crates/kernels/src/fused.rs", &["run_task_fused"]),
    (
        "crates/gtask/src/partition.rs",
        &["partition", "partition_edges"],
    ),
    ("crates/gtask/src/incremental.rs", &["apply"]),
    (
        "crates/cache/src/store.rs",
        &["partition_edges_cached", "transform_cached", "compile_cached"],
    ),
    ("crates/dfg/src/passes.rs", &["cse", "prune_dead"]),
];

/// Replaces comment and string/char-literal contents with spaces,
/// preserving line structure so brace matching and line numbers stay
/// honest.
fn strip_noise(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
                if i < b.len() {
                    out.push(b' ');
                    i += 1;
                }
            }
            // Char literal — only when it cannot be a lifetime (`'a`).
            b'\'' if i + 2 < b.len()
                && (b[i + 1] == b'\\' || b[i + 2] == b'\'') =>
            {
                out.push(b' ');
                i += 1;
                while i < b.len() && b[i] != b'\'' {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(b' ');
                        i += 1;
                    }
                }
                if i < b.len() {
                    out.push(b' ');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).expect("stripping preserves UTF-8: only ASCII is replaced")
}

/// Blanks out the bodies of `#[cfg(test)]` modules (test instrumentation
/// must not count as coverage of shipped paths).
fn blank_test_mods(clean: &str) -> String {
    let mut out = String::with_capacity(clean.len());
    let mut rest = clean;
    while let Some(pos) = rest.find("#[cfg(test)]") {
        let (head, tail) = rest.split_at(pos);
        out.push_str(head);
        match tail.find('{') {
            None => {
                out.push_str(tail);
                return out;
            }
            Some(open) => {
                let mut depth = 0usize;
                let mut end = tail.len();
                for (j, ch) in tail.char_indices().skip(open) {
                    match ch {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                end = j + 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                for ch in tail[..end].chars() {
                    out.push(if ch == '\n' { '\n' } else { ' ' });
                }
                rest = &tail[end..];
            }
        }
    }
    out.push_str(rest);
    out
}

/// One extracted function: bare name, 1-indexed declaration line, body
/// text (braces included).
struct FnItem {
    name: String,
    line: usize,
    body: String,
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Extracts every `fn name(...) ... { body }` from cleaned source by
/// token scanning and brace matching. Bodyless declarations (trait
/// methods) are skipped.
fn extract_fns(clean: &str) -> Vec<FnItem> {
    let mut out = Vec::new();
    let bytes = clean.as_bytes();
    let mut i = 0;
    while let Some(rel) = clean[i..].find("fn ") {
        let at = i + rel;
        i = at + 3;
        // Word boundary on the left ("fn" must be a standalone keyword).
        if at > 0 && is_ident(clean[..at].chars().next_back().unwrap()) {
            continue;
        }
        let name: String = clean[i..].chars().take_while(|&c| is_ident(c)).collect();
        if name.is_empty() {
            continue;
        }
        let line = clean[..at].matches('\n').count() + 1;
        // Find the body's opening brace; a `;` first means no body.
        let mut j = i + name.len();
        let mut depth = 0usize;
        let open = loop {
            if j >= bytes.len() {
                break None;
            }
            match bytes[j] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth = depth.saturating_sub(1),
                b';' if depth == 0 => break None,
                b'{' if depth == 0 => break Some(j),
                _ => {}
            }
            j += 1;
        };
        let Some(open) = open else { continue };
        let mut braces = 0usize;
        let mut end = bytes.len();
        for (k, &c) in bytes.iter().enumerate().skip(open) {
            match c {
                b'{' => braces += 1,
                b'}' => {
                    braces -= 1;
                    if braces == 0 {
                        end = k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        out.push(FnItem {
            name,
            line,
            body: clean[open..end].to_string(),
        });
        i = open;
    }
    out
}

/// Whether the body opens a span directly (`span!(...)` — bare or
/// crate-qualified).
fn opens_span(body: &str) -> bool {
    body.match_indices("span!").any(|(p, _)| {
        let left_ok = p == 0
            || !is_ident(body[..p].chars().next_back().unwrap());
        left_ok && body[p + 5..].trim_start().starts_with('(')
    })
}

/// The bare names this body calls: identifiers immediately followed by
/// `(` (with optional whitespace), excluding macro invocations.
fn called_names(body: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let chars: Vec<char> = body.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if is_ident(chars[i]) && !chars[i].is_ascii_digit() {
            let start = i;
            while i < chars.len() && is_ident(chars[i]) {
                i += 1;
            }
            let mut j = i;
            if j < chars.len() && chars[j] == '!' {
                i += 1;
                continue; // macro, handled by opens_span
            }
            while j < chars.len() && chars[j].is_whitespace() {
                j += 1;
            }
            if j < chars.len() && chars[j] == '(' {
                out.insert(chars[start..i].iter().collect());
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Checks instrumentation coverage over an in-memory file set:
/// `(label, source, required entry points)` triples. Exposed separately
/// from [`verify_instrumentation`] so tests can feed fixtures.
pub fn check_sources(files: &[(&str, &str, &[&str])]) -> Vec<Diagnostic> {
    // Extract every function in the whole set; resolve calls by bare name.
    let mut fns: Vec<(usize, FnItem)> = Vec::new();
    for (fi, (_, src, _)) in files.iter().enumerate() {
        let clean = blank_test_mods(&strip_noise(src));
        for f in extract_fns(&clean) {
            fns.push((fi, f));
        }
    }
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (idx, (_, f)) in fns.iter().enumerate() {
        by_name.entry(&f.name).or_default().push(idx);
    }
    // Fixpoint: covered = opens a span, or calls a covered function.
    let mut covered: Vec<bool> = fns.iter().map(|(_, f)| opens_span(&f.body)).collect();
    let calls: Vec<BTreeSet<String>> =
        fns.iter().map(|(_, f)| called_names(&f.body)).collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            if covered[i] {
                continue;
            }
            let reaches = calls[i].iter().any(|name| {
                by_name
                    .get(name.as_str())
                    .is_some_and(|ids| ids.iter().any(|&j| covered[j]))
            });
            if reaches {
                covered[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Report each required entry point that is missing or uncovered.
    let mut out = Vec::new();
    for (fi, (label, _, required)) in files.iter().enumerate() {
        for name in *required {
            let hits: Vec<usize> = by_name
                .get(name)
                .map(|ids| {
                    ids.iter().copied().filter(|&j| fns[j].0 == fi).collect()
                })
                .unwrap_or_default();
            if hits.is_empty() {
                out.push(Diagnostic::error(
                    Code::ObsUncovered,
                    Span::Global,
                    format!("{label}: required entry point `{name}` not found"),
                )
                .with_suggestion(
                    "if the function was renamed, update analysis::obscheck::REQUIRED",
                ));
                continue;
            }
            for j in hits {
                if !covered[j] {
                    let (_, f) = &fns[j];
                    out.push(Diagnostic::error(
                        Code::ObsUncovered,
                        Span::Global,
                        format!(
                            "{label}:{}: `{name}` executes without an enclosing \
                             span (none opened, none reachable through its calls)",
                            f.line
                        ),
                    )
                    .with_suggestion(
                        "open one with wisegraph_obs::span!(\"component.op\", ...)",
                    ));
                }
            }
        }
    }
    out
}

/// Runs the `O001` pass over the shipped sources under `root` (the
/// workspace directory), per [`REQUIRED`]. An unreadable file is itself
/// an error — silently skipping would pass exactly when coverage is
/// least known.
pub fn verify_instrumentation(root: &Path) -> Report {
    let mut report = Report::new();
    let mut loaded: Vec<(usize, String)> = Vec::new();
    for (i, (rel, _)) in REQUIRED.iter().enumerate() {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(src) => loaded.push((i, src)),
            Err(e) => report.push(Diagnostic::error(
                Code::ObsUncovered,
                Span::Global,
                format!("{rel}: cannot read source to check instrumentation: {e}"),
            )),
        }
    }
    let files: Vec<(&str, &str, &[&str])> = loaded
        .iter()
        .map(|(i, src)| (REQUIRED[*i].0, src.as_str(), REQUIRED[*i].1))
        .collect();
    report.extend(check_sources(&files));
    report
}

/// Cluster schedule phases and mailbox operations that must stay
/// phase-instrumented (`O002`), per file: `(function, required tokens
/// in its raw body)`. The critical-path analyzer reconstructs device
/// timelines purely from `cluster.phase.*` spans and the causal edges
/// the mailbox emits — a schedule that computes outside
/// `record_compute`, or an exchange that drops its phase span, would
/// not fail any test; it would just vanish from the attribution report.
/// This table pins the tokens that keep each phase visible.
pub const REQUIRED_PHASES: &[PhaseFileSpec] = &[(
    "crates/kernels/src/cluster.rs",
    &[
        // The mailbox operations: every exchange opens the exchange
        // phase span; every compute runs under the compute phase span.
        ("exchange", &["cluster.phase.exchange", "span!"]),
        ("record_compute", &["cluster.phase.compute", "span!"]),
        // The device driver lane tags itself so traces and lane naming
        // can attribute spans to a device.
        ("run_devices", &["cluster.device"]),
        // Every schedule routes compute through `record_compute` and
        // communication through `exchange` — no untimed side channels.
        ("run_halo_schedule", &["record_compute", ".exchange("]),
        ("run_compute_then_reduce", &["record_compute", ".exchange("]),
        ("run_tensor_parallel", &["record_compute", ".exchange("]),
    ],
)];

/// Finds each definition of `name` in noise-stripped source and returns
/// its 1-indexed declaration line and body byte range (braces included).
/// Because [`strip_noise`] is byte-length-preserving, the ranges index
/// the *raw* source too — which is what `O002` needs, since its phase
/// tokens (`"cluster.phase.exchange"`) live inside string literals that
/// stripping blanks out.
fn fn_body_ranges(clean: &str, name: &str) -> Vec<(usize, std::ops::Range<usize>)> {
    let bytes = clean.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(rel) = clean[i..].find("fn ") {
        let at = i + rel;
        i = at + 3;
        if at > 0 && is_ident(clean[..at].chars().next_back().unwrap()) {
            continue;
        }
        let found: String = clean[i..].chars().take_while(|&c| is_ident(c)).collect();
        if found != name {
            continue;
        }
        let line = clean[..at].matches('\n').count() + 1;
        // Skip the signature (tracking nesting so `;` inside generics'
        // arrays doesn't end it); a top-level `;` means no body.
        let mut j = i + name.len();
        let mut depth = 0usize;
        let open = loop {
            if j >= bytes.len() {
                break None;
            }
            match bytes[j] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth = depth.saturating_sub(1),
                b';' if depth == 0 => break None,
                b'{' if depth == 0 => break Some(j),
                _ => {}
            }
            j += 1;
        };
        let Some(open) = open else { continue };
        let mut braces = 0usize;
        let mut end = bytes.len();
        for (k, &c) in bytes.iter().enumerate().skip(open) {
            match c {
                b'{' => braces += 1,
                b'}' => {
                    braces -= 1;
                    if braces == 0 {
                        end = k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        out.push((line, open..end));
        i = open;
    }
    out
}

/// One phase-check input: `(label, source, [(function, tokens)])`.
pub type PhaseFile<'a> = (&'a str, &'a str, &'a [(&'a str, &'a [&'a str])]);

/// One [`REQUIRED_PHASES`] row: `(path, [(function, tokens)])`.
pub type PhaseFileSpec = (&'static str, &'static [(&'static str, &'static [&'static str])]);

/// Checks cluster phase coverage over an in-memory file set:
/// `(label, source, [(function, required tokens)])` triples. Exposed
/// separately from [`verify_phase_instrumentation`] so tests can feed
/// fixtures. A function passes if *some* definition of it contains
/// every required token in its raw body (comments and literals count —
/// the tokens are span names inside literals); otherwise the first
/// definition is reported with its missing tokens.
pub fn check_phase_sources(files: &[PhaseFile<'_>]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (label, src, required) in files {
        let clean = strip_noise(src);
        for (name, tokens) in *required {
            let defs = fn_body_ranges(&clean, name);
            if defs.is_empty() {
                out.push(Diagnostic::error(
                    Code::ObsPhaseUncovered,
                    Span::Global,
                    format!("{label}: required phase-instrumented function `{name}` not found"),
                )
                .with_suggestion(
                    "if the function was renamed, update analysis::obscheck::REQUIRED_PHASES",
                ));
                continue;
            }
            let ok = defs
                .iter()
                .any(|(_, r)| tokens.iter().all(|t| src[r.clone()].contains(t)));
            if !ok {
                let (line, r) = &defs[0];
                let missing: Vec<&str> = tokens
                    .iter()
                    .copied()
                    .filter(|t| !src[r.clone()].contains(t))
                    .collect();
                out.push(Diagnostic::error(
                    Code::ObsPhaseUncovered,
                    Span::Global,
                    format!(
                        "{label}:{line}: `{name}` is missing phase instrumentation: {}",
                        missing.join(", ")
                    ),
                )
                .with_suggestion(
                    "route the phase through its span (cluster.phase.*) or phase-recording call",
                ));
            }
        }
    }
    out
}

/// Runs the `O002` pass over the shipped sources under `root` (the
/// workspace directory), per [`REQUIRED_PHASES`]. As with `O001`, an
/// unreadable file is itself an error.
pub fn verify_phase_instrumentation(root: &Path) -> Report {
    let mut report = Report::new();
    let mut loaded: Vec<(usize, String)> = Vec::new();
    for (i, (rel, _)) in REQUIRED_PHASES.iter().enumerate() {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(src) => loaded.push((i, src)),
            Err(e) => report.push(Diagnostic::error(
                Code::ObsPhaseUncovered,
                Span::Global,
                format!("{rel}: cannot read source to check phase instrumentation: {e}"),
            )),
        }
    }
    let files: Vec<PhaseFile<'_>> = loaded
        .iter()
        .map(|(i, src)| (REQUIRED_PHASES[*i].0, src.as_str(), REQUIRED_PHASES[*i].1))
        .collect();
    report.extend(check_phase_sources(&files));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_span_covers() {
        let src = "pub fn partition(x: u32) -> u32 {\n    let _s = wisegraph_obs::span!(\"p\");\n    x\n}\n";
        let ds = check_sources(&[("f.rs", src, &["partition"])]);
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn coverage_propagates_through_calls_across_files() {
        let a = "pub fn execute(x: u32) -> u32 { inner(run_task(x)) }\nfn inner(x: u32) -> u32 { x }\n";
        let b = "pub fn run_task(x: u32) -> u32 {\n    let _s = span!(\"kernel.task\");\n    x\n}\n";
        let ds = check_sources(&[
            ("engine.rs", a, &["execute"]),
            ("micro.rs", b, &["run_task"]),
        ]);
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn uncovered_entry_point_is_o001() {
        let src = "pub fn execute(x: u32) -> u32 {\n    // span!(\"not.real\") — comments don't count\n    helper(x)\n}\nfn helper(x: u32) -> u32 { x + 1 }\n";
        let ds = check_sources(&[("engine.rs", src, &["execute"])]);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::ObsUncovered);
        assert_eq!(ds[0].code.as_str(), "O001");
        assert!(ds[0].message.contains("engine.rs:1"), "{}", ds[0].message);
    }

    #[test]
    fn missing_entry_point_is_reported_not_skipped() {
        let src = "pub fn other() {}\n";
        let ds = check_sources(&[("engine.rs", src, &["execute"])]);
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("not found"), "{}", ds[0].message);
    }

    #[test]
    fn test_module_spans_do_not_count() {
        let src = "pub fn execute(x: u32) -> u32 { x }\n#[cfg(test)]\nmod tests {\n    fn execute_helper() { let _s = span!(\"t\"); }\n}\n";
        let ds = check_sources(&[("engine.rs", src, &["execute"])]);
        assert_eq!(ds.len(), 1, "{ds:?}");
    }

    #[test]
    fn string_literal_span_does_not_count() {
        let src = "pub fn execute() -> &'static str { \"span!(fake)\" }\n";
        let ds = check_sources(&[("engine.rs", src, &["execute"])]);
        assert_eq!(ds.len(), 1, "{ds:?}");
    }

    #[test]
    fn real_sources_are_fully_covered() {
        // The shipped workspace must satisfy its own gate. The manifest
        // dir is `crates/analysis`, two levels below the root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf();
        let report = verify_instrumentation(&root);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn phase_tokens_inside_literals_satisfy_o002() {
        let src = "pub fn exchange(&mut self) {\n    let _s = span!(\"cluster.phase.exchange\", round = 0);\n}\n";
        let req: &[(&str, &[&str])] = &[("exchange", &["cluster.phase.exchange", "span!"])];
        let ds = check_phase_sources(&[("cluster.rs", src, req)]);
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn missing_phase_token_is_o002_with_the_token_named() {
        let src = "fn run_halo_schedule(&self) {\n    self.engines.iter().for_each(|e| e.touch());\n}\n";
        let req: &[(&str, &[&str])] = &[("run_halo_schedule", &["record_compute", ".exchange("])];
        let ds = check_phase_sources(&[("cluster.rs", src, req)]);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::ObsPhaseUncovered);
        assert_eq!(ds[0].code.as_str(), "O002");
        assert!(ds[0].message.contains("record_compute"), "{}", ds[0].message);
        assert!(ds[0].message.contains("cluster.rs:1"), "{}", ds[0].message);
    }

    #[test]
    fn missing_phase_function_is_reported_not_skipped() {
        let req: &[(&str, &[&str])] = &[("exchange", &["cluster.phase.exchange"])];
        let ds = check_phase_sources(&[("cluster.rs", "fn other() {}\n", req)]);
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("not found"), "{}", ds[0].message);
    }

    #[test]
    fn real_sources_are_fully_phase_covered() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf();
        let report = verify_phase_instrumentation(&root);
        assert!(report.is_clean(), "{report}");
    }
}
