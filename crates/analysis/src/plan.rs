//! Plan verification (codes `P001`–`P004`).
//!
//! A [`PartitionPlan`] is legal when (paper §4.2):
//!
//! 1. its gTasks cover every edge of the graph *exactly once* (`P001`);
//! 2. every gTask honors every `Exact(k)` restriction of its table, and
//!    the unique counts the partitioner recorded match an independent
//!    recount (`P002`);
//! 3. no gTask is empty (`P003`);
//! 4. the concatenated edge sequence is monotone in the partitioner's
//!    sort-key order — `Min` attributes, then `Exact` attributes from the
//!    tightest bound to the loosest, then the edge id (`P004`). The
//!    engine's chunking inherits locality from exactly this order.
//!
//! Everything is recomputed from the graph; nothing recorded in the plan
//! is trusted.

use crate::{push_capped, Code, Diagnostic, Span};
use wisegraph_graph::{AttrKind, Graph};
use wisegraph_gtask::PartitionPlan;

/// Statically verifies a partition plan against its graph and table.
/// Returns all findings; an empty vector means the plan is provably legal.
pub fn verify_plan(g: &Graph, plan: &PartitionPlan) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let num_edges = g.num_edges();
    let exact = plan.table.exact_attrs();
    let min_attrs = plan.table.min_attrs();

    // --- P001: exact-once coverage -----------------------------------
    let mut count = vec![0u32; num_edges];
    // Tasks holding out-of-range ids are excluded from attribute checks
    // (recounting them would index past the attribute arrays).
    let mut task_in_range = vec![true; plan.tasks.len()];
    let mut range_diags = Vec::new();
    for (ti, task) in plan.tasks.iter().enumerate() {
        for &e in &task.edges {
            if e >= num_edges {
                task_in_range[ti] = false;
                range_diags.push(Diagnostic::error(
                    Code::PlanEdgeCoverage,
                    Span::Task(ti),
                    format!("edge id {e} is out of range (the graph has {num_edges} edges)"),
                ));
            } else {
                count[e] += 1;
            }
        }
    }
    push_capped(&mut out, range_diags);
    let mut coverage_diags = Vec::new();
    for (e, &c) in count.iter().enumerate() {
        if c == 0 {
            coverage_diags.push(
                Diagnostic::error(
                    Code::PlanEdgeCoverage,
                    Span::Edge(e),
                    format!("edge {e} is not covered by any gTask"),
                )
                .with_suggestion("regenerate the plan with the greedy partitioner"),
            );
        } else if c > 1 {
            coverage_diags.push(Diagnostic::error(
                Code::PlanEdgeCoverage,
                Span::Edge(e),
                format!("edge {e} is covered by {c} gTasks (must be exactly one)"),
            ));
        }
    }
    push_capped(&mut out, coverage_diags);

    // --- P002/P003: per-task restriction satisfaction ----------------
    let mut restr_diags = Vec::new();
    for (ti, task) in plan.tasks.iter().enumerate() {
        if task.edges.is_empty() {
            out.push(
                Diagnostic::error(
                    Code::PlanEmptyTask,
                    Span::Task(ti),
                    "gTask holds no edges",
                )
                .with_suggestion("drop empty tasks when constructing plans by hand"),
            );
            continue;
        }
        if !task_in_range[ti] {
            continue;
        }
        for &(attr, k) in &exact {
            let actual = recount_unique(g, &task.edges, attr);
            if actual as u64 > k {
                restr_diags.push(
                    Diagnostic::error(
                        Code::PlanRestriction,
                        Span::Task(ti),
                        format!(
                            "uniq({attr}) = {actual} violates the restriction uniq({attr}) = {k}"
                        ),
                    )
                    .with_suggestion("split the task or loosen the table's bound"),
                );
            }
            if let Some(&recorded) = task.uniq.get(&attr) {
                if recorded != actual {
                    restr_diags.push(
                        Diagnostic::error(
                            Code::PlanRestriction,
                            Span::Task(ti),
                            format!(
                                "recorded uniq({attr}) = {recorded} disagrees with a fresh \
                                 recount of {actual}"
                            ),
                        )
                        .with_suggestion("the task metadata is stale; rebuild the plan"),
                    );
                }
            }
        }
        for &attr in &min_attrs {
            if !task.uniq.contains_key(&attr) {
                restr_diags.push(Diagnostic::warning(
                    Code::PlanRestriction,
                    Span::Task(ti),
                    format!(
                        "Min-restricted attribute {attr} has no recorded unique count; \
                         the grouping quality of this task cannot be audited"
                    ),
                ));
            }
        }
    }
    push_capped(&mut out, restr_diags);

    // --- P004: monotone task bounds ----------------------------------
    // The greedy partitioner emits edges in one globally sorted pass, so a
    // legal plan's concatenated edge sequence is non-decreasing in the
    // sort key. The key ends with the edge id, making the order total: any
    // regression is a definite violation, within a task or across a task
    // boundary.
    let mut key_attrs: Vec<AttrKind> = Vec::new();
    key_attrs.extend(&min_attrs);
    let mut exact_sorted = exact.clone();
    exact_sorted.sort_by_key(|&(_, k)| k);
    key_attrs.extend(exact_sorted.iter().map(|&(a, _)| a));
    let key = |e: usize| -> Vec<u64> {
        let mut k: Vec<u64> = key_attrs.iter().map(|&a| g.edge_attr(a, e)).collect();
        k.push(e as u64);
        k
    };
    let mut order_diags = Vec::new();
    let mut prev: Option<(usize, usize, Vec<u64>)> = None;
    for (ti, task) in plan.tasks.iter().enumerate() {
        if !task_in_range[ti] {
            prev = None;
            continue;
        }
        for &e in &task.edges {
            let k = key(e);
            if let Some((pt, pe, pk)) = &prev {
                if k < *pk {
                    let place = if *pt == ti {
                        format!("within task {ti}")
                    } else {
                        format!("across the task {pt} → {ti} boundary")
                    };
                    order_diags.push(
                        Diagnostic::error(
                            Code::PlanTaskOrder,
                            Span::Task(ti),
                            format!(
                                "edge {e} sorts before edge {pe} under the table's key \
                                 order ({place}); task bounds are not monotone"
                            ),
                        )
                        .with_suggestion(
                            "keep edges in the greedy partitioner's sorted order",
                        ),
                    );
                }
            }
            prev = Some((ti, e, k));
        }
    }
    push_capped(&mut out, order_diags);
    out
}

/// Independent unique-value recount over a task's edges (never trusts the
/// recorded metadata).
fn recount_unique(g: &Graph, edges: &[usize], attr: AttrKind) -> usize {
    let mut vals: Vec<u64> = edges.iter().map(|&e| g.edge_attr(attr, e)).collect();
    vals.sort_unstable();
    vals.dedup();
    vals.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use wisegraph_gtask::{partition, GTask, PartitionTable};

    fn paper_graph() -> Graph {
        Graph::new(
            5,
            2,
            vec![0, 1, 0, 1, 2, 2, 3, 4, 3, 4, 0],
            vec![0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 4],
            vec![0, 0, 0, 0, 1, 0, 1, 1, 1, 1, 0],
        )
    }

    fn task(edges: Vec<usize>) -> GTask {
        GTask {
            edges,
            uniq: BTreeMap::new(),
        }
    }

    #[test]
    fn partitioner_output_is_accepted() {
        let g = paper_graph();
        for table in [
            PartitionTable::new(),
            PartitionTable::vertex_centric(),
            PartitionTable::edge_centric(),
            PartitionTable::two_d(2),
            PartitionTable::dst_and_type(),
            PartitionTable::dst_batch_min_degree(3),
            PartitionTable::src_batch_per_type(2),
            PartitionTable::edge_batch(4),
            PartitionTable::dst_degree_grouped(),
        ] {
            let plan = partition(&g, &table);
            let diags = verify_plan(&g, &plan);
            assert!(diags.is_empty(), "{table}: {diags:#?}");
        }
    }

    #[test]
    fn missing_and_duplicated_edges_are_p001() {
        let g = paper_graph();
        // Edge 1 twice, edge 10 never.
        let plan = PartitionPlan {
            table: PartitionTable::new(),
            tasks: vec![task(vec![0, 1, 2, 3, 4]), task(vec![1, 5, 6, 7, 8, 9])],
        };
        let diags = verify_plan(&g, &plan);
        assert!(diags.iter().any(|d| d.code == Code::PlanEdgeCoverage
            && d.message.contains("not covered")));
        assert!(diags.iter().any(|d| d.code == Code::PlanEdgeCoverage
            && d.message.contains("2 gTasks")));
    }

    #[test]
    fn out_of_range_edge_is_p001() {
        let g = paper_graph();
        let plan = PartitionPlan {
            table: PartitionTable::new(),
            tasks: vec![task((0..g.num_edges()).collect()), task(vec![99])],
        };
        let diags = verify_plan(&g, &plan);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::PlanEdgeCoverage && d.message.contains("out of range")));
    }

    #[test]
    fn coverage_bursts_are_capped() {
        let g = paper_graph();
        let plan = PartitionPlan {
            table: PartitionTable::new(),
            tasks: vec![task(vec![0])], // 10 edges uncovered
        };
        let diags = verify_plan(&g, &plan);
        let p001 = diags
            .iter()
            .filter(|d| d.code == Code::PlanEdgeCoverage)
            .count();
        assert_eq!(p001, 9, "8 kept + 1 summary: {diags:#?}");
    }

    #[test]
    fn violated_and_stale_restrictions_are_p002() {
        let g = paper_graph();
        // One task with every edge, claiming uniq(dst-id) = 1.
        let mut t = task((0..g.num_edges()).collect());
        t.uniq.insert(AttrKind::DstId, 1);
        let plan = PartitionPlan {
            table: PartitionTable::vertex_centric(),
            tasks: vec![t],
        };
        let diags = verify_plan(&g, &plan);
        assert!(diags.iter().any(|d| d.code == Code::PlanRestriction
            && d.severity == crate::Severity::Error
            && d.message.contains("violates")));
        assert!(diags.iter().any(|d| d.message.contains("disagrees")));
    }

    #[test]
    fn untracked_min_attr_is_a_p002_warning() {
        let g = paper_graph();
        let real = partition(&g, &PartitionTable::dst_batch_min_degree(3));
        let tasks = real
            .tasks
            .iter()
            .map(|t| {
                let mut t = t.clone();
                t.uniq.remove(&AttrKind::DstDegree);
                t
            })
            .collect();
        let plan = PartitionPlan {
            table: real.table.clone(),
            tasks,
        };
        let diags = verify_plan(&g, &plan);
        assert!(diags.iter().any(|d| d.code == Code::PlanRestriction
            && d.severity == crate::Severity::Warning
            && d.message.contains("dst-degree")));
    }

    #[test]
    fn empty_task_is_p003() {
        let g = paper_graph();
        let plan = PartitionPlan {
            table: PartitionTable::new(),
            tasks: vec![task((0..g.num_edges()).collect()), task(vec![])],
        };
        let diags = verify_plan(&g, &plan);
        assert!(diags.iter().any(|d| d.code == Code::PlanEmptyTask));
    }

    #[test]
    fn shuffled_edges_are_p004() {
        let g = paper_graph();
        // Unrestricted table: the key order is the edge id.
        let plan = PartitionPlan {
            table: PartitionTable::new(),
            tasks: vec![task(vec![0, 3, 1, 2, 4, 5, 6, 7, 8, 9, 10])],
        };
        let diags = verify_plan(&g, &plan);
        assert!(diags.iter().any(|d| d.code == Code::PlanTaskOrder
            && d.message.contains("within task")));
    }

    #[test]
    fn swapped_tasks_are_p004() {
        let g = paper_graph();
        let mut real = partition(&g, &PartitionTable::vertex_centric());
        assert!(real.tasks.len() >= 2);
        real.tasks.swap(0, 1);
        let diags = verify_plan(&g, &real);
        assert!(diags.iter().any(|d| d.code == Code::PlanTaskOrder
            && d.message.contains("boundary")));
    }
}
