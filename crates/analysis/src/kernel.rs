//! Kernel and engine verification (codes `K001`–`K004`).
//!
//! A compiled [`KernelProgram`] is a straight-line sequence of
//! micro-kernels over a virtual register file. Legality is simple enough
//! to check exactly:
//!
//! * every register read must be preceded by a write, ids must be in
//!   range, and the task's work must reach the global accumulator through
//!   a `ScatterAdd` (`K001`);
//! * no micro-kernel may alias an output register with one of its inputs —
//!   the interpreter checks registers out of a recycling pool, so in-place
//!   writes would corrupt the operand (`K002`);
//! * the engine's chunk-to-slot mapping must be a deterministic partition
//!   of the task range (`K003`);
//! * a program with per-destination normalization must run under a
//!   destination-complete plan (`K004`).

use crate::{push_capped, Code, Diagnostic, Span};
use std::ops::Range;
use wisegraph_gtask::PartitionPlan;
use wisegraph_graph::Graph;
use wisegraph_kernels::engine::chunk_ranges;
use wisegraph_kernels::micro::{plan_is_dst_complete, KernelProgram, MicroKernel, Reg};

/// The registers a micro-kernel reads and the registers it writes.
pub fn accesses(op: &MicroKernel) -> (Vec<Reg>, Vec<Reg>) {
    use MicroKernel::*;
    match *op {
        LoadStream { out, .. } => (vec![], vec![out]),
        Unique {
            stream,
            values,
            map,
        } => (vec![stream], vec![values, map]),
        GatherRows { idx, out, .. } => (vec![idx], vec![out]),
        GatherRegRows { src, idx, out } => (vec![src, idx], vec![out]),
        GatherReg2D {
            src,
            idx1,
            idx2,
            out,
        } => (vec![src, idx1, idx2], vec![out]),
        Gather2DGlobal {
            idx1, idx2, out, ..
        } => (vec![idx1, idx2], vec![out]),
        PairwiseReg { x, w, out } => (vec![x, w], vec![out]),
        MatMatGlobal { x, out, .. } => (vec![x], vec![out]),
        PerRowVecMat { x, w, out } => (vec![x, w], vec![out]),
        PairwiseGlobal { x, out, .. } => (vec![x], vec![out]),
        GatherWeight { idx, out, .. } => (vec![idx], vec![out]),
        Elementwise { a, b, out, .. } => {
            let mut reads = vec![a];
            reads.extend(b);
            (reads, vec![out])
        }
        Squeeze { x, out } => (vec![x], vec![out]),
        SegmentSoftmax { scores, seg, out } => (vec![scores, seg], vec![out]),
        ScaleRows { x, s, out } => (vec![x, s], vec![out]),
        ScatterAdd { data, idx } => (vec![data, idx], vec![]),
    }
}

/// Verifies the register discipline of a compiled program (`K001`/`K002`).
pub fn verify_program(prog: &KernelProgram) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut defined = vec![false; prog.num_regs];
    let mut found = Vec::new();
    let mut stores = 0usize;
    for (pc, op) in prog.ops.iter().enumerate() {
        let (reads, writes) = accesses(op);
        for &Reg(r) in &reads {
            if r >= prog.num_regs {
                found.push(Diagnostic::error(
                    Code::KernelUseBeforeDef,
                    Span::KernelOp(pc),
                    format!(
                        "reads register r{r}, out of range (the program declares {} registers)",
                        prog.num_regs
                    ),
                ));
            } else if !defined[r] {
                found.push(
                    Diagnostic::error(
                        Code::KernelUseBeforeDef,
                        Span::KernelOp(pc),
                        format!("reads register r{r} before any micro-kernel writes it"),
                    )
                    .with_suggestion("loads must precede computes, computes precede stores"),
                );
            }
        }
        for (wi, &Reg(w)) in writes.iter().enumerate() {
            if reads.contains(&Reg(w)) {
                found.push(
                    Diagnostic::error(
                        Code::KernelAliasing,
                        Span::KernelOp(pc),
                        format!("output register r{w} aliases an input of the same micro-kernel"),
                    )
                    .with_suggestion(
                        "registers are checked out of a recycling pool; in-place writes \
                         corrupt the operand",
                    ),
                );
            }
            if writes[..wi].contains(&Reg(w)) {
                found.push(Diagnostic::error(
                    Code::KernelAliasing,
                    Span::KernelOp(pc),
                    format!("register r{w} is written twice by the same micro-kernel"),
                ));
            }
            if w >= prog.num_regs {
                found.push(Diagnostic::error(
                    Code::KernelUseBeforeDef,
                    Span::KernelOp(pc),
                    format!(
                        "writes register r{w}, out of range (the program declares {} registers)",
                        prog.num_regs
                    ),
                ));
            } else {
                if defined[w] {
                    found.push(Diagnostic::warning(
                        Code::KernelAliasing,
                        Span::KernelOp(pc),
                        format!(
                            "register r{w} is overwritten; the earlier value is dead \
                             (harmless, but wastes a pool checkout)"
                        ),
                    ));
                }
                defined[w] = true;
            }
        }
        if matches!(op, MicroKernel::ScatterAdd { .. }) {
            stores += 1;
        }
    }
    push_capped(&mut out, found);
    if stores == 0 {
        out.push(
            Diagnostic::error(
                Code::KernelUseBeforeDef,
                Span::Global,
                "the program never scatter-adds into the global accumulator; \
                 every task's work would be discarded",
            )
            .with_suggestion("a compiled program must end in a ScatterAdd store"),
        );
    }
    out
}

/// Verifies an explicit chunk-to-slot mapping: `ranges[i]` is the task
/// range worker slot `i` owns. Legal mappings partition `0..num_tasks`
/// into at most `threads` contiguous, ascending, disjoint ranges (`K003`).
pub fn verify_chunk_ranges(
    ranges: &[Range<usize>],
    num_tasks: usize,
    threads: usize,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if ranges.len() > threads {
        out.push(Diagnostic::error(
            Code::KernelChunkMapping,
            Span::Global,
            format!(
                "{} chunks for {threads} worker slots; reduction order would \
                 depend on slot reuse",
                ranges.len()
            ),
        ));
    }
    let mut expect = 0usize;
    for (i, r) in ranges.iter().enumerate() {
        if r.is_empty() {
            out.push(Diagnostic::warning(
                Code::KernelChunkMapping,
                Span::Chunk(i),
                "chunk is empty; its worker slot does no work",
            ));
            continue;
        }
        if r.start > expect {
            out.push(Diagnostic::error(
                Code::KernelChunkMapping,
                Span::Chunk(i),
                format!("tasks {expect}..{} are assigned to no chunk", r.start),
            ));
        } else if r.start < expect {
            out.push(Diagnostic::error(
                Code::KernelChunkMapping,
                Span::Chunk(i),
                format!(
                    "chunk starts at task {} but tasks below {expect} are already owned; \
                     overlapping chunks double-count tasks",
                    r.start
                ),
            ));
        }
        expect = expect.max(r.end);
    }
    if expect < num_tasks {
        out.push(Diagnostic::error(
            Code::KernelChunkMapping,
            Span::Global,
            format!("tasks {expect}..{num_tasks} are assigned to no chunk"),
        ));
    }
    out
}

/// Verifies the engine's own deterministic chunk-to-slot mapping for a
/// task count and thread count (`K003`). A finding here is an engine bug.
pub fn verify_chunk_mapping(num_tasks: usize, threads: usize) -> Vec<Diagnostic> {
    if num_tasks == 0 || threads == 0 {
        return Vec::new();
    }
    verify_chunk_ranges(&chunk_ranges(num_tasks, threads), num_tasks, threads)
}

/// Verifies plan/program compatibility: a program carrying per-destination
/// normalization needs every destination's in-edges in one task (`K004`).
pub fn verify_plan_compat(
    g: &Graph,
    plan: &PartitionPlan,
    prog: &KernelProgram,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if prog.requires_dst_complete && !plan_is_dst_complete(g, plan) {
        out.push(
            Diagnostic::error(
                Code::KernelPlanIncompatible,
                Span::Global,
                "the program normalizes per destination (segment softmax) but the plan \
                 splits some destination's in-edges across tasks",
            )
            .with_suggestion(
                "use a destination-complete table (e.g. vertex-centric or dst-and-type)",
            ),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_dfg::NodeId;
    use wisegraph_graph::AttrKind;
    use wisegraph_gtask::{partition, PartitionTable};
    use wisegraph_kernels::micro::compile;
    use wisegraph_models::ModelKind;

    fn program(ops: Vec<MicroKernel>, num_regs: usize) -> KernelProgram {
        KernelProgram {
            ops,
            num_regs,
            out_rows: 4,
            out_width: 2,
            reduce_node: NodeId(0),
            prologue: vec![],
            requires_dst_complete: false,
        }
    }

    fn paper_graph() -> Graph {
        Graph::new(
            5,
            2,
            vec![0, 1, 0, 1, 2, 2, 3, 4, 3, 4, 0],
            vec![0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 4],
            vec![0, 0, 0, 0, 1, 0, 1, 1, 1, 1, 0],
        )
    }

    #[test]
    fn compiled_models_are_clean() {
        let g = paper_graph();
        for model in [ModelKind::Gcn, ModelKind::Rgcn, ModelKind::Gat, ModelKind::Sage] {
            let dfg = model.layer_dfg(8, 4);
            let prog = compile(&dfg, &g).expect("model compiles");
            let diags = verify_program(&prog);
            assert!(diags.is_empty(), "{model:?}: {diags:#?}");
        }
    }

    #[test]
    fn store_before_load_is_k001() {
        let prog = program(
            vec![
                MicroKernel::ScatterAdd {
                    data: Reg(0),
                    idx: Reg(1),
                },
                MicroKernel::LoadStream {
                    attr: AttrKind::DstId,
                    out: Reg(1),
                },
            ],
            2,
        );
        let diags = verify_program(&prog);
        assert!(diags.iter().any(|d| d.code == Code::KernelUseBeforeDef
            && d.message.contains("before any micro-kernel writes")));
    }

    #[test]
    fn out_of_range_register_is_k001() {
        let prog = program(
            vec![MicroKernel::LoadStream {
                attr: AttrKind::SrcId,
                out: Reg(9),
            }],
            2,
        );
        let diags = verify_program(&prog);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::KernelUseBeforeDef && d.message.contains("out of range")));
    }

    #[test]
    fn missing_store_is_k001() {
        let prog = program(
            vec![MicroKernel::LoadStream {
                attr: AttrKind::SrcId,
                out: Reg(0),
            }],
            1,
        );
        let diags = verify_program(&prog);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::KernelUseBeforeDef && d.message.contains("scatter-adds")));
    }

    #[test]
    fn in_place_write_is_k002() {
        let prog = program(
            vec![
                MicroKernel::LoadStream {
                    attr: AttrKind::SrcId,
                    out: Reg(0),
                },
                MicroKernel::Elementwise {
                    op: wisegraph_kernels::micro::EwOp::Relu,
                    a: Reg(0),
                    b: None,
                    out: Reg(0),
                },
                MicroKernel::ScatterAdd {
                    data: Reg(0),
                    idx: Reg(0),
                },
            ],
            1,
        );
        let diags = verify_program(&prog);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::KernelAliasing && d.message.contains("aliases")));
    }

    #[test]
    fn unique_into_one_register_is_k002() {
        let prog = program(
            vec![
                MicroKernel::LoadStream {
                    attr: AttrKind::SrcId,
                    out: Reg(0),
                },
                MicroKernel::Unique {
                    stream: Reg(0),
                    values: Reg(1),
                    map: Reg(1),
                },
                MicroKernel::ScatterAdd {
                    data: Reg(1),
                    idx: Reg(1),
                },
            ],
            2,
        );
        let diags = verify_program(&prog);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::KernelAliasing && d.message.contains("written twice")));
    }

    #[test]
    fn engine_mapping_is_clean_across_shapes() {
        for (n, t) in [(0, 3), (1, 1), (5, 2), (7, 3), (8, 4), (1000, 16)] {
            let diags = verify_chunk_mapping(n, t);
            assert!(diags.is_empty(), "tasks={n} threads={t}: {diags:#?}");
        }
    }

    #[test]
    fn gap_and_overlap_are_k003() {
        let gap = verify_chunk_ranges(&[0..2, 3..6], 6, 2);
        assert!(gap.iter().any(|d| d.code == Code::KernelChunkMapping
            && d.message.contains("assigned to no chunk")));
        let overlap = verify_chunk_ranges(&[0..3, 2..6], 6, 2);
        assert!(overlap.iter().any(|d| d.code == Code::KernelChunkMapping
            && d.message.contains("overlapping")));
        let too_many = verify_chunk_ranges(&[0..2, 2..4, 4..6], 6, 2);
        assert!(too_many.iter().any(|d| d.code == Code::KernelChunkMapping
            && d.message.contains("worker slots")));
        let short = verify_chunk_ranges(std::slice::from_ref(&(0..2)), 6, 2);
        assert!(short.iter().any(|d| d.code == Code::KernelChunkMapping
            && d.message.contains("2..6")));
    }

    #[test]
    fn softmax_under_split_destinations_is_k004() {
        let g = paper_graph();
        let dfg = ModelKind::Gat.layer_dfg(8, 4);
        let prog = compile(&dfg, &g).expect("GAT compiles");
        assert!(prog.requires_dst_complete);
        let bad = partition(&g, &PartitionTable::edge_batch(3));
        assert!(!plan_is_dst_complete(&g, &bad));
        let diags = verify_plan_compat(&g, &bad, &prog);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::KernelPlanIncompatible));
        let good = partition(&g, &PartitionTable::vertex_centric());
        assert!(verify_plan_compat(&g, &good, &prog).is_empty());
    }
}
