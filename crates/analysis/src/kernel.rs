//! Kernel and engine verification (codes `K001`–`K004`).
//!
//! A compiled [`KernelProgram`] is a straight-line sequence of
//! micro-kernels over a virtual register file. Legality is simple enough
//! to check exactly:
//!
//! * every register read must be preceded by a write, ids must be in
//!   range, and the task's work must reach the global accumulator through
//!   a `ScatterAdd` (`K001`);
//! * no micro-kernel may alias an output register with one of its inputs —
//!   the interpreter checks registers out of a recycling pool, so in-place
//!   writes would corrupt the operand (`K002`);
//! * the engine's chunk-to-slot mapping must be a deterministic partition
//!   of the task range (`K003`);
//! * a program with per-destination normalization must run under a
//!   destination-complete plan (`K004`);
//! * a fused plan must cover the program's instructions exactly once, each
//!   fused segment must replace exactly the chain it claims, and no
//!   replaced intermediate register may be read outside its segment
//!   (`K005`);
//! * every fusion pattern must register an interpreter-parity test in
//!   `tests/fused_parity.rs` (`K006`).

use crate::{push_capped, Code, Diagnostic, Span};
use std::ops::Range;
use std::path::Path;
use wisegraph_gtask::PartitionPlan;
use wisegraph_graph::Graph;
use wisegraph_kernels::engine::chunk_ranges;
use wisegraph_kernels::fused::{check_replaces, FusedPattern, FusedPlan, Segment};
use wisegraph_kernels::micro::{plan_is_dst_complete, KernelProgram, MicroKernel, Reg};

/// The registers a micro-kernel reads and the registers it writes.
/// Delegates to the executor's own [`wisegraph_kernels::micro::accesses`]
/// so the verifier and the fusion matcher can never disagree about
/// register data-flow.
pub fn accesses(op: &MicroKernel) -> (Vec<Reg>, Vec<Reg>) {
    wisegraph_kernels::micro::accesses(op)
}

/// Verifies the register discipline of a compiled program (`K001`/`K002`).
pub fn verify_program(prog: &KernelProgram) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut defined = vec![false; prog.num_regs];
    let mut found = Vec::new();
    let mut stores = 0usize;
    for (pc, op) in prog.ops.iter().enumerate() {
        let (reads, writes) = accesses(op);
        for &Reg(r) in &reads {
            if r >= prog.num_regs {
                found.push(Diagnostic::error(
                    Code::KernelUseBeforeDef,
                    Span::KernelOp(pc),
                    format!(
                        "reads register r{r}, out of range (the program declares {} registers)",
                        prog.num_regs
                    ),
                ));
            } else if !defined[r] {
                found.push(
                    Diagnostic::error(
                        Code::KernelUseBeforeDef,
                        Span::KernelOp(pc),
                        format!("reads register r{r} before any micro-kernel writes it"),
                    )
                    .with_suggestion("loads must precede computes, computes precede stores"),
                );
            }
        }
        for (wi, &Reg(w)) in writes.iter().enumerate() {
            if reads.contains(&Reg(w)) {
                found.push(
                    Diagnostic::error(
                        Code::KernelAliasing,
                        Span::KernelOp(pc),
                        format!("output register r{w} aliases an input of the same micro-kernel"),
                    )
                    .with_suggestion(
                        "registers are checked out of a recycling pool; in-place writes \
                         corrupt the operand",
                    ),
                );
            }
            if writes[..wi].contains(&Reg(w)) {
                found.push(Diagnostic::error(
                    Code::KernelAliasing,
                    Span::KernelOp(pc),
                    format!("register r{w} is written twice by the same micro-kernel"),
                ));
            }
            if w >= prog.num_regs {
                found.push(Diagnostic::error(
                    Code::KernelUseBeforeDef,
                    Span::KernelOp(pc),
                    format!(
                        "writes register r{w}, out of range (the program declares {} registers)",
                        prog.num_regs
                    ),
                ));
            } else {
                if defined[w] {
                    found.push(Diagnostic::warning(
                        Code::KernelAliasing,
                        Span::KernelOp(pc),
                        format!(
                            "register r{w} is overwritten; the earlier value is dead \
                             (harmless, but wastes a pool checkout)"
                        ),
                    ));
                }
                defined[w] = true;
            }
        }
        if matches!(op, MicroKernel::ScatterAdd { .. }) {
            stores += 1;
        }
    }
    push_capped(&mut out, found);
    if stores == 0 {
        out.push(
            Diagnostic::error(
                Code::KernelUseBeforeDef,
                Span::Global,
                "the program never scatter-adds into the global accumulator; \
                 every task's work would be discarded",
            )
            .with_suggestion("a compiled program must end in a ScatterAdd store"),
        );
    }
    out
}

/// Verifies an explicit chunk-to-slot mapping: `ranges[i]` is the task
/// range worker slot `i` owns. Legal mappings partition `0..num_tasks`
/// into at most `threads` contiguous, ascending, disjoint ranges (`K003`).
pub fn verify_chunk_ranges(
    ranges: &[Range<usize>],
    num_tasks: usize,
    threads: usize,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if ranges.len() > threads {
        out.push(Diagnostic::error(
            Code::KernelChunkMapping,
            Span::Global,
            format!(
                "{} chunks for {threads} worker slots; reduction order would \
                 depend on slot reuse",
                ranges.len()
            ),
        ));
    }
    let mut expect = 0usize;
    for (i, r) in ranges.iter().enumerate() {
        if r.is_empty() {
            out.push(Diagnostic::warning(
                Code::KernelChunkMapping,
                Span::Chunk(i),
                "chunk is empty; its worker slot does no work",
            ));
            continue;
        }
        if r.start > expect {
            out.push(Diagnostic::error(
                Code::KernelChunkMapping,
                Span::Chunk(i),
                format!("tasks {expect}..{} are assigned to no chunk", r.start),
            ));
        } else if r.start < expect {
            out.push(Diagnostic::error(
                Code::KernelChunkMapping,
                Span::Chunk(i),
                format!(
                    "chunk starts at task {} but tasks below {expect} are already owned; \
                     overlapping chunks double-count tasks",
                    r.start
                ),
            ));
        }
        expect = expect.max(r.end);
    }
    if expect < num_tasks {
        out.push(Diagnostic::error(
            Code::KernelChunkMapping,
            Span::Global,
            format!("tasks {expect}..{num_tasks} are assigned to no chunk"),
        ));
    }
    out
}

/// Verifies the engine's own deterministic chunk-to-slot mapping for a
/// task count and thread count (`K003`). A finding here is an engine bug.
pub fn verify_chunk_mapping(num_tasks: usize, threads: usize) -> Vec<Diagnostic> {
    if num_tasks == 0 || threads == 0 {
        return Vec::new();
    }
    verify_chunk_ranges(&chunk_ranges(num_tasks, threads), num_tasks, threads)
}

/// Verifies plan/program compatibility: a program carrying per-destination
/// normalization needs every destination's in-edges in one task (`K004`).
pub fn verify_plan_compat(
    g: &Graph,
    plan: &PartitionPlan,
    prog: &KernelProgram,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if prog.requires_dst_complete && !plan_is_dst_complete(g, plan) {
        out.push(
            Diagnostic::error(
                Code::KernelPlanIncompatible,
                Span::Global,
                "the program normalizes per destination (segment softmax) but the plan \
                 splits some destination's in-edges across tasks",
            )
            .with_suggestion(
                "use a destination-complete table (e.g. vertex-centric or dst-and-type)",
            ),
        );
    }
    out
}

/// Verifies a fused execution plan against its program (`K005`):
///
/// 1. **coverage** — the plan's segments, in order, execute program
///    counters `0..ops.len()` exactly once, ascending;
/// 2. **replacement** — each fused segment structurally re-matches at its
///    start pc (same pattern, same range, same register/global wiring);
/// 3. **confinement** — no register written inside a fused segment is read
///    by any instruction outside it (skipping its materialization must be
///    unobservable).
pub fn verify_fusion(prog: &KernelProgram, fplan: &FusedPlan) -> Vec<Diagnostic> {
    let mut found = Vec::new();
    let covered = fplan.covered_pcs();
    let expect: Vec<usize> = (0..prog.ops.len()).collect();
    if covered != expect {
        found.push(
            Diagnostic::error(
                Code::KernelFusionCoverage,
                Span::Global,
                format!(
                    "fused plan executes pcs {covered:?} but the program has \
                     instructions 0..{}; fused segments must cover exactly the \
                     instructions they replace",
                    prog.ops.len()
                ),
            )
            .with_suggestion("rebuild the plan with plan_fusion on this program"),
        );
    }
    for seg in &fplan.segments {
        let Segment::Fused(fk) = seg else { continue };
        if let Err(e) = check_replaces(prog, fk) {
            found.push(Diagnostic::error(
                Code::KernelFusionCoverage,
                Span::KernelOp(fk.pcs.start),
                e,
            ));
        }
        // Independent confinement check (not derived from the matcher):
        // registers written by replaced instructions must never be read
        // outside the segment.
        for pc in fk.pcs.clone().filter(|&pc| pc < prog.ops.len()) {
            let (_, writes) = accesses(&prog.ops[pc]);
            for w in writes {
                for (other_pc, other) in prog.ops.iter().enumerate() {
                    if fk.pcs.contains(&other_pc) {
                        continue;
                    }
                    let (reads, _) = accesses(other);
                    if reads.contains(&w) {
                        found.push(Diagnostic::error(
                            Code::KernelFusionCoverage,
                            Span::KernelOp(other_pc),
                            format!(
                                "reads register r{} whose materialization the fused \
                                 segment at pcs {:?} skips",
                                w.0, fk.pcs
                            ),
                        ));
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    push_capped(&mut out, found);
    out
}

/// Verifies that every fusion pattern registers an interpreter-parity test
/// (`K006`): `tests/fused_parity.rs` under `root` must define a
/// `fn <pattern>.parity_test()` for each [`FusedPattern::ALL`] entry. The
/// same textual-scanning idiom as [`crate::obscheck`] — the check runs
/// against the source tree, so adding a pattern without wiring its
/// differential test fails `wisegraph-lint` before anything executes.
pub fn verify_fused_parity_registry(root: &Path) -> Vec<Diagnostic> {
    let harness = root.join("tests/fused_parity.rs");
    let src = match std::fs::read_to_string(&harness) {
        Ok(s) => s,
        Err(e) => {
            return vec![Diagnostic::error(
                Code::KernelFusionUntested,
                Span::Global,
                format!(
                    "cannot read the fused parity harness {}: {e}",
                    harness.display()
                ),
            )
            .with_suggestion(
                "tests/fused_parity.rs must exist and register one parity test \
                 per fusion pattern",
            )]
        }
    };
    let mut out = Vec::new();
    for p in FusedPattern::ALL {
        let needle = format!("fn {}(", p.parity_test());
        if !src.contains(&needle) {
            out.push(
                Diagnostic::error(
                    Code::KernelFusionUntested,
                    Span::Global,
                    format!(
                        "fusion pattern `{}` has no registered interpreter-parity \
                         test (expected `fn {}` in tests/fused_parity.rs)",
                        p.name(),
                        p.parity_test()
                    ),
                )
                .with_suggestion(
                    "every pattern the matcher can emit must be pinned bit-identical \
                     to the interpreter by a dedicated differential test",
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_dfg::NodeId;
    use wisegraph_graph::AttrKind;
    use wisegraph_gtask::{partition, PartitionTable};
    use wisegraph_kernels::micro::compile;
    use wisegraph_models::ModelKind;

    fn program(ops: Vec<MicroKernel>, num_regs: usize) -> KernelProgram {
        KernelProgram {
            ops,
            num_regs,
            out_rows: 4,
            out_width: 2,
            reduce_node: NodeId(0),
            prologue: vec![],
            requires_dst_complete: false,
        }
    }

    fn paper_graph() -> Graph {
        Graph::new(
            5,
            2,
            vec![0, 1, 0, 1, 2, 2, 3, 4, 3, 4, 0],
            vec![0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 4],
            vec![0, 0, 0, 0, 1, 0, 1, 1, 1, 1, 0],
        )
    }

    #[test]
    fn compiled_models_are_clean() {
        let g = paper_graph();
        for model in [ModelKind::Gcn, ModelKind::Rgcn, ModelKind::Gat, ModelKind::Sage] {
            let dfg = model.layer_dfg(8, 4);
            let prog = compile(&dfg, &g).expect("model compiles");
            let diags = verify_program(&prog);
            assert!(diags.is_empty(), "{model:?}: {diags:#?}");
        }
    }

    #[test]
    fn store_before_load_is_k001() {
        let prog = program(
            vec![
                MicroKernel::ScatterAdd {
                    data: Reg(0),
                    idx: Reg(1),
                },
                MicroKernel::LoadStream {
                    attr: AttrKind::DstId,
                    out: Reg(1),
                },
            ],
            2,
        );
        let diags = verify_program(&prog);
        assert!(diags.iter().any(|d| d.code == Code::KernelUseBeforeDef
            && d.message.contains("before any micro-kernel writes")));
    }

    #[test]
    fn out_of_range_register_is_k001() {
        let prog = program(
            vec![MicroKernel::LoadStream {
                attr: AttrKind::SrcId,
                out: Reg(9),
            }],
            2,
        );
        let diags = verify_program(&prog);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::KernelUseBeforeDef && d.message.contains("out of range")));
    }

    #[test]
    fn missing_store_is_k001() {
        let prog = program(
            vec![MicroKernel::LoadStream {
                attr: AttrKind::SrcId,
                out: Reg(0),
            }],
            1,
        );
        let diags = verify_program(&prog);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::KernelUseBeforeDef && d.message.contains("scatter-adds")));
    }

    #[test]
    fn in_place_write_is_k002() {
        let prog = program(
            vec![
                MicroKernel::LoadStream {
                    attr: AttrKind::SrcId,
                    out: Reg(0),
                },
                MicroKernel::Elementwise {
                    op: wisegraph_kernels::micro::EwOp::Relu,
                    a: Reg(0),
                    b: None,
                    out: Reg(0),
                },
                MicroKernel::ScatterAdd {
                    data: Reg(0),
                    idx: Reg(0),
                },
            ],
            1,
        );
        let diags = verify_program(&prog);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::KernelAliasing && d.message.contains("aliases")));
    }

    #[test]
    fn unique_into_one_register_is_k002() {
        let prog = program(
            vec![
                MicroKernel::LoadStream {
                    attr: AttrKind::SrcId,
                    out: Reg(0),
                },
                MicroKernel::Unique {
                    stream: Reg(0),
                    values: Reg(1),
                    map: Reg(1),
                },
                MicroKernel::ScatterAdd {
                    data: Reg(1),
                    idx: Reg(1),
                },
            ],
            2,
        );
        let diags = verify_program(&prog);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::KernelAliasing && d.message.contains("written twice")));
    }

    #[test]
    fn engine_mapping_is_clean_across_shapes() {
        for (n, t) in [(0, 3), (1, 1), (5, 2), (7, 3), (8, 4), (1000, 16)] {
            let diags = verify_chunk_mapping(n, t);
            assert!(diags.is_empty(), "tasks={n} threads={t}: {diags:#?}");
        }
    }

    #[test]
    fn engine_mapping_edge_cases_stay_clean() {
        // More workers than tasks: every task gets a private single-task
        // chunk; surplus slots stay idle.
        for (n, t) in [(3, 10), (1, 8), (2, 1000)] {
            let diags = verify_chunk_mapping(n, t);
            assert!(diags.is_empty(), "tasks={n} threads={t}: {diags:#?}");
            let ranges = wisegraph_kernels::engine::chunk_ranges(n, t);
            assert_eq!(ranges.len(), n, "one chunk per task when threads >= tasks");
        }
        // Zero tasks and zero threads: nothing runs, nothing to report.
        assert!(verify_chunk_mapping(0, 4).is_empty());
        assert!(verify_chunk_mapping(0, 0).is_empty());
        assert!(verify_chunk_mapping(5, 0).is_empty(), "engine rejects 0 threads itself");
        // Single task through any worker count maps to chunk 0 alone.
        for t in [1usize, 2, 7] {
            assert_eq!(wisegraph_kernels::engine::chunk_ranges(1, t), vec![0..1]);
            assert!(verify_chunk_mapping(1, t).is_empty());
        }
    }

    #[test]
    fn gap_and_overlap_are_k003() {
        let gap = verify_chunk_ranges(&[0..2, 3..6], 6, 2);
        assert!(gap.iter().any(|d| d.code == Code::KernelChunkMapping
            && d.message.contains("assigned to no chunk")));
        let overlap = verify_chunk_ranges(&[0..3, 2..6], 6, 2);
        assert!(overlap.iter().any(|d| d.code == Code::KernelChunkMapping
            && d.message.contains("overlapping")));
        let too_many = verify_chunk_ranges(&[0..2, 2..4, 4..6], 6, 2);
        assert!(too_many.iter().any(|d| d.code == Code::KernelChunkMapping
            && d.message.contains("worker slots")));
        let short = verify_chunk_ranges(std::slice::from_ref(&(0..2)), 6, 2);
        assert!(short.iter().any(|d| d.code == Code::KernelChunkMapping
            && d.message.contains("2..6")));
    }

    #[test]
    fn fusion_plans_of_compiled_models_are_clean() {
        let g = paper_graph();
        for model in [ModelKind::Gcn, ModelKind::Rgcn, ModelKind::Gat, ModelKind::Sage] {
            let dfg = model.layer_dfg(8, 4);
            let prog = compile(&dfg, &g).expect("model compiles");
            let fplan = wisegraph_kernels::fused::plan_fusion(&prog);
            let diags = verify_fusion(&prog, &fplan);
            assert!(diags.is_empty(), "{model:?}: {diags:#?}");
        }
    }

    #[test]
    fn dropped_segment_is_k005() {
        let g = paper_graph();
        let prog = compile(&ModelKind::Gcn.layer_dfg(8, 4), &g).unwrap();
        let mut fplan = wisegraph_kernels::fused::plan_fusion(&prog);
        assert!(fplan.num_fused() > 0);
        fplan.segments.pop();
        let diags = verify_fusion(&prog, &fplan);
        assert!(diags.iter().any(|d| d.code == Code::KernelFusionCoverage
            && d.message.contains("cover exactly")));
    }

    #[test]
    fn tampered_segment_is_k005() {
        let g = paper_graph();
        let prog = compile(&ModelKind::Rgcn.layer_dfg(8, 4), &g).unwrap();
        let mut fplan = wisegraph_kernels::fused::plan_fusion(&prog);
        // Shift the fused segment one instruction left: it now claims to
        // replace a chain that is not there.
        for seg in &mut fplan.segments {
            if let Segment::Fused(fk) = seg {
                fk.pcs = fk.pcs.start - 1..fk.pcs.end - 1;
            }
        }
        let diags = verify_fusion(&prog, &fplan);
        assert!(diags.iter().any(|d| d.code == Code::KernelFusionCoverage));
    }

    #[test]
    fn parity_registry_present_in_repo() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let diags = verify_fused_parity_registry(&root);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn missing_parity_harness_is_k006() {
        // A directory with no tests/fused_parity.rs at all.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
        let diags = verify_fused_parity_registry(&root);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::KernelFusionUntested));
    }

    #[test]
    fn softmax_under_split_destinations_is_k004() {
        let g = paper_graph();
        let dfg = ModelKind::Gat.layer_dfg(8, 4);
        let prog = compile(&dfg, &g).expect("GAT compiles");
        assert!(prog.requires_dst_complete);
        let bad = partition(&g, &PartitionTable::edge_batch(3));
        assert!(!plan_is_dst_complete(&g, &bad));
        let diags = verify_plan_compat(&g, &bad, &prog);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::KernelPlanIncompatible));
        let good = partition(&g, &PartitionTable::vertex_centric());
        assert!(verify_plan_compat(&g, &good, &prog).is_empty());
    }
}
