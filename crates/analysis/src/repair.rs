//! Incremental-repair equivalence and cache-registry verification
//! (codes `C001`–`C002`).
//!
//! The incremental path (`wisegraph_gtask::IncrementalPlan`) repairs only
//! the gTasks a delta touches, so its snapshots are *not* byte-identical
//! to a from-scratch partition — task boundaries fragment and revived
//! tasks append out of global sort order. What must hold instead
//! (`C001`) is verification equivalence over the live edge set:
//!
//! 1. the repaired plan covers exactly the live edges, each exactly once;
//! 2. every task honors every `Exact(k)` restriction of the table, and
//!    its recorded unique counts match an independent recount;
//! 3. the plan's table is the table the repair claims to maintain;
//! 4. the verification verdict (clean / not clean) is identical to that
//!    of `partition_edges(g, table, live)` run from scratch.
//!
//! Global monotone task order (`P004`) is deliberately *not* required
//! here: repair trades it for O(delta) work, and the engine does not
//! depend on cross-task order for correctness — only the reducers'
//! ascending merge, which keys on node ids, not task ids.
//!
//! `C002` is the registry gate for the planning cache, mirroring `K006`:
//! every [`CachedArtifact`] type must register a byte-roundtrip test in
//! `tests/cache_roundtrip.rs`, so nobody can add a cached artifact whose
//! serialization is not pinned byte-stable.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::{push_capped, Code, Diagnostic, Span};
use wisegraph_cache::{hash_table, CachedArtifact};
use wisegraph_graph::Graph;
use wisegraph_gtask::{partition_edges, PartitionPlan, PartitionTable};

/// Verifies that an incrementally repaired `plan` is equivalent, for
/// execution purposes, to partitioning the `live` edge set from scratch
/// under `table` (`C001`). Returns all findings; an empty vector means
/// the repair is provably as good as a rebuild.
pub fn verify_repair(
    g: &Graph,
    table: &PartitionTable,
    live: &[usize],
    plan: &PartitionPlan,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // --- table identity ----------------------------------------------
    if hash_table(&plan.table) != hash_table(table) {
        out.push(
            Diagnostic::error(
                Code::RepairDivergence,
                Span::Global,
                format!(
                    "the repaired plan carries table [{}] but the repair claims to \
                     maintain [{table}]",
                    plan.table
                ),
            )
            .with_suggestion("an IncrementalPlan never changes its table; rebuild it"),
        );
    }

    let live_set: BTreeSet<usize> = live.iter().copied().collect();
    let own = subset_findings(g, table, &live_set, plan);
    let own_clean = own.is_empty();
    out.extend(own);

    // --- verdict parity with a from-scratch partition ----------------
    let live_sorted: Vec<usize> = live_set.iter().copied().collect();
    let scratch = partition_edges(g, table, &live_sorted);
    let scratch_findings = subset_findings(g, table, &live_set, &scratch);
    if scratch_findings.is_empty() != own_clean {
        out.push(
            Diagnostic::error(
                Code::RepairDivergence,
                Span::Global,
                format!(
                    "verification verdict diverges: the repaired plan has {} finding(s) \
                     but a from-scratch partition of the same {} live edges has {}",
                    if own_clean { 0 } else { 1 },
                    live_set.len(),
                    scratch_findings.len()
                ),
            )
            .with_suggestion(
                "repair and rebuild must agree on legality; call rebuild_if_fragmented \
                 or investigate the repair path",
            ),
        );
    }

    out
}

/// The subset analogue of [`crate::plan::verify_plan`]: exact-once
/// coverage of `live` (instead of all graph edges), `Exact` restriction
/// recounts, and no empty tasks. Order checks are intentionally absent
/// (see the module docs).
fn subset_findings(
    g: &Graph,
    table: &PartitionTable,
    live: &BTreeSet<usize>,
    plan: &PartitionPlan,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let num_edges = g.num_edges();
    let exact = table.exact_attrs();

    // Coverage over the live set.
    let mut count: BTreeMap<usize, u32> = BTreeMap::new();
    let mut task_in_range = vec![true; plan.tasks.len()];
    let mut cover_diags = Vec::new();
    for (ti, task) in plan.tasks.iter().enumerate() {
        if task.edges.is_empty() {
            cover_diags.push(
                Diagnostic::error(
                    Code::RepairDivergence,
                    Span::Task(ti),
                    "repaired plan carries an empty gTask",
                )
                .with_suggestion("snapshots must drop tombstoned task slots"),
            );
            continue;
        }
        for &e in &task.edges {
            if e >= num_edges {
                task_in_range[ti] = false;
                cover_diags.push(Diagnostic::error(
                    Code::RepairDivergence,
                    Span::Task(ti),
                    format!("edge id {e} is out of range (the graph has {num_edges} edges)"),
                ));
            } else if !live.contains(&e) {
                task_in_range[ti] = false;
                cover_diags.push(Diagnostic::error(
                    Code::RepairDivergence,
                    Span::Edge(e),
                    format!("edge {e} is in the repaired plan but not in the live set"),
                ));
            } else {
                *count.entry(e).or_insert(0) += 1;
            }
        }
    }
    for &e in live {
        match count.get(&e).copied().unwrap_or(0) {
            0 => cover_diags.push(Diagnostic::error(
                Code::RepairDivergence,
                Span::Edge(e),
                format!("live edge {e} is not covered by any gTask of the repaired plan"),
            )),
            1 => {}
            c => cover_diags.push(Diagnostic::error(
                Code::RepairDivergence,
                Span::Edge(e),
                format!("live edge {e} is covered by {c} gTasks (must be exactly one)"),
            )),
        }
    }
    push_capped(&mut out, cover_diags);

    // Restriction satisfaction and recorded-count honesty.
    let mut restr_diags = Vec::new();
    for (ti, task) in plan.tasks.iter().enumerate() {
        if task.edges.is_empty() || !task_in_range[ti] {
            continue;
        }
        for &(attr, k) in &exact {
            let mut vals: Vec<u64> =
                task.edges.iter().map(|&e| g.edge_attr(attr, e)).collect();
            vals.sort_unstable();
            vals.dedup();
            let actual = vals.len();
            if actual as u64 > k {
                restr_diags.push(
                    Diagnostic::error(
                        Code::RepairDivergence,
                        Span::Task(ti),
                        format!(
                            "repaired gTask has uniq({attr}) = {actual}, violating the \
                             restriction uniq({attr}) = {k}"
                        ),
                    )
                    .with_suggestion("the repair must split tasks exactly like the partitioner"),
                );
            }
            if let Some(&recorded) = task.uniq.get(&attr) {
                if recorded != actual {
                    restr_diags.push(Diagnostic::error(
                        Code::RepairDivergence,
                        Span::Task(ti),
                        format!(
                            "recorded uniq({attr}) = {recorded} disagrees with a fresh \
                             recount of {actual} after repair"
                        ),
                    ));
                }
            }
        }
    }
    push_capped(&mut out, restr_diags);
    out
}

/// Verifies that every cached artifact type registers a byte-roundtrip
/// test (`C002`): `tests/cache_roundtrip.rs` under `root` must define a
/// `fn <artifact>.roundtrip_test()` for each [`CachedArtifact::ALL`]
/// entry. The same textual-scanning idiom as `K006` — the check runs
/// against the source tree, so adding a cacheable artifact without
/// pinning its serialization fails `wisegraph-lint` before anything
/// is ever decoded from the store.
pub fn verify_cache_roundtrip_registry(root: &Path) -> Vec<Diagnostic> {
    let harness = root.join("tests/cache_roundtrip.rs");
    let src = match std::fs::read_to_string(&harness) {
        Ok(s) => s,
        Err(e) => {
            return vec![Diagnostic::error(
                Code::CacheArtifactUntested,
                Span::Global,
                format!(
                    "cannot read the cache roundtrip harness {}: {e}",
                    harness.display()
                ),
            )
            .with_suggestion(
                "tests/cache_roundtrip.rs must exist and register one byte-roundtrip \
                 test per cached artifact type",
            )]
        }
    };
    let mut out = Vec::new();
    for a in CachedArtifact::ALL {
        let needle = format!("fn {}(", a.roundtrip_test());
        if !src.contains(&needle) {
            out.push(
                Diagnostic::error(
                    Code::CacheArtifactUntested,
                    Span::Global,
                    format!(
                        "cached artifact `{}` has no registered byte-roundtrip test \
                         (expected `fn {}` in tests/cache_roundtrip.rs)",
                        a.name(),
                        a.roundtrip_test()
                    ),
                )
                .with_suggestion(
                    "every artifact the cache can store must be pinned byte-stable by \
                     a dedicated roundtrip test",
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_gtask::{GraphDelta, IncrementalPlan};

    fn paper_graph() -> Graph {
        Graph::new(
            5,
            2,
            vec![0, 1, 0, 1, 2, 2, 3, 4, 3, 4, 0],
            vec![0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 4],
            vec![0, 0, 0, 0, 1, 0, 1, 1, 1, 1, 0],
        )
    }

    #[test]
    fn repaired_snapshots_verify_clean_across_tables() {
        let g = paper_graph();
        for table in [
            PartitionTable::new(),
            PartitionTable::vertex_centric(),
            PartitionTable::two_d(2),
            PartitionTable::dst_and_type(),
            PartitionTable::src_batch_per_type(2),
        ] {
            let mut inc = IncrementalPlan::new(&g, table.clone());
            inc.apply(&g, &GraphDelta::deleting(vec![3, 7, 10]));
            inc.apply(&g, &GraphDelta::inserting(vec![7]));
            let live = inc.live_edges();
            let snap = inc.snapshot(&g);
            let diags = verify_repair(&g, &table, &live, &snap);
            assert!(diags.is_empty(), "{table}: {diags:#?}");
        }
    }

    #[test]
    fn phantom_and_missing_edges_are_c001() {
        let g = paper_graph();
        let table = PartitionTable::vertex_centric();
        let mut inc = IncrementalPlan::new(&g, table.clone());
        inc.apply(&g, &GraphDelta::deleting(vec![2]));
        let snap = inc.snapshot(&g);
        let live = inc.live_edges();

        // The snapshot covers edge 2, which the claimed live set lacks.
        let mut short = live.clone();
        short.retain(|&e| e != 0);
        let diags = verify_repair(&g, &table, &short, &snap);
        assert!(diags.iter().any(|d| d.code == Code::RepairDivergence
            && d.message.contains("not in the live set")));

        // The claimed live set has edge 2, which the snapshot lacks.
        let mut long = live;
        long.push(2);
        let diags = verify_repair(&g, &table, &long, &snap);
        assert!(diags.iter().any(|d| d.code == Code::RepairDivergence
            && d.message.contains("not covered")));
    }

    #[test]
    fn restriction_violations_after_repair_are_c001() {
        let g = paper_graph();
        let table = PartitionTable::vertex_centric();
        let inc = IncrementalPlan::new(&g, table.clone());
        let live = inc.live_edges();
        let mut snap = inc.snapshot(&g);
        // Merge every task into one: uniq(dst-id) explodes past Exact(1).
        let merged: Vec<usize> = snap.tasks.iter().flat_map(|t| t.edges.clone()).collect();
        snap.tasks.truncate(1);
        snap.tasks[0].edges = merged;
        let diags = verify_repair(&g, &table, &live, &snap);
        assert!(diags.iter().any(|d| d.code == Code::RepairDivergence
            && d.message.contains("violating")));
    }

    #[test]
    fn stale_recorded_uniq_is_c001() {
        let g = paper_graph();
        let table = PartitionTable::vertex_centric();
        let inc = IncrementalPlan::new(&g, table.clone());
        let live = inc.live_edges();
        let mut snap = inc.snapshot(&g);
        if let Some(v) = snap.tasks[0].uniq.values_mut().next() {
            *v += 41;
        }
        let diags = verify_repair(&g, &table, &live, &snap);
        assert!(diags.iter().any(|d| d.code == Code::RepairDivergence
            && d.message.contains("disagrees")));
    }

    #[test]
    fn wrong_table_is_c001() {
        let g = paper_graph();
        let inc = IncrementalPlan::new(&g, PartitionTable::vertex_centric());
        let live = inc.live_edges();
        let snap = inc.snapshot(&g);
        let diags = verify_repair(&g, &PartitionTable::edge_centric(), &live, &snap);
        assert!(diags.iter().any(|d| d.code == Code::RepairDivergence
            && d.message.contains("table")));
    }

    #[test]
    fn empty_task_in_snapshot_is_c001() {
        let g = paper_graph();
        let table = PartitionTable::new();
        let inc = IncrementalPlan::new(&g, table.clone());
        let live = inc.live_edges();
        let mut snap = inc.snapshot(&g);
        snap.tasks.push(wisegraph_gtask::GTask {
            edges: vec![],
            uniq: Default::default(),
        });
        let diags = verify_repair(&g, &table, &live, &snap);
        assert!(diags.iter().any(|d| d.code == Code::RepairDivergence
            && d.message.contains("empty gTask")));
    }

    #[test]
    fn roundtrip_registry_present_in_repo() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let diags = verify_cache_roundtrip_registry(&root);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn missing_roundtrip_harness_is_c002() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
        let diags = verify_cache_roundtrip_registry(&root);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::CacheArtifactUntested));
    }
}
