//! Tensor shapes and row-major stride arithmetic.

use std::fmt;

/// The shape of a dense tensor: the extent of each dimension.
///
/// Shapes are stored as a small vector of dimension sizes in row-major order
/// (the last dimension is contiguous in memory).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Self {
            dims: dims.to_vec(),
        }
    }

    /// Returns the number of dimensions (the rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Returns the extents of all dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Returns the extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Returns the total number of elements.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns the row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Returns the linear offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.rank(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.rank()
        );
        let strides = self.strides();
        let mut off = 0;
        for (d, (&i, &s)) in index.iter().zip(strides.iter()).enumerate() {
            assert!(
                i < self.dims[d],
                "index {i} out of bounds for dimension {d} with extent {}",
                self.dims[d]
            );
            off += i * s;
        }
        off
    }

    /// Returns `true` when both shapes describe the same extents.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.strides(), Vec::<usize>::new());
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn row_major_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_computation() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
        assert_eq!(s.offset(&[1, 0, 2]), 14);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_out_of_bounds() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn offset_wrong_rank() {
        Shape::new(&[2, 2]).offset(&[0]);
    }

    #[test]
    fn equality_and_conversion() {
        let a: Shape = [2, 3].into();
        let b = Shape::new(&[2, 3]);
        assert!(a.same_as(&b));
        assert_eq!(a, b);
    }
}
