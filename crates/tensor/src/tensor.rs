//! The dense tensor type.

use crate::shape::Shape;
use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// `Tensor` owns its storage as a flat `Vec<f32>`. The operations in
/// [`crate::ops`] come in allocating form (returning a fresh tensor) and in
/// `_into` form (writing into a caller-provided buffer, typically checked
/// out of a [`crate::Workspace`]); in-place mutation is otherwise exposed
/// only through [`Tensor::data_mut`].
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the number of elements implied
    /// by `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.numel()
        );
        Self { data, shape }
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Self {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Self {
            data: vec![1.0; shape.numel()],
            shape,
        }
    }

    /// Creates a tensor filled with a constant.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Self {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Creates a rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Self {
            data: vec![value],
            shape: Shape::new(&[]),
        }
    }

    /// Returns the shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the extents of all dimensions.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Returns the total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Returns the underlying flat buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns the underlying flat buffer mutably.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has the wrong rank.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has the wrong rank.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns the value of a rank-0 or single-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() requires a single-element tensor, got shape {}",
            self.shape
        );
        self.data[0]
    }

    /// Returns a view of row `r` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.shape.rank(), 2, "row() requires a rank-2 tensor");
        let cols = self.shape.dim(1);
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Returns a mutable view of row `r` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert_eq!(self.shape.rank(), 2, "row_mut() requires a rank-2 tensor");
        let cols = self.shape.dim(1);
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Returns a copy with the same data reinterpreted under a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            self.numel(),
            "cannot reshape {} elements into shape {}",
            self.numel(),
            shape
        );
        Tensor {
            data: self.data.clone(),
            shape,
        }
    }

    /// Returns `true` if all elements are finite (neither NaN nor infinite).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Returns the maximum absolute difference to another tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert!(
            self.shape.same_as(&other.shape),
            "shape mismatch: {} vs {}",
            self.shape,
            other.shape
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// Returns `true` if every element is within `tol` of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.max_abs_diff(other) <= tol
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        let ellipsis = if self.data.len() > 8 { ", ..." } else { "" };
        write!(f, "Tensor({}, {:?}{})", self.shape, preview, ellipsis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.numel(), 6);
        assert!(z.data().iter().all(|&v| v == 0.0));

        let o = Tensor::ones(&[4]);
        assert!(o.data().iter().all(|&v| v == 1.0));

        let f = Tensor::full(&[2, 2], 7.5);
        assert_eq!(f.at(&[1, 1]), 7.5);

        let s = Tensor::scalar(3.0);
        assert_eq!(s.item(), 3.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_length_mismatch() {
        Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn indexing_and_rows() {
        let mut t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[1, 2]), 6.0);
        t.set(&[0, 1], 9.0);
        assert_eq!(t.row(0), &[1.0, 9.0, 3.0]);
        t.row_mut(1)[0] = -1.0;
        assert_eq!(t.at(&[1, 0]), -1.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = t.reshape(&[4]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dims(), &[4]);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_bad_count() {
        Tensor::zeros(&[2, 2]).reshape(&[3]);
    }

    #[test]
    fn comparisons() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0, 2.5], &[2]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!(a.allclose(&b, 0.5));
        assert!(!a.allclose(&b, 0.4));
        assert!(a.all_finite());
        let nan = Tensor::from_vec(vec![f32::NAN], &[1]);
        assert!(!nan.all_finite());
    }
}
