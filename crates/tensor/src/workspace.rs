//! Reusable scratch-buffer pool for the execution hot path.
//!
//! gTask execution runs thousands of small kernels per layer per epoch;
//! allocating a fresh buffer for every intermediate makes the allocator the
//! bottleneck. A [`Workspace`] is a per-thread (never shared — it is
//! deliberately `!Sync`-by-convention, owned by exactly one worker) pool of
//! `f32` and `u32` buffers keyed by power-of-two size class. Buffers are
//! checked out with [`Workspace::take`], used as kernel outputs, and
//! returned with [`Workspace::give`] (or, wrapped in a [`Tensor`], with
//! [`Workspace::recycle`]) so the next kernel of the same shape pays a
//! `memset` instead of a `malloc`.
//!
//! Two invariants keep the workspace path bit-identical to plain
//! allocation:
//!
//! 1. every checked-out buffer is zero-filled, exactly like `vec![0.0; n]`;
//! 2. the pool only changes *where* memory comes from, never what is
//!    computed — the allocating `ops` wrappers and the `_into` variants
//!    they delegate to run the same floating-point operations in the same
//!    order.
//!
//! [`Workspace::stats`] reports into the shared [`Counters`] registry
//! under the `pool.*` keys ([`wisegraph_obs::keys`]), including a peak
//! per size class — a pool can look healthy globally while one class
//! hoards memory, and the per-class peaks make that visible. All pool
//! metrics are [`Class::Resource`]: deterministic for a fixed
//! configuration, but legitimately dependent on worker count.

use crate::tensor::Tensor;
use wisegraph_obs::{keys, Class, Counters};

/// Number of power-of-two size classes (buffers up to 2^63 elements).
const NUM_CLASSES: usize = 64;

/// A per-thread scratch-buffer pool keyed by power-of-two size class.
#[derive(Default)]
pub struct Workspace {
    f32_pool: Vec<Vec<Vec<f32>>>,
    u32_pool: Vec<Vec<Vec<u32>>>,
    created: u64,
    reused: u64,
    resident_bytes: u64,
    peak_resident_bytes: u64,
    class_resident: Vec<u64>,
    class_peak: Vec<u64>,
    leases_opened: u64,
    leases_closed: u64,
    peak_open_leases: u64,
}

/// Size class of a buffer length: index of the smallest power of two that
/// holds `len` elements.
fn size_class(len: usize) -> usize {
    len.max(1).next_power_of_two().trailing_zeros() as usize
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_classes(&mut self) {
        if self.f32_pool.is_empty() {
            self.f32_pool = (0..NUM_CLASSES).map(|_| Vec::new()).collect();
            self.u32_pool = (0..NUM_CLASSES).map(|_| Vec::new()).collect();
            self.class_resident = vec![0; NUM_CLASSES];
            self.class_peak = vec![0; NUM_CLASSES];
        }
    }

    fn note_park(&mut self, class: usize, bytes: u64) {
        self.resident_bytes += bytes;
        self.peak_resident_bytes = self.peak_resident_bytes.max(self.resident_bytes);
        self.class_resident[class] += bytes;
        self.class_peak[class] = self.class_peak[class].max(self.class_resident[class]);
    }

    fn note_unpark(&mut self, class: usize, bytes: u64) {
        self.resident_bytes = self.resident_bytes.saturating_sub(bytes);
        self.class_resident[class] = self.class_resident[class].saturating_sub(bytes);
    }

    fn note_lease_opened(&mut self) {
        self.leases_opened += 1;
        self.peak_open_leases = self.peak_open_leases.max(self.open_leases());
    }

    /// Buffers currently checked out: every `take*` opens a lease, every
    /// `give*`/`recycle` closes one. The dynamic counterpart of the static
    /// workspace-lifetime pass (analysis code R005): a value that keeps
    /// growing across steady-state epochs means buffers leak out of the
    /// pool instead of being returned. Saturates at zero when externally
    /// allocated buffers are given to a pool that never leased them.
    pub fn open_leases(&self) -> u64 {
        self.leases_opened.saturating_sub(self.leases_closed)
    }

    /// Checks out a zero-filled `f32` buffer of exactly `len` elements.
    ///
    /// The buffer's contents are indistinguishable from `vec![0.0; len]`;
    /// only its provenance differs.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        self.ensure_classes();
        self.note_lease_opened();
        let class = size_class(len);
        match self.f32_pool[class].pop() {
            Some(mut v) => {
                self.reused += 1;
                self.note_unpark(class, (v.capacity() * 4) as u64);
                v.clear();
                v.resize(len, 0.0);
                v
            }
            None => {
                self.created += 1;
                let mut v = Vec::with_capacity(len.max(1).next_power_of_two());
                v.resize(len, 0.0);
                v
            }
        }
    }

    /// Checks out a zero-filled `u32` buffer of exactly `len` elements
    /// (index streams).
    pub fn take_u32(&mut self, len: usize) -> Vec<u32> {
        self.ensure_classes();
        self.note_lease_opened();
        let class = size_class(len);
        match self.u32_pool[class].pop() {
            Some(mut v) => {
                self.reused += 1;
                self.note_unpark(class, (v.capacity() * 4) as u64);
                v.clear();
                v.resize(len, 0);
                v
            }
            None => {
                self.created += 1;
                let mut v = Vec::with_capacity(len.max(1).next_power_of_two());
                v.resize(len, 0);
                v
            }
        }
    }

    /// Returns an `f32` buffer to the pool.
    pub fn give(&mut self, v: Vec<f32>) {
        self.leases_closed += 1;
        if v.capacity() == 0 {
            return;
        }
        self.ensure_classes();
        let class = size_class(v.capacity());
        self.note_park(class, (v.capacity() * 4) as u64);
        self.f32_pool[class].push(v);
    }

    /// Returns a `u32` buffer to the pool.
    pub fn give_u32(&mut self, v: Vec<u32>) {
        self.leases_closed += 1;
        if v.capacity() == 0 {
            return;
        }
        self.ensure_classes();
        let class = size_class(v.capacity());
        self.note_park(class, (v.capacity() * 4) as u64);
        self.u32_pool[class].push(v);
    }

    /// Checks out a zero tensor of the given shape, backed by a pooled
    /// buffer.
    pub fn take_tensor(&mut self, dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec(self.take(n), dims)
    }

    /// Returns a tensor's backing buffer to the pool.
    pub fn recycle(&mut self, t: Tensor) {
        self.give(t.into_vec());
    }

    /// Current counter snapshot under the shared `pool.*` keys.
    ///
    /// Per-worker snapshots combine with [`Counters::merge`]: creates,
    /// reuses, and resident bytes sum across disjoint pools, while peaks
    /// take the max (summing peaks would overstate a single worker's
    /// footprint; the merged peak is a lower bound on the true
    /// simultaneous peak). Size classes that never parked a buffer are
    /// omitted.
    pub fn stats(&self) -> Counters {
        let mut c = Counters::new();
        c.add_class(keys::POOL_CREATED, self.created, Class::Resource);
        c.add_class(keys::POOL_REUSED, self.reused, Class::Resource);
        c.add_class(keys::POOL_RESIDENT, self.resident_bytes, Class::Resource);
        c.record_max(keys::POOL_PEAK, self.peak_resident_bytes, Class::Resource);
        c.add_class(keys::POOL_OPEN_LEASES, self.open_leases(), Class::Resource);
        c.record_max(
            keys::POOL_PEAK_OPEN_LEASES,
            self.peak_open_leases,
            Class::Resource,
        );
        for (class, &peak) in self.class_peak.iter().enumerate() {
            if peak > 0 {
                c.record_max(keys::pool_class_peak(class), peak, Class::Resource);
            }
        }
        c
    }

    /// Resets the created/reused counters (pooled buffers, resident
    /// accounting, and peaks are kept).
    pub fn reset_counters(&mut self) {
        self.created = 0;
        self.reused = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_obs::pool_reuse_ratio;

    #[test]
    fn take_is_zeroed_like_fresh_allocation() {
        let mut ws = Workspace::new();
        let mut v = ws.take(10);
        assert_eq!(v, vec![0.0; 10]);
        v.iter_mut().for_each(|x| *x = 7.0);
        ws.give(v);
        // Same size class: must come back zeroed despite the dirty write.
        let v2 = ws.take(10);
        assert_eq!(v2, vec![0.0; 10]);
    }

    #[test]
    fn counters_track_create_and_reuse() {
        let mut ws = Workspace::new();
        let a = ws.take(100);
        let b = ws.take(100);
        assert_eq!(ws.stats().count(keys::POOL_CREATED), 2);
        assert_eq!(ws.stats().count(keys::POOL_REUSED), 0);
        ws.give(a);
        ws.give(b);
        assert!(ws.stats().count(keys::POOL_RESIDENT) >= 2 * 100 * 4);
        let _c = ws.take(100);
        let _d = ws.take(128); // same power-of-two class as 100
        let s = ws.stats();
        assert_eq!(s.count(keys::POOL_CREATED), 2);
        assert_eq!(s.count(keys::POOL_REUSED), 2);
        assert!(s.count(keys::POOL_PEAK) >= s.count(keys::POOL_RESIDENT));
        assert!((pool_reuse_ratio(&s) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn size_classes_separate_small_and_large() {
        let mut ws = Workspace::new();
        let small = ws.take(4);
        ws.give(small);
        // A much larger request must not receive the small buffer.
        let large = ws.take(1000);
        assert_eq!(large.len(), 1000);
        assert_eq!(ws.stats().count(keys::POOL_CREATED), 2);
    }

    #[test]
    fn per_class_peaks_attribute_memory_to_their_class() {
        let mut ws = Workspace::new();
        let small = ws.take(4); // class of 4 elements
        let large = ws.take(1000); // class of 1024 elements
        ws.give(small);
        ws.give(large);
        let s = ws.stats();
        let small_key = keys::pool_class_peak(size_class(4));
        let large_key = keys::pool_class_peak(size_class(1000));
        assert_eq!(s.count(&small_key), 4 * 4);
        assert_eq!(s.count(&large_key), 1024 * 4);
        // Both parked simultaneously: the global peak sees the sum, and
        // each class peak accounts only its own buffers.
        assert_eq!(s.count(keys::POOL_PEAK), 4 * 4 + 1024 * 4);
        // Classes that never parked anything are absent, not zero.
        assert!(s.get(&keys::pool_class_peak(63)).is_none());
    }

    #[test]
    fn tensor_roundtrip_recycles_storage() {
        let mut ws = Workspace::new();
        let t = ws.take_tensor(&[3, 4]);
        assert_eq!(t.dims(), &[3, 4]);
        ws.recycle(t);
        let t2 = ws.take_tensor(&[4, 3]);
        assert_eq!(ws.stats().count(keys::POOL_REUSED), 1);
        assert!(t2.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn u32_streams_pool_independently() {
        let mut ws = Workspace::new();
        let s = ws.take_u32(16);
        ws.give_u32(s);
        let s2 = ws.take_u32(9);
        assert_eq!(s2, vec![0u32; 9]);
        let st = ws.stats();
        assert_eq!(
            (st.count(keys::POOL_CREATED), st.count(keys::POOL_REUSED)),
            (1, 1)
        );
    }

    #[test]
    fn open_leases_track_checkouts_and_returns() {
        let mut ws = Workspace::new();
        assert_eq!(ws.open_leases(), 0);
        let a = ws.take(8);
        let b = ws.take_u32(8);
        assert_eq!(ws.open_leases(), 2);
        let s = ws.stats();
        assert_eq!(s.count(keys::POOL_OPEN_LEASES), 2);
        assert_eq!(s.count(keys::POOL_PEAK_OPEN_LEASES), 2);
        ws.give(a);
        ws.give_u32(b);
        assert_eq!(ws.open_leases(), 0);
        // The peak remembers the widest simultaneous checkout.
        assert_eq!(ws.stats().count(keys::POOL_PEAK_OPEN_LEASES), 2);
        assert_eq!(ws.stats().count(keys::POOL_OPEN_LEASES), 0);
    }

    #[test]
    fn merged_snapshots_sum_counts_and_max_peaks() {
        let mut a = Workspace::new();
        let buf = a.take(64);
        a.give(buf);
        let mut b = Workspace::new();
        let b1 = b.take(64);
        let b2 = b.take(64);
        b.give(b1);
        b.give(b2);
        let mut merged = a.stats();
        merged.merge(&b.stats());
        assert_eq!(merged.count(keys::POOL_CREATED), 3);
        assert_eq!(merged.count(keys::POOL_PEAK), b.stats().count(keys::POOL_PEAK));
        assert_eq!(
            merged.count(keys::POOL_RESIDENT),
            a.stats().count(keys::POOL_RESIDENT) + b.stats().count(keys::POOL_RESIDENT)
        );
    }
}
