//! Reusable scratch-buffer pool for the execution hot path.
//!
//! gTask execution runs thousands of small kernels per layer per epoch;
//! allocating a fresh buffer for every intermediate makes the allocator the
//! bottleneck. A [`Workspace`] is a per-thread (never shared — it is
//! deliberately `!Sync`-by-convention, owned by exactly one worker) pool of
//! `f32` and `u32` buffers keyed by power-of-two size class. Buffers are
//! checked out with [`Workspace::take`], used as kernel outputs, and
//! returned with [`Workspace::give`] (or, wrapped in a [`Tensor`], with
//! [`Workspace::recycle`]) so the next kernel of the same shape pays a
//! `memset` instead of a `malloc`.
//!
//! Two invariants keep the workspace path bit-identical to plain
//! allocation:
//!
//! 1. every checked-out buffer is zero-filled, exactly like `vec![0.0; n]`;
//! 2. the pool only changes *where* memory comes from, never what is
//!    computed — the allocating `ops` wrappers and the `_into` variants
//!    they delegate to run the same floating-point operations in the same
//!    order.
//!
//! The counters ([`Workspace::stats`]) let tests and benches assert that
//! reuse actually happens instead of silently regressing to
//! alloc-per-call.

use crate::tensor::Tensor;

/// Snapshot of a workspace's reuse counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Buffers allocated fresh because no pooled buffer fit.
    pub buffers_created: u64,
    /// Buffers served from the pool.
    pub buffers_reused: u64,
    /// Buffers currently parked in the pool, in bytes of capacity.
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes` over the workspace's lifetime.
    pub peak_resident_bytes: u64,
}

impl WorkspaceStats {
    /// Fraction of checkouts served from the pool (0 when nothing was
    /// checked out).
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.buffers_created + self.buffers_reused;
        if total == 0 {
            0.0
        } else {
            self.buffers_reused as f64 / total as f64
        }
    }

    /// Element-wise sum of two snapshots (peaks take the max — the pools
    /// are disjoint per worker, so summing peaks would overstate a single
    /// worker's footprint; the merged peak is a lower bound on the true
    /// simultaneous peak).
    pub fn merge(&self, other: &WorkspaceStats) -> WorkspaceStats {
        WorkspaceStats {
            buffers_created: self.buffers_created + other.buffers_created,
            buffers_reused: self.buffers_reused + other.buffers_reused,
            resident_bytes: self.resident_bytes + other.resident_bytes,
            peak_resident_bytes: self
                .peak_resident_bytes
                .max(other.peak_resident_bytes),
        }
    }
}

/// Number of power-of-two size classes (buffers up to 2^63 elements).
const NUM_CLASSES: usize = 64;

/// A per-thread scratch-buffer pool keyed by power-of-two size class.
#[derive(Default)]
pub struct Workspace {
    f32_pool: Vec<Vec<Vec<f32>>>,
    u32_pool: Vec<Vec<Vec<u32>>>,
    created: u64,
    reused: u64,
    resident_bytes: u64,
    peak_resident_bytes: u64,
}

/// Size class of a buffer length: index of the smallest power of two that
/// holds `len` elements.
fn size_class(len: usize) -> usize {
    len.max(1).next_power_of_two().trailing_zeros() as usize
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_classes(&mut self) {
        if self.f32_pool.is_empty() {
            self.f32_pool = (0..NUM_CLASSES).map(|_| Vec::new()).collect();
            self.u32_pool = (0..NUM_CLASSES).map(|_| Vec::new()).collect();
        }
    }

    /// Checks out a zero-filled `f32` buffer of exactly `len` elements.
    ///
    /// The buffer's contents are indistinguishable from `vec![0.0; len]`;
    /// only its provenance differs.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        self.ensure_classes();
        let class = size_class(len);
        match self.f32_pool[class].pop() {
            Some(mut v) => {
                self.reused += 1;
                self.resident_bytes = self
                    .resident_bytes
                    .saturating_sub((v.capacity() * 4) as u64);
                v.clear();
                v.resize(len, 0.0);
                v
            }
            None => {
                self.created += 1;
                let mut v = Vec::with_capacity(len.max(1).next_power_of_two());
                v.resize(len, 0.0);
                v
            }
        }
    }

    /// Checks out a zero-filled `u32` buffer of exactly `len` elements
    /// (index streams).
    pub fn take_u32(&mut self, len: usize) -> Vec<u32> {
        self.ensure_classes();
        let class = size_class(len);
        match self.u32_pool[class].pop() {
            Some(mut v) => {
                self.reused += 1;
                self.resident_bytes = self
                    .resident_bytes
                    .saturating_sub((v.capacity() * 4) as u64);
                v.clear();
                v.resize(len, 0);
                v
            }
            None => {
                self.created += 1;
                let mut v = Vec::with_capacity(len.max(1).next_power_of_two());
                v.resize(len, 0);
                v
            }
        }
    }

    /// Returns an `f32` buffer to the pool.
    pub fn give(&mut self, v: Vec<f32>) {
        if v.capacity() == 0 {
            return;
        }
        self.ensure_classes();
        let class = size_class(v.capacity());
        self.resident_bytes += (v.capacity() * 4) as u64;
        self.peak_resident_bytes = self.peak_resident_bytes.max(self.resident_bytes);
        self.f32_pool[class].push(v);
    }

    /// Returns a `u32` buffer to the pool.
    pub fn give_u32(&mut self, v: Vec<u32>) {
        if v.capacity() == 0 {
            return;
        }
        self.ensure_classes();
        let class = size_class(v.capacity());
        self.resident_bytes += (v.capacity() * 4) as u64;
        self.peak_resident_bytes = self.peak_resident_bytes.max(self.resident_bytes);
        self.u32_pool[class].push(v);
    }

    /// Checks out a zero tensor of the given shape, backed by a pooled
    /// buffer.
    pub fn take_tensor(&mut self, dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec(self.take(n), dims)
    }

    /// Returns a tensor's backing buffer to the pool.
    pub fn recycle(&mut self, t: Tensor) {
        self.give(t.into_vec());
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            buffers_created: self.created,
            buffers_reused: self.reused,
            resident_bytes: self.resident_bytes,
            peak_resident_bytes: self.peak_resident_bytes,
        }
    }

    /// Resets the created/reused counters (pooled buffers are kept).
    pub fn reset_counters(&mut self) {
        self.created = 0;
        self.reused = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_like_fresh_allocation() {
        let mut ws = Workspace::new();
        let mut v = ws.take(10);
        assert_eq!(v, vec![0.0; 10]);
        v.iter_mut().for_each(|x| *x = 7.0);
        ws.give(v);
        // Same size class: must come back zeroed despite the dirty write.
        let v2 = ws.take(10);
        assert_eq!(v2, vec![0.0; 10]);
    }

    #[test]
    fn counters_track_create_and_reuse() {
        let mut ws = Workspace::new();
        let a = ws.take(100);
        let b = ws.take(100);
        assert_eq!(ws.stats().buffers_created, 2);
        assert_eq!(ws.stats().buffers_reused, 0);
        ws.give(a);
        ws.give(b);
        assert!(ws.stats().resident_bytes >= 2 * 100 * 4);
        let _c = ws.take(100);
        let _d = ws.take(128); // same power-of-two class as 100
        let s = ws.stats();
        assert_eq!(s.buffers_created, 2);
        assert_eq!(s.buffers_reused, 2);
        assert!(s.peak_resident_bytes >= s.resident_bytes);
    }

    #[test]
    fn size_classes_separate_small_and_large() {
        let mut ws = Workspace::new();
        let small = ws.take(4);
        ws.give(small);
        // A much larger request must not receive the small buffer.
        let large = ws.take(1000);
        assert_eq!(large.len(), 1000);
        assert_eq!(ws.stats().buffers_created, 2);
    }

    #[test]
    fn tensor_roundtrip_recycles_storage() {
        let mut ws = Workspace::new();
        let t = ws.take_tensor(&[3, 4]);
        assert_eq!(t.dims(), &[3, 4]);
        ws.recycle(t);
        let t2 = ws.take_tensor(&[4, 3]);
        assert_eq!(ws.stats().buffers_reused, 1);
        assert!(t2.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn u32_streams_pool_independently() {
        let mut ws = Workspace::new();
        let s = ws.take_u32(16);
        ws.give_u32(s);
        let s2 = ws.take_u32(9);
        assert_eq!(s2, vec![0u32; 9]);
        let st = ws.stats();
        assert_eq!((st.buffers_created, st.buffers_reused), (1, 1));
    }

    #[test]
    fn merge_sums_counts_and_maxes_peak() {
        let a = WorkspaceStats {
            buffers_created: 1,
            buffers_reused: 2,
            resident_bytes: 10,
            peak_resident_bytes: 50,
        };
        let b = WorkspaceStats {
            buffers_created: 3,
            buffers_reused: 4,
            resident_bytes: 20,
            peak_resident_bytes: 40,
        };
        let m = a.merge(&b);
        assert_eq!(m.buffers_created, 4);
        assert_eq!(m.buffers_reused, 6);
        assert_eq!(m.resident_bytes, 30);
        assert_eq!(m.peak_resident_bytes, 50);
        assert!((m.reuse_ratio() - 0.6).abs() < 1e-12);
    }
}
