//! Dense tensor library with reverse-mode automatic differentiation.
//!
//! This crate is the numeric substrate of the WiseGraph reproduction. It
//! provides:
//!
//! - [`Tensor`]: a dense, row-major `f32` tensor of arbitrary rank;
//! - eager operations (matrix multiply, element-wise math, row gather /
//!   scatter-add, segment softmax) in [`ops`];
//! - a tape-based reverse-mode autograd engine in [`autograd`] used by the
//!   trainable GNN models for the paper's accuracy experiments (Figure 14);
//! - parameter initializers in [`init`] and optimizers in [`optim`].
//!
//! The eager operations are deliberately written as straightforward loops:
//! they double as the reference implementations against which the composed
//! micro-kernels in `wisegraph-kernels` are validated.
//!
//! # Examples
//!
//! ```
//! use wisegraph_tensor::{Tape, Tensor};
//!
//! let tape = Tape::new();
//! let x = tape.input(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
//! let w = tape.param(Tensor::from_vec(vec![3.0, 4.0], &[2, 1]));
//! let y = tape.matmul(x, w);
//! let loss = tape.sum(y);
//! tape.backward(loss);
//! assert_eq!(tape.grad(w).unwrap().data(), &[1.0, 2.0]);
//! ```

pub mod autograd;
pub mod init;
pub mod ops;
pub mod optim;
pub mod shape;
pub mod tensor;
pub mod workspace;

pub use autograd::{Tape, Var};
pub use init::{kaiming_uniform, xavier_uniform, zeros_like};
pub use optim::{Adam, Optimizer, Sgd};
pub use shape::Shape;
pub use tensor::Tensor;
pub use workspace::Workspace;
