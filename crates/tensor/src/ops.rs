//! Eager tensor operations.
//!
//! These are the reference implementations used both directly by the autograd
//! engine and as ground truth for the composed micro-kernels in
//! `wisegraph-kernels`. Every hot operation exists in two forms: an `_into`
//! variant that writes into a caller-provided buffer (a [`crate::Workspace`]
//! slice, a reused accumulator, …) and an allocating wrapper that creates the
//! output and delegates. The wrappers and the `_into` variants run identical
//! floating-point operations in identical order, so workspace-based execution
//! is bit-identical to the allocating path.
//!
//! `_into` variants expect `out` to be zero-filled (as `vec![0.0; n]` or
//! `Workspace::take` provide); operations that accumulate rely on it.

use crate::tensor::Tensor;

/// Computes `a @ b` into a zeroed `out` buffer of `m * n` elements.
///
/// # Panics
///
/// Panics if the inner dimensions do not match, either input is not rank-2,
/// or `out` has the wrong length.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be rank-2");
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be rank-2");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");
    assert_eq!(out.len(), m * n, "matmul output buffer length mismatch");
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        for p in 0..k {
            let av = ad[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Computes the matrix product `a @ b` of two rank-2 tensors.
///
/// # Panics
///
/// Panics if the inner dimensions do not match or either input is not rank-2.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be rank-2");
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be rank-2");
    let (m, n) = (a.dims()[0], b.dims()[1]);
    let mut out = vec![0.0f32; m * n];
    matmul_into(a, b, &mut out);
    Tensor::from_vec(out, &[m, n])
}

/// Computes `aᵀ @ b` into a zeroed `out` buffer of `k * n` elements.
///
/// # Panics
///
/// Panics if the leading dimensions do not match, either input is not
/// rank-2, or `out` has the wrong length.
pub fn matmul_at_b_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    assert_eq!(a.shape().rank(), 2, "matmul_at_b lhs must be rank-2");
    assert_eq!(b.shape().rank(), 2, "matmul_at_b rhs must be rank-2");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (m2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(m, m2, "matmul_at_b leading dimensions differ: {m} vs {m2}");
    assert_eq!(out.len(), k * n, "matmul_at_b output buffer length mismatch");
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let brow = &bd[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Computes `aᵀ @ b` without materializing the transpose.
///
/// # Panics
///
/// Panics if the leading dimensions do not match or either input is not
/// rank-2.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_at_b lhs must be rank-2");
    assert_eq!(b.shape().rank(), 2, "matmul_at_b rhs must be rank-2");
    let (k, n) = (a.dims()[1], b.dims()[1]);
    let mut out = vec![0.0f32; k * n];
    matmul_at_b_into(a, b, &mut out);
    Tensor::from_vec(out, &[k, n])
}

/// Computes `a @ bᵀ` into an `out` buffer of `m * n` elements (every
/// element is overwritten).
///
/// # Panics
///
/// Panics if the trailing dimensions do not match, either input is not
/// rank-2, or `out` has the wrong length.
pub fn matmul_a_bt_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    assert_eq!(a.shape().rank(), 2, "matmul_a_bt lhs must be rank-2");
    assert_eq!(b.shape().rank(), 2, "matmul_a_bt rhs must be rank-2");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_a_bt trailing dimensions differ: {k} vs {k2}");
    assert_eq!(out.len(), m * n, "matmul_a_bt output buffer length mismatch");
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
}

/// Computes `a @ bᵀ` without materializing the transpose.
///
/// # Panics
///
/// Panics if the trailing dimensions do not match or either input is not
/// rank-2.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_a_bt lhs must be rank-2");
    assert_eq!(b.shape().rank(), 2, "matmul_a_bt rhs must be rank-2");
    let (m, n) = (a.dims()[0], b.dims()[0]);
    let mut out = vec![0.0f32; m * n];
    matmul_a_bt_into(a, b, &mut out);
    Tensor::from_vec(out, &[m, n])
}

fn zip_map_into(a: &Tensor, b: &Tensor, out: &mut [f32], f: impl Fn(f32, f32) -> f32) {
    assert!(
        a.shape().same_as(b.shape()),
        "element-wise op shape mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    assert_eq!(out.len(), a.numel(), "element-wise output buffer mismatch");
    for (o, (&x, &y)) in out.iter_mut().zip(a.data().iter().zip(b.data().iter())) {
        *o = f(x, y);
    }
}

fn zip_map(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    let mut out = vec![0.0f32; a.numel()];
    zip_map_into(a, b, &mut out, f);
    Tensor::from_vec(out, a.dims())
}

/// Element-wise addition into `out` (every element is overwritten).
///
/// # Panics
///
/// Panics if the shapes differ or `out` has the wrong length.
pub fn add_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    zip_map_into(a, b, out, |x, y| x + y);
}

/// Element-wise addition.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    zip_map(a, b, |x, y| x + y)
}

/// In-place element-wise accumulation: `acc += other`.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn add_assign(acc: &mut Tensor, other: &Tensor) {
    assert!(
        acc.shape().same_as(other.shape()),
        "element-wise op shape mismatch: {} vs {}",
        acc.shape(),
        other.shape()
    );
    for (o, &x) in acc.data_mut().iter_mut().zip(other.data().iter()) {
        *o += x;
    }
}

/// Element-wise subtraction.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    zip_map(a, b, |x, y| x - y)
}

/// Element-wise multiplication into `out` (every element is overwritten).
///
/// # Panics
///
/// Panics if the shapes differ or `out` has the wrong length.
pub fn mul_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    zip_map_into(a, b, out, |x, y| x * y);
}

/// Element-wise multiplication.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    zip_map(a, b, |x, y| x * y)
}

/// Multiplies every element by a scalar, writing into `out`.
///
/// # Panics
///
/// Panics if `out` has the wrong length.
pub fn scale_into(a: &Tensor, s: f32, out: &mut [f32]) {
    map_into(a, |x| x * s, out);
}

/// Multiplies every element by a scalar.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    map(a, |x| x * s)
}

/// Applies a unary function element-wise, writing into `out` (every element
/// is overwritten).
///
/// # Panics
///
/// Panics if `out` has the wrong length.
pub fn map_into(a: &Tensor, f: impl Fn(f32) -> f32, out: &mut [f32]) {
    assert_eq!(out.len(), a.numel(), "map output buffer length mismatch");
    for (o, &x) in out.iter_mut().zip(a.data().iter()) {
        *o = f(x);
    }
}

/// Applies a unary function element-wise.
pub fn map(a: &Tensor, f: impl Fn(f32) -> f32) -> Tensor {
    let mut out = vec![0.0f32; a.numel()];
    map_into(a, f, &mut out);
    Tensor::from_vec(out, a.dims())
}

/// Rectified linear unit into `out`: `max(x, 0)`.
pub fn relu_into(a: &Tensor, out: &mut [f32]) {
    map_into(a, |x| x.max(0.0), out);
}

/// Rectified linear unit: `max(x, 0)`.
pub fn relu(a: &Tensor) -> Tensor {
    map(a, |x| x.max(0.0))
}

/// Leaky ReLU with the given negative slope, into `out`.
pub fn leaky_relu_into(a: &Tensor, slope: f32, out: &mut [f32]) {
    map_into(a, |x| if x >= 0.0 { x } else { slope * x }, out);
}

/// Leaky ReLU with the given negative slope.
pub fn leaky_relu(a: &Tensor, slope: f32) -> Tensor {
    map(a, |x| if x >= 0.0 { x } else { slope * x })
}

/// Logistic sigmoid into `out`.
pub fn sigmoid_into(a: &Tensor, out: &mut [f32]) {
    map_into(a, |x| 1.0 / (1.0 + (-x).exp()), out);
}

/// Logistic sigmoid.
pub fn sigmoid(a: &Tensor) -> Tensor {
    map(a, |x| 1.0 / (1.0 + (-x).exp()))
}

/// Hyperbolic tangent into `out`.
pub fn tanh_into(a: &Tensor, out: &mut [f32]) {
    map_into(a, f32::tanh, out);
}

/// Hyperbolic tangent.
pub fn tanh(a: &Tensor) -> Tensor {
    map(a, f32::tanh)
}

/// Adds a rank-1 bias to every row of a rank-2 tensor.
///
/// # Panics
///
/// Panics if `x` is not rank-2, `bias` is not rank-1, or the widths differ.
pub fn add_bias(x: &Tensor, bias: &Tensor) -> Tensor {
    let mut out = vec![0.0f32; x.numel()];
    add_bias_into(x, bias, &mut out);
    Tensor::from_vec(out, x.dims())
}

/// Adds a rank-1 bias to every row of a rank-2 tensor, writing into `out`
/// (every element is overwritten).
///
/// # Panics
///
/// Panics if `x` is not rank-2, `bias` is not rank-1, the widths differ, or
/// `out` has the wrong length.
pub fn add_bias_into(x: &Tensor, bias: &Tensor, out: &mut [f32]) {
    assert_eq!(x.shape().rank(), 2, "add_bias input must be rank-2");
    assert_eq!(bias.shape().rank(), 1, "add_bias bias must be rank-1");
    let (m, n) = (x.dims()[0], x.dims()[1]);
    assert_eq!(n, bias.dims()[0], "bias width mismatch");
    assert_eq!(out.len(), m * n, "add_bias output buffer length mismatch");
    let bd = bias.data();
    out.copy_from_slice(x.data());
    for i in 0..m {
        for j in 0..n {
            out[i * n + j] += bd[j];
        }
    }
}

/// Sums all elements, producing a scalar tensor.
pub fn sum(a: &Tensor) -> Tensor {
    Tensor::scalar(a.data().iter().sum())
}

/// Averages all elements, producing a scalar tensor.
pub fn mean(a: &Tensor) -> Tensor {
    Tensor::scalar(a.data().iter().sum::<f32>() / a.numel() as f32)
}

/// Sums each column of a rank-2 tensor, producing a rank-1 tensor.
///
/// # Panics
///
/// Panics if `x` is not rank-2.
pub fn sum_rows(x: &Tensor) -> Tensor {
    assert_eq!(x.shape().rank(), 2, "sum_rows input must be rank-2");
    let n = x.dims()[1];
    let mut out = vec![0.0f32; n];
    sum_rows_into(x, &mut out);
    Tensor::from_vec(out, &[n])
}

/// Sums each column of a rank-2 tensor into a zeroed rank-1 `out` buffer.
///
/// # Panics
///
/// Panics if `x` is not rank-2 or `out` has the wrong length.
pub fn sum_rows_into(x: &Tensor, out: &mut [f32]) {
    assert_eq!(x.shape().rank(), 2, "sum_rows input must be rank-2");
    let (m, n) = (x.dims()[0], x.dims()[1]);
    assert_eq!(out.len(), n, "sum_rows output buffer length mismatch");
    for row in x.data().chunks_exact(n).take(m) {
        for (o, v) in out.iter_mut().zip(row) {
            *o += v;
        }
    }
}

/// Row-wise numerically stable softmax of a rank-2 tensor.
///
/// # Panics
///
/// Panics if `x` is not rank-2.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let mut out = vec![0.0f32; x.numel()];
    softmax_rows_into(x, &mut out);
    Tensor::from_vec(out, x.dims())
}

/// Row-wise numerically stable softmax, writing into `out` (every element
/// is overwritten).
///
/// # Panics
///
/// Panics if `x` is not rank-2 or `out` has the wrong length.
pub fn softmax_rows_into(x: &Tensor, out: &mut [f32]) {
    assert_eq!(x.shape().rank(), 2, "softmax_rows input must be rank-2");
    let (m, n) = (x.dims()[0], x.dims()[1]);
    assert_eq!(out.len(), m * n, "softmax_rows output buffer length mismatch");
    for i in 0..m {
        let row = x.row(i);
        let maxv = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for (j, &v) in row.iter().enumerate() {
            let e = (v - maxv).exp();
            out[i * n + j] = e;
            denom += e;
        }
        for j in 0..n {
            out[i * n + j] /= denom;
        }
    }
}

/// Row-wise log-softmax of a rank-2 tensor.
///
/// # Panics
///
/// Panics if `x` is not rank-2.
pub fn log_softmax_rows(x: &Tensor) -> Tensor {
    let mut out = vec![0.0f32; x.numel()];
    log_softmax_rows_into(x, &mut out);
    Tensor::from_vec(out, x.dims())
}

/// Row-wise log-softmax, writing into `out` (every element is overwritten).
///
/// # Panics
///
/// Panics if `x` is not rank-2 or `out` has the wrong length.
pub fn log_softmax_rows_into(x: &Tensor, out: &mut [f32]) {
    assert_eq!(x.shape().rank(), 2, "log_softmax_rows input must be rank-2");
    let (m, n) = (x.dims()[0], x.dims()[1]);
    assert_eq!(out.len(), m * n, "log_softmax_rows output buffer mismatch");
    for i in 0..m {
        let row = x.row(i);
        let maxv = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = row.iter().map(|&v| (v - maxv).exp()).sum::<f32>().ln() + maxv;
        for (j, &v) in row.iter().enumerate() {
            out[i * n + j] = v - lse;
        }
    }
}

/// Gathers rows of `x` by index: `out[i, :] = x[idx[i], :]`.
///
/// This is the *indexing operation* of the paper (Figure 2b): it moves vertex
/// embeddings along edges.
///
/// # Panics
///
/// Panics if `x` is not rank-2 or any index is out of bounds.
pub fn gather_rows(x: &Tensor, idx: &[u32]) -> Tensor {
    assert_eq!(x.shape().rank(), 2, "gather_rows input must be rank-2");
    let n = x.dims()[1];
    let mut out = vec![0.0f32; idx.len() * n];
    gather_rows_into(x, idx, &mut out);
    Tensor::from_vec(out, &[idx.len(), n])
}

/// Gathers rows of `x` by index into `out` (every element is overwritten):
/// `out[i, :] = x[idx[i], :]`.
///
/// # Panics
///
/// Panics if `x` is not rank-2, any index is out of bounds, or `out` has
/// the wrong length.
pub fn gather_rows_into(x: &Tensor, idx: &[u32], out: &mut [f32]) {
    assert_eq!(x.shape().rank(), 2, "gather_rows input must be rank-2");
    let (m, n) = (x.dims()[0], x.dims()[1]);
    assert_eq!(out.len(), idx.len() * n, "gather_rows output buffer mismatch");
    for (i, &r) in idx.iter().enumerate() {
        let r = r as usize;
        assert!(r < m, "gather index {r} out of bounds for {m} rows");
        out[i * n..(i + 1) * n].copy_from_slice(x.row(r));
    }
}

/// Scatter-adds rows of `src` into a zeroed `[rows, f]` output:
/// `out[idx[i], :] += src[i, :]`.
///
/// This is the reduction half of the paper's `Index-add` operation.
///
/// # Panics
///
/// Panics if `src` is not rank-2, the index list length differs from the
/// number of source rows, or any index is out of bounds.
pub fn index_add_rows(rows: usize, src: &Tensor, idx: &[u32]) -> Tensor {
    assert_eq!(src.shape().rank(), 2, "index_add_rows src must be rank-2");
    let n = src.dims()[1];
    let mut out = vec![0.0f32; rows * n];
    index_add_rows_into(rows, src, idx, &mut out);
    Tensor::from_vec(out, &[rows, n])
}

/// Scatter-adds rows of `src` into a zeroed (or partially accumulated)
/// `[rows, f]` buffer: `out[idx[i], :] += src[i, :]`.
///
/// # Panics
///
/// Panics if `src` is not rank-2, the index list length differs from the
/// number of source rows, any index is out of bounds, or `out` has the
/// wrong length.
pub fn index_add_rows_into(rows: usize, src: &Tensor, idx: &[u32], out: &mut [f32]) {
    assert_eq!(src.shape().rank(), 2, "index_add_rows src must be rank-2");
    assert_eq!(
        src.dims()[0],
        idx.len(),
        "index_add_rows: {} source rows but {} indices",
        src.dims()[0],
        idx.len()
    );
    let n = src.dims()[1];
    assert_eq!(out.len(), rows * n, "index_add_rows output buffer mismatch");
    for (i, &r) in idx.iter().enumerate() {
        let r = r as usize;
        assert!(r < rows, "scatter index {r} out of bounds for {rows} rows");
        let srow = src.row(i);
        let orow = &mut out[r * n..(r + 1) * n];
        for (o, &s) in orow.iter_mut().zip(srow.iter()) {
            *o += s;
        }
    }
}

/// Scales each row `i` of a rank-2 tensor by `s[i]`.
///
/// # Panics
///
/// Panics if `x` is not rank-2, `s` is not rank-1, or the row counts differ.
pub fn scale_rows(x: &Tensor, s: &Tensor) -> Tensor {
    let mut out = vec![0.0f32; x.numel()];
    scale_rows_into(x, s, &mut out);
    Tensor::from_vec(out, x.dims())
}

/// Scales each row `i` of a rank-2 tensor by `s[i]`, writing into `out`
/// (every element is overwritten).
///
/// # Panics
///
/// Panics if `x` is not rank-2, `s` is not rank-1, the row counts differ,
/// or `out` has the wrong length.
pub fn scale_rows_into(x: &Tensor, s: &Tensor, out: &mut [f32]) {
    assert_eq!(x.shape().rank(), 2, "scale_rows input must be rank-2");
    assert_eq!(s.shape().rank(), 1, "scale_rows scales must be rank-1");
    let (m, n) = (x.dims()[0], x.dims()[1]);
    assert_eq!(m, s.dims()[0], "scale_rows row-count mismatch");
    assert_eq!(out.len(), m * n, "scale_rows output buffer length mismatch");
    let sd = s.data();
    out.copy_from_slice(x.data());
    for i in 0..m {
        for v in &mut out[i * n..(i + 1) * n] {
            *v *= sd[i];
        }
    }
}

/// Softmax over segments: entries sharing `seg[i]` are normalized together.
///
/// `scores` is rank-1 with one value per edge; `seg` assigns every edge to a
/// segment (typically the destination vertex), and `num_segments` is the
/// number of distinct segments. Used by GAT's per-destination attention
/// normalization.
///
/// # Panics
///
/// Panics if `scores` is not rank-1, lengths differ, or a segment id is out
/// of bounds.
pub fn segment_softmax(scores: &Tensor, seg: &[u32], num_segments: usize) -> Tensor {
    let mut out = vec![0.0f32; scores.numel()];
    segment_softmax_into(scores, seg, num_segments, &mut out);
    Tensor::from_vec(out, &[scores.numel()])
}

/// Softmax over segments, writing into `out` (every element is
/// overwritten). See [`segment_softmax`].
///
/// # Panics
///
/// Panics if `scores` is not rank-1, lengths differ, a segment id is out of
/// bounds, or `out` has the wrong length.
pub fn segment_softmax_into(
    scores: &Tensor,
    seg: &[u32],
    num_segments: usize,
    out: &mut [f32],
) {
    assert_eq!(scores.shape().rank(), 1, "segment_softmax scores rank-1");
    assert_eq!(scores.numel(), seg.len(), "segment_softmax length mismatch");
    assert_eq!(out.len(), seg.len(), "segment_softmax output buffer mismatch");
    let sd = scores.data();
    let mut maxv = vec![f32::NEG_INFINITY; num_segments];
    for (&v, &s) in sd.iter().zip(seg.iter()) {
        let s = s as usize;
        assert!(s < num_segments, "segment id {s} out of bounds");
        if v > maxv[s] {
            maxv[s] = v;
        }
    }
    let mut denom = vec![0.0f32; num_segments];
    for (i, (&v, &s)) in sd.iter().zip(seg.iter()).enumerate() {
        let e = (v - maxv[s as usize]).exp();
        out[i] = e;
        denom[s as usize] += e;
    }
    for (o, &s) in out.iter_mut().zip(seg.iter()) {
        *o /= denom[s as usize];
    }
}

/// Concatenates two rank-2 tensors along the column dimension.
///
/// # Panics
///
/// Panics if either input is not rank-2 or the row counts differ.
pub fn concat_cols(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "concat_cols lhs must be rank-2");
    assert_eq!(b.shape().rank(), 2, "concat_cols rhs must be rank-2");
    let (m, n1, n2) = (a.dims()[0], a.dims()[1], b.dims()[1]);
    let mut out = vec![0.0f32; m * (n1 + n2)];
    concat_cols_into(a, b, &mut out);
    Tensor::from_vec(out, &[m, n1 + n2])
}

/// Concatenates two rank-2 tensors along the column dimension into `out`
/// (every element is overwritten).
///
/// # Panics
///
/// Panics if either input is not rank-2, the row counts differ, or `out`
/// has the wrong length.
pub fn concat_cols_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    assert_eq!(a.shape().rank(), 2, "concat_cols lhs must be rank-2");
    assert_eq!(b.shape().rank(), 2, "concat_cols rhs must be rank-2");
    let (m, n1) = (a.dims()[0], a.dims()[1]);
    let (m2, n2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(m, m2, "concat_cols row-count mismatch");
    assert_eq!(out.len(), m * (n1 + n2), "concat_cols output buffer mismatch");
    for i in 0..m {
        out[i * (n1 + n2)..i * (n1 + n2) + n1].copy_from_slice(a.row(i));
        out[i * (n1 + n2) + n1..(i + 1) * (n1 + n2)].copy_from_slice(b.row(i));
    }
}

/// Mean cross-entropy between row-wise logits and integer class labels.
///
/// Returns `(loss, dlogits)` where `dlogits` is the gradient of the mean loss
/// with respect to the logits (softmax minus one-hot, divided by the batch).
///
/// # Panics
///
/// Panics if `logits` is not rank-2, the label count differs from the row
/// count, or a label is out of range.
pub fn cross_entropy_with_grad(logits: &Tensor, labels: &[u32]) -> (f32, Tensor) {
    assert_eq!(logits.shape().rank(), 2, "cross_entropy logits rank-2");
    let (m, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(m, labels.len(), "cross_entropy label-count mismatch");
    let logp = log_softmax_rows(logits);
    let mut loss = 0.0f32;
    let mut grad = softmax_rows(logits).into_vec();
    for (i, &y) in labels.iter().enumerate() {
        let y = y as usize;
        assert!(y < c, "label {y} out of range for {c} classes");
        loss -= logp.at(&[i, y]);
        grad[i * c + y] -= 1.0;
    }
    let inv_m = 1.0 / m as f32;
    for g in &mut grad {
        *g *= inv_m;
    }
    (loss * inv_m, Tensor::from_vec(grad, &[m, c]))
}

/// Returns the index of the maximum element of each row.
///
/// # Panics
///
/// Panics if `x` is not rank-2.
pub fn argmax_rows(x: &Tensor) -> Vec<u32> {
    assert_eq!(x.shape().rank(), 2, "argmax_rows input must be rank-2");
    let m = x.dims()[0];
    (0..m)
        .map(|i| {
            let row = x.row(i);
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            best as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(data: &[f32], r: usize, c: usize) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[r, c])
    }

    #[test]
    fn matmul_small() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = t2(&[5.0, 6.0, 7.0, 8.0], 2, 2);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_transposed_variants_agree() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let b = t2(&[1.0, 0.0, 2.0, 1.0, 0.0, 3.0], 2, 3);
        // aᵀ b computed directly vs. by materializing the transpose.
        let at = Tensor::from_vec(
            vec![a.at(&[0, 0]), a.at(&[1, 0]), a.at(&[0, 1]), a.at(&[1, 1]), a.at(&[0, 2]), a.at(&[1, 2])],
            &[3, 2],
        );
        assert!(matmul_at_b(&a, &b).allclose(&matmul(&at, &b), 1e-6));
        // a bᵀ likewise.
        let bt = Tensor::from_vec(
            vec![b.at(&[0, 0]), b.at(&[1, 0]), b.at(&[0, 1]), b.at(&[1, 1]), b.at(&[0, 2]), b.at(&[1, 2])],
            &[3, 2],
        );
        assert!(matmul_a_bt(&a, &b).allclose(&matmul(&a, &bt), 1e-6));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dim_mismatch() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn elementwise_ops() {
        let a = t2(&[1.0, -2.0, 3.0, -4.0], 2, 2);
        let b = t2(&[1.0, 1.0, 1.0, 1.0], 2, 2);
        assert_eq!(add(&a, &b).data(), &[2.0, -1.0, 4.0, -3.0]);
        assert_eq!(sub(&a, &b).data(), &[0.0, -3.0, 2.0, -5.0]);
        assert_eq!(mul(&a, &a).data(), &[1.0, 4.0, 9.0, 16.0]);
        assert_eq!(scale(&a, 2.0).data(), &[2.0, -4.0, 6.0, -8.0]);
        assert_eq!(relu(&a).data(), &[1.0, 0.0, 3.0, 0.0]);
        assert_eq!(leaky_relu(&a, 0.1).data(), &[1.0, -0.2, 3.0, -0.4]);
    }

    #[test]
    fn activations_bounded() {
        let a = t2(&[-10.0, 0.0, 10.0, 100.0], 2, 2);
        let s = sigmoid(&a);
        assert!(s.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!((s.at(&[0, 1]) - 0.5).abs() < 1e-6);
        let t = tanh(&a);
        assert!(t.data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn bias_and_reductions() {
        let x = t2(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        assert_eq!(add_bias(&x, &b).data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(sum(&x).item(), 10.0);
        assert_eq!(mean(&x).item(), 2.5);
        assert_eq!(sum_rows(&x).data(), &[4.0, 6.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let x = t2(&[1.0, 2.0, 3.0, 1000.0, 1001.0, 999.0], 2, 3);
        let s = softmax_rows(&x);
        for i in 0..2 {
            let rowsum: f32 = s.row(i).iter().sum();
            assert!((rowsum - 1.0).abs() < 1e-5);
        }
        assert!(s.all_finite(), "must be stable for large inputs");
    }

    #[test]
    fn log_softmax_matches_softmax() {
        let x = t2(&[0.5, -1.0, 2.0, 0.0, 0.0, 0.0], 2, 3);
        let ls = log_softmax_rows(&x);
        let s = softmax_rows(&x);
        for (a, b) in ls.data().iter().zip(s.data().iter()) {
            assert!((a.exp() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn gather_and_scatter_roundtrip() {
        let x = t2(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2);
        let g = gather_rows(&x, &[2, 0, 2]);
        assert_eq!(g.data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let s = index_add_rows(3, &g, &[2, 0, 2]);
        assert_eq!(s.row(0), &[1.0, 2.0]);
        assert_eq!(s.row(1), &[0.0, 0.0]);
        assert_eq!(s.row(2), &[10.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_oob() {
        gather_rows(&Tensor::zeros(&[2, 2]), &[2]);
    }

    #[test]
    fn scale_rows_basic() {
        let x = t2(&[1.0, 1.0, 2.0, 2.0], 2, 2);
        let s = Tensor::from_vec(vec![0.5, 2.0], &[2]);
        assert_eq!(scale_rows(&x, &s).data(), &[0.5, 0.5, 4.0, 4.0]);
    }

    #[test]
    fn segment_softmax_normalizes_per_segment() {
        let scores = Tensor::from_vec(vec![1.0, 1.0, 2.0, 3.0, 100.0], &[5]);
        let seg = [0, 0, 1, 1, 1];
        let s = segment_softmax(&scores, &seg, 2);
        assert!((s.data()[0] + s.data()[1] - 1.0).abs() < 1e-5);
        assert!((s.data()[2] + s.data()[3] + s.data()[4] - 1.0).abs() < 1e-5);
        assert!(s.all_finite());
        assert!((s.data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn concat_cols_basic() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = t2(&[9.0, 8.0], 2, 1);
        let c = concat_cols(&a, &b);
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.row(0), &[1.0, 2.0, 9.0]);
        assert_eq!(c.row(1), &[3.0, 4.0, 8.0]);
    }

    #[test]
    fn cross_entropy_perfect_prediction() {
        // Very confident correct logits → loss near zero, gradient near zero.
        let logits = t2(&[100.0, 0.0, 0.0, 100.0], 2, 2);
        let (loss, grad) = cross_entropy_with_grad(&logits, &[0, 1]);
        assert!(loss < 1e-4);
        assert!(grad.data().iter().all(|&g| g.abs() < 1e-4));
    }

    #[test]
    fn cross_entropy_uniform() {
        let logits = Tensor::zeros(&[1, 4]);
        let (loss, grad) = cross_entropy_with_grad(&logits, &[2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        // Gradient: softmax (0.25) minus one-hot.
        assert!((grad.at(&[0, 2]) + 0.75).abs() < 1e-5);
        assert!((grad.at(&[0, 0]) - 0.25).abs() < 1e-5);
    }

    #[test]
    fn argmax_rows_basic() {
        let x = t2(&[0.1, 0.9, 0.0, 5.0, 4.0, 3.0], 2, 3);
        assert_eq!(argmax_rows(&x), vec![1, 0]);
    }
}
