//! Tape-based reverse-mode automatic differentiation.
//!
//! The [`Tape`] records every operation applied to [`Var`] handles; calling
//! [`Tape::backward`] propagates gradients from a scalar loss back to every
//! recorded parameter. A fresh tape is built for every training iteration,
//! while the parameter tensors themselves live in the model and are fed in
//! via [`Tape::param`].
//!
//! Each tape owns a [`Workspace`]: node outputs are written into pooled
//! buffers, and [`Tape::finish`] recycles every node value and gradient back
//! into the pool so the next iteration's tape (built with
//! [`Tape::with_workspace`]) allocates almost nothing. Because pooled
//! buffers are zero-filled on checkout and all ops route through the same
//! `_into` kernels, a workspace-fed tape is bit-identical to a fresh one.

use crate::ops;
use crate::tensor::Tensor;
use crate::workspace::Workspace;
use wisegraph_obs::Counters;
use std::cell::RefCell;

/// A handle to a node on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var {
    id: usize,
}

impl Var {
    /// Returns the node index on the owning tape.
    pub fn id(&self) -> usize {
        self.id
    }
}

type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<(usize, Tensor)>>;

struct Node {
    value: Tensor,
    backward: Option<BackwardFn>,
    is_param: bool,
}

/// A gradient tape: records operations eagerly and replays them in reverse.
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
    grads: RefCell<Vec<Option<Tensor>>>,
    ws: RefCell<Workspace>,
}

impl Tape {
    /// Creates an empty tape with an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty tape backed by an existing workspace, so node
    /// outputs reuse buffers recycled by a previous tape's [`Tape::finish`].
    pub fn with_workspace(ws: Workspace) -> Self {
        Self {
            nodes: RefCell::new(Vec::new()),
            grads: RefCell::new(Vec::new()),
            ws: RefCell::new(ws),
        }
    }

    /// Consumes the tape, recycling every node value and gradient into the
    /// workspace, and returns the workspace for the next iteration.
    pub fn finish(self) -> Workspace {
        let Tape { nodes, grads, ws } = self;
        let mut ws = ws.into_inner();
        for node in nodes.into_inner() {
            ws.recycle(node.value);
        }
        for g in grads.into_inner().into_iter().flatten() {
            ws.recycle(g);
        }
        ws
    }

    /// Snapshot of the tape workspace's reuse counters (`pool.*` keys).
    pub fn workspace_stats(&self) -> Counters {
        self.ws.borrow().stats()
    }

    /// Checks out a zeroed output tensor from the tape workspace.
    fn alloc(&self, dims: &[usize]) -> Tensor {
        self.ws.borrow_mut().take_tensor(dims)
    }

    fn push(&self, value: Tensor, backward: Option<BackwardFn>, is_param: bool) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node {
            value,
            backward,
            is_param,
        });
        Var {
            id: nodes.len() - 1,
        }
    }

    /// Records a constant input (no gradient is accumulated for it).
    pub fn input(&self, value: Tensor) -> Var {
        self.push(value, None, false)
    }

    /// Records a trainable parameter; its gradient is kept after `backward`.
    pub fn param(&self, value: Tensor) -> Var {
        self.push(value, None, true)
    }

    /// Returns a clone of the current value of `v`.
    pub fn value(&self, v: Var) -> Tensor {
        self.nodes.borrow()[v.id].value.clone()
    }

    /// Returns the gradient of the last `backward` call with respect to `v`,
    /// if one was produced.
    pub fn grad(&self, v: Var) -> Option<Tensor> {
        self.grads.borrow().get(v.id).cloned().flatten()
    }

    /// Returns the ids of all parameter nodes in recording order.
    pub fn param_ids(&self) -> Vec<usize> {
        self.nodes
            .borrow()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_param)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Returns `true` if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    // --- Recorded operations -------------------------------------------

    /// Matrix product of two rank-2 variables.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let av = self.value(a);
        let bv = self.value(b);
        assert_eq!(av.shape().rank(), 2, "matmul lhs must be rank-2");
        assert_eq!(bv.shape().rank(), 2, "matmul rhs must be rank-2");
        let mut out = self.alloc(&[av.dims()[0], bv.dims()[1]]);
        ops::matmul_into(&av, &bv, out.data_mut());
        let (aid, bid) = (a.id, b.id);
        self.push(
            out,
            Some(Box::new(move |g| {
                vec![
                    (aid, ops::matmul_a_bt(g, &bv)),
                    (bid, ops::matmul_at_b(&av, g)),
                ]
            })),
            false,
        )
    }

    /// Element-wise sum of two same-shaped variables.
    pub fn add(&self, a: Var, b: Var) -> Var {
        let mut out;
        {
            let nodes = self.nodes.borrow();
            let (av, bv) = (&nodes[a.id].value, &nodes[b.id].value);
            out = self.alloc(av.dims());
            ops::add_into(av, bv, out.data_mut());
        }
        let (aid, bid) = (a.id, b.id);
        self.push(
            out,
            Some(Box::new(move |g| {
                vec![(aid, g.clone()), (bid, g.clone())]
            })),
            false,
        )
    }

    /// Element-wise product of two same-shaped variables.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let av = self.value(a);
        let bv = self.value(b);
        let mut out = self.alloc(av.dims());
        ops::mul_into(&av, &bv, out.data_mut());
        let (aid, bid) = (a.id, b.id);
        self.push(
            out,
            Some(Box::new(move |g| {
                vec![(aid, ops::mul(g, &bv)), (bid, ops::mul(g, &av))]
            })),
            false,
        )
    }

    /// Multiplies a variable by a scalar constant.
    pub fn scale(&self, a: Var, s: f32) -> Var {
        let mut out;
        {
            let nodes = self.nodes.borrow();
            let av = &nodes[a.id].value;
            out = self.alloc(av.dims());
            ops::scale_into(av, s, out.data_mut());
        }
        let aid = a.id;
        self.push(
            out,
            Some(Box::new(move |g| vec![(aid, ops::scale(g, s))])),
            false,
        )
    }

    /// Adds a rank-1 bias to every row of a rank-2 variable.
    pub fn add_bias(&self, x: Var, bias: Var) -> Var {
        let mut out;
        {
            let nodes = self.nodes.borrow();
            let (xv, bv) = (&nodes[x.id].value, &nodes[bias.id].value);
            out = self.alloc(xv.dims());
            ops::add_bias_into(xv, bv, out.data_mut());
        }
        let (xid, bid) = (x.id, bias.id);
        self.push(
            out,
            Some(Box::new(move |g| {
                vec![(xid, g.clone()), (bid, ops::sum_rows(g))]
            })),
            false,
        )
    }

    /// Rectified linear unit.
    pub fn relu(&self, a: Var) -> Var {
        let av = self.value(a);
        let mut out = self.alloc(av.dims());
        ops::relu_into(&av, out.data_mut());
        let aid = a.id;
        self.push(
            out,
            Some(Box::new(move |g| {
                let mask = ops::map(&av, |x| if x > 0.0 { 1.0 } else { 0.0 });
                vec![(aid, ops::mul(g, &mask))]
            })),
            false,
        )
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&self, a: Var, slope: f32) -> Var {
        let av = self.value(a);
        let mut out = self.alloc(av.dims());
        ops::leaky_relu_into(&av, slope, out.data_mut());
        let aid = a.id;
        self.push(
            out,
            Some(Box::new(move |g| {
                let mask = ops::map(&av, |x| if x >= 0.0 { 1.0 } else { slope });
                vec![(aid, ops::mul(g, &mask))]
            })),
            false,
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self, a: Var) -> Var {
        let mut out;
        {
            let nodes = self.nodes.borrow();
            let av = &nodes[a.id].value;
            out = self.alloc(av.dims());
            ops::sigmoid_into(av, out.data_mut());
        }
        let outv = out.clone();
        let aid = a.id;
        self.push(
            out,
            Some(Box::new(move |g| {
                let d = ops::map(&outv, |y| y * (1.0 - y));
                vec![(aid, ops::mul(g, &d))]
            })),
            false,
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        let mut out;
        {
            let nodes = self.nodes.borrow();
            let av = &nodes[a.id].value;
            out = self.alloc(av.dims());
            ops::tanh_into(av, out.data_mut());
        }
        let outv = out.clone();
        let aid = a.id;
        self.push(
            out,
            Some(Box::new(move |g| {
                let d = ops::map(&outv, |y| 1.0 - y * y);
                vec![(aid, ops::mul(g, &d))]
            })),
            false,
        )
    }

    /// Gathers rows by index: the indexing operation of a GNN layer.
    pub fn gather_rows(&self, x: Var, idx: Vec<u32>) -> Var {
        let mut out;
        let rows;
        {
            let nodes = self.nodes.borrow();
            let xv = &nodes[x.id].value;
            assert_eq!(xv.shape().rank(), 2, "gather_rows input must be rank-2");
            rows = xv.dims()[0];
            out = self.alloc(&[idx.len(), xv.dims()[1]]);
            ops::gather_rows_into(xv, &idx, out.data_mut());
        }
        let xid = x.id;
        self.push(
            out,
            Some(Box::new(move |g| {
                vec![(xid, ops::index_add_rows(rows, g, &idx))]
            })),
            false,
        )
    }

    /// Scatter-adds rows into a `[rows, f]` output: the `Index-add` reduction.
    pub fn index_add_rows(&self, rows: usize, src: Var, idx: Vec<u32>) -> Var {
        let mut out;
        {
            let nodes = self.nodes.borrow();
            let sv = &nodes[src.id].value;
            assert_eq!(sv.shape().rank(), 2, "index_add_rows src must be rank-2");
            out = self.alloc(&[rows, sv.dims()[1]]);
            ops::index_add_rows_into(rows, sv, &idx, out.data_mut());
        }
        let sid = src.id;
        self.push(
            out,
            Some(Box::new(move |g| {
                vec![(sid, ops::gather_rows(g, &idx))]
            })),
            false,
        )
    }

    /// Scales row `i` of `x` by the *variable* scalar `s[i]` (rank-1), with
    /// gradients flowing to both operands (GAT attention weighting).
    pub fn scale_rows(&self, x: Var, s: Var) -> Var {
        let xv = self.value(x);
        let sv = self.value(s);
        let mut out = self.alloc(xv.dims());
        ops::scale_rows_into(&xv, &sv, out.data_mut());
        let (xid, sid) = (x.id, s.id);
        self.push(
            out,
            Some(Box::new(move |g| {
                // dL/dx[i] = g[i] * s[i]; dL/ds[i] = <g[i], x[i]>.
                let gx = ops::scale_rows(g, &sv);
                let m = xv.dims()[0];
                let ds: Vec<f32> = (0..m)
                    .map(|i| {
                        g.row(i)
                            .iter()
                            .zip(xv.row(i).iter())
                            .map(|(&a, &b)| a * b)
                            .sum()
                    })
                    .collect();
                vec![(xid, gx), (sid, Tensor::from_vec(ds, &[m]))]
            })),
            false,
        )
    }

    /// Scales row `i` by the constant `s[i]` (e.g. 1/degree normalization).
    pub fn scale_rows_const(&self, x: Var, s: Tensor) -> Var {
        let mut out;
        {
            let nodes = self.nodes.borrow();
            let xv = &nodes[x.id].value;
            out = self.alloc(xv.dims());
            ops::scale_rows_into(xv, &s, out.data_mut());
        }
        let xid = x.id;
        self.push(
            out,
            Some(Box::new(move |g| vec![(xid, ops::scale_rows(g, &s))])),
            false,
        )
    }

    /// Per-segment softmax of a rank-1 score vector (GAT edge attention).
    pub fn segment_softmax(&self, scores: Var, seg: Vec<u32>, num_segments: usize) -> Var {
        let mut out;
        {
            let nodes = self.nodes.borrow();
            let sv = &nodes[scores.id].value;
            out = self.alloc(&[sv.numel()]);
            ops::segment_softmax_into(sv, &seg, num_segments, out.data_mut());
        }
        let outv = out.clone();
        let sid = scores.id;
        self.push(
            out,
            Some(Box::new(move |g| {
                // dL/ds_i = y_i * (g_i - Σ_{j∈seg(i)} y_j g_j)
                let y = outv.data();
                let gd = g.data();
                let mut segdot = vec![0.0f32; num_segments];
                for (i, &s) in seg.iter().enumerate() {
                    segdot[s as usize] += y[i] * gd[i];
                }
                let grad: Vec<f32> = seg
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| y[i] * (gd[i] - segdot[s as usize]))
                    .collect();
                vec![(sid, Tensor::from_vec(grad, outv.dims()))]
            })),
            false,
        )
    }

    /// Concatenates two rank-2 variables along the column dimension.
    pub fn concat_cols(&self, a: Var, b: Var) -> Var {
        let mut out;
        let (n1, n2);
        {
            let nodes = self.nodes.borrow();
            let (av, bv) = (&nodes[a.id].value, &nodes[b.id].value);
            assert_eq!(av.shape().rank(), 2, "concat_cols lhs must be rank-2");
            assert_eq!(bv.shape().rank(), 2, "concat_cols rhs must be rank-2");
            (n1, n2) = (av.dims()[1], bv.dims()[1]);
            out = self.alloc(&[av.dims()[0], n1 + n2]);
            ops::concat_cols_into(av, bv, out.data_mut());
        }
        let (aid, bid) = (a.id, b.id);
        self.push(
            out,
            Some(Box::new(move |g| {
                let m = g.dims()[0];
                let mut ga = vec![0.0f32; m * n1];
                let mut gb = vec![0.0f32; m * n2];
                for i in 0..m {
                    let row = g.row(i);
                    ga[i * n1..(i + 1) * n1].copy_from_slice(&row[..n1]);
                    gb[i * n2..(i + 1) * n2].copy_from_slice(&row[n1..]);
                }
                vec![
                    (aid, Tensor::from_vec(ga, &[m, n1])),
                    (bid, Tensor::from_vec(gb, &[m, n2])),
                ]
            })),
            false,
        )
    }

    /// Sums all elements into a scalar.
    pub fn sum(&self, a: Var) -> Var {
        let av = self.value(a);
        let dims: Vec<usize> = av.dims().to_vec();
        let out = ops::sum(&av);
        let aid = a.id;
        self.push(
            out,
            Some(Box::new(move |g| {
                vec![(aid, Tensor::full(&dims, g.item()))]
            })),
            false,
        )
    }

    /// Averages all elements into a scalar.
    pub fn mean(&self, a: Var) -> Var {
        let av = self.value(a);
        let dims: Vec<usize> = av.dims().to_vec();
        let n = av.numel() as f32;
        let out = ops::mean(&av);
        let aid = a.id;
        self.push(
            out,
            Some(Box::new(move |g| {
                vec![(aid, Tensor::full(&dims, g.item() / n))]
            })),
            false,
        )
    }

    /// Mean cross-entropy loss over rows of `logits` against integer labels.
    pub fn cross_entropy(&self, logits: Var, labels: Vec<u32>) -> Var {
        let lv = self.value(logits);
        let (loss, dlogits) = ops::cross_entropy_with_grad(&lv, &labels);
        let lid = logits.id;
        self.push(
            Tensor::scalar(loss),
            Some(Box::new(move |g| {
                vec![(lid, ops::scale(&dlogits, g.item()))]
            })),
            false,
        )
    }

    /// Reshapes a variable (gradient is reshaped back).
    pub fn reshape(&self, a: Var, dims: &[usize]) -> Var {
        let av = self.value(a);
        let orig: Vec<usize> = av.dims().to_vec();
        let out = av.reshape(dims);
        let aid = a.id;
        self.push(
            out,
            Some(Box::new(move |g| vec![(aid, g.reshape(&orig))])),
            false,
        )
    }

    // --- Backward pass ---------------------------------------------------

    /// Runs reverse-mode differentiation from the scalar `loss` node.
    ///
    /// After this call, [`Tape::grad`] returns gradients for every node that
    /// participated in the computation of `loss`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element tensor.
    pub fn backward(&self, loss: Var) {
        let nodes = self.nodes.borrow();
        assert_eq!(
            nodes[loss.id].value.numel(),
            1,
            "backward() requires a scalar loss"
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; nodes.len()];
        grads[loss.id] = Some(Tensor::scalar(1.0));
        for id in (0..=loss.id).rev() {
            // Take the gradient out instead of cloning it; the backward
            // closure only reads it, and it is restored right after.
            let Some(g) = grads[id].take() else {
                continue;
            };
            if let Some(backward) = &nodes[id].backward {
                for (pid, pg) in backward(&g) {
                    match &mut grads[pid] {
                        Some(existing) => {
                            ops::add_assign(existing, &pg);
                            self.ws.borrow_mut().recycle(pg);
                        }
                        slot @ None => *slot = Some(pg),
                    }
                }
            }
            grads[id] = Some(g);
        }
        let old = std::mem::replace(&mut *self.grads.borrow_mut(), grads);
        let mut ws = self.ws.borrow_mut();
        for g in old.into_iter().flatten() {
            ws.recycle(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically checks d(loss)/d(param) by central differences.
    fn finite_diff_check(
        build: impl Fn(&Tape, Var) -> Var,
        param: Tensor,
        tol: f32,
    ) {
        let tape = Tape::new();
        let p = tape.param(param.clone());
        let loss = build(&tape, p);
        tape.backward(loss);
        let analytic = tape.grad(p).expect("param grad missing");

        let eps = 1e-3f32;
        for i in 0..param.numel() {
            let mut plus = param.clone();
            plus.data_mut()[i] += eps;
            let mut minus = param.clone();
            minus.data_mut()[i] -= eps;
            let tp = Tape::new();
            let lp = build(&tp, tp.param(plus));
            let tm = Tape::new();
            let lm = build(&tm, tm.param(minus));
            let numeric = (tp.value(lp).item() - tm.value(lm).item()) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() < tol * (1.0 + numeric.abs()),
                "grad[{i}]: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn matmul_gradient() {
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.3, 1.5, -0.7], &[2, 3]);
        finite_diff_check(
            |t, p| {
                let x = t.input(Tensor::from_vec(
                    vec![1.0, 2.0, -1.0, 0.5, 0.0, 1.0],
                    &[2, 3],
                ));
                let prod = t.matmul(x, t.reshape(p, &[3, 2]));
                t.sum(prod)
            },
            x.reshape(&[6]),
            1e-2,
        );
    }

    #[test]
    fn elementwise_chain_gradient() {
        let p = Tensor::from_vec(vec![0.2, -0.4, 1.1, 0.9], &[2, 2]);
        finite_diff_check(
            |t, p| {
                let s = t.sigmoid(p);
                let h = t.tanh(s);
                let r = t.leaky_relu(h, 0.2);
                t.mean(r)
            },
            p,
            1e-2,
        );
    }

    #[test]
    fn gather_scatter_gradient() {
        let p = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        finite_diff_check(
            |t, p| {
                let g = t.gather_rows(p, vec![0, 2, 2, 1]);
                let s = t.index_add_rows(2, g, vec![0, 1, 0, 1]);
                let sq = t.mul(s, s);
                t.sum(sq)
            },
            p,
            1e-2,
        );
    }

    #[test]
    fn segment_softmax_gradient() {
        let p = Tensor::from_vec(vec![0.1, 0.7, -0.3, 0.5, 0.2], &[5]);
        finite_diff_check(
            |t, p| {
                let sm = t.segment_softmax(p, vec![0, 0, 1, 1, 1], 2);
                let w = t.input(Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5, 1.5], &[5]));
                let prod = t.mul(sm, w);
                t.sum(prod)
            },
            p,
            1e-2,
        );
    }

    #[test]
    fn scale_rows_var_gradient() {
        let p = Tensor::from_vec(vec![0.5, -1.5, 2.0], &[3]);
        finite_diff_check(
            |t, p| {
                let x = t.input(Tensor::from_vec(
                    vec![1.0, 2.0, -1.0, 0.5, 3.0, -2.0],
                    &[3, 2],
                ));
                let scaled = t.scale_rows(x, p);
                let sq = t.mul(scaled, scaled);
                t.sum(sq)
            },
            p,
            1e-2,
        );
    }

    #[test]
    fn cross_entropy_gradient() {
        let p = Tensor::from_vec(vec![0.3, -0.2, 0.8, -0.5, 0.1, 0.4], &[2, 3]);
        finite_diff_check(|t, p| t.cross_entropy(p, vec![2, 0]), p, 1e-2);
    }

    #[test]
    fn bias_and_concat_gradient() {
        let p = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        finite_diff_check(
            |t, p| {
                let x = t.input(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
                let y = t.add_bias(x, p);
                let c = t.concat_cols(y, x);
                let sq = t.mul(c, c);
                t.sum(sq)
            },
            p,
            1e-2,
        );
    }

    #[test]
    fn grad_accumulates_over_reuse() {
        // p used twice: grad must be the sum of both paths.
        let tape = Tape::new();
        let p = tape.param(Tensor::from_vec(vec![3.0], &[1, 1]));
        let doubled = tape.add(p, p);
        let loss = tape.sum(doubled);
        tape.backward(loss);
        assert_eq!(tape.grad(p).unwrap().data(), &[2.0]);
    }

    #[test]
    fn unused_nodes_have_no_grad() {
        let tape = Tape::new();
        let a = tape.param(Tensor::scalar(1.0));
        let b = tape.param(Tensor::scalar(2.0));
        let loss = tape.sum(a);
        tape.backward(loss);
        assert!(tape.grad(a).is_some());
        assert!(tape.grad(b).is_none());
    }

    #[test]
    fn param_ids_in_order() {
        let tape = Tape::new();
        let a = tape.param(Tensor::scalar(0.0));
        let _x = tape.input(Tensor::scalar(0.0));
        let b = tape.param(Tensor::scalar(0.0));
        assert_eq!(tape.param_ids(), vec![a.id(), b.id()]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_requires_scalar() {
        let tape = Tape::new();
        let a = tape.param(Tensor::zeros(&[2, 2]));
        tape.backward(a);
    }
}
