//! First-order optimizers operating on flat parameter/gradient pairs.
//!
//! The GNN models own their parameter tensors; after each backward pass they
//! hand `(param, grad)` pairs to an [`Optimizer`]. Optimizers keep per-slot
//! state (e.g. Adam moments) keyed by the order in which slots are first
//! seen, so the caller must always present parameters in the same order.

use crate::ops;
use crate::tensor::Tensor;

/// A first-order gradient optimizer.
pub trait Optimizer {
    /// Applies one update step: parameters are updated in place from grads.
    ///
    /// # Panics
    ///
    /// Implementations panic if the slot count or shapes change between
    /// calls.
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]);
}

/// Stochastic gradient descent with optional L2 weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            weight_decay: 0.0,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]) {
        assert_eq!(params.len(), grads.len(), "param/grad count mismatch");
        for (p, g) in params.iter_mut().zip(grads.iter()) {
            assert!(
                p.shape().same_as(g.shape()),
                "param/grad shape mismatch: {} vs {}",
                p.shape(),
                g.shape()
            );
            for (pv, &gv) in p.data_mut().iter_mut().zip(g.data().iter()) {
                *pv -= self.lr * (gv + self.weight_decay * *pv);
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
    t: u32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the usual defaults (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]) {
        assert_eq!(params.len(), grads.len(), "param/grad count mismatch");
        if self.m.is_empty() {
            self.m = params.iter().map(|p| Tensor::zeros(p.dims())).collect();
            self.v = params.iter().map(|p| Tensor::zeros(p.dims())).collect();
        }
        assert_eq!(
            self.m.len(),
            params.len(),
            "parameter count changed between Adam steps"
        );
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, (p, g)) in params.iter_mut().zip(grads.iter()).enumerate() {
            assert!(
                p.shape().same_as(g.shape()),
                "param/grad shape mismatch at slot {i}"
            );
            let g = if self.weight_decay != 0.0 {
                ops::add(g, &ops::scale(p, self.weight_decay))
            } else {
                (*g).clone()
            };
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mv, vv), (pv, &gv)) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(p.data_mut().iter_mut().zip(g.data().iter()))
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                let mhat = *mv / bc1;
                let vhat = *vv / bc2;
                *pv -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)² from x = 0.
    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut x = Tensor::scalar(0.0);
        for _ in 0..steps {
            let g = Tensor::scalar(2.0 * (x.item() - 3.0));
            opt.step(&mut [&mut x], &[&g]);
        }
        x.item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = quadratic_descent(&mut opt, 100);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = quadratic_descent(&mut opt, 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn sgd_weight_decay_shrinks_params() {
        let mut opt = Sgd {
            lr: 0.1,
            weight_decay: 1.0,
        };
        let mut x = Tensor::scalar(1.0);
        let zero_grad = Tensor::scalar(0.0);
        opt.step(&mut [&mut x], &[&zero_grad]);
        assert!((x.item() - 0.9).abs() < 1e-6);
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction, |Δx| of the first Adam step ≈ lr.
        let mut opt = Adam::new(0.05);
        let mut x = Tensor::scalar(0.0);
        let g = Tensor::scalar(123.0);
        opt.step(&mut [&mut x], &[&g]);
        assert!((x.item().abs() - 0.05).abs() < 1e-4, "x = {}", x.item());
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn mismatched_slots_panic() {
        let mut opt = Sgd::new(0.1);
        let mut x = Tensor::scalar(0.0);
        opt.step(&mut [&mut x], &[]);
    }
}
