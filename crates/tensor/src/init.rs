//! Parameter initialization schemes.

use crate::tensor::Tensor;
use wisegraph_testkit::rng::Rng;

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` matrix.
///
/// Samples from `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`,
/// deterministic for a given `seed`.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform_tensor(&[fan_in, fan_out], -a, a, seed)
}

/// Kaiming/He uniform initialization for a `[fan_in, fan_out]` matrix.
///
/// Samples from `U(-a, a)` with `a = sqrt(6 / fan_in)`, suited to ReLU
/// networks; deterministic for a given `seed`.
pub fn kaiming_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let a = (6.0 / fan_in as f32).sqrt();
    uniform_tensor(&[fan_in, fan_out], -a, a, seed)
}

/// A tensor of the given shape with entries drawn from `U(lo, hi)`.
pub fn uniform_tensor(dims: &[usize], lo: f32, hi: f32, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from_u64(seed);
    let n: usize = dims.iter().product();
    let data = (0..n).map(|_| rng.range_f32(lo, hi)).collect();
    Tensor::from_vec(data, dims)
}

/// A zero tensor with the same shape as `t`.
pub fn zeros_like(t: &Tensor) -> Tensor {
    Tensor::zeros(t.dims())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_within_bound() {
        let w = xavier_uniform(64, 32, 7);
        let a = (6.0f32 / 96.0).sqrt();
        assert_eq!(w.dims(), &[64, 32]);
        assert!(w.data().iter().all(|&v| v.abs() <= a));
        // Not degenerate.
        assert!(w.data().iter().any(|&v| v.abs() > a / 10.0));
    }

    #[test]
    fn deterministic_for_seed() {
        let a = kaiming_uniform(8, 8, 42);
        let b = kaiming_uniform(8, 8, 42);
        let c = kaiming_uniform(8, 8, 43);
        assert_eq!(a.data(), b.data());
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn zeros_like_matches_shape() {
        let t = Tensor::ones(&[3, 5]);
        let z = zeros_like(&t);
        assert_eq!(z.dims(), &[3, 5]);
        assert!(z.data().iter().all(|&v| v == 0.0));
    }
}
