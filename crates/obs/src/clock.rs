//! The workspace's single monotonic-clock site.
//!
//! Determinism is the repo's core testing contract (DESIGN.md §9): work
//! counters must be bit-identical run to run, so wall-clock time is an
//! *overlay*, never an input to any computation. All timing flows through
//! this module — `testkit::hermetic::scan_sources` flags any other use of
//! `Instant` in shipped code, so a stray timing dependency cannot creep
//! into a hot path unnoticed.

use std::sync::OnceLock;
use std::time::Instant;

/// Process-wide anchor; timestamps are nanoseconds since the first call.
static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the process's first clock read.
///
/// The anchor initializes lazily, so the very first call returns a small
/// number rather than an epoch-sized one — Chrome trace viewers render
/// such timelines starting near zero.
pub fn now_ns() -> u64 {
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A started stopwatch (the `Instant`-free face of interval timing).
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start_ns: u64,
}

impl Stopwatch {
    /// Starts a stopwatch now.
    pub fn start() -> Self {
        Stopwatch { start_ns: now_ns() }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ns(&self) -> u64 {
        now_ns().saturating_sub(self.start_ns)
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_ns() as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn stopwatch_measures_nonnegative_intervals() {
        let sw = Stopwatch::start();
        std::hint::black_box((0..1000).sum::<u64>());
        assert!(sw.elapsed_seconds() >= 0.0);
        assert!(sw.elapsed_ns() <= now_ns());
    }
}
