//! Exporters: Chrome trace-event JSON and the flat metrics format.
//!
//! Two consumers, two shapes:
//!
//! - [`trace_to_chrome_json`] writes the trace-event format that
//!   `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//!   directly — drop the file onto the UI and the lanes render as tracks.
//! - [`counters_to_json`] / [`counters_from_json`] round-trip a
//!   [`Counters`] registry through a flat, diffable document; this is the
//!   shape of `results/prof_*.json` and the `wisegraph-prof --check`
//!   baseline.

use crate::counters::{Class, Counters, MergeKind, Metric, Value};
use crate::json::Json;
use crate::span::{Phase, Trace, NO_LANE};
use std::collections::BTreeMap;

/// Schema tag written into every metrics document.
pub const METRICS_SCHEMA: &str = "wisegraph-obs/v1";

/// Derives human-readable track names from the lane discipline: lane 0
/// is the driver, a lane opening `cluster.device` (arg `device`) is that
/// device's driver lane, and a lane opening `engine.worker` (arg `slot`)
/// belongs to the engine whose driver lane sits `slot + 1` below it — a
/// cluster device's worker when that lane is a device lane, the
/// single-engine driver's worker otherwise.
fn lane_names(trace: &Trace) -> BTreeMap<u64, String> {
    let mut names: BTreeMap<u64, String> = BTreeMap::new();
    names.insert(0, "driver".to_string());
    let mut device_lanes: BTreeMap<u32, u64> = BTreeMap::new();
    for e in trace.sorted_events() {
        if e.phase != Phase::Begin || e.lane == NO_LANE {
            continue;
        }
        if e.name == "cluster.device" {
            if let Some(&(_, d)) = e.args.iter().find(|(k, _)| *k == "device") {
                device_lanes.insert(e.lane, d);
                names.insert(u64::from(e.lane), format!("device {d}"));
            }
        }
    }
    for e in trace.sorted_events() {
        if e.phase != Phase::Begin || e.lane == NO_LANE || e.name != "engine.worker" {
            continue;
        }
        if let Some(&(_, slot)) = e.args.iter().find(|(k, _)| *k == "slot") {
            let driver_lane = u64::from(e.lane).saturating_sub(slot + 1);
            let name = match device_lanes.get(&(driver_lane as u32)) {
                Some(d) if driver_lane > 0 => format!("device {d} worker {slot}"),
                _ => format!("worker {slot}"),
            };
            names.entry(u64::from(e.lane)).or_insert(name);
        }
    }
    names
}

/// Serializes a trace as Chrome trace-event JSON (Perfetto-loadable).
///
/// Events go out in deterministic merge order; `ts` is the wall-clock
/// overlay in microseconds (the format's unit). Each logical lane becomes
/// a `tid`, so engine worker slots render as separate tracks; threads
/// without a lane fall back to their raw thread id offset past the lanes.
/// Lanes the cluster discipline can identify (driver, `device N`,
/// `device N worker W`) get `thread_name` metadata events, so cluster
/// traces render one labeled row per device instead of anonymous tids.
pub fn trace_to_chrome_json(trace: &Trace) -> String {
    const LANE_TRACK_LIMIT: u64 = 1 << 20;
    let mut events = Vec::new();
    for (tid, name) in lane_names(trace) {
        let mut ev = BTreeMap::new();
        ev.insert("name".to_string(), Json::Str("thread_name".to_string()));
        ev.insert("ph".to_string(), Json::Str("M".to_string()));
        ev.insert("pid".to_string(), Json::Num(1.0));
        ev.insert("tid".to_string(), Json::Num(tid as f64));
        let mut args = BTreeMap::new();
        args.insert("name".to_string(), Json::Str(name));
        ev.insert("args".to_string(), Json::Obj(args));
        events.push(Json::Obj(ev));
    }
    for e in trace.sorted_events() {
        let mut ev = BTreeMap::new();
        ev.insert("name".to_string(), Json::Str(e.name.to_string()));
        ev.insert(
            "ph".to_string(),
            Json::Str(match e.phase {
                Phase::Begin => "B",
                Phase::End => "E",
            }
            .to_string()),
        );
        ev.insert("ts".to_string(), Json::Num(e.ts_ns as f64 / 1000.0));
        ev.insert("pid".to_string(), Json::Num(1.0));
        let tid = if e.lane == NO_LANE {
            LANE_TRACK_LIMIT + e.tid
        } else {
            u64::from(e.lane)
        };
        ev.insert("tid".to_string(), Json::Num(tid as f64));
        if !e.args.is_empty() {
            let args = e
                .args
                .iter()
                .map(|&(k, v)| (k.to_string(), Json::Num(v as f64)))
                .collect();
            ev.insert("args".to_string(), Json::Obj(args));
        }
        events.push(Json::Obj(ev));
    }
    let mut doc = BTreeMap::new();
    doc.insert("traceEvents".to_string(), Json::Arr(events));
    doc.insert("displayTimeUnit".to_string(), Json::Str("ms".to_string()));
    Json::Obj(doc).to_string_compact()
}

const fn merge_str(m: MergeKind) -> &'static str {
    match m {
        MergeKind::Sum => "sum",
        MergeKind::Max => "max",
        MergeKind::Last => "last",
    }
}

/// Serializes a registry as the flat metrics document:
///
/// ```json
/// {"schema":"wisegraph-obs/v1",
///  "counters":{"kernel.edges":{"class":"work","merge":"sum","value":812}}}
/// ```
///
/// Keys are sorted and counts are integers, so equal registries produce
/// byte-identical documents (the determinism gates diff these directly).
pub fn counters_to_json(c: &Counters) -> String {
    let mut entries = BTreeMap::new();
    for (name, m) in c.iter() {
        let mut entry = BTreeMap::new();
        entry.insert("class".to_string(), Json::Str(m.class.as_str().to_string()));
        entry.insert("merge".to_string(), Json::Str(merge_str(m.merge).to_string()));
        let value = match m.value {
            Value::Count(n) => Json::Num(n as f64),
            Value::Gauge(g) => Json::Num(g),
        };
        entry.insert("value".to_string(), value);
        // Gauges and counts both serialize as JSON numbers; record which
        // side of the enum to rebuild on read.
        entry.insert(
            "kind".to_string(),
            Json::Str(
                match m.value {
                    Value::Count(_) => "count",
                    Value::Gauge(_) => "gauge",
                }
                .to_string(),
            ),
        );
        entries.insert(name.to_string(), Json::Obj(entry));
    }
    let mut doc = BTreeMap::new();
    doc.insert("schema".to_string(), Json::Str(METRICS_SCHEMA.to_string()));
    doc.insert("counters".to_string(), Json::Obj(entries));
    Json::Obj(doc).to_string_compact()
}

/// Parses a flat metrics document back into a [`Counters`] registry.
///
/// # Errors
///
/// Returns a message naming the offending key on schema mismatch or any
/// malformed entry.
pub fn counters_from_json(text: &str) -> Result<Counters, String> {
    let doc = crate::json::parse(text)?;
    if doc.get("schema").and_then(Json::as_str) != Some(METRICS_SCHEMA) {
        return Err(format!("not a {METRICS_SCHEMA} metrics document"));
    }
    let entries = doc
        .get("counters")
        .and_then(Json::as_obj)
        .ok_or("missing `counters` object")?;
    let mut out = Counters::new();
    for (name, entry) in entries {
        let field = |key: &str| {
            entry
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("metric `{name}`: missing `{key}`"))
        };
        let class = match field("class")? {
            "work" => Class::Work,
            "resource" => Class::Resource,
            "timing" => Class::Timing,
            other => return Err(format!("metric `{name}`: unknown class `{other}`")),
        };
        let merge = match field("merge")? {
            "sum" => MergeKind::Sum,
            "max" => MergeKind::Max,
            "last" => MergeKind::Last,
            other => return Err(format!("metric `{name}`: unknown merge `{other}`")),
        };
        let num = entry
            .get("value")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("metric `{name}`: missing `value`"))?;
        let value = match field("kind")? {
            "count" => Value::Count(num as u64),
            "gauge" => Value::Gauge(num),
            other => return Err(format!("metric `{name}`: unknown kind `{other}`")),
        };
        out.insert(name.clone(), Metric { value, class, merge });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::capture;

    #[test]
    fn metrics_round_trip_bit_identically() {
        let mut c = Counters::new();
        c.add("kernel.edges", 812);
        c.add_class("pool.buffers_created", 7, Class::Resource);
        c.record_max("pool.peak_resident_bytes", 4096, Class::Resource);
        c.set_gauge("partition.dedup_ratio", 1.0 / 3.0, Class::Work);
        c.set_gauge("wall.seconds", 0.25, Class::Timing);
        let text = counters_to_json(&c);
        let back = counters_from_json(&text).expect("parses");
        assert_eq!(back, c);
        assert_eq!(counters_to_json(&back), text);
    }

    #[test]
    fn cluster_lanes_get_thread_name_metadata() {
        use crate::span::{Phase, SpanEvent};
        // Device 1 of a 2-thread-per-device cluster: driver lane 4,
        // worker slot 0 on lane 5; plus the global driver on lane 0.
        let ev = |name: &'static str, lane: u32, seq: u64, args: Vec<(&'static str, u64)>| SpanEvent {
            name,
            phase: Phase::Begin,
            tid: u64::from(lane) + 1,
            lane,
            seq,
            ts_ns: 0,
            args,
        };
        let trace = Trace {
            events: vec![
                ev("cluster.device", 4, 1, vec![("device", 1)]),
                ev("engine.worker", 5, 1, vec![("slot", 0), ("tasks", 3)]),
            ],
            dropped: 0,
        };
        let doc = crate::json::parse(&trace_to_chrome_json(&trace)).expect("valid json");
        let names: Vec<(f64, &str)> = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("events")
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .map(|e| {
                (
                    e.get("tid").and_then(Json::as_num).expect("tid"),
                    e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .expect("name"),
                )
            })
            .collect();
        assert_eq!(
            names,
            vec![(0.0, "driver"), (4.0, "device 1"), (5.0, "device 1 worker 0")]
        );
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        assert!(counters_from_json(r#"{"schema":"other","counters":{}}"#).is_err());
        assert!(counters_from_json("[]").is_err());
    }

    #[test]
    fn chrome_export_is_valid_json_with_paired_events() {
        let ((), trace) = capture(|| {
            let _s = crate::span!("export.unit", n = 3u64);
        });
        let text = trace_to_chrome_json(&trace);
        let doc = crate::json::parse(&text).expect("valid json");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        let phases: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("export.unit"))
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .collect();
        assert_eq!(phases, vec!["B", "E"]);
        let begin = events
            .iter()
            .find(|e| {
                e.get("name").and_then(Json::as_str) == Some("export.unit")
                    && e.get("ph").and_then(Json::as_str) == Some("B")
            })
            .expect("begin event");
        assert_eq!(
            begin.get("args").and_then(|a| a.get("n")).and_then(Json::as_num),
            Some(3.0)
        );
    }
}
