//! The unified work-counter registry.
//!
//! Every component that used to keep ad-hoc bookkeeping (the buffer pool's
//! create/reuse counts, the engine's per-worker merges, the sampled-training
//! fan-out accounting, the pipeline simulator's idle times) now reports into
//! one value type: [`Counters`], an ordered map from dotted metric names to
//! classed, merge-policied values.
//!
//! Three [`Class`]es encode the determinism contract (DESIGN.md §9):
//!
//! - [`Class::Work`] — pure functions of the inputs (edges processed, FLOPs,
//!   bytes moved, partition shapes, simulated times). Bit-identical across
//!   runs *and* across engine thread counts.
//! - [`Class::Resource`] — deterministic for a fixed configuration but
//!   legitimately thread-count-dependent (buffer-pool hits/misses, resident
//!   bytes: more workers means more cold pools).
//! - [`Class::Timing`] — wall-clock overlays. Never compared.
//!
//! The map is a `BTreeMap`, so iteration, merging, and serialization are
//! deterministic by construction (the hermeticity scanner bans `HashMap`
//! iteration in shipped code for exactly this reason).

use std::collections::BTreeMap;

/// Determinism class of a metric (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Class {
    /// Input-determined work: identical across runs and thread counts.
    Work,
    /// Configuration-determined resource use: identical across runs at a
    /// fixed thread count.
    Resource,
    /// Wall-clock overlay: never part of any determinism comparison.
    Timing,
}

impl Class {
    /// Stable lowercase name used in exports.
    pub const fn as_str(self) -> &'static str {
        match self {
            Class::Work => "work",
            Class::Resource => "resource",
            Class::Timing => "timing",
        }
    }
}

/// How two snapshots of the same metric combine under [`Counters::merge`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeKind {
    /// Totals add (edges processed, buffers created).
    Sum,
    /// Peaks take the maximum (peak resident bytes, critical-path work).
    Max,
    /// The merged-in value wins (gauges: ratios, simulated seconds).
    Last,
}

/// A metric value: an exact integer count or an `f64` gauge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// Exact event/volume count.
    Count(u64),
    /// Derived or continuous quantity. All gauges in this workspace are
    /// computed by deterministic float math, so bit-comparison is valid.
    Gauge(f64),
}

impl Value {
    /// The count, or 0 for gauges.
    pub fn as_count(self) -> u64 {
        match self {
            Value::Count(c) => c,
            Value::Gauge(_) => 0,
        }
    }

    /// The value as an `f64` (counts convert losslessly up to 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            Value::Count(c) => c as f64,
            Value::Gauge(g) => g,
        }
    }
}

/// One registered metric: its value plus the registration spec.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Metric {
    /// Current value.
    pub value: Value,
    /// Determinism class.
    pub class: Class,
    /// Merge policy.
    pub merge: MergeKind,
}

/// An ordered registry of named metrics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Counters {
    map: BTreeMap<String, Metric>,
}

impl Counters {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Adds `delta` to a [`Class::Work`] sum counter.
    pub fn add(&mut self, name: impl Into<String>, delta: u64) {
        self.add_class(name, delta, Class::Work);
    }

    /// Adds `delta` to a sum counter of the given class.
    pub fn add_class(&mut self, name: impl Into<String>, delta: u64, class: Class) {
        self.update(name.into(), Value::Count(delta), class, MergeKind::Sum);
    }

    /// Raises a max counter of the given class to at least `v`.
    pub fn record_max(&mut self, name: impl Into<String>, v: u64, class: Class) {
        self.update(name.into(), Value::Count(v), class, MergeKind::Max);
    }

    /// Sets a gauge of the given class (last write wins on merge).
    pub fn set_gauge(&mut self, name: impl Into<String>, v: f64, class: Class) {
        self.update(name.into(), Value::Gauge(v), class, MergeKind::Last);
    }

    /// Inserts a fully specified metric, replacing any prior value
    /// (exporters use this to rebuild registries from files).
    pub fn insert(&mut self, name: impl Into<String>, metric: Metric) {
        self.map.insert(name.into(), metric);
    }

    fn update(&mut self, name: String, v: Value, class: Class, merge: MergeKind) {
        match self.map.get_mut(&name) {
            Some(m) => {
                assert!(
                    m.class == class && m.merge == merge,
                    "metric `{name}` re-registered with a different spec \
                     ({:?}/{:?} vs {class:?}/{merge:?})",
                    m.class,
                    m.merge
                );
                m.value = combine(m.value, v, merge, &name);
            }
            None => {
                self.map.insert(name, Metric { value: v, class, merge });
            }
        }
    }

    /// Folds another registry into this one, metric by metric, honoring
    /// each metric's merge policy. Specs must agree.
    pub fn merge(&mut self, other: &Counters) {
        for (name, m) in &other.map {
            self.update(name.clone(), m.value, m.class, m.merge);
        }
    }

    /// [`Counters::merge`] with every incoming name prefixed by
    /// `prefix` + `.` — the tool for aggregating per-configuration
    /// registries into one report without collisions.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &Counters) {
        for (name, m) in &other.map {
            self.update(format!("{prefix}.{name}"), m.value, m.class, m.merge);
        }
    }

    /// The count registered under `name` (0 when absent or a gauge).
    pub fn count(&self, name: &str) -> u64 {
        self.map.get(name).map_or(0, |m| m.value.as_count())
    }

    /// The gauge registered under `name`, if any.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.map.get(name) {
            Some(Metric { value: Value::Gauge(g), .. }) => Some(*g),
            _ => None,
        }
    }

    /// The full metric registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.map.get(name)
    }

    /// Iterates metrics in name order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// A new registry holding only the metrics of the given classes —
    /// `only(&[Class::Work])` is the determinism-comparison view.
    pub fn only(&self, classes: &[Class]) -> Counters {
        let map = self
            .map
            .iter()
            .filter(|(_, m)| classes.contains(&m.class))
            .map(|(k, m)| (k.clone(), *m))
            .collect();
        Counters { map }
    }
}

fn combine(old: Value, new: Value, merge: MergeKind, name: &str) -> Value {
    match (merge, old, new) {
        (MergeKind::Sum, Value::Count(a), Value::Count(b)) => Value::Count(a + b),
        (MergeKind::Max, Value::Count(a), Value::Count(b)) => Value::Count(a.max(b)),
        (MergeKind::Last, _, v) => v,
        (MergeKind::Sum, Value::Gauge(a), Value::Gauge(b)) => Value::Gauge(a + b),
        (MergeKind::Max, Value::Gauge(a), Value::Gauge(b)) => {
            Value::Gauge(a.max(b))
        }
        _ => panic!("metric `{name}` merged count/gauge values"),
    }
}

/// Fraction of pool checkouts served from the pool, computed from the
/// standard `pool.buffers_created` / `pool.buffers_reused` counters
/// (0 when nothing was checked out).
pub fn pool_reuse_ratio(c: &Counters) -> f64 {
    let created = c.count(crate::keys::POOL_CREATED);
    let reused = c.count(crate::keys::POOL_REUSED);
    let total = created + reused;
    if total == 0 {
        0.0
    } else {
        reused as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_max_and_gauges_follow_their_policies() {
        let mut c = Counters::new();
        c.add("a.total", 3);
        c.add("a.total", 4);
        c.record_max("a.peak", 10, Class::Resource);
        c.record_max("a.peak", 7, Class::Resource);
        c.set_gauge("a.ratio", 0.5, Class::Work);
        c.set_gauge("a.ratio", 0.75, Class::Work);
        assert_eq!(c.count("a.total"), 7);
        assert_eq!(c.count("a.peak"), 10);
        assert_eq!(c.gauge("a.ratio"), Some(0.75));
        assert_eq!(c.count("missing"), 0);
    }

    #[test]
    fn merge_honors_per_metric_policies() {
        let mut a = Counters::new();
        a.add("n", 1);
        a.record_max("p", 5, Class::Resource);
        let mut b = Counters::new();
        b.add("n", 2);
        b.record_max("p", 3, Class::Resource);
        b.add("only_b", 9);
        a.merge(&b);
        assert_eq!(a.count("n"), 3);
        assert_eq!(a.count("p"), 5);
        assert_eq!(a.count("only_b"), 9);
    }

    #[test]
    fn prefixed_merge_keeps_configurations_separate() {
        let mut per_run = Counters::new();
        per_run.add("edges", 100);
        let mut report = Counters::new();
        report.merge_prefixed("gcn.t2", &per_run);
        report.merge_prefixed("gcn.t4", &per_run);
        assert_eq!(report.count("gcn.t2.edges"), 100);
        assert_eq!(report.count("gcn.t4.edges"), 100);
        assert_eq!(report.len(), 2);
    }

    #[test]
    fn class_filter_builds_the_determinism_view() {
        let mut c = Counters::new();
        c.add("work.edges", 5);
        c.add_class("pool.created", 2, Class::Resource);
        c.set_gauge("wall.seconds", 0.1, Class::Timing);
        let det = c.only(&[Class::Work, Class::Resource]);
        assert_eq!(det.len(), 2);
        assert!(det.gauge("wall.seconds").is_none());
        let work = c.only(&[Class::Work]);
        assert_eq!(work.len(), 1);
    }

    #[test]
    fn registries_compare_bit_identically() {
        let build = || {
            let mut c = Counters::new();
            c.add("x", 2);
            c.set_gauge("r", 1.0 / 3.0, Class::Work);
            c
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic(expected = "different spec")]
    fn conflicting_specs_are_programming_errors() {
        let mut c = Counters::new();
        c.add("m", 1);
        c.record_max("m", 2, Class::Work);
    }
}
