//! Deterministic fixed-bucket histograms.
//!
//! The counter registry records totals; a histogram records *shape* — how
//! a population of per-segment costs or wall times distributes. The
//! buckets are fixed powers of two, so the mapping from value to bucket
//! is a pure function with no data-dependent boundaries: feed the same
//! values in any order and the bucket counts are bit-identical. That
//! makes a [`Class::Work`] histogram of logical costs gateable by
//! `wisegraph-prof --check` exactly like a scalar Work counter, while the
//! same type doubles as a [`Class::Timing`] overlay for wall-clock
//! durations (exported, never compared).

use crate::counters::{Class, Counters};

/// Number of buckets. Bucket 0 holds zero values; bucket `i >= 1` holds
/// values in `[2^(i-1), 2^i)`; the last bucket absorbs everything above.
pub const NUM_BUCKETS: usize = 24;

/// A fixed power-of-two-bucket histogram over `u64` values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket index a value lands in (a pure function of the value).
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }
}

/// The smallest value that lands in bucket `i`.
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Folds another histogram into this one (bucketwise add).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Exports the histogram into a counter registry under `prefix`:
    /// `<prefix>.values` / `<prefix>.max` plus one `<prefix>.bucket.NN`
    /// sum per non-empty bucket (zero-padded, so lexicographic order is
    /// bucket order). Empty buckets are omitted — for a deterministic
    /// input population the emitted key set is itself deterministic.
    pub fn to_counters(&self, c: &mut Counters, prefix: &str, class: Class) {
        c.add_class(format!("{prefix}.values"), self.count, class);
        c.record_max(format!("{prefix}.max"), self.max, class);
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                c.add_class(format!("{prefix}.bucket.{i:02}"), n, class);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
        for i in 1..NUM_BUCKETS - 1 {
            assert_eq!(bucket_of(bucket_lower_bound(i)), i);
            assert_eq!(bucket_of(bucket_lower_bound(i + 1) - 1), i);
        }
    }

    #[test]
    fn shape_is_order_independent() {
        let vals = [0u64, 1, 7, 7, 130, 4096, 1 << 40];
        let mut a = Histogram::new();
        for v in vals {
            a.record(v);
        }
        let mut b = Histogram::new();
        for v in vals.iter().rev() {
            b.record(*v);
        }
        assert_eq!(a, b);
        assert_eq!(a.count(), vals.len() as u64);
        assert_eq!(a.max(), 1 << 40);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = Histogram::new();
        a.record(3);
        let mut b = Histogram::new();
        b.record(3);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.bucket(bucket_of(3)), 2);
        assert_eq!(a.bucket(bucket_of(100)), 1);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn counter_export_is_stable_and_sorted() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(5);
        h.record(0);
        let mut c = Counters::new();
        h.to_counters(&mut c, "hist.cost", Class::Work);
        assert_eq!(c.count("hist.cost.values"), 3);
        assert_eq!(c.count("hist.cost.bucket.00"), 1);
        assert_eq!(c.count(&format!("hist.cost.bucket.{:02}", bucket_of(5))), 2);
        assert_eq!(c.count("hist.cost.max"), 5);
    }
}
