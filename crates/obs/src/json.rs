//! A minimal JSON value type, writer, and parser.
//!
//! The workspace is hermetic (path-only dependencies), so the exporters
//! cannot reach for serde. This module covers exactly what the tracing
//! layer needs: writing Chrome trace-event and flat metrics files, and
//! reading a metrics baseline back for `wisegraph-prof --check`. It is a
//! complete little JSON implementation — objects are ordered maps, so a
//! write/read round trip is byte-stable.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed or constructed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (held as `f64`; counts below 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; write null like most encoders do.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` on f64 is the shortest round-trippable form.
        let _ = write!(out, "{n:?}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {start}"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {start}"))?;
                            self.pos += 4;
                            // Surrogate pairs aren't needed by any file this
                            // crate writes; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {start}")),
                    }
                }
                Some(_) => {
                    // Copy a maximal run of plain bytes at once.
                    let mut end = self.pos;
                    while let Some(&b) = self.bytes.get(end) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| format!("invalid utf-8 at byte {}", self.pos))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let src = r#"{"a":[1,2.5,-3],"b":{"s":"hi\n\"q\"","t":true,"n":null}}"#;
        let v = parse(src).expect("parses");
        assert_eq!(parse(&v.to_string_compact()).expect("reparses"), v);
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
        assert_eq!(
            v.get("b").and_then(|b| b.get("s")).and_then(Json::as_str),
            Some("hi\n\"q\"")
        );
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string_compact(), "42");
        assert_eq!(Json::Num(0.5).to_string_compact(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn object_keys_stay_sorted() {
        let v = parse(r#"{"z":1,"a":2}"#).expect("parses");
        assert_eq!(v.to_string_compact(), r#"{"a":2,"z":1}"#);
    }

    #[test]
    fn syntax_errors_carry_offsets() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").unwrap_err().contains("trailing"));
    }
}
