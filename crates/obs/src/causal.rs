//! Causal edges between cluster devices.
//!
//! Spans see each device lane in isolation; a causal edge records the
//! *cross-lane* dependency a collective creates: the send on one device
//! that a receive on another device blocks on. Endpoint identity is the
//! deterministic `(device, round, seq)` triple the mailbox protocol
//! already carries on every message — sender side uses the wire sequence
//! number, receiver side a per-device receive counter — so the merged
//! edge list is a pure function of the schedule, bit-identical across
//! runs and thread counts. The [`crate::critical`] analyzer replays these
//! edges to find the critical path and attribute idle time.

use crate::json::Json;

/// The collectives a mailbox can run, in stable id order. Span args are
/// numeric, so exchange spans carry `collective_id`; this table maps the
/// ids back to names when a trace is folded into timelines.
pub const COLLECTIVES: [&str; 3] = ["all_to_all", "reduce_scatter", "all_gather"];

/// Stable numeric id for a collective name (for span args).
///
/// # Panics
///
/// Panics on a name not in [`COLLECTIVES`].
pub fn collective_id(name: &str) -> u64 {
    COLLECTIVES
        .iter()
        .position(|&c| c == name)
        .unwrap_or_else(|| panic!("unknown collective {name:?}")) as u64
}

/// Inverse of [`collective_id`].
///
/// # Panics
///
/// Panics on an out-of-range id.
pub fn collective_name(id: u64) -> &'static str {
    COLLECTIVES[id as usize]
}

/// One endpoint of a causal edge: a send or receive identified by its
/// device, exchange round, and per-device sequence number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EndpointId {
    /// Device index.
    pub device: u32,
    /// Mailbox exchange round the operation belonged to.
    pub round: u32,
    /// Sender: wire sequence number. Receiver: receive-order counter.
    pub seq: u64,
}

/// A send→receive dependency recorded by the receiving device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CausalEdge {
    /// Which collective produced the edge.
    pub collective: &'static str,
    /// The send endpoint (on the peer device).
    pub from: EndpointId,
    /// The receive endpoint (on the recording device).
    pub to: EndpointId,
    /// Payload bytes carried across the edge.
    pub bytes: u64,
}

/// A mergeable log of causal edges.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CausalLog {
    /// Edges in receive order per recording device (unmerged order is
    /// per-device; use [`CausalLog::sorted`] for the canonical view).
    pub edges: Vec<CausalEdge>,
}

impl CausalLog {
    /// An empty log.
    pub fn new() -> Self {
        CausalLog::default()
    }

    /// Appends another device's edges.
    pub fn merge(&mut self, other: CausalLog) {
        self.edges.extend(other.edges);
    }

    /// Edges in canonical order: by receiver `(device, round, seq)`, then
    /// sender device. Deterministic regardless of merge order because
    /// receiver endpoints are unique.
    pub fn sorted(&self) -> Vec<CausalEdge> {
        let mut v = self.edges.clone();
        v.sort_by_key(|e| (e.to, e.from));
        v
    }

    /// Edges received in a given round, in canonical order.
    pub fn round_edges(&self, round: u32) -> Vec<CausalEdge> {
        self.sorted()
            .into_iter()
            .filter(|e| e.to.round == round)
            .collect()
    }

    /// Total bytes across all edges.
    pub fn total_bytes(&self) -> u64 {
        self.edges.iter().map(|e| e.bytes).sum()
    }

    /// Checks the structural invariants of a merged log: every receive
    /// endpoint names exactly one edge, every send endpoint names exactly
    /// one edge, a device never messages itself, and sender wire
    /// sequence numbers are strictly increasing per sender (the mailbox
    /// ordering guarantee).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_pairing(&self) -> Result<(), String> {
        let edges = self.sorted();
        let mut seen_to: Vec<(u32, EndpointId)> = Vec::new();
        let mut seen_from: Vec<(u32, EndpointId)> = Vec::new();
        for e in &edges {
            if e.from.device == e.to.device {
                return Err(format!("self edge on device {}", e.to.device));
            }
            if e.from.round != e.to.round {
                return Err(format!(
                    "round mismatch: send round {} vs receive round {}",
                    e.from.round, e.to.round
                ));
            }
            seen_to.push((e.to.device, e.to));
            seen_from.push((e.from.device, e.from));
        }
        seen_to.sort();
        seen_from.sort();
        for w in seen_to.windows(2) {
            if w[0] == w[1] {
                return Err(format!("duplicate receive endpoint {:?}", w[0].1));
            }
        }
        for w in seen_from.windows(2) {
            if w[0] == w[1] {
                return Err(format!("duplicate send endpoint {:?}", w[0].1));
            }
        }
        // Per-sender wire seqs must be strictly increasing in round order.
        let mut by_sender: Vec<(u32, u32, u64)> = edges
            .iter()
            .map(|e| (e.from.device, e.from.round, e.from.seq))
            .collect();
        by_sender.sort();
        for w in by_sender.windows(2) {
            if w[0].0 == w[1].0 && w[0].2 >= w[1].2 {
                return Err(format!(
                    "sender {} wire seq not increasing: {} then {}",
                    w[0].0, w[0].2, w[1].2
                ));
            }
        }
        Ok(())
    }

    /// Byte-stable JSON for the canonical edge list.
    pub fn to_json(&self) -> String {
        let rows: Vec<Json> = self
            .sorted()
            .iter()
            .map(|e| {
                let mut m = std::collections::BTreeMap::new();
                m.insert("collective".to_string(), Json::Str(e.collective.to_string()));
                m.insert("from_device".to_string(), Json::Num(f64::from(e.from.device)));
                m.insert("from_seq".to_string(), Json::Num(e.from.seq as f64));
                m.insert("round".to_string(), Json::Num(f64::from(e.to.round)));
                m.insert("to_device".to_string(), Json::Num(f64::from(e.to.device)));
                m.insert("to_seq".to_string(), Json::Num(e.to.seq as f64));
                m.insert("bytes".to_string(), Json::Num(e.bytes as f64));
                Json::Obj(m)
            })
            .collect();
        Json::Arr(rows).to_string_compact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(from: u32, to: u32, round: u32, fseq: u64, tseq: u64) -> CausalEdge {
        CausalEdge {
            collective: "all_to_all",
            from: EndpointId {
                device: from,
                round,
                seq: fseq,
            },
            to: EndpointId {
                device: to,
                round,
                seq: tseq,
            },
            bytes: 16,
        }
    }

    #[test]
    fn collective_ids_roundtrip() {
        for (i, name) in COLLECTIVES.iter().enumerate() {
            assert_eq!(collective_id(name), i as u64);
            assert_eq!(collective_name(i as u64), *name);
        }
    }

    #[test]
    fn sorted_is_merge_order_independent() {
        let mut a = CausalLog::new();
        a.edges.push(edge(1, 0, 0, 0, 0));
        a.edges.push(edge(0, 1, 0, 0, 0));
        let mut b = CausalLog::new();
        b.edges.push(edge(0, 1, 0, 0, 0));
        b.edges.push(edge(1, 0, 0, 0, 0));
        assert_eq!(a.sorted(), b.sorted());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn pairing_accepts_a_clean_round() {
        let mut log = CausalLog::new();
        log.edges.push(edge(1, 0, 0, 0, 0));
        log.edges.push(edge(0, 1, 0, 0, 0));
        assert!(log.check_pairing().is_ok());
    }

    #[test]
    fn pairing_rejects_duplicate_receive() {
        let mut log = CausalLog::new();
        log.edges.push(edge(1, 0, 0, 0, 0));
        log.edges.push(edge(1, 0, 0, 1, 0));
        assert!(log.check_pairing().unwrap_err().contains("receive"));
    }

    #[test]
    fn pairing_rejects_self_edge() {
        let mut log = CausalLog::new();
        log.edges.push(edge(0, 0, 0, 0, 0));
        assert!(log.check_pairing().unwrap_err().contains("self edge"));
    }

    #[test]
    fn pairing_rejects_non_increasing_wire_seq() {
        let mut log = CausalLog::new();
        log.edges.push(edge(1, 0, 0, 5, 0));
        let mut e = edge(1, 2, 1, 5, 0);
        e.from.seq = 5;
        log.edges.push(e);
        assert!(log.check_pairing().unwrap_err().contains("seq"));
    }
}
