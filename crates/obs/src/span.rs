//! Structured spans over per-thread ring buffers.
//!
//! A span is a named, argument-carrying interval (`span!("kernel.task",
//! edges = n)`) opened by the [`span!`](crate::span!) macro and closed by
//! RAII. Recording is designed for the execution hot path:
//!
//! - **Disabled by default.** When no capture is active, opening a span is
//!   one relaxed atomic load — cheap enough to leave instrumentation in
//!   `run_task_ws` permanently.
//! - **Per-thread ring buffers.** An enabled span pushes into the calling
//!   thread's local buffer (no locks, no cross-thread traffic). The buffer
//!   drains into the global sink when it fills, when a top-level span
//!   closes, and when the thread ends; the sink is bounded, counting (not
//!   silently losing) anything past the cap.
//! - **Deterministic merge.** Every event carries a logical `lane` (set by
//!   [`with_lane`]; the engine assigns worker slot `i` lane `i + 1`) and a
//!   per-thread sequence number. [`Trace::sorted_events`] orders by
//!   `(lane, tid, seq)`, so traces of the same execution have the same
//!   event order regardless of OS scheduling. Timestamps are a wall-clock
//!   overlay on top of that order, never the order itself.
//!
//! [`capture`] is the only consumer entry point: it serializes concurrent
//! captures behind a global lock, enables recording, runs the closure, and
//! drains the sink into a [`Trace`].

use crate::clock;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lane value of threads that never called [`with_lane`].
pub const NO_LANE: u32 = u32::MAX;

/// Local ring capacity: the buffer drains to the sink at this size.
const LOCAL_CAP: usize = 4096;

/// Global sink capacity; events past it are counted as dropped.
const GLOBAL_CAP: usize = 1 << 20;

/// Span phase, mirroring Chrome trace-event `B`/`E`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Span opened.
    Begin,
    /// Span closed.
    End,
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Span name (static: the instrumentation vocabulary is closed).
    pub name: &'static str,
    /// Begin or end.
    pub phase: Phase,
    /// Unique id of the recording OS thread (assignment order — an
    /// overlay, not part of the deterministic order within a lane).
    pub tid: u64,
    /// Logical lane ([`with_lane`]), or [`NO_LANE`].
    pub lane: u32,
    /// Per-thread sequence number (the deterministic order within a lane).
    pub seq: u64,
    /// Wall-clock overlay, nanoseconds (see [`clock`]).
    pub ts_ns: u64,
    /// Structured arguments (`Begin`: at open; `End`: attached via
    /// [`SpanGuard::arg`]).
    pub args: Vec<(&'static str, u64)>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static SINK: Mutex<Sink> = Mutex::new(Sink { events: Vec::new(), dropped: 0 });
static CAPTURE_LOCK: Mutex<()> = Mutex::new(());

struct Sink {
    events: Vec<SpanEvent>,
    dropped: u64,
}

fn sink() -> MutexGuard<'static, Sink> {
    SINK.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Local {
    tid: u64,
    lane: u32,
    seq: u64,
    depth: u32,
    buf: Vec<SpanEvent>,
}

impl Local {
    fn push(&mut self, name: &'static str, phase: Phase, args: Vec<(&'static str, u64)>) {
        self.seq += 1;
        self.buf.push(SpanEvent {
            name,
            phase,
            tid: self.tid,
            lane: self.lane,
            seq: self.seq,
            ts_ns: clock::now_ns(),
            args,
        });
        if self.buf.len() >= LOCAL_CAP {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let mut s = sink();
        let room = GLOBAL_CAP.saturating_sub(s.events.len());
        let take = self.buf.len().min(room);
        s.dropped += (self.buf.len() - take) as u64;
        s.events.extend(self.buf.drain(..take));
        self.buf.clear();
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<Local> = RefCell::new(Local {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        lane: NO_LANE,
        seq: 0,
        depth: 0,
        buf: Vec::new(),
    });
}

/// `true` while a [`capture`] is active. The `span!` macro checks this
/// before doing anything else.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Runs `f` with the calling thread's logical lane set to `lane`,
/// restoring the previous lane afterwards (also on panic). The engine
/// gives worker slot `i` lane `i + 1`, keeping lane 0 for the driver.
pub fn with_lane<R>(lane: u32, f: impl FnOnce() -> R) -> R {
    struct Restore(u32);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL.with(|l| l.borrow_mut().lane = self.0);
        }
    }
    let prev = LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let prev = l.lane;
        l.lane = lane;
        prev
    });
    let _restore = Restore(prev);
    f()
}

/// RAII guard of one open span; created by the [`span!`](crate::span!)
/// macro, closed (recording the `End` event) on drop.
pub struct SpanGuard {
    active: bool,
    name: &'static str,
    end_args: Vec<(&'static str, u64)>,
}

impl SpanGuard {
    /// Opens a span (no-op unless a capture is [`enabled`]).
    pub fn begin(name: &'static str, args: &[(&'static str, u64)]) -> SpanGuard {
        let active = enabled();
        if active {
            LOCAL.with(|l| {
                let mut l = l.borrow_mut();
                l.depth += 1;
                l.push(name, Phase::Begin, args.to_vec());
            });
        }
        SpanGuard { active, name, end_args: Vec::new() }
    }

    /// Attaches a result argument, reported on the span's `End` event —
    /// for values only known when the work completes (tasks produced,
    /// nodes after a rewrite).
    pub fn arg(&mut self, key: &'static str, value: impl IntoArg) {
        if self.active {
            self.end_args.push((key, value.into_arg()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let args = std::mem::take(&mut self.end_args);
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            l.push(self.name, Phase::End, args);
            l.depth = l.depth.saturating_sub(1);
            if l.depth == 0 {
                // A top-level span closed: make the thread's events visible
                // without waiting for thread exit (the driver thread of a
                // capture never exits inside it).
                l.flush();
            }
        });
    }
}

/// Argument conversion for the `span!` macro: spans carry `u64` values.
pub trait IntoArg {
    /// The value as a `u64` (signed values saturate at 0).
    fn into_arg(self) -> u64;
}

macro_rules! impl_into_arg {
    ($($t:ty),*) => {$(
        impl IntoArg for $t {
            fn into_arg(self) -> u64 {
                u64::try_from(self).unwrap_or(0)
            }
        }
    )*};
}
impl_into_arg!(u64, u32, u16, u8, usize, i64, i32, i16, i8, isize);

/// A drained capture: the merged events of every thread that recorded.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// All events, in sink-arrival order.
    pub events: Vec<SpanEvent>,
    /// Events lost to the global cap (0 in any healthy capture).
    pub dropped: u64,
}

impl Trace {
    /// Events in the deterministic merge order: by `(lane, tid, seq)`.
    /// For lane-disciplined recorders (one thread per lane) this order is
    /// a pure function of the execution, independent of OS scheduling.
    pub fn sorted_events(&self) -> Vec<SpanEvent> {
        let mut out = self.events.clone();
        out.sort_by_key(|e| (e.lane, e.tid, e.seq));
        out
    }

    /// Number of `Begin` events with the given span name.
    pub fn span_count(&self, name: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.phase == Phase::Begin && e.name == name)
            .count()
    }

    /// Checks span-nesting well-formedness per recording thread: every
    /// `End` must match the innermost open `Begin` of its thread.
    ///
    /// Tolerated truncation (a capture window can cut a long-lived
    /// foreign thread mid-span): unmatched `End`s *before the first
    /// `Begin`* of a thread, and `Begin`s still open when the capture
    /// ends. A mismatch anywhere else is an error.
    ///
    /// # Errors
    ///
    /// Returns a description of the first ill-nested event.
    pub fn check_nesting(&self) -> Result<(), String> {
        use std::collections::BTreeMap;
        let mut stacks: BTreeMap<u64, Vec<&'static str>> = BTreeMap::new();
        let mut seen_begin: BTreeMap<u64, bool> = BTreeMap::new();
        for e in self.sorted_events() {
            match e.phase {
                Phase::Begin => {
                    stacks.entry(e.tid).or_default().push(e.name);
                    seen_begin.insert(e.tid, true);
                }
                Phase::End => {
                    let stack = stacks.entry(e.tid).or_default();
                    match stack.pop() {
                        Some(open) if open == e.name => {}
                        Some(open) => {
                            return Err(format!(
                                "thread {}: end of `{}` while `{open}` is open",
                                e.tid, e.name
                            ));
                        }
                        None if !seen_begin.get(&e.tid).copied().unwrap_or(false) => {
                            // Leading unmatched end: span began before the
                            // capture window. Ignore.
                        }
                        None => {
                            return Err(format!(
                                "thread {}: end of `{}` with no open span",
                                e.tid, e.name
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Flushes the calling thread's local buffer into the sink.
pub fn flush_thread() {
    LOCAL.with(|l| l.borrow_mut().flush());
}

/// Runs `f` with span recording enabled and returns its result plus the
/// captured [`Trace`].
///
/// Captures are process-global and serialize behind an internal lock, so
/// concurrent callers (parallel tests) wait rather than interleave.
/// Threads spawned *and joined* inside `f` (the engine's scoped workers)
/// flush automatically; detached threads that outlive `f` are not part of
/// the contract.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Trace) {
    let _serialize = CAPTURE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    {
        let mut s = sink();
        s.events.clear();
        s.dropped = 0;
    }
    ENABLED.store(true, Ordering::SeqCst);
    let out = f();
    flush_thread();
    ENABLED.store(false, Ordering::SeqCst);
    let mut s = sink();
    let trace = Trace {
        events: std::mem::take(&mut s.events),
        dropped: std::mem::replace(&mut s.dropped, 0),
    };
    drop(s);
    (out, trace)
}

/// Opens a named span, returning its RAII [`SpanGuard`].
///
/// ```
/// let edges = 12usize;
/// let mut s = wisegraph_obs::span!("kernel.task", edges = edges);
/// // ... do the work ...
/// s.arg("flops", 24u64); // reported on the End event
/// drop(s);
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::span::SpanGuard::begin(
            $name,
            &[$((stringify!($k), $crate::span::IntoArg::into_arg($v))),*],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        // Not inside a capture: the guard must be inert.
        assert!(!enabled() || cfg!(any()), "no capture is active in unit tests");
        let before = sink().events.len();
        {
            let _s = crate::span!("unit.noop", x = 1u64);
        }
        flush_thread();
        assert_eq!(sink().events.len(), before);
    }

    #[test]
    fn capture_records_nested_spans_in_order() {
        let ((), trace) = capture(|| {
            let mut outer = crate::span!("unit.outer", n = 2u64);
            {
                let _inner = crate::span!("unit.inner");
            }
            outer.arg("done", 1u64);
        });
        assert_eq!(trace.dropped, 0);
        assert_eq!(trace.span_count("unit.outer"), 1);
        assert_eq!(trace.span_count("unit.inner"), 1);
        trace.check_nesting().expect("well nested");
        let names: Vec<(&str, Phase)> = trace
            .sorted_events()
            .iter()
            .filter(|e| e.name.starts_with("unit."))
            .map(|e| (e.name, e.phase))
            .collect();
        assert_eq!(
            names,
            vec![
                ("unit.outer", Phase::Begin),
                ("unit.inner", Phase::Begin),
                ("unit.inner", Phase::End),
                ("unit.outer", Phase::End),
            ]
        );
        let end = trace
            .events
            .iter()
            .find(|e| e.name == "unit.outer" && e.phase == Phase::End)
            .unwrap();
        assert_eq!(end.args, vec![("done", 1u64)]);
    }

    #[test]
    fn lanes_tag_worker_threads() {
        let ((), trace) = capture(|| {
            std::thread::scope(|scope| {
                for lane in 1..=2u32 {
                    scope.spawn(move || {
                        with_lane(lane, || {
                            let _s = crate::span!("unit.worker", lane = lane);
                        })
                    });
                }
            });
        });
        trace.check_nesting().expect("well nested");
        let mut lanes: Vec<u32> = trace
            .events
            .iter()
            .filter(|e| e.name == "unit.worker" && e.phase == Phase::Begin)
            .map(|e| e.lane)
            .collect();
        lanes.sort_unstable();
        assert_eq!(lanes, vec![1, 2]);
    }

    #[test]
    fn ill_nested_streams_are_rejected() {
        let bad = Trace {
            events: vec![
                SpanEvent {
                    name: "a",
                    phase: Phase::Begin,
                    tid: 1,
                    lane: 0,
                    seq: 1,
                    ts_ns: 0,
                    args: Vec::new(),
                },
                SpanEvent {
                    name: "b",
                    phase: Phase::End,
                    tid: 1,
                    lane: 0,
                    seq: 2,
                    ts_ns: 0,
                    args: Vec::new(),
                },
            ],
            dropped: 0,
        };
        assert!(bad.check_nesting().is_err());
    }

    #[test]
    fn leading_foreign_end_is_tolerated() {
        let truncated = Trace {
            events: vec![SpanEvent {
                name: "foreign",
                phase: Phase::End,
                tid: 9,
                lane: NO_LANE,
                seq: 1,
                ts_ns: 0,
                args: Vec::new(),
            }],
            dropped: 0,
        };
        truncated.check_nesting().expect("truncation tolerated");
    }
}
