//! Critical-path and idle-time attribution over device timelines.
//!
//! The cluster records, per device, an alternating sequence of *compute*
//! and *exchange* phase segments (each carrying a deterministic logical
//! cost plus a wall-clock overlay), and a [`CausalLog`] of send→receive
//! edges. This module replays that record on a logical clock: computes
//! advance a device's clock by their cost, exchange rounds serialize
//! sends in ascending peer order and make each receive wait for the
//! matching send to complete. The replay yields exactly the quantities
//! the overlap ROADMAP item needs — the critical path through the device
//! DAG, a per-device busy/exchange/idle breakdown, a straggler ranking,
//! and per-layer *overlap headroom*: idle time a posted-early send could
//! have reclaimed, bounded by the compute the sender had available to
//! overlap.
//!
//! Everything derived from costs and edges is [`Class::Work`]: a pure
//! function of graph, schedule, and device count, bit-identical across
//! runs and thread counts, and therefore gateable. Wall-clock sums and
//! the wall histogram ride along as a [`Class::Timing`] overlay.

use std::collections::BTreeMap;

use crate::causal::{collective_name, CausalLog};
use crate::counters::{Class, Counters};
use crate::hist::Histogram;
use crate::json::Json;
use crate::keys;
use crate::span::{Phase, Trace};

/// Span name cluster devices use for compute phases.
pub const COMPUTE_SPAN: &str = "cluster.phase.compute";
/// Span name cluster devices use for exchange phases.
pub const EXCHANGE_SPAN: &str = "cluster.phase.exchange";

/// The logical cost of the work a counter snapshot describes: FLOPs plus
/// edges plus moved bytes normalized to element units. Work-class inputs
/// only, so the result is bit-identical across runs and thread counts.
pub fn logical_cost(c: &Counters) -> u64 {
    c.count(keys::KERNEL_FLOPS)
        + c.count(keys::KERNEL_EDGES)
        + (c.count(keys::KERNEL_BYTES_GATHERED) + c.count(keys::KERNEL_BYTES_SCATTERED)) / 4
}

/// What a timeline segment did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseKind {
    /// Local computation (engine work, prologue/epilogue evaluation).
    Compute,
    /// One collective exchange round.
    Exchange {
        /// The collective that ran.
        collective: &'static str,
        /// The mailbox round it occupied.
        round: u32,
    },
}

/// One phase on one device: a logical cost plus a wall-clock overlay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Compute or exchange.
    pub kind: PhaseKind,
    /// The model layer the phase belongs to (0 for single-layer runs).
    pub layer: u32,
    /// Logical cost: compute = [`logical_cost`] delta (+ any non-engine
    /// element work); exchange = bytes sent plus bytes received.
    pub cost: u64,
    /// Measured wall time of the phase (Timing overlay).
    pub wall_ns: u64,
    /// Wall time spent blocked in receives (exchange phases only).
    pub idle_wall_ns: u64,
}

/// The ordered phase segments one device executed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeviceTimeline {
    /// Device index.
    pub device: u32,
    /// Segments in execution order.
    pub segments: Vec<Segment>,
}

impl DeviceTimeline {
    /// The Work-class view: wall overlays zeroed, logical fields kept.
    /// Two timelines of the same execution agree on this view even though
    /// their wall clocks differ.
    pub fn logical(&self) -> DeviceTimeline {
        DeviceTimeline {
            device: self.device,
            segments: self
                .segments
                .iter()
                .map(|s| Segment {
                    wall_ns: 0,
                    idle_wall_ns: 0,
                    ..*s
                })
                .collect(),
        }
    }
}

/// Per-device totals from the replay, in logical units plus wall overlay.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceAttribution {
    /// Device index.
    pub device: u32,
    /// Logical compute units.
    pub busy: u64,
    /// Logical exchange units (bytes sent + received).
    pub exchange: u64,
    /// Logical units spent waiting for not-yet-complete sends.
    pub idle_wait: u64,
    /// Logical clock when the device finished its last segment.
    pub finish: u64,
    /// Measured wall time in compute phases (Timing overlay).
    pub busy_wall_ns: u64,
    /// Measured wall time in exchange phases net of blocking (Timing).
    pub exchange_wall_ns: u64,
    /// Measured wall time blocked in receives (Timing overlay).
    pub idle_wall_ns: u64,
}

/// One hop of the critical path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalStep {
    /// Device the step ran on.
    pub device: u32,
    /// `"compute"`, `"send"`, `"recv"`, or `"wait"`.
    pub kind: &'static str,
    /// Layer of the segment the step belongs to.
    pub layer: u32,
    /// Logical length of the step.
    pub len: u64,
}

/// The full attribution report for one cluster run.
#[derive(Clone, Debug, PartialEq)]
pub struct AttributionReport {
    /// Per-device totals, in device order.
    pub devices: Vec<DeviceAttribution>,
    /// Logical length of the critical path (= cluster makespan).
    pub makespan: u64,
    /// The critical path, start to finish; hops devices at waits.
    pub critical_path: Vec<CriticalStep>,
    /// Devices most-loaded first (by busy + exchange, ties by index).
    pub straggler_ranking: Vec<u32>,
    /// Per-layer overlap headroom: idle a posted-early send could
    /// reclaim, bounded by the blocking sender's preceding compute.
    pub headroom_by_layer: BTreeMap<u32, u64>,
    /// Work-class histogram of per-segment logical costs.
    pub cost_hist: Histogram,
    /// Timing histogram of per-segment wall microseconds.
    pub wall_hist: Histogram,
}

/// Replay item kinds (internal to the scheduler).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ItemKind {
    Compute,
    Send,
    Recv,
    Wait,
}

impl ItemKind {
    fn name(self) -> &'static str {
        match self {
            ItemKind::Compute => "compute",
            ItemKind::Send => "send",
            ItemKind::Recv => "recv",
            ItemKind::Wait => "wait",
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Item {
    kind: ItemKind,
    layer: u32,
    start: u64,
    end: u64,
    /// `(device, item index)` of the step this one waited on; `None` at
    /// the head of a device's chain.
    pred: Option<(usize, usize)>,
}

/// Replays the per-device timelines against the causal edges and returns
/// the attribution report. Deterministic: only logical costs, rounds,
/// and edge byte counts decide the Work-class fields.
///
/// # Errors
///
/// Fails if the causal log violates the mailbox pairing invariants, if
/// device timelines disagree on exchange-round alignment (the schedules
/// are SPMD, so every device reaches the same rounds in the same order),
/// or if an edge references a round no timeline is at.
pub fn analyze(timelines: &[DeviceTimeline], causal: &CausalLog) -> Result<AttributionReport, String> {
    let d = timelines.len();
    if d == 0 {
        return Err("no device timelines".to_string());
    }
    causal.check_pairing()?;
    // (round, from, to) -> bytes. Pairing guarantees uniqueness.
    let mut edge_bytes: BTreeMap<(u32, u32, u32), u64> = BTreeMap::new();
    for e in &causal.edges {
        if e.from.device as usize >= d || e.to.device as usize >= d {
            return Err(format!(
                "edge references device {} outside the {} timelines",
                e.from.device.max(e.to.device),
                d
            ));
        }
        edge_bytes.insert((e.to.round, e.from.device, e.to.device), e.bytes);
    }

    let mut pos = vec![0usize; d];
    let mut clock = vec![0u64; d];
    let mut busy = vec![0u64; d];
    let mut exchange = vec![0u64; d];
    let mut idle_wait = vec![0u64; d];
    let mut busy_wall = vec![0u64; d];
    let mut exchange_wall = vec![0u64; d];
    let mut idle_wall = vec![0u64; d];
    let mut items: Vec<Vec<Item>> = vec![Vec::new(); d];
    let mut last_compute = vec![0u64; d];
    let mut headroom: BTreeMap<u32, u64> = BTreeMap::new();
    let mut cost_hist = Histogram::new();
    let mut wall_hist = Histogram::new();

    loop {
        // Advance every device through its run of compute segments.
        for i in 0..d {
            while let Some(seg) = timelines[i].segments.get(pos[i]) {
                if seg.kind != PhaseKind::Compute {
                    break;
                }
                let pred = items[i].len().checked_sub(1).map(|j| (i, j));
                items[i].push(Item {
                    kind: ItemKind::Compute,
                    layer: seg.layer,
                    start: clock[i],
                    end: clock[i] + seg.cost,
                    pred,
                });
                clock[i] += seg.cost;
                busy[i] += seg.cost;
                busy_wall[i] += seg.wall_ns;
                last_compute[i] = seg.cost;
                cost_hist.record(seg.cost);
                wall_hist.record(seg.wall_ns / 1000);
                pos[i] += 1;
            }
        }
        if (0..d).all(|i| pos[i] == timelines[i].segments.len()) {
            break;
        }
        // Every device must now sit at the same exchange round (SPMD).
        let mut round: Option<u32> = None;
        for (i, tl) in timelines.iter().enumerate() {
            let seg = tl.segments.get(pos[i]).ok_or_else(|| {
                format!("device {i} ran out of segments while others exchange")
            })?;
            let PhaseKind::Exchange { round: r, .. } = seg.kind else {
                unreachable!("computes were advanced above");
            };
            match round {
                None => round = Some(r),
                Some(r0) if r0 == r => {}
                Some(r0) => {
                    return Err(format!(
                        "misaligned exchange rounds: device 0 at {r0}, device {i} at {r}"
                    ))
                }
            }
        }
        let round = round.unwrap();
        // Sends: each device serializes its outgoing messages in
        // ascending peer order (the mailbox send loop).
        let mut send_done: BTreeMap<(usize, usize), (u64, (usize, usize))> = BTreeMap::new();
        let mut after_send = clock.clone();
        for s in 0..d {
            let layer = timelines[s].segments[pos[s]].layer;
            for r in 0..d {
                if r == s {
                    continue;
                }
                if let Some(&bytes) = edge_bytes.get(&(round, s as u32, r as u32)) {
                    let pred = items[s].len().checked_sub(1).map(|j| (s, j));
                    let start = after_send[s];
                    after_send[s] = start + bytes;
                    items[s].push(Item {
                        kind: ItemKind::Send,
                        layer,
                        start,
                        end: after_send[s],
                        pred,
                    });
                    send_done.insert((s, r), (after_send[s], (s, items[s].len() - 1)));
                    exchange[s] += bytes;
                }
            }
        }
        // Receives: ascending peer order (the mailbox drain loop); a
        // receive whose send is not yet complete blocks the device.
        for i in 0..d {
            let seg = timelines[i].segments[pos[i]];
            let mut ti = after_send[i];
            for s in 0..d {
                if s == i {
                    continue;
                }
                if let Some(&bytes) = edge_bytes.get(&(round, s as u32, i as u32)) {
                    let (arrival, send_item) = send_done[&(s, i)];
                    if arrival > ti {
                        let wait = arrival - ti;
                        idle_wait[i] += wait;
                        *headroom.entry(seg.layer).or_insert(0) += wait.min(last_compute[s]);
                        items[i].push(Item {
                            kind: ItemKind::Wait,
                            layer: seg.layer,
                            start: ti,
                            end: arrival,
                            pred: Some(send_item),
                        });
                        ti = arrival;
                    }
                    let pred = items[i].len().checked_sub(1).map(|j| (i, j));
                    items[i].push(Item {
                        kind: ItemKind::Recv,
                        layer: seg.layer,
                        start: ti,
                        end: ti + bytes,
                        pred,
                    });
                    ti += bytes;
                    exchange[i] += bytes;
                }
            }
            clock[i] = ti;
            let blocked = seg.idle_wall_ns.min(seg.wall_ns);
            idle_wall[i] += blocked;
            exchange_wall[i] += seg.wall_ns - blocked;
            cost_hist.record(seg.cost);
            wall_hist.record(seg.wall_ns / 1000);
            pos[i] += 1;
        }
    }
    // Every causal edge must have been consumed by a replayed round.
    for &(round, from, to) in edge_bytes.keys() {
        let replayed = timelines.iter().any(|tl| {
            tl.segments
                .iter()
                .any(|s| matches!(s.kind, PhaseKind::Exchange { round: r, .. } if r == round))
        });
        if !replayed {
            return Err(format!(
                "edge {from}->{to} references round {round} absent from all timelines"
            ));
        }
    }
    // Critical path: walk predecessor links back from the last item of
    // the latest-finishing device.
    let makespan = clock.iter().copied().max().unwrap_or(0);
    let mut critical_path = Vec::new();
    // Ties between equal finishers resolve toward the most-blocked
    // device, so the reported path walks through the cross-device wait
    // that explains the makespan rather than a local-only chain.
    let tail_dev = (0..d)
        .max_by_key(|&i| (clock[i], idle_wait[i], std::cmp::Reverse(i)))
        .unwrap_or(0);
    let mut cur = items[tail_dev].len().checked_sub(1).map(|j| (tail_dev, j));
    while let Some((dev, j)) = cur {
        let it = items[dev][j];
        critical_path.push(CriticalStep {
            device: dev as u32,
            kind: it.kind.name(),
            layer: it.layer,
            len: it.end - it.start,
        });
        cur = it.pred;
    }
    critical_path.reverse();

    let mut straggler_ranking: Vec<u32> = (0..d as u32).collect();
    straggler_ranking
        .sort_by_key(|&i| (std::cmp::Reverse(busy[i as usize] + exchange[i as usize]), i));

    let devices = (0..d)
        .map(|i| DeviceAttribution {
            device: timelines[i].device,
            busy: busy[i],
            exchange: exchange[i],
            idle_wait: idle_wait[i],
            finish: clock[i],
            busy_wall_ns: busy_wall[i],
            exchange_wall_ns: exchange_wall[i],
            idle_wall_ns: idle_wall[i],
        })
        .collect();

    Ok(AttributionReport {
        devices,
        makespan,
        critical_path,
        straggler_ranking,
        headroom_by_layer: headroom,
        cost_hist,
        wall_hist,
    })
}

impl AttributionReport {
    /// The most-loaded device.
    pub fn straggler(&self) -> u32 {
        self.straggler_ranking.first().copied().unwrap_or(0)
    }

    /// Total overlap headroom across layers.
    pub fn headroom_total(&self) -> u64 {
        self.headroom_by_layer.values().sum()
    }

    /// Per-device `(busy, exchange, idle)` fractions of the makespan.
    /// Idle includes both blocking waits and the tail slack between the
    /// device finishing and the cluster finishing, so the three fractions
    /// sum to 1 per device.
    pub fn fractions(&self, device: usize) -> (f64, f64, f64) {
        let a = &self.devices[device];
        if self.makespan == 0 {
            return (0.0, 0.0, 0.0);
        }
        let m = self.makespan as f64;
        let idle = a.idle_wait + (self.makespan - a.finish);
        (
            a.busy as f64 / m,
            a.exchange as f64 / m,
            idle as f64 / m,
        )
    }

    /// Records the report into a counter registry: logical attribution as
    /// [`Class::Work`] (gateable), wall sums and the wall histogram as a
    /// [`Class::Timing`] overlay.
    pub fn record_counters(&self, c: &mut Counters) {
        c.record_max("critical.len", self.makespan, Class::Work);
        c.add_class("critical.steps", self.critical_path.len() as u64, Class::Work);
        c.record_max(
            "critical.straggler_device",
            u64::from(self.straggler()),
            Class::Work,
        );
        c.add_class("critical.headroom", self.headroom_total(), Class::Work);
        for (&layer, &h) in &self.headroom_by_layer {
            c.add_class(format!("critical.layer.{layer:02}.headroom"), h, Class::Work);
        }
        for a in &self.devices {
            let p = keys::device_prefix(a.device as usize);
            c.add_class(format!("{p}.attr_busy"), a.busy, Class::Work);
            c.add_class(format!("{p}.attr_exchange"), a.exchange, Class::Work);
            c.add_class(format!("{p}.attr_idle"), a.idle_wait, Class::Work);
            c.record_max(format!("{p}.attr_finish"), a.finish, Class::Work);
        }
        self.cost_hist.to_counters(c, "hist.cost", Class::Work);
        let busy_wall: u64 = self.devices.iter().map(|a| a.busy_wall_ns).sum();
        let exch_wall: u64 = self.devices.iter().map(|a| a.exchange_wall_ns).sum();
        let idle_wall: u64 = self.devices.iter().map(|a| a.idle_wall_ns).sum();
        c.set_gauge("wall.busy_ns", busy_wall as f64, Class::Timing);
        c.set_gauge("wall.exchange_ns", exch_wall as f64, Class::Timing);
        c.set_gauge("wall.idle_ns", idle_wall as f64, Class::Timing);
        self.wall_hist.to_counters(c, "hist.wall_us", Class::Timing);
    }

    fn hist_json(h: &Histogram) -> Json {
        let mut m = BTreeMap::new();
        m.insert("values".to_string(), Json::Num(h.count() as f64));
        m.insert("max".to_string(), Json::Num(h.max() as f64));
        let mut buckets = BTreeMap::new();
        for i in 0..crate::hist::NUM_BUCKETS {
            if h.bucket(i) > 0 {
                buckets.insert(format!("{i:02}"), Json::Num(h.bucket(i) as f64));
            }
        }
        m.insert("buckets".to_string(), Json::Obj(buckets));
        Json::Obj(m)
    }

    fn json_value(&self, include_wall: bool) -> Json {
        let mut root = BTreeMap::new();
        root.insert(
            "schema".to_string(),
            Json::Str("wisegraph-critical/v1".to_string()),
        );
        root.insert("makespan".to_string(), Json::Num(self.makespan as f64));
        root.insert(
            "straggler".to_string(),
            Json::Num(f64::from(self.straggler())),
        );
        root.insert(
            "straggler_ranking".to_string(),
            Json::Arr(
                self.straggler_ranking
                    .iter()
                    .map(|&i| Json::Num(f64::from(i)))
                    .collect(),
            ),
        );
        root.insert(
            "headroom_total".to_string(),
            Json::Num(self.headroom_total() as f64),
        );
        let mut hl = BTreeMap::new();
        for (&layer, &h) in &self.headroom_by_layer {
            hl.insert(format!("{layer:02}"), Json::Num(h as f64));
        }
        root.insert("headroom_by_layer".to_string(), Json::Obj(hl));
        let devs: Vec<Json> = self
            .devices
            .iter()
            .map(|a| {
                let mut m = BTreeMap::new();
                m.insert("device".to_string(), Json::Num(f64::from(a.device)));
                m.insert("busy".to_string(), Json::Num(a.busy as f64));
                m.insert("exchange".to_string(), Json::Num(a.exchange as f64));
                m.insert("idle_wait".to_string(), Json::Num(a.idle_wait as f64));
                m.insert("finish".to_string(), Json::Num(a.finish as f64));
                if include_wall {
                    m.insert(
                        "busy_wall_ns".to_string(),
                        Json::Num(a.busy_wall_ns as f64),
                    );
                    m.insert(
                        "exchange_wall_ns".to_string(),
                        Json::Num(a.exchange_wall_ns as f64),
                    );
                    m.insert(
                        "idle_wall_ns".to_string(),
                        Json::Num(a.idle_wall_ns as f64),
                    );
                }
                Json::Obj(m)
            })
            .collect();
        root.insert("devices".to_string(), Json::Arr(devs));
        let path: Vec<Json> = self
            .critical_path
            .iter()
            .map(|s| {
                let mut m = BTreeMap::new();
                m.insert("device".to_string(), Json::Num(f64::from(s.device)));
                m.insert("kind".to_string(), Json::Str(s.kind.to_string()));
                m.insert("layer".to_string(), Json::Num(f64::from(s.layer)));
                m.insert("len".to_string(), Json::Num(s.len as f64));
                Json::Obj(m)
            })
            .collect();
        root.insert("critical_path".to_string(), Json::Arr(path));
        root.insert("hist_cost".to_string(), Self::hist_json(&self.cost_hist));
        if include_wall {
            root.insert("hist_wall_us".to_string(), Self::hist_json(&self.wall_hist));
        }
        Json::Obj(root)
    }

    /// The full report as a JSON value (includes the Timing overlay).
    pub fn to_json(&self) -> Json {
        self.json_value(true)
    }

    /// Byte-stable JSON of the Work-class view only: bit-identical across
    /// runs and thread counts for the same schedule.
    pub fn work_json(&self) -> String {
        self.json_value(false).to_string_compact()
    }
}

fn find_arg(args: &[(&'static str, u64)], key: &str) -> Option<u64> {
    args.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
}

/// Folds a captured span stream back into device timelines: pairs the
/// `cluster.phase.*` Begin/End events per lane and rebuilds each device's
/// [`Segment`] sequence from the span args. The logical view of the
/// result is identical to the timelines the cluster recorded directly —
/// the trace alone is enough to run [`analyze`].
///
/// # Errors
///
/// Fails on an ill-formed stream: an unmatched or nested phase span.
pub fn timelines_from_trace(trace: &Trace) -> Result<Vec<DeviceTimeline>, String> {
    /// An unmatched phase Begin: `(device, begin args, span name)`.
    type OpenPhase = (u64, Vec<(&'static str, u64)>, &'static str);
    let mut open: BTreeMap<u32, OpenPhase> = BTreeMap::new();
    let mut by_device: BTreeMap<u32, Vec<Segment>> = BTreeMap::new();
    for e in trace.sorted_events() {
        if e.name != COMPUTE_SPAN && e.name != EXCHANGE_SPAN {
            continue;
        }
        match e.phase {
            Phase::Begin => {
                if open.contains_key(&e.lane) {
                    return Err(format!("nested phase span on lane {}", e.lane));
                }
                let device = find_arg(&e.args, "device")
                    .ok_or_else(|| format!("{} without device arg", e.name))?;
                open.insert(e.lane, (device, e.args.clone(), e.name));
            }
            Phase::End => {
                let (device, begin_args, name) = open
                    .remove(&e.lane)
                    .ok_or_else(|| format!("phase end without begin on lane {}", e.lane))?;
                if name != e.name {
                    return Err(format!("phase span mismatch on lane {}", e.lane));
                }
                let layer = find_arg(&begin_args, "layer").unwrap_or(0) as u32;
                let cost = find_arg(&e.args, "cost").unwrap_or(0);
                let wall_ns = find_arg(&e.args, "wall_ns").unwrap_or(0);
                let kind = if name == COMPUTE_SPAN {
                    PhaseKind::Compute
                } else {
                    let round = find_arg(&begin_args, "round").unwrap_or(0) as u32;
                    let coll = find_arg(&begin_args, "coll").unwrap_or(0);
                    PhaseKind::Exchange {
                        collective: collective_name(coll),
                        round,
                    }
                };
                let idle_wall_ns = find_arg(&e.args, "idle_ns").unwrap_or(0);
                by_device.entry(device as u32).or_default().push(Segment {
                    kind,
                    layer,
                    cost,
                    wall_ns,
                    idle_wall_ns,
                });
            }
        }
    }
    if let Some((lane, _)) = open.iter().next() {
        return Err(format!("phase span left open on lane {lane}"));
    }
    Ok(by_device
        .into_iter()
        .map(|(device, segments)| DeviceTimeline { device, segments })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causal::{CausalEdge, EndpointId};
    use crate::span::SpanEvent;

    fn compute(layer: u32, cost: u64) -> Segment {
        Segment {
            kind: PhaseKind::Compute,
            layer,
            cost,
            wall_ns: cost * 10,
            idle_wall_ns: 0,
        }
    }

    fn exchange(layer: u32, round: u32, cost: u64) -> Segment {
        Segment {
            kind: PhaseKind::Exchange {
                collective: "all_to_all",
                round,
            },
            layer,
            cost,
            wall_ns: cost * 10,
            idle_wall_ns: 1,
        }
    }

    fn edge(from: u32, to: u32, round: u32, seq: u64, bytes: u64) -> CausalEdge {
        CausalEdge {
            collective: "all_to_all",
            from: EndpointId {
                device: from,
                round,
                seq,
            },
            to: EndpointId {
                device: to,
                round,
                seq,
            },
            bytes,
        }
    }

    /// Two devices, device 0 computes 100 and device 1 computes 10, then
    /// they swap 8 bytes each.
    fn skewed_pair() -> (Vec<DeviceTimeline>, CausalLog) {
        let timelines = vec![
            DeviceTimeline {
                device: 0,
                segments: vec![compute(0, 100), exchange(0, 0, 16)],
            },
            DeviceTimeline {
                device: 1,
                segments: vec![compute(0, 10), exchange(0, 0, 16)],
            },
        ];
        let mut log = CausalLog::new();
        log.edges.push(edge(0, 1, 0, 0, 8));
        log.edges.push(edge(1, 0, 0, 0, 8));
        (timelines, log)
    }

    #[test]
    fn skewed_pair_attributes_idle_to_the_fast_device() {
        let (timelines, log) = skewed_pair();
        let r = analyze(&timelines, &log).expect("analyzes");
        // Device 0: compute 100, send 8 (done 108), recv arrives at 18
        // (device 1 computed 10, sent 8) — already there. Finish 116.
        // Device 1: compute 10, send 8 (done 18), wait for device 0's
        // send at 108, recv 8 → finish 116.
        assert_eq!(r.makespan, 116);
        assert_eq!(r.devices[0].idle_wait, 0);
        assert_eq!(r.devices[1].idle_wait, 108 - 18);
        assert_eq!(r.straggler(), 0);
        // Headroom: the 90-unit wait, within the blocking sender's
        // 100-unit preceding compute bound.
        assert_eq!(r.headroom_total(), 90);
        // The critical path crosses from device 1's tail back through
        // device 0's send and compute.
        assert!(r.critical_path.iter().any(|s| s.device == 0));
        assert!(r.critical_path.iter().any(|s| s.device == 1));
        assert_eq!(r.critical_path.last().unwrap().kind, "recv");
        let (b0, e0, i0) = r.fractions(0);
        assert!((b0 + e0 + i0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn analysis_ignores_wall_overlay_in_work_view() {
        let (timelines, log) = skewed_pair();
        let a = analyze(&timelines, &log).expect("a");
        let noisy: Vec<DeviceTimeline> = timelines
            .iter()
            .map(|tl| DeviceTimeline {
                device: tl.device,
                segments: tl
                    .segments
                    .iter()
                    .map(|s| Segment {
                        wall_ns: s.wall_ns * 3 + 7,
                        idle_wall_ns: s.idle_wall_ns + 2,
                        ..*s
                    })
                    .collect(),
            })
            .collect();
        let b = analyze(&noisy, &log).expect("b");
        assert_eq!(a.work_json(), b.work_json());
        assert_ne!(a.to_json().to_string_compact(), b.to_json().to_string_compact());
    }

    #[test]
    fn misaligned_rounds_are_rejected() {
        let (mut timelines, log) = skewed_pair();
        timelines[1].segments[1] = exchange(0, 3, 16);
        assert!(analyze(&timelines, &log).unwrap_err().contains("misaligned"));
    }

    #[test]
    fn counters_split_work_and_timing() {
        let (timelines, log) = skewed_pair();
        let r = analyze(&timelines, &log).expect("analyzes");
        let mut c = Counters::new();
        r.record_counters(&mut c);
        assert_eq!(c.count("critical.len"), 116);
        assert_eq!(c.count("device.00.attr_busy"), 100);
        assert_eq!(c.count("device.01.attr_idle"), 90);
        let work = c.only(&[Class::Work]);
        assert_eq!(work.count("critical.len"), 116);
        assert_eq!(work.count("hist.cost.values"), 4);
        // Wall overlay is Timing-class: absent from the Work view.
        assert!(!crate::counters_to_json(&work).contains("wall."));
    }

    #[test]
    fn trace_folding_matches_direct_timelines() {
        let (timelines, _) = skewed_pair();
        // Fabricate the event stream the cluster would record: one lane
        // per device, phase spans with the documented args.
        let mut events = Vec::new();
        for tl in &timelines {
            let lane = tl.device + 1;
            let mut seq = 0u64;
            for seg in &tl.segments {
                seq += 1;
                let (name, begin_args): (&'static str, Vec<(&'static str, u64)>) = match seg.kind {
                    PhaseKind::Compute => (
                        COMPUTE_SPAN,
                        vec![
                            ("device", u64::from(tl.device)),
                            ("layer", u64::from(seg.layer)),
                        ],
                    ),
                    PhaseKind::Exchange { round, .. } => (
                        EXCHANGE_SPAN,
                        vec![
                            ("device", u64::from(tl.device)),
                            ("layer", u64::from(seg.layer)),
                            ("round", u64::from(round)),
                            ("coll", 0),
                        ],
                    ),
                };
                events.push(SpanEvent {
                    name,
                    phase: Phase::Begin,
                    tid: u64::from(lane),
                    lane,
                    seq,
                    ts_ns: 0,
                    args: begin_args,
                });
                seq += 1;
                let mut end_args = vec![("cost", seg.cost), ("wall_ns", seg.wall_ns)];
                if matches!(seg.kind, PhaseKind::Exchange { .. }) {
                    end_args.push(("idle_ns", seg.idle_wall_ns));
                }
                events.push(SpanEvent {
                    name,
                    phase: Phase::End,
                    tid: u64::from(lane),
                    lane,
                    seq,
                    ts_ns: 0,
                    args: end_args,
                });
            }
        }
        let trace = Trace { events, dropped: 0 };
        let folded = timelines_from_trace(&trace).expect("folds");
        let direct: Vec<DeviceTimeline> = timelines.iter().map(DeviceTimeline::logical).collect();
        let folded: Vec<DeviceTimeline> = folded.iter().map(DeviceTimeline::logical).collect();
        assert_eq!(folded, direct);
    }

    #[test]
    fn single_device_has_no_idle() {
        let timelines = vec![DeviceTimeline {
            device: 0,
            segments: vec![compute(0, 50), exchange(0, 0, 0)],
        }];
        let r = analyze(&timelines, &CausalLog::new()).expect("analyzes");
        assert_eq!(r.makespan, 50);
        assert_eq!(r.devices[0].idle_wait, 0);
        assert_eq!(r.headroom_total(), 0);
    }
}
