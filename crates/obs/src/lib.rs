//! `wisegraph-obs` — the hermetic tracing and metrics layer.
//!
//! Every other execution crate (tensor, kernels, gtask, dfg, sim, core)
//! reports what it *did* through this one: structured [`span!`] intervals
//! for the timeline, and a [`Counters`] registry for the work itself.
//! The split matters — WiseGraph's testing story is built on determinism,
//! and wall-clock time is noise. So work counters (edges processed, FLOPs,
//! bytes gathered/scattered, partition shapes) are pure functions of the
//! inputs and bit-comparable run to run, while timestamps ride along as an
//! overlay that exporters render but gates never compare.
//!
//! The crate has **zero dependencies** (it sits at the bottom of the
//! workspace graph) and owns the workspace's only monotonic-clock site
//! ([`clock`]); `testkit::hermetic::scan_sources` flags `Instant` anywhere
//! else in shipped code.
//!
//! Typical producer:
//!
//! ```
//! use wisegraph_obs::{span, Counters};
//!
//! fn process(edges: &[u32], c: &mut Counters) {
//!     let mut s = span!("demo.process", edges = edges.len());
//!     c.add(wisegraph_obs::keys::KERNEL_EDGES, edges.len() as u64);
//!     s.arg("done", 1u64);
//! }
//! ```
//!
//! Typical consumer:
//!
//! ```
//! let ((), trace) = wisegraph_obs::capture(|| {
//!     let _s = wisegraph_obs::span!("demo.step");
//! });
//! let chrome = wisegraph_obs::export::trace_to_chrome_json(&trace);
//! assert!(chrome.contains("traceEvents"));
//! ```

pub mod causal;
pub mod clock;
pub mod counters;
pub mod critical;
pub mod export;
pub mod hist;
pub mod json;
pub mod span;

pub use causal::{CausalEdge, CausalLog, EndpointId};
pub use counters::{pool_reuse_ratio, Class, Counters, MergeKind, Metric, Value};
pub use critical::{analyze, AttributionReport, DeviceTimeline, PhaseKind, Segment};
pub use export::{counters_from_json, counters_to_json, trace_to_chrome_json};
pub use hist::Histogram;
pub use span::{capture, with_lane, SpanGuard, Trace};

/// The shared metric-name vocabulary.
///
/// Components that report the same quantity must use the same key, or
/// merges silently split what should aggregate; keeping the canonical
/// names here (instead of string literals at each call site) makes the
/// compiler enforce that.
pub mod keys {
    /// Pool checkouts served by a fresh allocation ([`Resource`](crate::Class::Resource), sum).
    pub const POOL_CREATED: &str = "pool.buffers_created";
    /// Pool checkouts served from the pool ([`Resource`](crate::Class::Resource), sum).
    pub const POOL_REUSED: &str = "pool.buffers_reused";
    /// Bytes currently parked in pools ([`Resource`](crate::Class::Resource), sum).
    pub const POOL_RESIDENT: &str = "pool.resident_bytes";
    /// High-water mark of parked bytes ([`Resource`](crate::Class::Resource), max).
    pub const POOL_PEAK: &str = "pool.peak_resident_bytes";
    /// Buffers currently checked out of the pool
    /// ([`Resource`](crate::Class::Resource), gauge).
    pub const POOL_OPEN_LEASES: &str = "pool.open_leases";
    /// High-water mark of simultaneously checked-out buffers
    /// ([`Resource`](crate::Class::Resource), max).
    pub const POOL_PEAK_OPEN_LEASES: &str = "pool.peak_open_leases";

    /// High-water mark of parked bytes within one size class
    /// ([`Resource`](crate::Class::Resource), max).
    pub fn pool_class_peak(class: usize) -> String {
        format!("pool.size_class.{class:02}.peak_resident_bytes")
    }

    /// gTasks executed ([`Work`](crate::Class::Work), sum).
    pub const KERNEL_TASKS: &str = "kernel.tasks";
    /// Edges processed by kernel programs ([`Work`](crate::Class::Work), sum).
    pub const KERNEL_EDGES: &str = "kernel.edges";
    /// Floating-point operations issued ([`Work`](crate::Class::Work), sum).
    pub const KERNEL_FLOPS: &str = "kernel.flops";
    /// Bytes read by gather-style ops ([`Work`](crate::Class::Work), sum).
    pub const KERNEL_BYTES_GATHERED: &str = "kernel.bytes_gathered";
    /// Bytes written by scatter-style ops ([`Work`](crate::Class::Work), sum).
    pub const KERNEL_BYTES_SCATTERED: &str = "kernel.bytes_scattered";
    /// gTasks that ran through at least one fused segment
    /// ([`Resource`](crate::Class::Resource), sum).
    pub const KERNEL_FUSED_TASKS: &str = "kernel.fused_tasks";
    /// Micro-kernel instructions replaced by fused segments
    /// ([`Resource`](crate::Class::Resource), sum).
    pub const KERNEL_FUSED_MICRO_OPS: &str = "kernel.fused_micro_ops";

    /// gTasks produced by the partitioner ([`Work`](crate::Class::Work), sum).
    pub const PARTITION_TASKS: &str = "partition.tasks";
    /// Edges covered by the plan ([`Work`](crate::Class::Work), sum).
    pub const PARTITION_EDGES: &str = "partition.edges";
    /// Largest gTask, in edges ([`Work`](crate::Class::Work), max).
    pub const PARTITION_MAX_TASK_EDGES: &str = "partition.max_task_edges";
    /// Median gTask size, in edges ([`Work`](crate::Class::Work), max).
    pub const PARTITION_MEDIAN_TASK_EDGES: &str = "partition.median_task_edges";

    /// Edge-weighted dedup ratio (`uniq(attr) / edges`) of one attribute
    /// across a plan ([`Work`](crate::Class::Work), gauge).
    pub fn partition_dedup_ratio(attr: &str) -> String {
        format!("partition.dedup_ratio.{attr}")
    }

    /// Total sampled-fan-out edges across workers ([`Work`](crate::Class::Work), sum).
    pub const FANOUT_TOTAL_EDGES: &str = "fanout.total_edges";
    /// Heaviest per-worker fan-out share ([`Work`](crate::Class::Work), max).
    pub const FANOUT_CRITICAL_EDGES: &str = "fanout.critical_path_edges";

    /// Fan-out edges handled by one sampling worker ([`Work`](crate::Class::Work), sum).
    pub fn fanout_worker_edges(worker: usize) -> String {
        format!("fanout.worker.{worker:02}.edges")
    }

    /// Engine worker slots used by an execution ([`Resource`](crate::Class::Resource), max).
    pub const ENGINE_THREADS: &str = "engine.threads";

    /// Distinct accumulator cells the shadow sanitizer tracked
    /// ([`Resource`](crate::Class::Resource), sum).
    pub const SANITIZE_CELLS: &str = "sanitize.cells_tracked";
    /// Row-writes the shadow sanitizer recorded and checked
    /// ([`Resource`](crate::Class::Resource), sum).
    pub const SANITIZE_WRITES: &str = "sanitize.writes_checked";
    /// Cells legitimately written by more than one gTask, handled by the
    /// deterministic merge ([`Resource`](crate::Class::Resource), sum).
    pub const SANITIZE_SHARED_CELLS: &str = "sanitize.shared_cells";
    /// Exclusive-ownership violations the sanitizer caught
    /// ([`Resource`](crate::Class::Resource), sum).
    pub const SANITIZE_CONFLICTS: &str = "sanitize.conflicts";

    /// Planning-cache lookups served from the store
    /// ([`Resource`](crate::Class::Resource), sum).
    pub const CACHE_HITS: &str = "cache.hits";
    /// Planning-cache lookups that recomputed and stored
    /// ([`Resource`](crate::Class::Resource), sum).
    pub const CACHE_MISSES: &str = "cache.misses";
    /// Cache entries dropped by key invalidation
    /// ([`Resource`](crate::Class::Resource), sum).
    pub const CACHE_INVALIDATIONS: &str = "cache.invalidations";
    /// High-water mark of live cache entries
    /// ([`Resource`](crate::Class::Resource), max).
    pub const CACHE_ENTRIES: &str = "cache.entries";
    /// High-water mark of serialized bytes resident in the store
    /// ([`Resource`](crate::Class::Resource), max).
    pub const CACHE_STORED_BYTES: &str = "cache.stored_bytes";
    /// Hit fraction of all lookups so far, in parts per thousand
    /// ([`Resource`](crate::Class::Resource), gauge).
    pub const CACHE_HIT_RATE_PERMILLE: &str = "cache.hit_rate_permille";

    /// Total bytes moved through cluster collectives, counted once per
    /// send ([`Work`](crate::Class::Work), sum): a pure function of graph,
    /// schedule, and device count, independent of per-device thread
    /// counts.
    pub const COMM_BYTES_EXCHANGED: &str = "comm.bytes_exchanged";
    /// Point-to-point messages sent through cluster collectives
    /// ([`Work`](crate::Class::Work), sum).
    pub const COMM_MESSAGES: &str = "comm.messages";
    /// Devices participating in cluster execution
    /// ([`Resource`](crate::Class::Resource), max).
    pub const COMM_DEVICES: &str = "comm.devices";
    /// Bytes sent through one named collective
    /// ([`Work`](crate::Class::Work), sum).
    pub fn comm_collective_bytes(collective: &str) -> String {
        format!("comm.collective.{collective}.bytes")
    }
    /// Per-device counter prefix for [`crate::Counters::merge_prefixed`]:
    /// zero-padded so lexicographic order equals device order.
    pub fn device_prefix(device: usize) -> String {
        format!("device.{device:02}")
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn key_helpers_produce_sortable_names() {
        // Zero padding keeps lexicographic order == numeric order for the
        // worker/class counts this workspace uses.
        assert!(super::keys::pool_class_peak(2) < super::keys::pool_class_peak(10));
        assert!(super::keys::fanout_worker_edges(2) < super::keys::fanout_worker_edges(10));
        assert_eq!(
            super::keys::partition_dedup_ratio("src"),
            "partition.dedup_ratio.src"
        );
        assert!(super::keys::device_prefix(2) < super::keys::device_prefix(10));
        assert_eq!(
            super::keys::comm_collective_bytes("all_gather"),
            "comm.collective.all_gather.bytes"
        );
    }
}
