//! Criterion microbenchmarks of the real CPU micro-kernels.
//!
//! These ground the simulator's calibration: the *relative* throughput of
//! edge-by-edge versus batched execution, and of coalesced versus random
//! gathers, must point the same way on real hardware as in the device
//! model (Figures 10 and 18 rely on that ordering).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wisegraph_graph::generate::{rmat, RmatParams};
use wisegraph_gtask::{partition, PartitionTable};
use wisegraph_kernels::exec;
use wisegraph_tensor::{init, ops, Tensor};

fn bench_gather_scatter(c: &mut Criterion) {
    let n = 20_000;
    let f = 64;
    let x = init::uniform_tensor(&[n, f], -1.0, 1.0, 1);
    let g = rmat(&RmatParams::standard(n, 8 * n, 3));
    let random_idx: Vec<u32> = g.src().to_vec();
    let mut sorted_idx = random_idx.clone();
    sorted_idx.sort_unstable();

    let mut group = c.benchmark_group("gather_rows");
    group.sample_size(20);
    group.bench_function("random", |b| {
        b.iter(|| ops::gather_rows(black_box(&x), black_box(&random_idx)))
    });
    group.bench_function("sorted", |b| {
        b.iter(|| ops::gather_rows(black_box(&x), black_box(&sorted_idx)))
    });
    group.finish();

    let src = ops::gather_rows(&x, &random_idx);
    let mut group = c.benchmark_group("index_add_rows");
    group.sample_size(20);
    group.bench_function("scatter_add", |b| {
        b.iter(|| ops::index_add_rows(n, black_box(&src), black_box(g.dst())))
    });
    group.finish();
}

fn bench_matmul_shapes(c: &mut Criterion) {
    // Batched tall-skinny matmuls vs one dense product: how throughput
    // scales with the batch dimension K.
    let f = 64;
    let w = init::uniform_tensor(&[f, f], -1.0, 1.0, 5);
    let mut group = c.benchmark_group("matmul_batch_rows");
    group.sample_size(20);
    for k in [1usize, 8, 64, 512] {
        let x = init::uniform_tensor(&[k, f], -1.0, 1.0, 7);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| ops::matmul(black_box(&x), black_box(&w)))
        });
    }
    group.finish();
}

fn bench_rgcn_kernels(c: &mut Criterion) {
    // The Figure 10 pair: edge-by-edge vs batched RGCN message passing.
    let g = rmat(&RmatParams::standard(4000, 40_000, 11).with_edge_types(4));
    let f = 32;
    let h = init::uniform_tensor(&[4000, f], -1.0, 1.0, 13);
    let w = init::uniform_tensor(&[4, f, f], -1.0, 1.0, 17);
    let plan = partition(&g, &PartitionTable::src_batch_per_type(64));

    let mut group = c.benchmark_group("rgcn_message_passing");
    group.sample_size(10);
    group.bench_function("edge_by_edge", |b| {
        b.iter(|| exec::rgcn_edge_by_edge(black_box(&g), black_box(&h), black_box(&w)))
    });
    group.bench_function("batched_k64", |b| {
        b.iter(|| {
            exec::rgcn_batched(
                black_box(&g),
                black_box(&plan),
                black_box(&h),
                black_box(&w),
            )
        })
    });
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let g = rmat(&RmatParams::standard(8000, 80_000, 19));
    let h = init::uniform_tensor(&[8000, 64], -1.0, 1.0, 23);
    let plan = partition(&g, &PartitionTable::vertex_centric());

    let mut group = c.benchmark_group("neighbor_aggregation");
    group.sample_size(10);
    group.bench_function("edgewise", |b| {
        b.iter(|| exec::aggregate_sum_edgewise(black_box(&g), black_box(&h)))
    });
    group.bench_function("tasked_vertex_centric", |b| {
        b.iter(|| {
            exec::aggregate_sum_tasked(black_box(&g), black_box(&plan), black_box(&h))
        })
    });
    group.finish();
}

fn bench_partitioner(c: &mut Criterion) {
    // The O(E log E) greedy partitioner itself (Table 3's overhead story).
    let g = rmat(&RmatParams::standard(20_000, 200_000, 29).with_edge_types(8));
    let mut group = c.benchmark_group("greedy_partitioner");
    group.sample_size(10);
    for (name, table) in [
        ("vertex_centric", PartitionTable::vertex_centric()),
        ("src_batch_per_type", PartitionTable::src_batch_per_type(64)),
        ("dst_batch_min_degree", PartitionTable::dst_batch_min_degree(64)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| partition(black_box(&g), black_box(&table)))
        });
    }
    group.finish();
}

fn bench_autograd_layer(c: &mut Criterion) {
    // One trainable GCN layer forward+backward: the accuracy experiment's
    // per-epoch building block.
    use wisegraph_models::{Gcn, GnnModel};
    use wisegraph_tensor::Tape;
    let g = rmat(&RmatParams::standard(2000, 16_000, 31));
    let feats: Tensor = init::uniform_tensor(&[2000, 32], -1.0, 1.0, 37);
    let model = Gcn::new(&[32, 32, 8], 41);
    let mut group = c.benchmark_group("trainable_gcn");
    group.sample_size(10);
    group.bench_function("forward_backward", |b| {
        b.iter(|| {
            let tape = Tape::new();
            let x = tape.input(feats.clone());
            let out = model.forward(&tape, &g, x);
            let loss = tape.mean(out.logits);
            tape.backward(loss);
            black_box(tape.grad(out.params[0]));
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gather_scatter,
    bench_matmul_shapes,
    bench_rgcn_kernels,
    bench_aggregation,
    bench_partitioner,
    bench_autograd_layer
);
criterion_main!(benches);
