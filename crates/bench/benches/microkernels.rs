//! Microbenchmarks of the real CPU micro-kernels, on the in-repo testkit
//! bench harness (warmup + median-of-N + JSON to `target/testkit-bench/`).
//!
//! These ground the simulator's calibration: the *relative* throughput of
//! edge-by-edge versus batched execution, and of coalesced versus random
//! gathers, must point the same way on real hardware as in the device
//! model (Figures 10 and 18 rely on that ordering).
//!
//! Run with `cargo bench --offline`; `WG_BENCH_SAMPLES` scales the
//! per-case sample count.

use wisegraph_graph::generate::{rmat, RmatParams};
use wisegraph_gtask::{partition, PartitionTable};
use wisegraph_kernels::exec;
use wisegraph_tensor::{init, ops, Tensor};
use wisegraph_testkit::bench::{black_box, Bench};

fn bench_gather_scatter(bench: &mut Bench) {
    let n = 20_000;
    let f = 64;
    let x = init::uniform_tensor(&[n, f], -1.0, 1.0, 1);
    let g = rmat(&RmatParams::standard(n, 8 * n, 3));
    let random_idx: Vec<u32> = g.src().to_vec();
    let mut sorted_idx = random_idx.clone();
    sorted_idx.sort_unstable();

    bench
        .group("gather_rows")
        .sample_size(20)
        .bench_function("random", || {
            black_box(ops::gather_rows(black_box(&x), black_box(&random_idx)));
        })
        .bench_function("sorted", || {
            black_box(ops::gather_rows(black_box(&x), black_box(&sorted_idx)));
        });

    let src = ops::gather_rows(&x, &random_idx);
    bench
        .group("index_add_rows")
        .sample_size(20)
        .bench_function("scatter_add", || {
            black_box(ops::index_add_rows(n, black_box(&src), black_box(g.dst())));
        });
}

fn bench_matmul_shapes(bench: &mut Bench) {
    // Batched tall-skinny matmuls vs one dense product: how throughput
    // scales with the batch dimension K.
    let f = 64;
    let w = init::uniform_tensor(&[f, f], -1.0, 1.0, 5);
    let mut group = bench.group("matmul_batch_rows");
    group.sample_size(20);
    for k in [1usize, 8, 64, 512] {
        let x = init::uniform_tensor(&[k, f], -1.0, 1.0, 7);
        group.bench_function(&k.to_string(), || {
            black_box(ops::matmul(black_box(&x), black_box(&w)));
        });
    }
}

fn bench_rgcn_kernels(bench: &mut Bench) {
    // The Figure 10 pair: edge-by-edge vs batched RGCN message passing.
    let g = rmat(&RmatParams::standard(4000, 40_000, 11).with_edge_types(4));
    let f = 32;
    let h = init::uniform_tensor(&[4000, f], -1.0, 1.0, 13);
    let w = init::uniform_tensor(&[4, f, f], -1.0, 1.0, 17);
    let plan = partition(&g, &PartitionTable::src_batch_per_type(64));

    bench
        .group("rgcn_message_passing")
        .sample_size(10)
        .bench_function("edge_by_edge", || {
            black_box(exec::rgcn_edge_by_edge(
                black_box(&g),
                black_box(&h),
                black_box(&w),
            ));
        })
        .bench_function("batched_k64", || {
            black_box(exec::rgcn_batched(
                black_box(&g),
                black_box(&plan),
                black_box(&h),
                black_box(&w),
            ));
        });
}

fn bench_aggregation(bench: &mut Bench) {
    let g = rmat(&RmatParams::standard(8000, 80_000, 19));
    let h = init::uniform_tensor(&[8000, 64], -1.0, 1.0, 23);
    let plan = partition(&g, &PartitionTable::vertex_centric());

    bench
        .group("neighbor_aggregation")
        .sample_size(10)
        .bench_function("edgewise", || {
            black_box(exec::aggregate_sum_edgewise(black_box(&g), black_box(&h)));
        })
        .bench_function("tasked_vertex_centric", || {
            black_box(exec::aggregate_sum_tasked(
                black_box(&g),
                black_box(&plan),
                black_box(&h),
            ));
        });
}

fn bench_partitioner(bench: &mut Bench) {
    // The O(E log E) greedy partitioner itself (Table 3's overhead story).
    let g = rmat(&RmatParams::standard(20_000, 200_000, 29).with_edge_types(8));
    let mut group = bench.group("greedy_partitioner");
    group.sample_size(10);
    for (name, table) in [
        ("vertex_centric", PartitionTable::vertex_centric()),
        ("src_batch_per_type", PartitionTable::src_batch_per_type(64)),
        ("dst_batch_min_degree", PartitionTable::dst_batch_min_degree(64)),
    ] {
        group.bench_function(name, || {
            black_box(partition(black_box(&g), black_box(&table)));
        });
    }
}

fn bench_autograd_layer(bench: &mut Bench) {
    // One trainable GCN layer forward+backward: the accuracy experiment's
    // per-epoch building block.
    use wisegraph_models::{Gcn, GnnModel};
    use wisegraph_tensor::Tape;
    let g = rmat(&RmatParams::standard(2000, 16_000, 31));
    let feats: Tensor = init::uniform_tensor(&[2000, 32], -1.0, 1.0, 37);
    let model = Gcn::new(&[32, 32, 8], 41);
    bench
        .group("trainable_gcn")
        .sample_size(10)
        .bench_function("forward_backward", || {
            let tape = Tape::new();
            let x = tape.input(feats.clone());
            let out = model.forward(&tape, &g, x);
            let loss = tape.mean(out.logits);
            tape.backward(loss);
            black_box(tape.grad(out.params[0]));
        });
}

fn main() {
    let mut bench = Bench::new("microkernels");
    bench_gather_scatter(&mut bench);
    bench_matmul_shapes(&mut bench);
    bench_rgcn_kernels(&mut bench);
    bench_aggregation(&mut bench);
    bench_partitioner(&mut bench);
    bench_autograd_layer(&mut bench);
    bench.finish();
}
