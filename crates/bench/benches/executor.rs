//! Allocating vs. workspace-pooled parallel executor (the engine's reason
//! to exist), on the in-repo testkit bench harness.
//!
//! Both cases run the same seeded RGCN workload over the same partition
//! plan and produce bit-identical outputs (see `tests/workspace_parity.rs`);
//! the only difference is buffer provenance. `alloc` pays a fresh
//! `TaskWorkspace` and accumulator per task/call, `workspace` serves them
//! from a persistent [`Engine`]'s per-worker pools warmed by one prior
//! call.
//!
//! Run with `cargo bench --offline --bench executor`; JSON lands in
//! `target/testkit-bench/executor.json` (relative to this crate).

use std::collections::HashMap;
use wisegraph_graph::generate::{rmat, RmatParams};
use wisegraph_graph::Graph;
use wisegraph_gtask::{partition, PartitionPlan, PartitionTable};
use wisegraph_kernels::engine::{execute_parallel_alloc, Engine};
use wisegraph_models::ModelKind;
use wisegraph_tensor::{init, Tensor};
use wisegraph_testkit::bench::{black_box, Bench};

struct Workload {
    g: Graph,
    plan: PartitionPlan,
    dfg: wisegraph_dfg::Dfg,
    globals: HashMap<String, Tensor>,
}

fn rgcn_workload() -> Workload {
    // Fine-grained gTasks (small per-type source batches): per-task compute
    // is tiny, so buffer churn dominates the allocating path — the regime
    // the workspace pool exists for.
    let g = rmat(&RmatParams::standard(4000, 40_000, 71).with_edge_types(4));
    let f = 8;
    let dfg = ModelKind::Rgcn.layer_dfg(f, f);
    let mut globals = HashMap::new();
    globals.insert(
        "h".to_string(),
        init::uniform_tensor(&[g.num_vertices(), f], -1.0, 1.0, 73),
    );
    globals.insert(
        "W".to_string(),
        init::uniform_tensor(&[g.num_edge_types(), f, f], -1.0, 1.0, 79),
    );
    let plan = partition(&g, &PartitionTable::src_batch_per_type(2));
    Workload { g, plan, dfg, globals }
}

fn bench_rgcn_executor(bench: &mut Bench) {
    let w = rgcn_workload();
    for threads in [1usize, 4] {
        let engine = Engine::new(threads);
        // Warm the pools: the steady-state comparison is what a training
        // loop sees from its second epoch on.
        engine
            .execute(&w.dfg, &w.g, &w.plan, &w.globals)
            .expect("rgcn compiles per task");
        bench
            .group(&format!("rgcn_executor_t{threads}"))
            .sample_size(20)
            .bench_function("alloc", || {
                black_box(
                    execute_parallel_alloc(
                        black_box(&w.dfg),
                        black_box(&w.g),
                        black_box(&w.plan),
                        black_box(&w.globals),
                        threads,
                    )
                    .unwrap(),
                );
            })
            .bench_function("workspace", || {
                black_box(
                    engine
                        .execute(
                            black_box(&w.dfg),
                            black_box(&w.g),
                            black_box(&w.plan),
                            black_box(&w.globals),
                        )
                        .unwrap(),
                );
            });
    }
}

fn main() {
    let mut bench = Bench::new("executor");
    bench_rgcn_executor(&mut bench);
    bench.finish();
}
