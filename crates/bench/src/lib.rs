//! Shared harness utilities for the per-figure/table benchmark binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§7): it builds the workload, runs the real
//! partition / transformation / kernel-generation pipeline, prices it on
//! the shared device model, and prints the same rows or series the paper
//! reports. `EXPERIMENTS.md` records the paper-vs-measured comparison.

use wisegraph_graph::{DatasetKind, DatasetSpec, Graph};

/// A named column of a printed table.
pub struct Cell {
    /// Column label.
    pub label: String,
    /// Formatted value.
    pub value: String,
}

/// Prints a Markdown-style table given headers and rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", headers.join(" | "));
    println!("|{}|", headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Formats seconds as milliseconds with three significant digits, or "OOM".
pub fn fmt_ms(seconds: f64, oom: bool) -> String {
    if oom {
        return "OOM".to_string();
    }
    let ms = seconds * 1e3;
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 10.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.2}")
    }
}

/// Formats seconds with two decimals.
pub fn fmt_s(seconds: f64) -> String {
    format!("{seconds:.2}")
}

/// Builds a dataset's analogue graph and returns it with its spec,
/// printing the substitution note once.
pub fn build_dataset(kind: DatasetKind) -> (Graph, DatasetSpec) {
    let spec = kind.spec();
    eprintln!(
        "[dataset {}] paper {}V/{}E -> generated {}V/{}E (scale x{:.0})",
        kind.short_name(),
        spec.paper_vertices,
        spec.paper_edges,
        spec.gen_vertices,
        spec.gen_edges,
        spec.scale()
    );
    (spec.build(), spec)
}

/// Returns `true` when the harness was invoked with `--quick` (smaller
/// sweeps for smoke testing).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_formatting() {
        assert_eq!(fmt_ms(0.168, false), "168");
        assert_eq!(fmt_ms(0.0331, false), "33.1");
        assert_eq!(fmt_ms(0.00893, false), "8.93");
        assert_eq!(fmt_ms(1.0, true), "OOM");
    }

    /// The microkernels bench target runs only under `cargo bench`
    /// (`test = false`); this smoke test keeps the testkit harness it
    /// relies on exercised by tier-1 against a real kernel.
    #[test]
    fn testkit_bench_harness_measures_a_real_kernel() {
        use wisegraph_graph::generate::{rmat, RmatParams};
        use wisegraph_testkit::bench::{black_box, Bench};

        let g = rmat(&RmatParams::standard(500, 4000, 1));
        let mut b = Bench::new("smoke");
        b.group("degree").sample_size(3).bench_function("in", || {
            black_box(g.in_degree().iter().map(|&d| d as u64).sum::<u64>());
        });
        assert_eq!(b.results().len(), 1);
        assert!(b.to_json().contains("\"group\": \"degree\""));
    }
}
