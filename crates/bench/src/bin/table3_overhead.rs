//! Table 3 — preprocessing overhead of joint optimization versus the other
//! necessary steps of training SAGE, on PA and AR.
//!
//! Substitution note: the paper runs graph processing "in parallel using
//! GPU" (§6.3); this reproduction's partitioner is single-threaded CPU
//! code on a scaled-down graph. The table therefore reports (a) the
//! *measured* CPU wall-clock of the full search at the generated scale and
//! (b) a projection of the paper's GPU-parallel processing at paper scale
//! (sort-and-scan is bandwidth-bound: ~4 passes over 24 B/edge per
//! evaluated plan at half HBM bandwidth, plus per-plan tuning time).
//!
//! Expected shape: joint optimization is a one-shot cost comparable to the
//! setup steps and a small fraction of convergence.

use wisegraph_obs::clock::Stopwatch;
use wisegraph_baselines::single::LayerDims;
use wisegraph_bench::{build_dataset, fmt_s, print_table};
use wisegraph_core::WiseGraph;
use wisegraph_graph::DatasetKind;
use wisegraph_models::ModelKind;
use wisegraph_sim::DeviceSpec;

fn main() {
    let dev = DeviceSpec::a100_pcie();
    let mut columns: Vec<Vec<String>> = Vec::new();
    let mut names = Vec::new();
    for kind in [DatasetKind::Papers, DatasetKind::Arxiv] {
        names.push(kind.short_name());
        // "Disk to DRAM": generating/ingesting the graph stands in for
        // reading it from disk; measured for real, scaled to paper size.
        let t0 = Stopwatch::start();
        let (g, spec) = build_dataset(kind);
        let ingest = t0.elapsed_seconds() * spec.scale();

        // "Train initialization": building features/weights.
        let t0 = Stopwatch::start();
        let _feats = wisegraph_tensor::init::uniform_tensor(
            &[g.num_vertices(), spec.feature_dim],
            -1.0,
            1.0,
            7,
        );
        let init = t0.elapsed_seconds() * spec.scale();

        // "Joint optimization": the real three-stage search, measured.
        let dims = LayerDims {
            f_in: spec.feature_dim,
            hidden: 32,
            classes: spec.num_classes,
            layers: 3,
        };
        let wg = WiseGraph::new(dev);
        let t0 = Stopwatch::start();
        let out = wg.optimize(&g, ModelKind::Sage, &dims);
        let joint_cpu = t0.elapsed_seconds();
        let stats = wg.stats();

        // GPU-parallel projection at paper scale: bandwidth-bound
        // sort-and-scan per evaluated plan + per-plan kernel tuning.
        let passes = 4.0;
        let bytes_per_edge = 24.0;
        let joint_gpu = stats.evaluated as f64
            * (spec.paper_edges as f64 * bytes_per_edge * passes / (0.5 * dev.mem_bw)
                + 0.05);

        // "Convergence": 100 epochs of simulated training plus a full
        // inference pass per epoch, at paper scale.
        let epoch = out.time_per_iter * spec.scale();
        let inference = epoch / 3.0; // forward only
        let convergence = (epoch + inference) * 100.0;

        columns.push(vec![
            fmt_s(init),
            fmt_s(ingest),
            fmt_s(convergence),
            format!("{joint_cpu:.1} (measured CPU, 1/{:.0} scale)", spec.scale()),
            fmt_s(joint_gpu),
            format!("{:.2}%", 100.0 * joint_gpu / convergence),
        ]);
    }
    let rows: Vec<Vec<String>> = (0..6)
        .map(|i| {
            let label = [
                "Train initialization",
                "Disk to DRAM",
                "Convergence (100 epochs)",
                "Joint optimization (CPU, generated graph)",
                "Joint optimization (GPU projection, paper scale)",
                "Joint / convergence",
            ][i];
            let mut row = vec![label.to_string()];
            for c in &columns {
                row.push(c[i].clone());
            }
            row
        })
        .collect();
    print_table(
        "Table 3: processing time (s) for training SAGE",
        &["Step", names[0], names[1]],
        &rows,
    );
    println!(
        "\nPaper: joint optimization 100s vs 18915s convergence on PA (0.5%), \
         12s vs 662s on AR (1.8%); WiseGraph's tuning is a one-shot cost. \
         Note the paper's convergence figure includes framework/host \
         overheads our simulator does not model."
    );
}
