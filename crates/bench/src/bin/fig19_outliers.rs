//! Figure 19 — differentiated execution of outlier gTasks on AR.
//!
//! For each model, the plan the paper calls out (frequent-value outliers
//! for RGCN, overfill for GAT, underfill for the rest) is scheduled
//! uniformly and with differentiated outlier handling (§6.2).
//!
//! Expected shape: a large share of uniform execution time sits in outlier
//! tasks (paper: 52.9% on average); differentiated execution cuts outlier
//! time by ~60% and total time by ~33%.

use wisegraph_baselines::single::LayerDims;
use wisegraph_bench::{build_dataset, print_table};
use wisegraph_core::joint::{compare_scheduling, DifferentiationConfig};
use wisegraph_core::plan::{ExecutionPlan, OpPartitionKind};
use wisegraph_graph::{AttrKind, DatasetKind};
use wisegraph_gtask::PartitionTable;
use wisegraph_models::ModelKind;
use wisegraph_sim::DeviceSpec;

/// The restriction whose outlier class the paper highlights per model.
fn table_for(model: ModelKind) -> PartitionTable {
    match model {
        // dst-id=1 & edge-id=K: hub destinations recur across tasks
        // (frequent values).
        ModelKind::Rgcn => PartitionTable::new()
            .exact(AttrKind::DstId, 1)
            .exact(AttrKind::EdgeId, 32),
        // src=K & type=1: high-degree sources overfill tasks.
        ModelKind::Gat => PartitionTable::new().exact(AttrKind::SrcId, 64),
        // dst batches: low-degree destinations underfill.
        _ => PartitionTable::new()
            .exact(AttrKind::DstId, 1)
            .exact(AttrKind::EdgeId, 64),
    }
}

fn main() {
    let (g, spec) = build_dataset(DatasetKind::Arxiv);
    let dev = DeviceSpec::a100_pcie();
    let dims = LayerDims::paper_single(spec.feature_dim, spec.num_classes);
    let (fi, fo) = dims.layer_io(1);
    let mut rows = Vec::new();
    let mut outlier_fracs = Vec::new();
    let mut total_reductions = Vec::new();
    for model in ModelKind::ALL {
        let dfg = model.layer_dfg(fi, fo);
        let plan =
            ExecutionPlan::build(&g, table_for(model), &dfg, OpPartitionKind::Fused);
        let cmp = compare_scheduling(&plan, &g, &dev, &DifferentiationConfig::default());
        let reduction = 100.0 * (1.0 - cmp.differentiated / cmp.uniform);
        rows.push(vec![
            model.name().to_string(),
            format!(
                "{}u/{}o/{}f of {}",
                cmp.summary.underfill,
                cmp.summary.overfill,
                cmp.summary.frequent,
                cmp.summary.regular
                    + cmp.summary.underfill
                    + cmp.summary.overfill
                    + cmp.summary.frequent
            ),
            format!("{:.1}%", 100.0 * cmp.outlier_time_fraction),
            format!("{:.3}ms", cmp.uniform * 1e3),
            format!("{:.3}ms", cmp.differentiated * 1e3),
            format!("{reduction:.1}%"),
        ]);
        outlier_fracs.push(cmp.outlier_time_fraction);
        total_reductions.push(reduction);
    }
    print_table(
        "Figure 19: uniform vs differentiated gTask execution (AR)",
        &[
            "Model",
            "outliers (under/over/freq of total)",
            "outlier time share",
            "uniform",
            "differentiated",
            "total reduction",
        ],
        &rows,
    );
    println!(
        "\nMean outlier time share: {:.1}% (paper: 52.9%); mean total \
         reduction: {:.1}% (paper: 33.1%)",
        100.0 * outlier_fracs.iter().sum::<f64>() / outlier_fracs.len() as f64,
        total_reductions.iter().sum::<f64>() / total_reductions.len() as f64
    );
}
