//! Figure 17 — execution-time breakdown with and without
//! duplication-aware DFG transformation, on AR and PA-S.
//!
//! The baseline runs the original (user-written) DFG; the optimized
//! version runs the transformed DFG with the same kernels. Time is split
//! into indexing and neural components per kernel class.
//!
//! Expected shape: RGCN's neural time shrinks dramatically on AR (paper:
//! −92.7%, many sources share an edge type); SAGE shows no duplication win
//! on AR but a large one on PA-S (paper: −78.5%; fewer destinations than
//! sources).

use wisegraph_baselines::single::LayerDims;
use wisegraph_bench::{build_dataset, print_table};
use wisegraph_core::plan::{ExecutionPlan, OpPartitionKind};
use wisegraph_graph::DatasetKind;
use wisegraph_gtask::PartitionTable;
use wisegraph_models::ModelKind;
use wisegraph_sim::DeviceSpec;

/// Splits a plan's simulated time into (indexing, neural) components.
fn breakdown(
    plan: &ExecutionPlan,
    g: &wisegraph_graph::Graph,
    dev: &DeviceSpec,
) -> (f64, f64) {
    let mut indexing = 0.0;
    let mut neural = 0.0;
    for k in plan.kernels(g) {
        let t = dev.kernel_time(&k.cost);
        // A kernel's time divides by its bottleneck: compute-side time is
        // "neural", the rest is data movement.
        let occ = dev.occupancy(k.cost.parallel_tasks);
        let compute = k.cost.flops / (dev.effective_flops(k.cost.class) * occ);
        let neural_part = compute.min(t);
        neural += neural_part;
        indexing += t - neural_part;
    }
    (indexing, neural)
}

fn table_for(model: ModelKind) -> PartitionTable {
    match model {
        ModelKind::Rgcn => PartitionTable::src_batch_per_type(128),
        _ => PartitionTable::edge_batch(128),
    }
}

fn main() {
    let dev = DeviceSpec::a100_pcie();
    for kind in [DatasetKind::Arxiv, DatasetKind::PapersSample] {
        let (g, spec) = build_dataset(kind);
        let dims = LayerDims::paper_single(spec.feature_dim, spec.num_classes);
        let (fi, fo) = dims.layer_io(1);
        let mut rows = Vec::new();
        for model in [ModelKind::Rgcn, ModelKind::Gat, ModelKind::Sage] {
            let dfg = model.layer_dfg(fi, fo);
            let table = table_for(model);
            let baseline = ExecutionPlan::build_untransformed(
                &g,
                table.clone(),
                &dfg,
                OpPartitionKind::Fused,
            );
            let optimized =
                ExecutionPlan::build(&g, table, &dfg, OpPartitionKind::Fused);
            let (bi, bn) = breakdown(&baseline, &g, &dev);
            let (oi, on) = breakdown(&optimized, &g, &dev);
            let total_b = bi + bn;
            // Neural reduction measured in FLOPs: the share of neural
            // computation the transformation eliminates outright.
            let binding = wisegraph_dfg::Binding::from_graph(&g);
            let wf_b = wisegraph_dfg::analysis::workload(&baseline.dfg, &binding);
            let wf_o = wisegraph_dfg::analysis::workload(&optimized.dfg, &binding);
            let neural_red = if wf_b.neural_flops > 0.0 {
                100.0 * (1.0 - wf_o.neural_flops / wf_b.neural_flops)
            } else {
                0.0
            };
            rows.push(vec![
                model.name().to_string(),
                format!("{:.0}% / {:.0}%", 100.0 * bi / total_b, 100.0 * bn / total_b),
                format!(
                    "{:.0}% / {:.0}%",
                    100.0 * oi / total_b,
                    100.0 * on / total_b
                ),
                format!("{neural_red:.1}%"),
                format!("{:.1}%", 100.0 * (1.0 - (oi + on) / total_b)),
            ]);
        }
        print_table(
            &format!(
                "Figure 17 ({}): normalized time, baseline vs transformed DFG",
                spec.kind.short_name()
            ),
            &[
                "Model",
                "baseline idx/NN",
                "optimized idx/NN",
                "neural reduction",
                "total reduction",
            ],
            &rows,
        );
    }
    println!(
        "\nPaper shape: RGCN neural time cut by ~93% on AR; SAGE untouched \
         on AR but cut by ~79% on PA-S (fewer destinations than sources)."
    );
}
