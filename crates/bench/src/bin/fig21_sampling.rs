//! Figure 21 — applying WiseGraph to sampled-graph training.
//!
//! (a) Relative performance of reusing the partition plan searched on one
//!     sampled subgraph across fresh subgraphs, versus re-optimizing per
//!     subgraph (paper: reuse keeps ~91%).
//! (b) Wall-clock of sampling alone vs sampling + plan-driven partitioning
//!     as CPU threads increase, against the (simulated) epoch time —
//!     showing the partition overhead can be fully overlapped.

use wisegraph_baselines::single::LayerDims;
use wisegraph_bench::{build_dataset, print_table, quick_mode};
use wisegraph_core::plan::OpPartitionKind;
use wisegraph_core::sampled::{
    plan_reuse_relative_perf, sampled_iteration_estimate, sampling_overhead,
};
use wisegraph_core::WiseGraph;
use wisegraph_graph::sample::SampleConfig;
use wisegraph_graph::DatasetKind;
use wisegraph_gtask::PartitionTable;
use wisegraph_models::ModelKind;
use wisegraph_sim::DeviceSpec;

fn main() {
    let dev = DeviceSpec::a100_pcie();
    let datasets = if quick_mode() {
        vec![DatasetKind::Papers]
    } else {
        vec![DatasetKind::Papers, DatasetKind::FriendSter]
    };

    // (a) plan reuse.
    let mut rows = Vec::new();
    for &kind in &datasets {
        let (g, spec) = build_dataset(kind);
        let dims = LayerDims {
            f_in: spec.feature_dim,
            hidden: 64,
            classes: spec.num_classes,
            layers: 2,
        };
        let wg = WiseGraph::new(dev);
        let cfg = SampleConfig {
            num_seeds: 500,
            fanouts: vec![15, 10],
            seed: 1,
        };
        let rel = plan_reuse_relative_perf(&g, ModelKind::Rgcn, &dims, &wg, &cfg, 4);
        rows.push(vec![
            spec.kind.short_name().to_string(),
            "1.00".to_string(),
            format!("{rel:.2}"),
        ]);
    }
    print_table(
        "Figure 21(a): relative performance of plan reuse on sampled graphs",
        &["Dataset", "full-opt", "reuse"],
        &rows,
    );
    println!("Paper: reuse keeps ~0.91 of full per-sample optimization.");

    // (b) partition overhead overlap.
    let (g, spec) = build_dataset(DatasetKind::Papers);
    let cfg = SampleConfig::paper_default(3);
    let table = PartitionTable::src_batch_per_type(128);
    let samples = if quick_mode() { 4 } else { 8 };
    // Simulated per-iteration training time of the sampled workload
    // (what the GPU is busy with while the CPU prepares the next batch).
    let wg = WiseGraph::new(dev);
    let dims = LayerDims {
        f_in: spec.feature_dim,
        hidden: 256,
        classes: spec.num_classes,
        layers: 3,
    };
    let epoch_like = sampled_iteration_estimate(
        &g,
        ModelKind::Sage,
        &dims,
        &wg,
        &table,
        OpPartitionKind::Fused,
        5,
    ) * samples as f64
        * spec.scale();
    let mut rows = Vec::new();
    for threads in [1usize, 2, 4] {
        let (sample, total) = sampling_overhead(&g, &table, &cfg, samples, threads);
        rows.push(vec![
            threads.to_string(),
            format!("{:.3}", sample),
            format!("{:.3}", total),
            format!("{:.3}", epoch_like),
            (total < epoch_like).to_string(),
        ]);
    }
    print_table(
        "Figure 21(b): CPU sampling/partitioning wall-clock (s) vs training time",
        &[
            "CPU threads",
            "sample only",
            "sample+partition",
            "training (simulated)",
            "fully overlapped",
        ],
        &rows,
    );
    println!(
        "\nPaper shape: with enough CPU threads the sample+partition time \
         drops below the epoch time and is fully hidden."
    );
}
