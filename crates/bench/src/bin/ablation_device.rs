//! Ablation — plan adaptivity across device generations.
//!
//! WiseGraph's plans are chosen by a device-aware cost model, so the same
//! (graph, model) pair should get different plans — and different
//! batch sizes — on devices with different compute/bandwidth balances.
//! This harness optimizes RGCN and GCN on V100, A100 and H100 models and
//! reports the chosen plan and the cross-device slowdown of reusing
//! another device's plan.

use wisegraph_baselines::single::LayerDims;
use wisegraph_bench::{build_dataset, print_table};
use wisegraph_core::plan::ExecutionPlan;
use wisegraph_core::WiseGraph;
use wisegraph_graph::DatasetKind;
use wisegraph_models::ModelKind;
use wisegraph_sim::DeviceSpec;

fn main() {
    let (g, spec) = build_dataset(DatasetKind::Arxiv);
    let dims = LayerDims::paper_single(spec.feature_dim, spec.num_classes);
    let devices = [
        ("V100", DeviceSpec::v100()),
        ("A100", DeviceSpec::a100_pcie()),
        ("H100", DeviceSpec::h100()),
    ];
    for model in [ModelKind::Rgcn, ModelKind::Gcn] {
        let mut chosen: Vec<(String, ExecutionPlan, f64)> = Vec::new();
        for (name, dev) in devices {
            let wg = WiseGraph::new(dev);
            let out = wg.optimize(&g, model, &dims);
            chosen.push((
                name.to_string(),
                out.per_layer[1].clone(),
                out.time_per_iter,
            ));
        }
        let mut rows = Vec::new();
        for (i, (name, plan, time)) in chosen.iter().enumerate() {
            // Cross-check: run every other device's plan on this device.
            let dev = devices[i].1;
            let worst_foreign = chosen
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, (_, p, _))| p.estimate(&g, &dev).time)
                .fold(0.0f64, f64::max);
            let own = plan.estimate(&g, &dev).time;
            rows.push(vec![
                name.clone(),
                plan.table.to_string(),
                plan.ctx.batch_rows.to_string(),
                format!("{:.3} ms", time * 1e3),
                format!("{:.2}x", worst_foreign / own),
            ]);
        }
        print_table(
            &format!(
                "Device adaptivity ({}): chosen plan per device",
                model.name()
            ),
            &[
                "Device",
                "chosen graph plan",
                "batch",
                "iteration",
                "worst foreign-plan slowdown",
            ],
            &rows,
        );
    }
    println!(
        "\nThe cost model re-evaluates the plan space per device. On this \
         workload the optimum is robust across V100/A100/H100 (their \
         compute/bandwidth balances scale roughly together); a foreign \
         plan's slowdown above 1.00x would indicate a device-specific \
         optimum."
    );
}
