//! Figure 3 — the motivation study (§2.2).
//!
//! (a) Compute/memory ratio (OP/B) of vertex-centric and edge-centric
//!     execution for three neural operation types (Addition = GCN,
//!     MHA = GAT, MLP = RGCN), against the operation's optimal ratio.
//!     "Achieved" uses the original DFG's per-edge accounting (no data
//!     reuse: edge-wise kernels re-read shared operands per edge);
//!     "Optimal" uses the transformed DFG (full reuse of deduplicated
//!     data).
//! (b) Execution-time breakdown of the tensor-centric approach: neural
//!     operations vs. everything else (indexing data movement).
//!
//! Expected shape: graph-centric ratios match optimal for Addition but
//! fall far below it for MHA/MLP (the paper measures graph-centric MLP at
//! 1% of peak); tensor-centric spends < 40% of its time in neural ops.

use wisegraph_baselines::single::LayerDims;
use wisegraph_bench::{build_dataset, print_table};
use wisegraph_dfg::{analysis, transform, Binding, Dim};
use wisegraph_graph::DatasetKind;

use wisegraph_models::ModelKind;
use wisegraph_sim::DeviceSpec;

fn main() {
    let (g, spec) = build_dataset(DatasetKind::Arxiv);
    let binding = Binding::from_graph(&g);
    let dev = DeviceSpec::a100_pcie();
    let dims = LayerDims::paper_single(spec.feature_dim, spec.num_classes);
    let (fi, fo) = dims.layer_io(1);
    let e = g.num_edges() as f64;
    let v = g.num_vertices() as f64;

    // Graph-centric MHA executes the projection per edge (the vertex
    // program recomputes z for every incoming message) — the un-hoisted
    // DFG form. The transformation search recovers the hoisted form as
    // the optimum.
    let gat_edgewise = {
        use wisegraph_graph::AttrKind;
        let mut d = wisegraph_dfg::Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(fi)]);
        let w = d.input("w", vec![Dim::Lit(fi), Dim::Lit(fo)]);
        let a_src = d.input("a_src", vec![Dim::Lit(fo), Dim::Lit(1)]);
        let src = d.edge_attr(AttrKind::SrcId);
        let dst = d.edge_attr(AttrKind::DstId);
        let hsrc = d.index(h, src);
        let z_e = d.linear(hsrc, w);
        let s_e = d.linear(z_e, a_src);
        let act = d.leaky_relu(s_e);
        let scores = d.squeeze_col(act);
        let alpha = d.segment_softmax(scores, dst);
        let weighted = d.scale_rows(z_e, alpha);
        let out = d.index_add(weighted, dst, Dim::Vertices);
        d.mark_output(out);
        d
    };

    // --- (a) compute/memory ratio ------------------------------------
    let mut rows_a = Vec::new();
    for (label, model) in [
        ("Addition", Some(ModelKind::Gcn)),
        ("MHA", None),
        ("MLP", Some(ModelKind::Rgcn)),
    ] {
        let dfg = match model {
            Some(m) => m.layer_dfg(fi, fo),
            None => gat_edgewise.clone(),
        };
        let w_orig = analysis::workload(&dfg, &binding);
        // Optimal: the least-workload equivalent DFG (deduplicated
        // operands, full reuse) — its FLOPs are the *useful* computation.
        let (_, w_opt) = transform::optimize(&dfg, &binding);
        let optimal = w_opt.flops() / w_opt.bytes();
        // Achieved = useful FLOPs over the bytes the edge-wise execution
        // actually moves (shared operands re-read per edge, redundant
        // recomputation not credited).
        let vertex = w_opt.flops() / w_orig.bytes();
        // Edge-centric: additionally writes each edge's partial result.
        let edge_bytes = w_orig.bytes() + 4.0 * (e - v).max(0.0) * fo as f64;
        let edge = w_opt.flops() / edge_bytes;
        rows_a.push(vec![
            label.to_string(),
            format!("{vertex:.2}"),
            format!("{edge:.2}"),
            format!("{optimal:.2}"),
        ]);
    }
    print_table(
        "Figure 3(a): compute/memory ratio (OP/B) of graph-centric execution",
        &["Neural op", "Vertex-centric", "Edge-centric", "Optimal"],
        &rows_a,
    );

    // --- (b) tensor-centric time breakdown ----------------------------
    let mut rows_b = Vec::new();
    for (label, model) in [
        ("Addition", ModelKind::Gcn),
        ("MHA", ModelKind::Gat),
        ("MLP", ModelKind::Rgcn),
    ] {
        // Tensor-centric execution: dense GEMMs in library kernels
        // ("Neural"), per-edge gather / scatter message kernels that move
        // data through global memory ("Other"). The GEMM scale differs by
        // model: GCN/GAT project per vertex, RGCN encodes per edge.
        use wisegraph_sim::{ComputeClass, KernelCost};
        let mm_rows = if model == ModelKind::Rgcn { e } else { v };
        let mm = KernelCost {
            flops: 2.0 * mm_rows * (fi * fo) as f64,
            bytes: (mm_rows * (fi + fo) as f64
                + (g.num_edge_types() * fi * fo) as f64)
                * 4.0,
            parallel_tasks: mm_rows / 64.0,
            class: ComputeClass::DenseMatmul,
        };
        let gather = KernelCost {
            flops: 0.0,
            bytes: e * fi as f64 * 8.0,
            parallel_tasks: e / 64.0,
            class: ComputeClass::Memory { coalesced: false },
        };
        let scatter = KernelCost {
            flops: e * fo as f64,
            bytes: e * fo as f64 * 8.0,
            parallel_tasks: e / 64.0,
            class: ComputeClass::Memory { coalesced: false },
        };
        // GAT moves an extra score/softmax stream per edge.
        let extra_streams = if model == ModelKind::Gat { 3.0 } else { 0.0 };
        let softmax = KernelCost {
            flops: 5.0 * e,
            bytes: extra_streams * e * 8.0,
            parallel_tasks: e / 64.0,
            class: ComputeClass::Elementwise,
        };
        let neural = dev.kernel_time(&mm);
        let mut other = dev.kernel_time(&gather) + dev.kernel_time(&scatter);
        if extra_streams > 0.0 {
            other += dev.kernel_time(&softmax);
        }
        let total = neural + other;
        rows_b.push(vec![
            label.to_string(),
            format!("{:.1}%", 100.0 * neural / total),
            format!("{:.1}%", 100.0 * other / total),
        ]);
    }
    print_table(
        "Figure 3(b): tensor-centric execution time breakdown",
        &["Neural op", "Neural", "Other (indexing)"],
        &rows_b,
    );
    // Peak-performance footnote: edge-wise MLP vs. dense peak.
    let mlp_frac =
        dev.effective_flops(wisegraph_sim::ComputeClass::EdgeWise) / dev.tensor_flops;
    println!(
        "\nGraph-centric MLP compute efficiency: {:.1}% of peak (paper \
         footnote: 1%). Paper shape: Addition near optimal, MHA/MLP far \
         below; tensor-centric neural share < 40%.",
        100.0 * mlp_frac
    );
    let _ = Dim::Vertices; // silence unused-import pedantry in some configs
}
