//! Ablation — the contribution of each data-pattern rule in the kernel
//! cost model (DESIGN.md §5).
//!
//! WiseGraph's kernel context carries four pattern-derived knobs: batching,
//! gather dedup, scatter dedup, and LSTM padding. This ablation disables
//! each knob in the chosen plan and reports the simulated time delta — how
//! much of WiseGraph's win each pattern explains.

use wisegraph_baselines::single::LayerDims;
use wisegraph_bench::{build_dataset, print_table};
use wisegraph_core::WiseGraph;
use wisegraph_graph::DatasetKind;
use wisegraph_kernels::generate::{generate_kernels, total_time};
use wisegraph_models::ModelKind;
use wisegraph_sim::DeviceSpec;

fn main() {
    let (g, spec) = build_dataset(DatasetKind::Arxiv);
    let dev = DeviceSpec::a100_pcie();
    let dims = LayerDims::paper_single(spec.feature_dim, spec.num_classes);
    let binding = wisegraph_dfg::Binding::from_graph(&g);

    let mut rows = Vec::new();
    for model in [ModelKind::Rgcn, ModelKind::Gat, ModelKind::Gcn] {
        let wg = WiseGraph::new(dev);
        let out = wg.optimize(&g, model, &dims);
        let plan = &out.per_layer[1];
        let part = plan.op_partition.build(&plan.dfg);
        let base_ctx = plan.ctx;
        let time = |ctx: &wisegraph_kernels::KernelContext| {
            total_time(&dev, &generate_kernels(&plan.dfg, &binding, &part, ctx))
        };
        let full = time(&base_ctx);
        let no_batch = {
            let mut c = base_ctx;
            c.batch_rows = 1;
            time(&c)
        };
        let no_gdedup = {
            let mut c = base_ctx;
            c.gather_dedup = 1.0;
            time(&c)
        };
        let no_sdedup = {
            let mut c = base_ctx;
            c.scatter_dedup = 1.0;
            time(&c)
        };
        let pct = |t: f64| format!("+{:.0}%", 100.0 * (t / full - 1.0));
        rows.push(vec![
            model.name().to_string(),
            format!("{:.3} ms", full * 1e3),
            pct(no_batch),
            pct(no_gdedup),
            pct(no_sdedup),
        ]);
    }
    print_table(
        "Ablation: disabling one data-pattern rule at a time (AR, chosen plans)",
        &[
            "Model",
            "full plan",
            "w/o batching",
            "w/o gather dedup",
            "w/o scatter dedup",
        ],
        &rows,
    );
    println!(
        "\nEach column shows the slowdown when the corresponding gTask data \
         pattern is ignored — batching dominates for complex models, the \
         dedup patterns for the memory-bound ones."
    );
}
