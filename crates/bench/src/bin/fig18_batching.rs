//! Figure 18 — throughput of the generated kernels as the data-batching
//! restriction K sweeps from 1 to "INF" (everything in one task per
//! restricted group).
//!
//! (a) RGCN with `uniq(src-id)=K & uniq(edge-type)=1`;
//! (b) SAGE-LSTM with `uniq(dst-degree)=min & uniq(dst-id)=K`.
//!
//! Expected shape: K=1 is very slow (no batching); throughput climbs with
//! K; at INF the kernel degenerates (spilled intermediates / lost task
//! parallelism) and falls below the best K — paper: 4.33× (RGCN) and
//! 6.10× (SAGE-LSTM) between the best K and the edge-wise/tensor-centric
//! endpoints.

use wisegraph_baselines::single::LayerDims;
use wisegraph_bench::{build_dataset, print_table};
use wisegraph_core::plan::{ExecutionPlan, OpPartitionKind};
use wisegraph_graph::{AttrKind, DatasetKind};
use wisegraph_gtask::PartitionTable;
use wisegraph_models::ModelKind;
use wisegraph_sim::DeviceSpec;

fn sweep(
    g: &wisegraph_graph::Graph,
    dev: &DeviceSpec,
    model: ModelKind,
    fi: usize,
    fo: usize,
    table_of: impl Fn(u64) -> PartitionTable,
    ks: &[u64],
) -> Vec<(String, f64)> {
    let dfg = model.layer_dfg(fi, fo);
    let edges = g.num_edges() as f64;
    ks.iter()
        .map(|&k| {
            let plan =
                ExecutionPlan::build(g, table_of(k), &dfg, OpPartitionKind::Fused);
            let t = plan.estimate(g, dev).time;
            let label = if k >= g.num_edges() as u64 {
                "INF".to_string()
            } else {
                k.to_string()
            };
            (label, edges / t)
        })
        .collect()
}

fn main() {
    let (g, spec) = build_dataset(DatasetKind::Arxiv);
    let dev = DeviceSpec::a100_pcie();
    let dims = LayerDims::paper_single(spec.feature_dim, spec.num_classes);
    let (fi, fo) = dims.layer_io(1);
    let inf = g.num_edges() as u64 + 1;

    // (a) RGCN, uniq(src-id)=K & uniq(edge-type)=1.
    let ks: Vec<u64> = vec![1, 32, 64, 128, 256, inf];
    let series = sweep(
        &g,
        &dev,
        ModelKind::Rgcn,
        fi,
        fo,
        PartitionTable::src_batch_per_type,
        &ks,
    );
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|(k, tp)| vec![k.clone(), format!("{:.1}", tp / 1e6)])
        .collect();
    print_table(
        "Figure 18(a): RGCN throughput vs K (uniq(src-id)=K & uniq(edge-type)=1)",
        &["K", "Throughput (M edges/s)"],
        &rows,
    );
    let best = series
        .iter()
        .map(|&(_, tp)| tp)
        .fold(0.0f64, f64::max);
    let endpoints = series[0].1.max(series.last().unwrap().1);
    println!(
        "Best-K over max(K=1, INF): {:.2}x (paper: 4.33x)",
        best / endpoints
    );

    // (b) SAGE-LSTM, uniq(dst-degree)=min & uniq(dst-id)=K.
    let ks: Vec<u64> = vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];
    let series = sweep(
        &g,
        &dev,
        ModelKind::SageLstm,
        fi,
        fo,
        |k| {
            PartitionTable::new()
                .exact(AttrKind::DstId, k)
                .min(AttrKind::DstDegree)
        },
        &ks,
    );
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|(k, tp)| vec![k.clone(), format!("{:.2}", tp / 1e6)])
        .collect();
    print_table(
        "Figure 18(b): SAGE-LSTM throughput vs K (uniq(dst-degree)=min & uniq(dst-id)=K)",
        &["K", "Throughput (M edges/s)"],
        &rows,
    );
    let best = series.iter().map(|&(_, tp)| tp).fold(0.0f64, f64::max);
    println!(
        "Best-K over K=1: {:.2}x (paper: 6.10x)",
        best / series[0].1
    );
}
