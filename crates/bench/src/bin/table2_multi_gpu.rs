//! Table 2 — multi-GPU training epoch time (seconds) on 4× A100 / PCIe 4.0.
//!
//! Full-graph training on PA and FS (hidden 32), sampled-graph training on
//! PA-S and FS-S (hidden 256, one epoch = enough iterations to cover the
//! training set with 1000 seeds each). `N/A` marks systems that do not
//! support the mode (ROC/DGCL are full-graph systems; P3 targets sampled
//! training), as in the paper.
//!
//! Expected shape: WiseGraph fastest everywhere; ~2.27× over the best
//! baseline for full-graph, ~1.83× for sampled.
//!
//! A second section leaves the cost model and *actually runs* the sharded
//! executor (`wisegraph_kernels::cluster`) on the PA-S analogue graph at
//! 1/2/4 simulated devices: the joint optimizer picks the placement
//! schedule, real buffers move through the deterministic collectives, and
//! each row reports the schedule chosen, the bytes exchanged, the
//! per-device work skew, and a repeat-run bit-identity check.

use std::collections::HashMap;

use wisegraph_baselines::single::LayerDims;
use wisegraph_baselines::{MultiGpuSystem, MultiStack};
use wisegraph_bench::{build_dataset, fmt_s, print_table};
use wisegraph_core::multi as ours;
use wisegraph_core::sharded::{device_work_skew, execute_sharded};
use wisegraph_graph::DatasetKind;
use wisegraph_gtask::{partition, PartitionTable};
use wisegraph_kernels::ClusterEngine;
use wisegraph_models::ModelKind;
use wisegraph_tensor::init;

fn main() {
    let stack = MultiStack::paper_quad();
    let model = ModelKind::Sage;
    let mut rows = Vec::new();
    let mut full_speedups = Vec::new();
    let mut sampled_speedups = Vec::new();

    let configs = [
        (DatasetKind::Papers, false),
        (DatasetKind::FriendSter, false),
        (DatasetKind::PapersSample, true),
        (DatasetKind::FriendSterSample, true),
    ];
    for (kind, sampled) in configs {
        let (g, spec) = build_dataset(kind);
        let dims = LayerDims {
            f_in: spec.feature_dim,
            hidden: if sampled { 256 } else { 32 },
            classes: spec.num_classes,
            layers: 3,
        };
        // Full-graph: one iteration per epoch; sampled: the training set
        // (60% of vertices) visited 1000 seeds at a time.
        let iters_per_epoch = if sampled {
            (spec.paper_vertices as f64 * 0.6 / 1000.0).max(1.0)
        } else {
            1.0
        };
        // Per-iteration work scales with graph size for full-graph
        // training; a sampled iteration is fixed-size (defined by seeds ×
        // fan-out), so only the iteration count scales.
        let scale = if sampled { 1.0 } else { spec.scale() };

        let mut row = vec![spec.kind.short_name().to_string()];
        let mut best = f64::INFINITY;
        for sys in MultiGpuSystem::ALL {
            if !sys.supports(sampled) {
                row.push("N/A".to_string());
                continue;
            }
            let t = sys.iteration_time(&g, model, &dims, &stack) * scale * iters_per_epoch;
            best = best.min(t);
            row.push(fmt_s(t));
        }
        let t_ours =
            ours::iteration_time(&g, model, &dims, &stack) * scale * iters_per_epoch;
        row.push(fmt_s(t_ours));
        rows.push(row);
        if sampled {
            sampled_speedups.push(best / t_ours);
        } else {
            full_speedups.push(best / t_ours);
        }
    }
    print_table(
        "Table 2: multi-GPU training epoch time (s), 4x A100 / PCIe 4.0",
        &["Dataset", "DGL", "ROC", "DGCL", "P3", "WiseGraph"],
        &rows,
    );
    let gm = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    println!(
        "\nSpeedup over best baseline: full-graph {:.2}x (paper: 2.27x), \
         sampled {:.2}x (paper: 1.83x)",
        gm(&full_speedups),
        gm(&sampled_speedups)
    );

    // Side experiment from §7.2: full-graph *inference* on PA vs MGG
    // (paper: 8.71 s WiseGraph vs 25.24 s MGG, 2.90×).
    let (g, spec) = build_dataset(DatasetKind::Papers);
    let dims = LayerDims {
        f_in: spec.feature_dim,
        hidden: 32,
        classes: spec.num_classes,
        layers: 3,
    };
    let mgg = wisegraph_baselines::multi::mgg_inference_time(
        &g,
        model,
        &dims,
        &stack,
    ) * spec.scale();
    let ours_inf = ours::iteration_time(&g, model, &dims, &stack) * spec.scale()
        / wisegraph_baselines::single::TRAIN_FACTOR;
    println!(
        "\nFull-graph inference on PA: MGG {:.2} s vs WiseGraph {:.2} s \
         ({:.2}x; paper: 25.24 s vs 8.71 s, 2.90x)",
        mgg,
        ours_inf,
        mgg / ours_inf
    );

    // Real sharded runs: one SAGE layer on the PA-S analogue, executed on
    // an actual device cluster per device count. The optimizer selects
    // the placement from the shared Figure-11 volumes; each run repeats
    // once to pin the collectives' bit determinism in the artifact.
    let (g, _spec) = build_dataset(DatasetKind::PapersSample);
    let (fi, fo) = (16usize, 32usize);
    let kind = ModelKind::Sage;
    let dfg = kind.layer_dfg(fi, fo);
    let plan = partition(&g, &PartitionTable::vertex_centric());
    let mut globals = HashMap::new();
    globals.insert(
        "h".to_string(),
        init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 21),
    );
    globals.insert(
        "w_self".to_string(),
        init::uniform_tensor(&[fi, fo], -1.0, 1.0, 22),
    );
    globals.insert(
        "w_neigh".to_string(),
        init::uniform_tensor(&[fi, fo], -1.0, 1.0, 23),
    );
    let mut shard_rows = Vec::new();
    for devices in [1usize, 2, 4] {
        let fabric = &stack.fabric;
        let cluster = ClusterEngine::new(devices, 2);
        let (run, choice) =
            execute_sharded(&cluster, &dfg, &g, &plan, &globals, fabric, fi, fo)
                .expect("sharded PA-S run executes");
        let repeat_cluster = ClusterEngine::new(devices, 2);
        let (again, _) =
            execute_sharded(&repeat_cluster, &dfg, &g, &plan, &globals, fabric, fi, fo)
                .expect("sharded PA-S rerun executes");
        let identical = run
            .outputs
            .iter()
            .zip(again.outputs.iter())
            .all(|(a, b)| a.data() == b.data());
        assert!(identical, "sharded run not deterministic at {devices} devices");
        shard_rows.push(vec![
            devices.to_string(),
            choice.placement.name().to_string(),
            run.exchange.bytes_sent().to_string(),
            format!("{:.2}", device_work_skew(&run.per_device)),
            "yes".to_string(),
        ]);
    }
    print_table(
        "Real sharded execution: SAGE on PA-S analogue, optimizer-selected placement",
        &[
            "Devices",
            "Placement",
            "Comm bytes",
            "Device skew",
            "Repeat bit-identical",
        ],
        &shard_rows,
    );
}
