//! Table 2 — multi-GPU training epoch time (seconds) on 4× A100 / PCIe 4.0.
//!
//! Full-graph training on PA and FS (hidden 32), sampled-graph training on
//! PA-S and FS-S (hidden 256, one epoch = enough iterations to cover the
//! training set with 1000 seeds each). `N/A` marks systems that do not
//! support the mode (ROC/DGCL are full-graph systems; P3 targets sampled
//! training), as in the paper.
//!
//! Expected shape: WiseGraph fastest everywhere; ~2.27× over the best
//! baseline for full-graph, ~1.83× for sampled.

use wisegraph_baselines::single::LayerDims;
use wisegraph_baselines::{MultiGpuSystem, MultiStack};
use wisegraph_bench::{build_dataset, fmt_s, print_table};
use wisegraph_core::multi as ours;
use wisegraph_graph::DatasetKind;
use wisegraph_models::ModelKind;

fn main() {
    let stack = MultiStack::paper_quad();
    let model = ModelKind::Sage;
    let mut rows = Vec::new();
    let mut full_speedups = Vec::new();
    let mut sampled_speedups = Vec::new();

    let configs = [
        (DatasetKind::Papers, false),
        (DatasetKind::FriendSter, false),
        (DatasetKind::PapersSample, true),
        (DatasetKind::FriendSterSample, true),
    ];
    for (kind, sampled) in configs {
        let (g, spec) = build_dataset(kind);
        let dims = LayerDims {
            f_in: spec.feature_dim,
            hidden: if sampled { 256 } else { 32 },
            classes: spec.num_classes,
            layers: 3,
        };
        // Full-graph: one iteration per epoch; sampled: the training set
        // (60% of vertices) visited 1000 seeds at a time.
        let iters_per_epoch = if sampled {
            (spec.paper_vertices as f64 * 0.6 / 1000.0).max(1.0)
        } else {
            1.0
        };
        // Per-iteration work scales with graph size for full-graph
        // training; a sampled iteration is fixed-size (defined by seeds ×
        // fan-out), so only the iteration count scales.
        let scale = if sampled { 1.0 } else { spec.scale() };

        let mut row = vec![spec.kind.short_name().to_string()];
        let mut best = f64::INFINITY;
        for sys in MultiGpuSystem::ALL {
            if !sys.supports(sampled) {
                row.push("N/A".to_string());
                continue;
            }
            let t = sys.iteration_time(&g, model, &dims, &stack) * scale * iters_per_epoch;
            best = best.min(t);
            row.push(fmt_s(t));
        }
        let t_ours =
            ours::iteration_time(&g, model, &dims, &stack) * scale * iters_per_epoch;
        row.push(fmt_s(t_ours));
        rows.push(row);
        if sampled {
            sampled_speedups.push(best / t_ours);
        } else {
            full_speedups.push(best / t_ours);
        }
    }
    print_table(
        "Table 2: multi-GPU training epoch time (s), 4x A100 / PCIe 4.0",
        &["Dataset", "DGL", "ROC", "DGCL", "P3", "WiseGraph"],
        &rows,
    );
    let gm = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    println!(
        "\nSpeedup over best baseline: full-graph {:.2}x (paper: 2.27x), \
         sampled {:.2}x (paper: 1.83x)",
        gm(&full_speedups),
        gm(&sampled_speedups)
    );

    // Side experiment from §7.2: full-graph *inference* on PA vs MGG
    // (paper: 8.71 s WiseGraph vs 25.24 s MGG, 2.90×).
    let (g, spec) = build_dataset(DatasetKind::Papers);
    let dims = LayerDims {
        f_in: spec.feature_dim,
        hidden: 32,
        classes: spec.num_classes,
        layers: 3,
    };
    let mgg = wisegraph_baselines::multi::mgg_inference_time(
        &g,
        model,
        &dims,
        &stack,
    ) * spec.scale();
    let ours_inf = ours::iteration_time(&g, model, &dims, &stack) * spec.scale()
        / wisegraph_baselines::single::TRAIN_FACTOR;
    println!(
        "\nFull-graph inference on PA: MGG {:.2} s vs WiseGraph {:.2} s \
         ({:.2}x; paper: 25.24 s vs 8.71 s, 2.90x)",
        mgg,
        ours_inf,
        mgg / ours_inf
    );
}
