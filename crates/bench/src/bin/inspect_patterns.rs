//! Inspector — gTask-level data patterns of a plan (paper §5.1, Figure 4c).
//!
//! Prints, for several partition tables on an AR-like graph, the
//! distribution of the three data patterns across gTasks: duplication
//! factors per attribute, batch sizes, and the changing-data-volume ratio.
//! This is the raw signal the operation partitioner consumes.

use wisegraph_bench::{build_dataset, print_table};
use wisegraph_graph::{AttrKind, DatasetKind};
use wisegraph_gtask::{partition, PartitionTable};

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p) as usize;
    sorted[idx]
}

fn main() {
    let (g, _) = build_dataset(DatasetKind::Arxiv);
    let tables = [
        PartitionTable::vertex_centric(),
        PartitionTable::src_batch_per_type(64),
        PartitionTable::two_d(32),
        PartitionTable::dst_batch_min_degree(64),
        PartitionTable::edge_batch(64),
    ];
    let mut rows = Vec::new();
    for table in tables {
        let plan = partition(&g, &table);
        let mut dup_src = Vec::new();
        let mut batch_src = Vec::new();
        let mut volume = Vec::new();
        for task in &plan.tasks {
            let p = task.data_patterns(&g);
            dup_src.push(p.duplication[&AttrKind::SrcId]);
            batch_src.push(p.batch[&AttrKind::SrcId] as f64);
            volume.push(p.volume_ratio);
        }
        dup_src.sort_by(|a, b| a.partial_cmp(b).unwrap());
        batch_src.sort_by(|a, b| a.partial_cmp(b).unwrap());
        volume.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rows.push(vec![
            table.to_string(),
            plan.num_tasks().to_string(),
            format!(
                "{:.1} / {:.1}",
                percentile(&dup_src, 0.5),
                percentile(&dup_src, 0.95)
            ),
            format!(
                "{:.0} / {:.0}",
                percentile(&batch_src, 0.5),
                percentile(&batch_src, 0.95)
            ),
            format!(
                "{:.2} / {:.2}",
                percentile(&volume, 0.5),
                percentile(&volume, 0.95)
            ),
        ]);
    }
    print_table(
        "gTask data patterns per plan (p50 / p95 over tasks, AR analogue)",
        &[
            "Plan",
            "#tasks",
            "src duplication",
            "src batch",
            "volume ratio (dst/src)",
        ],
        &rows,
    );
    println!(
        "\nReading guide: duplication > 1 → DFG transformation opportunity; \
         batch size → kernel parallelization; volume ratio < 1 → communicate \
         after computing (multi-device placement)."
    );
}
