//! Ablation — composing Metis/Rabbit-style vertex reordering with gTask
//! partitioning (paper §4.3).
//!
//! "Metis-style and WiseGraph graph partition work at different levels and
//! can be combined: we can first use Metis-style work to produce the
//! reordered graph with better locality, and then apply WiseGraph graph
//! partition on it." This ablation measures, for each reordering, the edge
//! span (locality proxy), the per-task gather dedup the same partition
//! table achieves, and the simulated plan time.

use wisegraph_baselines::single::LayerDims;
use wisegraph_bench::{build_dataset, print_table};
use wisegraph_core::plan::{plan_gather_dedup, ExecutionPlan, OpPartitionKind};
use wisegraph_graph::reorder;
use wisegraph_graph::DatasetKind;
use wisegraph_gtask::{partition, PartitionTable};
use wisegraph_models::ModelKind;
use wisegraph_sim::DeviceSpec;

fn main() {
    let (g, spec) = build_dataset(DatasetKind::Arxiv);
    let dev = DeviceSpec::a100_pcie();
    let dims = LayerDims::paper_single(spec.feature_dim, spec.num_classes);
    let (fi, fo) = dims.layer_io(1);
    let dfg = ModelKind::Gcn.layer_dfg(fi, fo);
    let table = PartitionTable::two_d(48);

    let identity: Vec<u32> = (0..g.num_vertices() as u32).collect();
    let orders: Vec<(&str, Vec<u32>)> = vec![
        ("original", identity),
        ("degree-sorted", reorder::degree_order(&g)),
        ("bfs-clustered (Metis-like)", reorder::bfs_cluster_order(&g)),
        (
            "label-propagation (Rabbit-like)",
            reorder::label_propagation_order(&g, 2),
        ),
    ];

    let mut rows = Vec::new();
    for (name, perm) in orders {
        let rg = g.relabel(&perm);
        let span = reorder::edge_span(&g, &perm);
        let plan = partition(&rg, &table);
        let dedup = plan_gather_dedup(&rg, &plan);
        let eplan =
            ExecutionPlan::build(&rg, table.clone(), &dfg, OpPartitionKind::Fused);
        let t = eplan.estimate(&rg, &dev).time;
        rows.push(vec![
            name.to_string(),
            format!("{span:.4}"),
            plan.num_tasks().to_string(),
            format!("{dedup:.3}"),
            format!("{:.3} ms", t * 1e3),
        ]);
    }
    print_table(
        "Ablation: vertex reordering composed with gTask 2D partitioning (GCN, AR)",
        &[
            "Reordering",
            "edge span",
            "#tasks",
            "gather dedup",
            "simulated layer time",
        ],
        &rows,
    );
    println!(
        "\nExpected: locality-improving reorderings reduce the edge span and \
         let the same partition table produce denser tasks (lower dedup \
         factor → less gather traffic)."
    );
}
