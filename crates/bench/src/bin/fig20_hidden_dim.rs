//! Figure 20 — multi-device execution time of the first GCN layer as the
//! hidden dimension sweeps 2^5..2^10, on PA-S and FS-S.
//!
//! Expected shape: P3 (tensor parallel first layer) wins over DGL (data
//! parallel) at small hidden dims and loses as the hidden dim approaches
//! or exceeds the feature dim; WiseGraph's volume-driven operation
//! placement tracks the lower envelope and is consistently fastest.

use wisegraph_baselines::{MultiGpuSystem, MultiStack};
use wisegraph_bench::{build_dataset, fmt_ms, print_table};
use wisegraph_core::multi as ours;
use wisegraph_graph::DatasetKind;

fn main() {
    let stack = MultiStack::paper_quad();
    for kind in [DatasetKind::PapersSample, DatasetKind::FriendSterSample] {
        let (g, spec) = build_dataset(kind);
        let f_in = spec.feature_dim;
        let mut rows = Vec::new();
        for exp in 5..=10u32 {
            let hidden = 1usize << exp;
            let dgl = MultiGpuSystem::Dgl.first_layer_time(&g, f_in, hidden, &stack);
            let p3 = MultiGpuSystem::P3.first_layer_time(&g, f_in, hidden, &stack);
            let we = ours::first_layer_time(&g, f_in, hidden, &stack);
            let winner = if we <= dgl && we <= p3 {
                "ours"
            } else if dgl < p3 {
                "DGL"
            } else {
                "P3"
            };
            rows.push(vec![
                hidden.to_string(),
                fmt_ms(dgl, false),
                fmt_ms(p3, false),
                fmt_ms(we, false),
                winner.to_string(),
            ]);
        }
        print_table(
            &format!(
                "Figure 20 ({}): first GCN layer time (ms) vs hidden dim, F={}",
                spec.kind.short_name(),
                f_in
            ),
            &["Hidden", "DGL", "P3", "Ours", "fastest"],
            &rows,
        );
    }
    println!(
        "\nPaper shape: the static strategies trade places as the hidden \
         dim crosses the feature dim; WiseGraph is fastest at every point."
    );
}
