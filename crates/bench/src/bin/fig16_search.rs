//! Figure 16 — throughput as the search advances through its three stages
//! (graph partition → operation partition → joint optimization), with the
//! DGL throughput as the reference line.
//!
//! Expected shape: the graph-partition stage helps most for SAGE-LSTM and
//! GCN; the operation-partition stage is the big win for RGCN (and GAT);
//! joint optimization adds a final improvement for every model; the final
//! point clears the DGL line.

use wisegraph_baselines::{Baseline, LayerDims};
use wisegraph_bench::build_dataset;
use wisegraph_core::{SearchStage, WiseGraph};
use wisegraph_graph::DatasetKind;
use wisegraph_models::ModelKind;
use wisegraph_sim::DeviceSpec;

fn main() {
    let (g, spec) = build_dataset(DatasetKind::Arxiv);
    let dev = DeviceSpec::a100_pcie();
    let dims = LayerDims::paper_single(spec.feature_dim, spec.num_classes);
    let edges = g.num_edges() as f64;

    for model in [
        ModelKind::Rgcn,
        ModelKind::Gat,
        ModelKind::SageLstm,
        ModelKind::Gcn,
    ] {
        let wg = WiseGraph::new(dev);
        let out = wg.optimize(&g, model, &dims);
        // DGL reference throughput (per-layer forward, same normalization
        // as the trace points).
        let dgl = Baseline::Dgl.estimate(&g, model, &dims, &dev);
        let dgl_layer_fwd = dgl.time_per_iter
            / (dims.layers as f64 * wisegraph_baselines::single::TRAIN_FACTOR);
        let dgl_tp = edges / dgl_layer_fwd;

        println!(
            "\n## Figure 16 ({}): throughput (M edges/s) per search step \
             [DGL line: {:.1}]",
            model.name(),
            dgl_tp / 1e6
        );
        println!("| Step | Stage | Throughput | Best so far |");
        println!("|---|---|---|---|");
        let best = out.trace.best_so_far();
        for (i, (&(stage, tp), &b)) in
            out.trace.points.iter().zip(best.iter()).enumerate()
        {
            let stage_name = match stage {
                SearchStage::GraphPartition => "Graph Partition",
                SearchStage::OperationPartition => "Operation Partition",
                SearchStage::JointOptimization => "Joint Optimization",
            };
            println!(
                "| {} | {} | {:.1} | {:.1} |",
                i,
                stage_name,
                tp / 1e6,
                b / 1e6
            );
        }
        let final_best = best.last().copied().unwrap_or(0.0);
        println!(
            "\nFinal vs DGL: {:.2}x ({})",
            final_best / dgl_tp,
            if final_best > dgl_tp {
                "above the DGL line"
            } else {
                "below the DGL line"
            }
        );
        let s = wg.stats();
        println!(
            "Search cost: {} plans evaluated, {} pruned by the cost model, \
             {} cache hits",
            s.evaluated, s.pruned, s.cache_hits
        );
    }
}
