//! Figure 13 — single-GPU per-iteration time across five models, five
//! datasets and all applicable systems (including WiseGraph's gTask-based
//! execution). White cells (OOM) are printed as `OOM`.
//!
//! Expected shape: WiseGraph fastest everywhere; ~2.6× over the best
//! baseline on complex models (RGCN, GAT, SAGE-LSTM) and ~1.13× on simple
//! ones (SAGE, GCN); tensor-centric OOMs on large-edge datasets where
//! graph-centric still runs.

use wisegraph_baselines::{Baseline, LayerDims};
use wisegraph_bench::{build_dataset, fmt_ms, print_table, quick_mode};
use wisegraph_core::WiseGraph;
use wisegraph_graph::DatasetKind;
use wisegraph_models::ModelKind;
use wisegraph_sim::DeviceSpec;

fn main() {
    let dev = DeviceSpec::a100_pcie();
    let datasets: Vec<DatasetKind> = if quick_mode() {
        vec![DatasetKind::Arxiv, DatasetKind::PapersSample]
    } else {
        DatasetKind::SINGLE_GPU.to_vec()
    };
    let built: Vec<_> = datasets.iter().map(|&k| build_dataset(k)).collect();

    let mut speedups_complex = Vec::new();
    let mut speedups_simple = Vec::new();
    for model in ModelKind::ALL {
        let columns = Baseline::columns_for(model);
        let mut headers: Vec<String> =
            columns.iter().map(|b| b.label(model).to_string()).collect();
        headers.insert(0, "Dataset".to_string());
        headers.push("Our-gT".to_string());
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

        let mut rows = Vec::new();
        for (g, spec) in &built {
            let dims = LayerDims::paper_single(spec.feature_dim, spec.num_classes);
            let scale = spec.scale();
            let mut row = vec![spec.kind.short_name().to_string()];
            let mut best_baseline = f64::INFINITY;
            for b in &columns {
                let est = b.estimate(g, model, &dims, &dev);
                let oom = est.memory_bytes * scale > dev.mem_capacity;
                if !oom {
                    best_baseline = best_baseline.min(est.time_per_iter * scale);
                }
                row.push(fmt_ms(est.time_per_iter * scale, oom));
            }
            let wg = WiseGraph::new(dev);
            let ours = wg.optimize(g, model, &dims);
            let ours_oom = ours.memory_bytes * scale > dev.mem_capacity;
            let ours_time = ours.time_per_iter * scale;
            row.push(fmt_ms(ours_time, ours_oom));
            rows.push(row);
            if best_baseline.is_finite() && !ours_oom {
                let s = best_baseline / ours_time;
                if model.is_complex() {
                    speedups_complex.push(s);
                } else {
                    speedups_simple.push(s);
                }
            }
        }
        print_table(
            &format!("Figure 13 ({}): per-iteration time (ms)", model.name()),
            &header_refs,
            &rows,
        );
    }
    let gm = |v: &[f64]| {
        if v.is_empty() {
            return f64::NAN;
        }
        (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
    };
    println!(
        "\nGeomean speedup of Our-gT over the best baseline: complex models \
         {:.2}x (paper: 2.64x), simple models {:.2}x (paper: 1.13x)",
        gm(&speedups_complex),
        gm(&speedups_simple)
    );
}
