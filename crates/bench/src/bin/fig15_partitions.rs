//! Figure 15 — visualizing the graph partition plans WiseGraph finds per
//! model, against vertex-centric.
//!
//! The paper scatter-plots edges (source × destination) colored by task id
//! on a 512-vertex AR subgraph. This harness runs the real optimizer on an
//! AR-like 512-vertex graph, reports the chosen partition table per model,
//! prints plan statistics, and writes `fig15_<plan>.csv` files
//! (`src,dst,task`) for external plotting.
//!
//! Expected shape (paper §7.3): RGCN's plan restricts edge-type; GAT
//! groups edges sharing sources; SAGE-LSTM groups by destination degree;
//! SAGE/GCN bound the edge count per task.

use std::io::Write as _;
use wisegraph_baselines::single::LayerDims;
use wisegraph_bench::print_table;
use wisegraph_core::WiseGraph;
use wisegraph_graph::generate::{rmat, RmatParams};
use wisegraph_gtask::{partition, PartitionTable};
use wisegraph_models::ModelKind;
use wisegraph_sim::DeviceSpec;

fn dump_csv(name: &str, g: &wisegraph_graph::Graph, assignment: &[u32]) {
    let path = format!("fig15_{name}.csv");
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "src,dst,task").unwrap();
    for (e, task) in assignment.iter().enumerate().take(g.num_edges()) {
        writeln!(f, "{},{},{}", g.src()[e], g.dst()[e], task).unwrap();
    }
    eprintln!("wrote {path}");
}

fn main() {
    // AR-like 512-vertex subgraph: same average degree, power-law skew.
    let g = rmat(&RmatParams::standard(512, 7000, 15).with_edge_types(8));
    let dev = DeviceSpec::a100_pcie();
    let mut rows = Vec::new();

    // Reference: vertex-centric.
    let vc = partition(&g, &PartitionTable::vertex_centric());
    rows.push(vec![
        "(a) vertex-centric".to_string(),
        vc.table.to_string(),
        vc.num_tasks().to_string(),
        vc.median_task_edges().to_string(),
        vc.max_task_edges().to_string(),
    ]);
    dump_csv("vertex_centric", &g, &vc.task_of_edge(g.num_edges()));

    for model in ModelKind::ALL {
        let wg = WiseGraph::new(dev);
        let dims = LayerDims::paper_single(64, 16);
        let out = wg.optimize(&g, model, &dims);
        let plan = &out.per_layer[0].partition;
        rows.push(vec![
            format!("gTask for {}", model.name()),
            plan.table.to_string(),
            plan.num_tasks().to_string(),
            plan.median_task_edges().to_string(),
            plan.max_task_edges().to_string(),
        ]);
        dump_csv(
            &model.name().to_lowercase().replace('-', "_"),
            &g,
            &plan.task_of_edge(g.num_edges()),
        );
    }
    print_table(
        "Figure 15: partition plans found per model (512-vertex AR subgraph)",
        &["Plan", "Restrictions", "#tasks", "median edges", "max edges"],
        &rows,
    );
    println!(
        "\nPaper shape: each model gets a different, model-adapted plan; \
         task counts and shapes differ from vertex-centric."
    );
}
