//! Figure 14 — accuracy comparison between the DGL-style baseline and
//! WiseGraph.
//!
//! WiseGraph's DFG transformations are equivalence-preserving (§5.2), so
//! the two systems compute the same numbers; both trainers here run the
//! *same* real CPU training, differing only in execution order (edge order
//! follows each system's partition plan — which does not change results up
//! to floating-point associativity). We report (a) final test accuracy for
//! GAT and SAGE on three datasets and (b) the SAGE accuracy curve over 100
//! epochs on AR.
//!
//! Expected shape: accuracy difference between systems within 1%; curves
//! overlap.

use wisegraph_bench::print_table;
use wisegraph_core::trainer::{final_accuracy, train_full_graph};
use wisegraph_graph::generate::{labeled_graph, LabeledGraph, LabeledParams};
use wisegraph_models::{Gat, Sage};

/// Small labeled analogues of AR / PR / PA with learnable structure. Sizes
/// are reduced so real CPU training finishes in seconds; the learning
/// dynamics (homophily + class-correlated features) are what matters.
fn dataset(name: &str) -> LabeledGraph {
    let (num_vertices, classes, dim, seed) = match name {
        "AR" => (900, 8, 32, 1),
        "PR" => (1400, 10, 24, 2),
        "PA" => (1100, 12, 32, 3),
        other => panic!("unknown dataset {other}"),
    };
    labeled_graph(&LabeledParams {
        num_vertices,
        num_classes: classes,
        feature_dim: dim,
        avg_degree: 6,
        homophily: 0.62,
        noise: 2.6,
        num_edge_types: 4,
        seed,
    })
}

/// Rebuilds the dataset with edges re-ordered by a WiseGraph partition
/// plan: the numerically honest version of "WiseGraph changes execution
/// order, not results" — accumulation order differs, so accuracies may
/// drift by floating-point noise only.
fn plan_ordered(data: &LabeledGraph) -> LabeledGraph {
    use wisegraph_gtask::{partition, PartitionTable};
    let plan = partition(&data.graph, &PartitionTable::src_batch_per_type(64));
    let order: Vec<usize> = plan.tasks.iter().flat_map(|t| t.edges.iter().copied()).collect();
    let g = &data.graph;
    let src: Vec<u32> = order.iter().map(|&e| g.src()[e]).collect();
    let dst: Vec<u32> = order.iter().map(|&e| g.dst()[e]).collect();
    let ety: Vec<u32> = order.iter().map(|&e| g.etype()[e]).collect();
    let mut out = data.clone();
    out.graph = wisegraph_graph::Graph::new(
        g.num_vertices(),
        g.num_edge_types(),
        src,
        dst,
        ety,
    );
    out
}

fn main() {
    let epochs = 60;
    let lr = 0.01;
    let mut rows = Vec::new();
    for model_name in ["GAT", "SAGE"] {
        for ds in ["AR", "PR", "PA"] {
            let data = dataset(ds);
            let dims = [data.feature_dim, 32, data.num_classes];
            // "DGL": baseline execution order; "WiseGraph": plan-driven
            // order. Same computation, same seeds.
            let reordered = plan_ordered(&data);
            let (acc_dgl, acc_ours) = match model_name {
                "GAT" => {
                    let mut a = Gat::new(&dims, 11);
                    let mut b = Gat::new(&dims, 11);
                    (
                        final_accuracy(&mut a, &data, epochs, lr),
                        final_accuracy(&mut b, &reordered, epochs, lr),
                    )
                }
                _ => {
                    let mut a = Sage::new(&dims, 11);
                    let mut b = Sage::new(&dims, 11);
                    (
                        final_accuracy(&mut a, &data, epochs, lr),
                        final_accuracy(&mut b, &reordered, epochs, lr),
                    )
                }
            };
            rows.push(vec![
                model_name.to_string(),
                ds.to_string(),
                format!("{:.1}%", 100.0 * acc_dgl),
                format!("{:.1}%", 100.0 * acc_ours),
                format!("{:.2}pp", 100.0 * (acc_dgl - acc_ours).abs()),
            ]);
        }
    }
    print_table(
        "Figure 14(a): test accuracy, DGL vs WiseGraph",
        &["Model", "Dataset", "DGL", "WiseGraph", "|diff|"],
        &rows,
    );

    // (b) SAGE accuracy curve on AR over 100 epochs.
    let data = dataset("AR");
    let mut model = Sage::new(&[data.feature_dim, 32, data.num_classes], 11);
    let stats = train_full_graph(&mut model, &data, 100, lr);
    println!("\n## Figure 14(b): SAGE accuracy curve on AR (100 epochs)\n");
    println!("| Epoch | Loss | Test accuracy |");
    println!("|---|---|---|");
    for s in stats.iter().step_by(10).chain(stats.last()) {
        println!(
            "| {} | {:.4} | {:.1}% |",
            s.epoch,
            s.loss,
            100.0 * s.test_accuracy
        );
    }
    println!(
        "\nPaper shape: WiseGraph and DGL match within 1% on every cell; the \
         accuracy curve rises and plateaus."
    );
}
