//! Trainable relational GCN.

use crate::trainable::{GnnModel, ModelOutput};
use wisegraph_graph::Graph;
use wisegraph_tensor::{init, Tape, Tensor, Var};

/// Multi-layer RGCN: each layer computes, per edge type `t`,
/// `h'[dst] += h[src] @ W_t` (Equation 1), plus a self-loop projection.
pub struct Rgcn {
    layers: Vec<RgcnLayer>,
    num_types: usize,
}

struct RgcnLayer {
    /// One weight per edge type.
    w_rel: Vec<Tensor>,
    w_self: Tensor,
    bias: Tensor,
}

impl Rgcn {
    /// Creates an RGCN with the given layer widths for a graph with
    /// `num_types` edge types.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given or `num_types == 0`.
    pub fn new(dims: &[usize], num_types: usize, seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output widths");
        assert!(num_types > 0, "need at least one edge type");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| RgcnLayer {
                w_rel: (0..num_types)
                    .map(|t| {
                        init::xavier_uniform(
                            w[0],
                            w[1],
                            seed + (i * num_types + t) as u64,
                        )
                    })
                    .collect(),
                w_self: init::xavier_uniform(w[0], w[1], seed + 1000 + i as u64),
                bias: Tensor::zeros(&[w[1]]),
            })
            .collect();
        Self { layers, num_types }
    }

    /// Per-type edge index lists: `(srcs, dsts)` for each type.
    fn edges_by_type(&self, g: &Graph) -> Vec<(Vec<u32>, Vec<u32>)> {
        let mut by_type: Vec<(Vec<u32>, Vec<u32>)> =
            vec![(Vec::new(), Vec::new()); self.num_types];
        for e in 0..g.num_edges() {
            let t = g.etype()[e] as usize;
            by_type[t].0.push(g.src()[e]);
            by_type[t].1.push(g.dst()[e]);
        }
        by_type
    }
}

impl GnnModel for Rgcn {
    fn name(&self) -> &'static str {
        "RGCN"
    }

    fn forward(&self, tape: &Tape, g: &Graph, x: Var) -> ModelOutput {
        assert_eq!(
            g.num_edge_types(),
            self.num_types,
            "graph has {} edge types, model built for {}",
            g.num_edge_types(),
            self.num_types
        );
        let by_type = self.edges_by_type(g);
        let v = g.num_vertices();
        // Normalize by in-degree to keep magnitudes stable across layers.
        let deg = Tensor::from_vec(
            g.in_degree()
                .iter()
                .map(|&d| 1.0 / (d.max(1) as f32))
                .collect(),
            &[v],
        );
        let mut h = x;
        let mut params = Vec::new();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let mut acc = {
                let ws = tape.param(layer.w_self.clone());
                params.push(ws);
                tape.matmul(h, ws)
            };
            for (t, w_t) in layer.w_rel.iter().enumerate() {
                let wv = tape.param(w_t.clone());
                params.push(wv);
                let (srcs, dsts) = &by_type[t];
                if srcs.is_empty() {
                    continue;
                }
                let gathered = tape.gather_rows(h, srcs.clone());
                let msg = tape.matmul(gathered, wv);
                let agg = tape.index_add_rows(v, msg, dsts.clone());
                let norm = tape.scale_rows_const(agg, deg.clone());
                acc = tape.add(acc, norm);
            }
            let bv = tape.param(layer.bias.clone());
            params.push(bv);
            h = tape.add_bias(acc, bv);
            if i != last {
                h = tape.relu(h);
            }
        }
        ModelOutput { logits: h, params }
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        let mut out = Vec::new();
        for layer in &mut self.layers {
            out.push(&mut layer.w_self);
            for w in &mut layer.w_rel {
                out.push(w);
            }
            out.push(&mut layer.bias);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainable::{accuracy, features_tensor, train_epoch};
    use wisegraph_graph::generate::{labeled_graph, LabeledParams};
    use wisegraph_tensor::Adam;

    #[test]
    fn rgcn_learns_on_typed_graph() {
        let lg = labeled_graph(&LabeledParams {
            num_vertices: 250,
            num_classes: 4,
            feature_dim: 12,
            homophily: 0.9,
            noise: 0.4,
            num_edge_types: 3,
            seed: 21,
            ..Default::default()
        });
        let feats = features_tensor(&lg.features, 250, 12);
        let mut model = Rgcn::new(&[12, 16, 4], 3, 9);
        let mut opt = Adam::new(0.01);
        let mut losses = Vec::new();
        for _ in 0..30 {
            losses.push(train_epoch(
                &mut model,
                &mut opt,
                &lg.graph,
                &feats,
                &lg.labels,
                &lg.train_idx,
            ));
        }
        assert!(losses[29] < losses[0] * 0.8, "losses: {losses:?}");
        let acc = accuracy(&model, &lg.graph, &feats, &lg.labels, &lg.test_idx);
        assert!(acc > 0.55, "accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "edge types")]
    fn rejects_type_count_mismatch() {
        let lg = labeled_graph(&LabeledParams {
            num_edge_types: 2,
            ..Default::default()
        });
        let feats = features_tensor(
            &lg.features,
            lg.graph.num_vertices(),
            lg.feature_dim,
        );
        let model = Rgcn::new(&[32, 4], 5, 0);
        let tape = Tape::new();
        let x = tape.input(feats);
        model.forward(&tape, &lg.graph, x);
    }
}
