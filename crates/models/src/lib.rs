//! The five evaluated GNN models (paper §7.1): RGCN, GAT, SAGE-LSTM, SAGE,
//! and GCN.
//!
//! Each model exists in two forms:
//!
//! - a **DFG builder** ([`kind::ModelKind::layer_dfg`]) producing the
//!   operation data-flow graph of one layer, consumed by the partition
//!   planner, the DFG transformer, and the simulator;
//! - a **trainable implementation** (for GCN, SAGE, GAT and RGCN) built on
//!   the autograd tape, used by the accuracy experiments of Figure 14.
//!   SAGE-LSTM is forward-only (executed through the DFG interpreter), as
//!   the paper's accuracy study covers GAT and SAGE.
//!
//! RGCN, GAT and SAGE-LSTM perform complex neural computations (MLP,
//! attention, LSTM); SAGE and GCN reduce to additions — the split the
//! paper's Figure 13 analysis is organized around.

pub mod gat;
pub mod gcn;
pub mod kind;
pub mod rgcn;
pub mod sage;
pub mod trainable;

pub use gat::Gat;
pub use gcn::Gcn;
pub use kind::ModelKind;
pub use rgcn::Rgcn;
pub use sage::Sage;
pub use trainable::{
    accuracy, accuracy_ws, features_tensor, train_epoch, train_epoch_ws, GnnModel,
    ModelOutput,
};
