//! Trainable graph attention network with multi-head attention.

use crate::trainable::{GnnModel, ModelOutput};
use wisegraph_graph::Graph;
use wisegraph_tensor::{init, Tape, Tensor, Var};

/// Multi-layer GAT. Each layer runs `heads` independent attention heads of
/// width `f_out / heads` and concatenates their outputs (the paper's MHA
/// neural operation).
pub struct Gat {
    layers: Vec<GatLayer>,
    heads: usize,
    /// Leaky-ReLU slope used for attention scores.
    pub slope: f32,
}

struct GatHead {
    w: Tensor,
    a_src: Tensor,
    a_dst: Tensor,
}

struct GatLayer {
    heads: Vec<GatHead>,
    bias: Tensor,
}

impl Gat {
    /// Creates a single-head GAT with the given layer widths.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        Self::with_heads(dims, 1, seed)
    }

    /// Creates a GAT with `heads` attention heads per layer.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given, `heads == 0`, or any
    /// output width is not divisible by `heads`.
    pub fn with_heads(dims: &[usize], heads: usize, seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output widths");
        assert!(heads > 0, "need at least one head");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                assert!(
                    w[1] % heads == 0,
                    "layer width {} not divisible by {heads} heads",
                    w[1]
                );
                let head_dim = w[1] / heads;
                let heads = (0..heads)
                    .map(|h| {
                        let s = seed + (i * heads + h) as u64 * 3;
                        GatHead {
                            w: init::xavier_uniform(w[0], head_dim, s),
                            a_src: init::xavier_uniform(head_dim, 1, s + 1),
                            a_dst: init::xavier_uniform(head_dim, 1, s + 2),
                        }
                    })
                    .collect();
                GatLayer {
                    heads,
                    bias: Tensor::zeros(&[w[1]]),
                }
            })
            .collect();
        Self {
            layers,
            heads,
            slope: 0.2,
        }
    }

    /// Number of attention heads per layer.
    pub fn num_heads(&self) -> usize {
        self.heads
    }
}

impl GnnModel for Gat {
    fn name(&self) -> &'static str {
        "GAT"
    }

    fn forward(&self, tape: &Tape, g: &Graph, x: Var) -> ModelOutput {
        let src: Vec<u32> = g.src().to_vec();
        let dst: Vec<u32> = g.dst().to_vec();
        let v = g.num_vertices();
        let mut h = x;
        let mut params = Vec::new();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let mut head_outputs: Option<Var> = None;
            for head in &layer.heads {
                let wv = tape.param(head.w.clone());
                let asv = tape.param(head.a_src.clone());
                let adv = tape.param(head.a_dst.clone());
                params.extend([wv, asv, adv]);
                let z = tape.matmul(h, wv);
                // Attention logits per vertex, hoisted before the edge
                // gather (the indexing-swap form WiseGraph derives
                // automatically).
                let s_src = tape.matmul(z, asv);
                let s_dst = tape.matmul(z, adv);
                let e_src = tape.gather_rows(s_src, src.clone());
                let e_dst = tape.gather_rows(s_dst, dst.clone());
                let e_sum = tape.add(e_src, e_dst);
                let e_act = tape.leaky_relu(e_sum, self.slope);
                let scores = tape.reshape(e_act, &[g.num_edges()]);
                let alpha = tape.segment_softmax(scores, dst.clone(), v);
                let msg = tape.gather_rows(z, src.clone());
                let weighted = tape.scale_rows(msg, alpha);
                let agg = tape.index_add_rows(v, weighted, dst.clone());
                head_outputs = Some(match head_outputs {
                    None => agg,
                    Some(prev) => tape.concat_cols(prev, agg),
                });
            }
            let bv = tape.param(layer.bias.clone());
            params.push(bv);
            let concat = head_outputs.expect("at least one head");
            h = tape.add_bias(concat, bv);
            if i != last {
                h = tape.relu(h);
            }
        }
        ModelOutput { logits: h, params }
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        let mut out = Vec::new();
        for layer in &mut self.layers {
            for head in &mut layer.heads {
                out.push(&mut head.w);
                out.push(&mut head.a_src);
                out.push(&mut head.a_dst);
            }
            out.push(&mut layer.bias);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainable::{accuracy, features_tensor, train_epoch};
    use wisegraph_graph::generate::{labeled_graph, LabeledParams};
    use wisegraph_tensor::Adam;

    #[test]
    fn gat_learns_homophilous_labels() {
        let lg = labeled_graph(&LabeledParams {
            num_vertices: 250,
            num_classes: 4,
            feature_dim: 12,
            homophily: 0.9,
            noise: 0.4,
            seed: 11,
            ..Default::default()
        });
        let feats = features_tensor(&lg.features, 250, 12);
        let mut model = Gat::new(&[12, 16, 4], 9);
        let mut opt = Adam::new(0.01);
        let mut losses = Vec::new();
        for _ in 0..30 {
            losses.push(train_epoch(
                &mut model,
                &mut opt,
                &lg.graph,
                &feats,
                &lg.labels,
                &lg.train_idx,
            ));
        }
        assert!(losses[29] < losses[0] * 0.8, "losses: {losses:?}");
        let acc = accuracy(&model, &lg.graph, &feats, &lg.labels, &lg.test_idx);
        assert!(acc > 0.55, "accuracy {acc}");
    }

    #[test]
    fn multi_head_gat_learns() {
        let lg = labeled_graph(&LabeledParams {
            num_vertices: 250,
            num_classes: 4,
            feature_dim: 12,
            homophily: 0.9,
            noise: 0.4,
            seed: 11,
            ..Default::default()
        });
        let feats = features_tensor(&lg.features, 250, 12);
        let mut model = Gat::with_heads(&[12, 16, 4], 4, 9);
        assert_eq!(model.num_heads(), 4);
        let mut opt = Adam::new(0.01);
        let mut losses = Vec::new();
        for _ in 0..25 {
            losses.push(train_epoch(
                &mut model,
                &mut opt,
                &lg.graph,
                &feats,
                &lg.labels,
                &lg.train_idx,
            ));
        }
        assert!(losses[24] < losses[0] * 0.8, "losses: {losses:?}");
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn heads_must_divide_width() {
        let _ = Gat::with_heads(&[12, 15, 4], 4, 0);
    }

    #[test]
    fn gat_output_is_finite_on_skewed_graph() {
        use wisegraph_graph::generate::{rmat, RmatParams};
        let g = rmat(&RmatParams::standard(100, 2000, 13));
        let feats = init::uniform_tensor(&[100, 8], -1.0, 1.0, 3);
        let model = Gat::new(&[8, 4], 2);
        let tape = Tape::new();
        let x = tape.input(feats);
        let out = model.forward(&tape, &g, x);
        assert!(tape.value(out.logits).all_finite());
    }
}
