//! Trainable GraphSAGE (mean aggregator).

use crate::trainable::{GnnModel, ModelOutput};
use wisegraph_graph::Graph;
use wisegraph_tensor::{init, Tape, Tensor, Var};

/// Multi-layer GraphSAGE: `h' = relu(h W_self + mean_nbr(h) W_neigh + b)`.
pub struct Sage {
    layers: Vec<SageLayer>,
}

struct SageLayer {
    w_self: Tensor,
    w_neigh: Tensor,
    bias: Tensor,
}

impl Sage {
    /// Creates a SAGE model with the given layer widths.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output widths");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| SageLayer {
                w_self: init::xavier_uniform(w[0], w[1], seed + 2 * i as u64),
                w_neigh: init::xavier_uniform(w[0], w[1], seed + 2 * i as u64 + 1),
                bias: Tensor::zeros(&[w[1]]),
            })
            .collect();
        Self { layers }
    }
}

impl GnnModel for Sage {
    fn name(&self) -> &'static str {
        "SAGE"
    }

    fn forward(&self, tape: &Tape, g: &Graph, x: Var) -> ModelOutput {
        let src: Vec<u32> = g.src().to_vec();
        let dst: Vec<u32> = g.dst().to_vec();
        let deg = Tensor::from_vec(
            g.in_degree()
                .iter()
                .map(|&d| 1.0 / (d.max(1) as f32))
                .collect(),
            &[g.num_vertices()],
        );
        let mut h = x;
        let mut params = Vec::new();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let ws = tape.param(layer.w_self.clone());
            let wn = tape.param(layer.w_neigh.clone());
            let bv = tape.param(layer.bias.clone());
            params.extend([ws, wn, bv]);
            let gathered = tape.gather_rows(h, src.clone());
            let agg = tape.index_add_rows(g.num_vertices(), gathered, dst.clone());
            let mean = tape.scale_rows_const(agg, deg.clone());
            let self_part = tape.matmul(h, ws);
            let neigh_part = tape.matmul(mean, wn);
            let sum = tape.add(self_part, neigh_part);
            h = tape.add_bias(sum, bv);
            if i != last {
                h = tape.relu(h);
            }
        }
        ModelOutput { logits: h, params }
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.layers
            .iter_mut()
            .flat_map(|l| [&mut l.w_self, &mut l.w_neigh, &mut l.bias])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainable::{accuracy, features_tensor, train_epoch};
    use wisegraph_graph::generate::{labeled_graph, LabeledParams};
    use wisegraph_tensor::Adam;

    #[test]
    fn sage_learns_homophilous_labels() {
        let lg = labeled_graph(&LabeledParams {
            num_vertices: 300,
            num_classes: 4,
            feature_dim: 16,
            homophily: 0.9,
            noise: 0.5,
            seed: 3,
            ..Default::default()
        });
        let feats = features_tensor(&lg.features, 300, 16);
        let mut model = Sage::new(&[16, 32, 4], 5);
        let mut opt = Adam::new(0.01);
        for _ in 0..30 {
            train_epoch(
                &mut model,
                &mut opt,
                &lg.graph,
                &feats,
                &lg.labels,
                &lg.train_idx,
            );
        }
        let acc = accuracy(&model, &lg.graph, &feats, &lg.labels, &lg.test_idx);
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    fn sage_self_path_preserves_isolated_vertices() {
        // With no edges, SAGE still classifies from the self path (GCN
        // would output pure bias).
        let g = Graph::untyped(10, vec![], vec![]);
        let feats = Tensor::ones(&[10, 4]);
        let model = Sage::new(&[4, 3], 1);
        let tape = Tape::new();
        let x = tape.input(feats);
        let out = model.forward(&tape, &g, x);
        let logits = tape.value(out.logits);
        assert!(logits.data().iter().any(|&v| v != 0.0));
    }
}
