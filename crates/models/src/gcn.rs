//! Trainable GCN.

use crate::trainable::{GnnModel, ModelOutput};
use wisegraph_graph::Graph;
use wisegraph_tensor::{init, Tape, Tensor, Var};

/// A multi-layer GCN: each layer aggregates mean-normalized neighbor
/// features and applies a linear projection; ReLU between layers.
pub struct Gcn {
    layers: Vec<(Tensor, Tensor)>,
}

impl Gcn {
    /// Creates a GCN with the given layer widths, e.g. `[in, hidden, out]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output widths");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                (
                    init::xavier_uniform(w[0], w[1], seed + i as u64),
                    Tensor::zeros(&[w[1]]),
                )
            })
            .collect();
        Self { layers }
    }

    fn degree_scales(g: &Graph) -> Tensor {
        let scales: Vec<f32> = g
            .in_degree()
            .iter()
            .map(|&d| 1.0 / (d.max(1) as f32))
            .collect();
        Tensor::from_vec(scales, &[g.num_vertices()])
    }
}

impl GnnModel for Gcn {
    fn name(&self) -> &'static str {
        "GCN"
    }

    fn forward(&self, tape: &Tape, g: &Graph, x: Var) -> ModelOutput {
        let src: Vec<u32> = g.src().to_vec();
        let dst: Vec<u32> = g.dst().to_vec();
        let deg = Self::degree_scales(g);
        let mut h = x;
        let mut params = Vec::new();
        let last = self.layers.len() - 1;
        for (i, (w, b)) in self.layers.iter().enumerate() {
            let wv = tape.param(w.clone());
            let bv = tape.param(b.clone());
            params.push(wv);
            params.push(bv);
            let gathered = tape.gather_rows(h, src.clone());
            let agg = tape.index_add_rows(g.num_vertices(), gathered, dst.clone());
            let norm = tape.scale_rows_const(agg, deg.clone());
            let proj = tape.matmul(norm, wv);
            h = tape.add_bias(proj, bv);
            if i != last {
                h = tape.relu(h);
            }
        }
        ModelOutput { logits: h, params }
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.layers
            .iter_mut()
            .flat_map(|(w, b)| [w, b])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainable::{accuracy, features_tensor, train_epoch};
    use wisegraph_graph::generate::{labeled_graph, LabeledParams};
    use wisegraph_tensor::Adam;

    #[test]
    fn gcn_learns_homophilous_labels() {
        let lg = labeled_graph(&LabeledParams {
            num_vertices: 300,
            num_classes: 4,
            feature_dim: 16,
            homophily: 0.9,
            noise: 0.5,
            seed: 7,
            ..Default::default()
        });
        let feats = features_tensor(&lg.features, 300, 16);
        let mut model = Gcn::new(&[16, 32, 4], 1);
        let mut opt = Adam::new(0.01);
        let first_acc = accuracy(&model, &lg.graph, &feats, &lg.labels, &lg.test_idx);
        let mut losses = Vec::new();
        for _ in 0..30 {
            losses.push(train_epoch(
                &mut model,
                &mut opt,
                &lg.graph,
                &feats,
                &lg.labels,
                &lg.train_idx,
            ));
        }
        let final_acc = accuracy(&model, &lg.graph, &feats, &lg.labels, &lg.test_idx);
        assert!(
            losses[losses.len() - 1] < losses[0] * 0.7,
            "loss should drop: {losses:?}"
        );
        assert!(
            final_acc > first_acc && final_acc > 0.6,
            "accuracy {first_acc} -> {final_acc}"
        );
    }

    #[test]
    fn parameter_count() {
        let mut m = Gcn::new(&[8, 16, 4], 0);
        assert_eq!(m.num_parameters(), 8 * 16 + 16 + 16 * 4 + 4);
    }
}
