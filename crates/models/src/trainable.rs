//! Trainable-model trait and training/evaluation loops.

use wisegraph_graph::Graph;
use wisegraph_tensor::{ops, Optimizer, Tape, Tensor, Var};

/// What a forward pass returns: logits plus the tape handles of the
/// parameters, in the same order as [`GnnModel::params_mut`].
pub struct ModelOutput {
    /// `[V, num_classes]` logits.
    pub logits: Var,
    /// Parameter variables registered during this forward pass.
    pub params: Vec<Var>,
}

/// A GNN trainable with the autograd tape.
///
/// Invariant: the order of `params` in [`ModelOutput`] must match the order
/// of [`GnnModel::params_mut`] — optimizers key their state on slot order.
pub trait GnnModel {
    /// Human-readable model name.
    fn name(&self) -> &'static str;

    /// Runs a forward pass, registering parameters on the tape.
    fn forward(&self, tape: &Tape, g: &Graph, x: Var) -> ModelOutput;

    /// Mutable access to the parameter tensors (optimizer update targets).
    fn params_mut(&mut self) -> Vec<&mut Tensor>;

    /// Total scalar parameter count.
    fn num_parameters(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.numel()).sum()
    }
}

/// Runs one full-graph training epoch; returns the training loss.
///
/// # Panics
///
/// Panics if `train_idx` is empty or an index is out of bounds.
pub fn train_epoch(
    model: &mut dyn GnnModel,
    opt: &mut dyn Optimizer,
    g: &Graph,
    features: &Tensor,
    labels: &[u32],
    train_idx: &[u32],
) -> f32 {
    assert!(!train_idx.is_empty(), "empty training set");
    let tape = Tape::new();
    let x = tape.input(features.clone());
    let out = model.forward(&tape, g, x);
    let selected = tape.gather_rows(out.logits, train_idx.to_vec());
    let selected_labels: Vec<u32> = train_idx.iter().map(|&i| labels[i as usize]).collect();
    let loss = tape.cross_entropy(selected, selected_labels);
    tape.backward(loss);
    let grads: Vec<Tensor> = out
        .params
        .iter()
        .map(|&p| {
            tape.grad(p)
                .unwrap_or_else(|| Tensor::zeros(tape.value(p).dims()))
        })
        .collect();
    let mut params = model.params_mut();
    assert_eq!(
        params.len(),
        grads.len(),
        "params_mut / forward registration order mismatch"
    );
    let grad_refs: Vec<&Tensor> = grads.iter().collect();
    opt.step(&mut params, &grad_refs);
    tape.value(loss).item()
}

/// Classification accuracy over `idx` (fraction of correct argmax).
pub fn accuracy(
    model: &dyn GnnModel,
    g: &Graph,
    features: &Tensor,
    labels: &[u32],
    idx: &[u32],
) -> f64 {
    let tape = Tape::new();
    let x = tape.input(features.clone());
    let out = model.forward(&tape, g, x);
    let logits = tape.value(out.logits);
    let pred = ops::argmax_rows(&logits);
    let correct = idx
        .iter()
        .filter(|&&i| pred[i as usize] == labels[i as usize])
        .count();
    correct as f64 / idx.len().max(1) as f64
}

/// Converts a labeled dataset's raw feature buffer into a tensor.
pub fn features_tensor(features: &[f32], num_vertices: usize, dim: usize) -> Tensor {
    Tensor::from_vec(features.to_vec(), &[num_vertices, dim])
}
