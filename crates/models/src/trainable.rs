//! Trainable-model trait and training/evaluation loops.

use wisegraph_graph::Graph;
use wisegraph_tensor::{ops, Optimizer, Tape, Tensor, Var, Workspace};

/// What a forward pass returns: logits plus the tape handles of the
/// parameters, in the same order as [`GnnModel::params_mut`].
pub struct ModelOutput {
    /// `[V, num_classes]` logits.
    pub logits: Var,
    /// Parameter variables registered during this forward pass.
    pub params: Vec<Var>,
}

/// A GNN trainable with the autograd tape.
///
/// Invariant: the order of `params` in [`ModelOutput`] must match the order
/// of [`GnnModel::params_mut`] — optimizers key their state on slot order.
pub trait GnnModel {
    /// Human-readable model name.
    fn name(&self) -> &'static str;

    /// Runs a forward pass, registering parameters on the tape.
    fn forward(&self, tape: &Tape, g: &Graph, x: Var) -> ModelOutput;

    /// Mutable access to the parameter tensors (optimizer update targets).
    fn params_mut(&mut self) -> Vec<&mut Tensor>;

    /// Total scalar parameter count.
    fn num_parameters(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.numel()).sum()
    }
}

/// Runs one full-graph training epoch; returns the training loss.
///
/// Allocating wrapper around [`train_epoch_ws`] — the epoch's tape storage
/// is dropped instead of recycled. Training loops should hold a
/// [`Workspace`] and call [`train_epoch_ws`] so epoch `n + 1` reuses epoch
/// `n`'s buffers.
///
/// # Panics
///
/// Panics if `train_idx` is empty or an index is out of bounds.
pub fn train_epoch(
    model: &mut dyn GnnModel,
    opt: &mut dyn Optimizer,
    g: &Graph,
    features: &Tensor,
    labels: &[u32],
    train_idx: &[u32],
) -> f32 {
    let mut ws = Workspace::new();
    train_epoch_ws(model, opt, g, features, labels, train_idx, &mut ws)
}

/// Runs one full-graph training epoch with tape storage drawn from (and
/// recycled into) `ws`; returns the training loss.
///
/// Numerically identical to [`train_epoch`]: pooled buffers are zero-filled
/// on checkout, so the tape computes the same values bit for bit.
///
/// # Panics
///
/// Panics if `train_idx` is empty or an index is out of bounds.
pub fn train_epoch_ws(
    model: &mut dyn GnnModel,
    opt: &mut dyn Optimizer,
    g: &Graph,
    features: &Tensor,
    labels: &[u32],
    train_idx: &[u32],
    ws: &mut Workspace,
) -> f32 {
    assert!(!train_idx.is_empty(), "empty training set");
    let tape = Tape::with_workspace(std::mem::take(ws));
    let x = tape.input(features.clone());
    let out = model.forward(&tape, g, x);
    let selected = tape.gather_rows(out.logits, train_idx.to_vec());
    let selected_labels: Vec<u32> = train_idx.iter().map(|&i| labels[i as usize]).collect();
    let loss = tape.cross_entropy(selected, selected_labels);
    tape.backward(loss);
    let grads: Vec<Tensor> = out
        .params
        .iter()
        .map(|&p| {
            tape.grad(p)
                .unwrap_or_else(|| Tensor::zeros(tape.value(p).dims()))
        })
        .collect();
    let mut params = model.params_mut();
    assert_eq!(
        params.len(),
        grads.len(),
        "params_mut / forward registration order mismatch"
    );
    let grad_refs: Vec<&Tensor> = grads.iter().collect();
    opt.step(&mut params, &grad_refs);
    let loss_value = tape.value(loss).item();
    *ws = tape.finish();
    loss_value
}

/// Classification accuracy over `idx` (fraction of correct argmax).
///
/// Allocating wrapper around [`accuracy_ws`].
pub fn accuracy(
    model: &dyn GnnModel,
    g: &Graph,
    features: &Tensor,
    labels: &[u32],
    idx: &[u32],
) -> f64 {
    let mut ws = Workspace::new();
    accuracy_ws(model, g, features, labels, idx, &mut ws)
}

/// Classification accuracy with the forward pass's tape storage drawn from
/// (and recycled into) `ws`.
pub fn accuracy_ws(
    model: &dyn GnnModel,
    g: &Graph,
    features: &Tensor,
    labels: &[u32],
    idx: &[u32],
    ws: &mut Workspace,
) -> f64 {
    let tape = Tape::with_workspace(std::mem::take(ws));
    let x = tape.input(features.clone());
    let out = model.forward(&tape, g, x);
    let logits = tape.value(out.logits);
    let pred = ops::argmax_rows(&logits);
    let correct = idx
        .iter()
        .filter(|&&i| pred[i as usize] == labels[i as usize])
        .count();
    *ws = tape.finish();
    correct as f64 / idx.len().max(1) as f64
}

/// Converts a labeled dataset's raw feature buffer into a tensor.
pub fn features_tensor(features: &[f32], num_vertices: usize, dim: usize) -> Tensor {
    Tensor::from_vec(features.to_vec(), &[num_vertices, dim])
}
