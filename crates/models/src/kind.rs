//! Model metadata and per-layer DFG builders.

use wisegraph_dfg::{Dfg, Dim};
use wisegraph_graph::AttrKind;

/// The five GNN models of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Relational GCN: per-edge-type MLP (Equation 1).
    Rgcn,
    /// Graph attention network: multi-head attention (represented single
    /// head per layer here).
    Gat,
    /// GraphSAGE with LSTM aggregation.
    SageLstm,
    /// GraphSAGE with mean aggregation.
    Sage,
    /// Graph convolutional network.
    Gcn,
}

impl ModelKind {
    /// All models in the paper's Figure 13 column order.
    pub const ALL: [ModelKind; 5] = [
        ModelKind::Rgcn,
        ModelKind::Gat,
        ModelKind::SageLstm,
        ModelKind::Sage,
        ModelKind::Gcn,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Rgcn => "RGCN",
            ModelKind::Gat => "GAT",
            ModelKind::SageLstm => "SAGE-LSTM",
            ModelKind::Sage => "SAGE",
            ModelKind::Gcn => "GCN",
        }
    }

    /// `true` for models with complex neural operations (MLP / attention /
    /// LSTM); SAGE and GCN only use additions (§7.2).
    pub fn is_complex(self) -> bool {
        matches!(self, ModelKind::Rgcn | ModelKind::Gat | ModelKind::SageLstm)
    }

    /// Builds the one-layer DFG of this model mapping `[V, f_in]` vertex
    /// embeddings to `[V, f_out]`.
    ///
    /// # Panics
    ///
    /// Panics if `f_in` or `f_out` is zero.
    pub fn layer_dfg(self, f_in: usize, f_out: usize) -> Dfg {
        assert!(f_in > 0 && f_out > 0, "feature dims must be positive");
        match self {
            ModelKind::Rgcn => rgcn_layer(f_in, f_out),
            ModelKind::Gat => gat_layer(f_in, f_out),
            ModelKind::SageLstm => sage_lstm_layer(f_in, f_out),
            ModelKind::Sage => sage_layer(f_in, f_out),
            ModelKind::Gcn => gcn_layer(f_in, f_out),
        }
    }
}

/// RGCN layer (Figure 2c): `h'[dst] += MLP(h[src], W[edge-type])`.
fn rgcn_layer(f_in: usize, f_out: usize) -> Dfg {
    let mut d = Dfg::new();
    let h = d.input("h", vec![Dim::Vertices, Dim::Lit(f_in)]);
    let w = d.input(
        "W",
        vec![Dim::EdgeTypes, Dim::Lit(f_in), Dim::Lit(f_out)],
    );
    let src = d.edge_attr(AttrKind::SrcId);
    let ty = d.edge_attr(AttrKind::EdgeType);
    let dst = d.edge_attr(AttrKind::DstId);
    let hsrc = d.index(h, src);
    let wt = d.index(w, ty);
    let msg = d.per_edge_linear(hsrc, wt);
    let out = d.index_add(msg, dst, Dim::Vertices);
    d.mark_output(out);
    d
}

/// GAT layer: attention scores per edge, per-destination softmax, weighted
/// aggregation.
fn gat_layer(f_in: usize, f_out: usize) -> Dfg {
    let mut d = Dfg::new();
    let h = d.input("h", vec![Dim::Vertices, Dim::Lit(f_in)]);
    let w = d.input("w", vec![Dim::Lit(f_in), Dim::Lit(f_out)]);
    let a_src = d.input("a_src", vec![Dim::Lit(f_out), Dim::Lit(1)]);
    let a_dst = d.input("a_dst", vec![Dim::Lit(f_out), Dim::Lit(1)]);
    let src = d.edge_attr(AttrKind::SrcId);
    let dst = d.edge_attr(AttrKind::DstId);
    let z = d.linear(h, w);
    let s_src = d.linear(z, a_src);
    let s_dst = d.linear(z, a_dst);
    let e_src = d.index(s_src, src);
    let e_dst = d.index(s_dst, dst);
    let e_sum = d.add(e_src, e_dst);
    let e_act = d.leaky_relu(e_sum);
    let scores = d.squeeze_col(e_act);
    let alpha = d.segment_softmax(scores, dst);
    let msg = d.index(z, src);
    let weighted = d.scale_rows(msg, alpha);
    let out = d.index_add(weighted, dst, Dim::Vertices);
    d.mark_output(out);
    d
}

/// SAGE-LSTM layer: LSTM over in-neighbor messages, then projection.
fn sage_lstm_layer(f_in: usize, f_out: usize) -> Dfg {
    let hidden = f_out;
    let mut d = Dfg::new();
    let h = d.input("h", vec![Dim::Vertices, Dim::Lit(f_in)]);
    let wx = d.input("wx", vec![Dim::Lit(f_in), Dim::Lit(4 * hidden)]);
    let wh = d.input("wh", vec![Dim::Lit(hidden), Dim::Lit(4 * hidden)]);
    let b = d.input("b", vec![Dim::Lit(4 * hidden)]);
    let w_out = d.input("w_out", vec![Dim::Lit(hidden), Dim::Lit(f_out)]);
    let src = d.edge_attr(AttrKind::SrcId);
    let dst = d.edge_attr(AttrKind::DstId);
    let hsrc = d.index(h, src);
    let agg = d.lstm_aggregate(hsrc, dst, wx, wh, b, hidden);
    let out = d.linear(agg, w_out);
    d.mark_output(out);
    d
}

/// SAGE (mean) layer: `h' = h @ W_self + mean_nbr(h) @ W_neigh`.
fn sage_layer(f_in: usize, f_out: usize) -> Dfg {
    let mut d = Dfg::new();
    let h = d.input("h", vec![Dim::Vertices, Dim::Lit(f_in)]);
    let w_self = d.input("w_self", vec![Dim::Lit(f_in), Dim::Lit(f_out)]);
    let w_neigh = d.input("w_neigh", vec![Dim::Lit(f_in), Dim::Lit(f_out)]);
    let src = d.edge_attr(AttrKind::SrcId);
    let dst = d.edge_attr(AttrKind::DstId);
    let hsrc = d.index(h, src);
    let agg = d.index_add(hsrc, dst, Dim::Vertices);
    let mean = d.scale_by_degree_inv(agg);
    let self_part = d.linear(h, w_self);
    let neigh_part = d.linear(mean, w_neigh);
    let out = d.add(self_part, neigh_part);
    d.mark_output(out);
    d
}

/// GCN layer: `h' = norm(A h) @ W`.
fn gcn_layer(f_in: usize, f_out: usize) -> Dfg {
    let mut d = Dfg::new();
    let h = d.input("h", vec![Dim::Vertices, Dim::Lit(f_in)]);
    let w = d.input("w", vec![Dim::Lit(f_in), Dim::Lit(f_out)]);
    let src = d.edge_attr(AttrKind::SrcId);
    let dst = d.edge_attr(AttrKind::DstId);
    let hsrc = d.index(h, src);
    let agg = d.index_add(hsrc, dst, Dim::Vertices);
    let norm = d.scale_by_degree_inv(agg);
    let out = d.linear(norm, w);
    d.mark_output(out);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use wisegraph_dfg::analysis::indexing_attrs;
    use wisegraph_dfg::interp::execute;
    use wisegraph_graph::generate::{rmat, RmatParams};
    use wisegraph_tensor::Tensor;

    #[test]
    fn complexity_split_matches_paper() {
        assert!(ModelKind::Rgcn.is_complex());
        assert!(ModelKind::Gat.is_complex());
        assert!(ModelKind::SageLstm.is_complex());
        assert!(!ModelKind::Sage.is_complex());
        assert!(!ModelKind::Gcn.is_complex());
    }

    #[test]
    fn indexing_attrs_per_model() {
        use AttrKind::*;
        let attrs = |k: ModelKind| indexing_attrs(&k.layer_dfg(8, 8));
        assert_eq!(
            attrs(ModelKind::Rgcn).into_iter().collect::<Vec<_>>(),
            vec![SrcId, DstId, EdgeType]
        );
        assert_eq!(
            attrs(ModelKind::Gcn).into_iter().collect::<Vec<_>>(),
            vec![SrcId, DstId]
        );
        assert_eq!(
            attrs(ModelKind::Gat).into_iter().collect::<Vec<_>>(),
            vec![SrcId, DstId]
        );
        assert_eq!(
            attrs(ModelKind::SageLstm).into_iter().collect::<Vec<_>>(),
            vec![SrcId, DstId]
        );
    }

    fn rand_tensor(dims: &[usize], seed: u64) -> Tensor {
        let n: usize = dims.iter().product();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let data = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / u32::MAX as f32) - 0.5
            })
            .collect();
        Tensor::from_vec(data, dims)
    }

    #[test]
    fn every_model_dfg_executes() {
        let g = rmat(&RmatParams::standard(40, 250, 19).with_edge_types(3));
        let (f_in, f_out) = (6, 5);
        for kind in ModelKind::ALL {
            let d = kind.layer_dfg(f_in, f_out);
            let mut inputs: HashMap<String, Tensor> = HashMap::new();
            inputs.insert("h".into(), rand_tensor(&[40, f_in], 1));
            inputs.insert("W".into(), rand_tensor(&[3, f_in, f_out], 2));
            inputs.insert("w".into(), rand_tensor(&[f_in, f_out], 3));
            inputs.insert("a_src".into(), rand_tensor(&[f_out, 1], 4));
            inputs.insert("a_dst".into(), rand_tensor(&[f_out, 1], 5));
            inputs.insert("wx".into(), rand_tensor(&[f_in, 4 * f_out], 6));
            inputs.insert("wh".into(), rand_tensor(&[f_out, 4 * f_out], 7));
            inputs.insert("b".into(), rand_tensor(&[4 * f_out], 8));
            inputs.insert("w_out".into(), rand_tensor(&[f_out, f_out], 9));
            inputs.insert("w_self".into(), rand_tensor(&[f_in, f_out], 10));
            inputs.insert("w_neigh".into(), rand_tensor(&[f_in, f_out], 11));
            let out = execute(&d, &g, &inputs)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            assert_eq!(out[0].dims(), &[40, f_out], "{}", kind.name());
            assert!(out[0].all_finite(), "{}", kind.name());
        }
    }

    #[test]
    fn gat_attention_rows_sum_to_projected_average() {
        // Sanity: with uniform scores the GAT output is the mean of
        // projected neighbors. Use zero attention vectors → uniform alpha.
        let g = rmat(&RmatParams::standard(30, 200, 23));
        let (f_in, f_out) = (4, 3);
        let d = ModelKind::Gat.layer_dfg(f_in, f_out);
        let mut inputs: HashMap<String, Tensor> = HashMap::new();
        let h = rand_tensor(&[30, f_in], 1);
        let w = rand_tensor(&[f_in, f_out], 2);
        inputs.insert("h".into(), h.clone());
        inputs.insert("w".into(), w.clone());
        inputs.insert("a_src".into(), Tensor::zeros(&[f_out, 1]));
        inputs.insert("a_dst".into(), Tensor::zeros(&[f_out, 1]));
        let out = &execute(&d, &g, &inputs).unwrap()[0];
        // Manual mean of z over in-neighbors.
        let z = wisegraph_tensor::ops::matmul(&h, &w);
        let mut expect = Tensor::zeros(&[30, f_out]);
        for v in 0..30usize {
            let nbrs: Vec<usize> = (0..g.num_edges())
                .filter(|&e| g.dst()[e] as usize == v)
                .map(|e| g.src()[e] as usize)
                .collect();
            if nbrs.is_empty() {
                continue;
            }
            for &s in &nbrs {
                for f in 0..f_out {
                    let cur = expect.at(&[v, f]);
                    expect.set(&[v, f], cur + z.at(&[s, f]) / nbrs.len() as f32);
                }
            }
        }
        assert!(
            out.allclose(&expect, 1e-3),
            "diff {}",
            out.max_abs_diff(&expect)
        );
    }
}
