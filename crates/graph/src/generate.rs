//! Synthetic graph generators.
//!
//! The paper evaluates on OGB graphs (power-law degree distributions). We
//! regenerate structurally similar graphs with an RMAT-style recursive
//! quadrant sampler, skewed edge types (so RGCN's duplicated-type pattern
//! appears, Figure 17), and — for accuracy experiments — homophilous labels
//! with class-correlated features so models have signal to learn (Figure 14).

use crate::graph::Graph;
use wisegraph_testkit::rng::Rng;

/// Parameters for the RMAT-style power-law generator.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Number of vertices (rounded up to a power of two internally).
    pub num_vertices: usize,
    /// Number of edges to generate.
    pub num_edges: usize,
    /// RMAT quadrant probabilities; `a + b + c + d` must be ≈ 1.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Number of edge types to assign (Zipf-skewed).
    pub num_edge_types: usize,
    /// RNG seed.
    pub seed: u64,
}

impl RmatParams {
    /// Standard Graph500-like skew (a=0.57, b=c=0.19).
    pub fn standard(num_vertices: usize, num_edges: usize, seed: u64) -> Self {
        Self {
            num_vertices,
            num_edges,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            num_edge_types: 1,
            seed,
        }
    }

    /// Sets the number of edge types.
    pub fn with_edge_types(mut self, n: usize) -> Self {
        self.num_edge_types = n;
        self
    }
}

/// Generates a power-law graph with the RMAT recursive procedure.
///
/// Vertices outside the requested range (an artifact of the power-of-two
/// rounding) are folded back with a modulo, preserving the skew. Edge types
/// follow a Zipf-like distribution so a few types dominate, as relation
/// types do in real knowledge graphs.
///
/// # Panics
///
/// Panics if `num_vertices` or `num_edges` is zero.
pub fn rmat(params: &RmatParams) -> Graph {
    assert!(params.num_vertices > 0, "need at least one vertex");
    assert!(params.num_edges > 0, "need at least one edge");
    let mut rng = Rng::seed_from_u64(params.seed);
    let levels = (params.num_vertices as f64).log2().ceil() as u32;
    let n = params.num_vertices;
    let mut src = Vec::with_capacity(params.num_edges);
    let mut dst = Vec::with_capacity(params.num_edges);
    for _ in 0..params.num_edges {
        let (mut s, mut d) = (0usize, 0usize);
        for _ in 0..levels {
            let r = rng.f64();
            let (sbit, dbit) = if r < params.a {
                (0, 0)
            } else if r < params.a + params.b {
                (0, 1)
            } else if r < params.a + params.b + params.c {
                (1, 0)
            } else {
                (1, 1)
            };
            s = (s << 1) | sbit;
            d = (d << 1) | dbit;
        }
        src.push((s % n) as u32);
        dst.push((d % n) as u32);
    }
    let etype = zipf_types(params.num_edges, params.num_edge_types, &mut rng);
    Graph::new(n, params.num_edge_types, src, dst, etype)
}

/// Samples `count` edge types from a Zipf-like (1/rank) distribution.
fn zipf_types(count: usize, num_types: usize, rng: &mut Rng) -> Vec<u32> {
    if num_types <= 1 {
        return vec![0; count];
    }
    let weights: Vec<f64> = (1..=num_types).map(|r| 1.0 / r as f64).collect();
    let total: f64 = weights.iter().sum();
    (0..count)
        .map(|_| {
            let mut x = rng.f64() * total;
            for (t, &w) in weights.iter().enumerate() {
                if x < w {
                    return t as u32;
                }
                x -= w;
            }
            (num_types - 1) as u32
        })
        .collect()
}

/// A graph together with learnable vertex features and class labels.
///
/// Features are class centroids plus noise and edges are homophilous
/// (endpoints tend to share a class), so GNNs trained on it genuinely
/// improve accuracy over epochs — as needed for the Figure 14 reproduction.
#[derive(Clone, Debug)]
pub struct LabeledGraph {
    /// The graph topology.
    pub graph: Graph,
    /// Row-major `[num_vertices, feature_dim]` features.
    pub features: Vec<f32>,
    /// Feature dimension.
    pub feature_dim: usize,
    /// Class label per vertex.
    pub labels: Vec<u32>,
    /// Number of classes.
    pub num_classes: usize,
    /// Vertex ids of the training split.
    pub train_idx: Vec<u32>,
    /// Vertex ids of the test split.
    pub test_idx: Vec<u32>,
}

/// Parameters for [`labeled_graph`].
#[derive(Clone, Copy, Debug)]
pub struct LabeledParams {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Average degree (edges = vertices × avg_degree).
    pub avg_degree: usize,
    /// Feature dimension.
    pub feature_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Probability that an edge connects same-class vertices.
    pub homophily: f64,
    /// Feature noise standard deviation (relative to unit centroids).
    pub noise: f32,
    /// Number of edge types.
    pub num_edge_types: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LabeledParams {
    fn default() -> Self {
        Self {
            num_vertices: 1000,
            avg_degree: 8,
            feature_dim: 32,
            num_classes: 8,
            homophily: 0.8,
            noise: 0.6,
            num_edge_types: 1,
            seed: 0,
        }
    }
}

/// Generates a homophilous labeled graph for training experiments.
///
/// # Panics
///
/// Panics if any size parameter is zero.
pub fn labeled_graph(p: &LabeledParams) -> LabeledGraph {
    assert!(p.num_vertices > 0 && p.num_classes > 0 && p.feature_dim > 0);
    let mut rng = Rng::seed_from_u64(p.seed);
    let labels: Vec<u32> = (0..p.num_vertices)
        .map(|_| rng.range_usize(0..p.num_classes) as u32)
        .collect();
    // Bucket vertices by class for homophilous edge endpoints.
    let mut by_class: Vec<Vec<u32>> = vec![Vec::new(); p.num_classes];
    for (v, &c) in labels.iter().enumerate() {
        by_class[c as usize].push(v as u32);
    }
    let num_edges = p.num_vertices * p.avg_degree;
    let mut src = Vec::with_capacity(num_edges);
    let mut dst = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let d = rng.range_usize(0..p.num_vertices) as u32;
        let c = labels[d as usize] as usize;
        let s = if rng.bool_with(p.homophily) && !by_class[c].is_empty() {
            by_class[c][rng.range_usize(0..by_class[c].len())]
        } else {
            rng.range_usize(0..p.num_vertices) as u32
        };
        src.push(s);
        dst.push(d);
    }
    let etype = zipf_types(num_edges, p.num_edge_types, &mut rng);
    let graph = Graph::new(p.num_vertices, p.num_edge_types, src, dst, etype);

    // Class centroids: orthogonal-ish random unit directions.
    let centroids: Vec<f32> = (0..p.num_classes * p.feature_dim)
        .map(|_| rng.range_f32(-1.0, 1.0))
        .collect();
    let mut features = vec![0.0f32; p.num_vertices * p.feature_dim];
    for v in 0..p.num_vertices {
        let c = labels[v] as usize;
        for f in 0..p.feature_dim {
            let noise = rng.range_f32(-p.noise, p.noise);
            features[v * p.feature_dim + f] = centroids[c * p.feature_dim + f] + noise;
        }
    }

    // 60/40 train/test split.
    let mut idx: Vec<u32> = (0..p.num_vertices as u32).collect();
    rng.shuffle(&mut idx);
    let split = (p.num_vertices * 6) / 10;
    let (train_idx, test_idx) = (idx[..split].to_vec(), idx[split..].to_vec());

    LabeledGraph {
        graph,
        features,
        feature_dim: p.feature_dim,
        labels,
        num_classes: p.num_classes,
        train_idx,
        test_idx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn rmat_shape_and_determinism() {
        let p = RmatParams::standard(1000, 8000, 1);
        let g1 = rmat(&p);
        let g2 = rmat(&p);
        assert_eq!(g1.num_vertices(), 1000);
        assert_eq!(g1.num_edges(), 8000);
        assert_eq!(g1.src(), g2.src());
        assert_eq!(g1.dst(), g2.dst());
        let g3 = rmat(&RmatParams::standard(1000, 8000, 2));
        assert_ne!(g1.src(), g3.src());
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(&RmatParams::standard(2048, 40960, 7));
        // Power-law: the max in-degree should far exceed the average.
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        let max = *g.in_degree().iter().max().unwrap() as f64;
        assert!(
            max > 8.0 * avg,
            "expected skew: max {max} vs avg {avg}"
        );
        let gini = stats::degree_gini(g.in_degree());
        assert!(gini > 0.4, "expected unequal degrees, gini = {gini}");
    }

    #[test]
    fn edge_types_are_skewed() {
        let g = rmat(&RmatParams::standard(512, 20000, 3).with_edge_types(8));
        let mut counts = vec![0usize; 8];
        for &t in g.etype() {
            counts[t as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "all types present");
        assert!(
            counts[0] > 3 * counts[7],
            "type 0 should dominate: {counts:?}"
        );
    }

    #[test]
    fn labeled_graph_is_homophilous() {
        let lg = labeled_graph(&LabeledParams {
            num_vertices: 2000,
            homophily: 0.9,
            ..Default::default()
        });
        let same = lg
            .graph
            .src()
            .iter()
            .zip(lg.graph.dst().iter())
            .filter(|(&s, &d)| lg.labels[s as usize] == lg.labels[d as usize])
            .count();
        let frac = same as f64 / lg.graph.num_edges() as f64;
        assert!(frac > 0.8, "homophily fraction {frac}");
    }

    #[test]
    fn labeled_graph_splits_cover_all_vertices() {
        let lg = labeled_graph(&LabeledParams::default());
        assert_eq!(
            lg.train_idx.len() + lg.test_idx.len(),
            lg.graph.num_vertices()
        );
        let mut all: Vec<u32> = lg
            .train_idx
            .iter()
            .chain(lg.test_idx.iter())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), lg.graph.num_vertices());
        assert_eq!(lg.features.len(), lg.graph.num_vertices() * lg.feature_dim);
    }

    #[test]
    fn features_carry_class_signal() {
        let lg = labeled_graph(&LabeledParams {
            noise: 0.1,
            ..Default::default()
        });
        // Same-class feature vectors should be closer than cross-class ones.
        let dim = lg.feature_dim;
        let dist = |a: usize, b: usize| -> f32 {
            (0..dim)
                .map(|f| (lg.features[a * dim + f] - lg.features[b * dim + f]).powi(2))
                .sum::<f32>()
        };
        let mut same_sum = 0.0;
        let mut diff_sum = 0.0;
        let mut same_n = 0;
        let mut diff_n = 0;
        for a in 0..200 {
            for b in (a + 1)..200 {
                if lg.labels[a] == lg.labels[b] {
                    same_sum += dist(a, b);
                    same_n += 1;
                } else {
                    diff_sum += dist(a, b);
                    diff_n += 1;
                }
            }
        }
        assert!((same_sum / same_n as f32) < (diff_sum / diff_n as f32));
    }
}
