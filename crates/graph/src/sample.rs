//! Seed-plus-fanout neighbor sampling for sampled-graph training.
//!
//! The paper's PA-S and FS-S datasets are produced by sampling the full
//! graphs "using a seed vertex size of 1000 and a fan-out of 20-15-10"
//! (§7.1), and §6.3 / Figure 21 rely on fresh subgraphs every iteration
//! sharing a similar structural pattern. This module implements that
//! sampler.

use crate::csr::Csr;
use crate::graph::Graph;
use wisegraph_testkit::rng::Rng;

/// Configuration for layer-wise neighbor sampling.
#[derive(Clone, Debug)]
pub struct SampleConfig {
    /// Number of seed (output) vertices.
    pub num_seeds: usize,
    /// Per-layer fan-out, outermost layer first (paper: `[20, 15, 10]`).
    pub fanouts: Vec<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl SampleConfig {
    /// The paper's configuration: 1000 seeds, fan-out 20-15-10.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            num_seeds: 1000,
            fanouts: vec![20, 15, 10],
            seed,
        }
    }
}

/// A sampled subgraph with its mapping back to the parent graph.
#[derive(Clone, Debug)]
pub struct SampledSubgraph {
    /// The compacted subgraph (vertices renumbered from 0).
    pub graph: Graph,
    /// `vertex_map[new_id] = old_id` in the parent graph.
    pub vertex_map: Vec<u32>,
    /// New ids of the seed vertices (training targets).
    pub seeds: Vec<u32>,
}

/// Samples a subgraph by expanding `num_seeds` seeds through `fanouts`
/// layers of in-neighbors, keeping at most `fanout` in-edges per frontier
/// vertex per layer.
///
/// # Panics
///
/// Panics if the graph is empty or `num_seeds` is zero.
pub fn neighbor_sample(g: &Graph, csr_in: &Csr, cfg: &SampleConfig) -> SampledSubgraph {
    assert!(g.num_vertices() > 0, "cannot sample an empty graph");
    assert!(cfg.num_seeds > 0, "need at least one seed");
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut picked_edges: Vec<usize> = Vec::new();
    let mut seen = vec![false; g.num_vertices()];
    let mut frontier: Vec<u32> = (0..cfg.num_seeds)
        .map(|_| rng.range_usize(0..g.num_vertices()) as u32)
        .collect();
    frontier.sort_unstable();
    frontier.dedup();
    let seeds_old = frontier.clone();
    for &v in &frontier {
        seen[v as usize] = true;
    }
    for &fanout in &cfg.fanouts {
        let mut next: Vec<u32> = Vec::new();
        for &v in &frontier {
            let deg = csr_in.degree(v as usize);
            if deg == 0 {
                continue;
            }
            if deg <= fanout {
                for (nbr, eid) in csr_in.neighbors(v as usize) {
                    picked_edges.push(eid as usize);
                    if !seen[nbr as usize] {
                        seen[nbr as usize] = true;
                        next.push(nbr);
                    }
                }
            } else {
                // Sample `fanout` distinct positions by floyd-ish rejection.
                let mut chosen = std::collections::HashSet::with_capacity(fanout);
                while chosen.len() < fanout {
                    chosen.insert(rng.range_usize(0..deg));
                }
                for (pos, (nbr, eid)) in csr_in.neighbors(v as usize).enumerate() {
                    if chosen.contains(&pos) {
                        picked_edges.push(eid as usize);
                        if !seen[nbr as usize] {
                            seen[nbr as usize] = true;
                            next.push(nbr);
                        }
                    }
                }
            }
        }
        frontier = next;
    }
    let (graph, vertex_map) = g.edge_subgraph(&picked_edges);
    // Seeds may not appear in any picked edge if isolated; map those that do.
    let mut old_to_new = vec![u32::MAX; g.num_vertices()];
    for (new, &old) in vertex_map.iter().enumerate() {
        old_to_new[old as usize] = new as u32;
    }
    let seeds = seeds_old
        .iter()
        .filter_map(|&old| {
            let n = old_to_new[old as usize];
            (n != u32::MAX).then_some(n)
        })
        .collect();
    SampledSubgraph {
        graph,
        vertex_map,
        seeds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{rmat, RmatParams};

    fn test_graph() -> Graph {
        rmat(&RmatParams::standard(2000, 16000, 5).with_edge_types(4))
    }

    #[test]
    fn sample_respects_fanout_budget() {
        let g = test_graph();
        let csr = Csr::in_of(&g);
        let cfg = SampleConfig {
            num_seeds: 50,
            fanouts: vec![5, 5],
            seed: 1,
        };
        let sub = neighbor_sample(&g, &csr, &cfg);
        // Upper bound: seeds·5 + seeds·5·5 edges.
        assert!(sub.graph.num_edges() <= 50 * 5 + 50 * 5 * 5);
        assert!(sub.graph.num_edges() > 0);
    }

    #[test]
    fn sampled_edges_exist_in_parent() {
        let g = test_graph();
        let csr = Csr::in_of(&g);
        let sub = neighbor_sample(
            &g,
            &csr,
            &SampleConfig {
                num_seeds: 20,
                fanouts: vec![4, 4],
                seed: 2,
            },
        );
        use std::collections::HashSet;
        let parent: HashSet<(u32, u32, u32)> = g
            .src()
            .iter()
            .zip(g.dst().iter().zip(g.etype().iter()))
            .map(|(&s, (&d, &t))| (s, d, t))
            .collect();
        for e in 0..sub.graph.num_edges() {
            let s = sub.vertex_map[sub.graph.src()[e] as usize];
            let d = sub.vertex_map[sub.graph.dst()[e] as usize];
            let t = sub.graph.etype()[e];
            assert!(parent.contains(&(s, d, t)), "edge {e} not in parent");
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let g = test_graph();
        let csr = Csr::in_of(&g);
        let cfg = SampleConfig {
            num_seeds: 30,
            fanouts: vec![6, 6],
            seed: 3,
        };
        let a = neighbor_sample(&g, &csr, &cfg);
        let b = neighbor_sample(&g, &csr, &cfg);
        assert_eq!(a.graph.src(), b.graph.src());
        assert_eq!(a.vertex_map, b.vertex_map);
    }

    #[test]
    fn different_seeds_differ_but_share_scale() {
        // §6.3: "the sampled subgraphs share a similar pattern".
        let g = test_graph();
        let csr = Csr::in_of(&g);
        let mk = |s| {
            neighbor_sample(
                &g,
                &csr,
                &SampleConfig {
                    num_seeds: 100,
                    fanouts: vec![5, 5],
                    seed: s,
                },
            )
        };
        let a = mk(10);
        let b = mk(11);
        assert_ne!(a.graph.src(), b.graph.src());
        let ratio = a.graph.num_edges() as f64 / b.graph.num_edges() as f64;
        assert!(ratio > 0.5 && ratio < 2.0, "scale ratio {ratio}");
    }

    #[test]
    fn seeds_are_mapped_into_subgraph() {
        let g = test_graph();
        let csr = Csr::in_of(&g);
        let sub = neighbor_sample(
            &g,
            &csr,
            &SampleConfig {
                num_seeds: 10,
                fanouts: vec![8],
                seed: 4,
            },
        );
        for &s in &sub.seeds {
            assert!((s as usize) < sub.graph.num_vertices());
        }
    }
}
