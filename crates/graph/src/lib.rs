//! Graph substrate: structures, attributes, generators, sampling, reordering.
//!
//! GNN inputs are a sparse graph plus dense per-vertex embeddings (paper §2.1).
//! This crate provides everything WiseGraph needs from the sparse side:
//!
//! - [`Graph`]: an edge-list (COO) graph with per-edge attributes (`src-id`,
//!   `dst-id`, `edge-type`) and derived inherent attributes (degrees);
//! - [`Csr`]: compressed sparse row adjacency for traversal and sampling;
//! - [`attr`]: the typed edge-attribute vocabulary used by partition tables;
//! - [`generate`]: RMAT-style power-law generators and labeled synthetic
//!   datasets with learnable (homophilous) structure;
//! - [`datasets`]: presets mirroring the paper's seven evaluation graphs
//!   (Table 1), scaled where the originals have billions of edges;
//! - [`sample`]: seed-plus-fanout neighbor sampling used by the sampled-graph
//!   training experiments (PA-S / FS-S, Figure 21);
//! - [`reorder`]: lightweight Metis/Rabbit-style vertex reorderings that the
//!   paper positions as composable with gTask partitioning (§4.3);
//! - [`shard`]: contiguous vertex-range sharding with halo/remote-unique
//!   index sets for multi-device execution (§5.4);
//! - [`io`]: text edge-list and compact binary graph serialization.

pub mod attr;
pub mod csr;
pub mod datasets;
pub mod generate;
pub mod graph;
pub mod io;
pub mod multilevel;
pub mod reorder;
pub mod sample;
pub mod shard;
pub mod stats;

pub use attr::AttrKind;
pub use csr::Csr;
pub use datasets::{DatasetKind, DatasetSpec};
pub use graph::Graph;
pub use shard::{ShardSpec, SrcGroups};
