//! A multilevel k-way clustering partitioner (Metis-style).
//!
//! §4.3 compares WiseGraph's gTask partitioning against Metis/Rabbit-class
//! *vertex clustering*: "the output of all these graph partition methods is
//! a reordered graph so that the vertices are clustered … and can be
//! combined" with gTask partitioning. This module implements the classic
//! three-phase scheme:
//!
//! 1. **coarsen** by heavy-edge matching until the graph is small,
//! 2. **partition** the coarsest graph greedily into k balanced clusters,
//! 3. **uncoarsen** and refine with boundary-vertex moves
//!    (Kernighan–Lin-flavoured, gain-positive moves only).
//!
//! The result is a cluster assignment / reordering, not gTasks — exactly
//! the separation of levels the paper describes.

use crate::csr::Csr;
use crate::graph::Graph;

/// A clustering of the vertices into `k` parts.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// Cluster id per vertex.
    pub assignment: Vec<u32>,
    /// Number of clusters.
    pub k: usize,
}

impl Clustering {
    /// Number of edges whose endpoints lie in different clusters.
    pub fn edge_cut(&self, g: &Graph) -> usize {
        g.src()
            .iter()
            .zip(g.dst().iter())
            .filter(|(&s, &d)| {
                self.assignment[s as usize] != self.assignment[d as usize]
            })
            .count()
    }

    /// Cluster sizes.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &c in &self.assignment {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Balance factor: largest cluster over the ideal size (1.0 = perfect).
    pub fn imbalance(&self, num_vertices: usize) -> f64 {
        let ideal = num_vertices as f64 / self.k as f64;
        let max = self.sizes().into_iter().max().unwrap_or(0) as f64;
        max / ideal.max(1.0)
    }

    /// Converts the clustering into a permutation (old id → new id) that
    /// lays clusters out contiguously — the "reordered graph" interface of
    /// §4.3.
    pub fn to_permutation(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.assignment.len() as u32).collect();
        order.sort_by_key(|&v| (self.assignment[v as usize], v));
        let mut perm = vec![0u32; order.len()];
        for (new, &old) in order.iter().enumerate() {
            perm[old as usize] = new as u32;
        }
        perm
    }
}

/// A weighted coarse graph (vertex weights = merged vertex counts; edge
/// weights = merged multiplicities).
struct Coarse {
    /// Per coarse vertex: (neighbor, weight) adjacency.
    adj: Vec<Vec<(u32, u32)>>,
    /// Coarse vertex weights.
    vweight: Vec<u32>,
    /// Map from finer vertices to coarse vertices.
    map: Vec<u32>,
}

/// Builds the weighted adjacency of the (symmetrized) input graph.
fn initial_coarse(g: &Graph) -> Coarse {
    let n = g.num_vertices();
    let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
    for e in 0..g.num_edges() {
        let (s, d) = (g.src()[e], g.dst()[e]);
        if s == d {
            continue;
        }
        adj[s as usize].push((d, 1));
        adj[d as usize].push((s, 1));
    }
    for a in &mut adj {
        a.sort_unstable_by_key(|&(v, _)| v);
        // Merge duplicates.
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(a.len());
        for &(v, w) in a.iter() {
            match merged.last_mut() {
                Some(last) if last.0 == v => last.1 += w,
                _ => merged.push((v, w)),
            }
        }
        *a = merged;
    }
    Coarse {
        adj,
        vweight: vec![1; n],
        map: (0..n as u32).collect(),
    }
}

/// One round of heavy-edge matching: pairs each unmatched vertex with its
/// heaviest unmatched neighbor.
fn coarsen(c: &Coarse) -> Coarse {
    let n = c.adj.len();
    let mut mate = vec![u32::MAX; n];
    // Visit lighter vertices first so hubs absorb leaves.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| c.vweight[v as usize]);
    for &v in &order {
        if mate[v as usize] != u32::MAX {
            continue;
        }
        let best = c.adj[v as usize]
            .iter()
            .filter(|&&(u, _)| mate[u as usize] == u32::MAX && u != v)
            .max_by_key(|&&(_, w)| w)
            .map(|&(u, _)| u);
        match best {
            Some(u) => {
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
            None => mate[v as usize] = v,
        }
    }
    // Assign coarse ids.
    let mut coarse_id = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n {
        if coarse_id[v] != u32::MAX {
            continue;
        }
        let m = mate[v] as usize;
        coarse_id[v] = next;
        coarse_id[m] = next;
        next += 1;
    }
    let cn = next as usize;
    let mut vweight = vec![0u32; cn];
    for v in 0..n {
        vweight[coarse_id[v] as usize] += c.vweight[v];
    }
    let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); cn];
    for v in 0..n {
        let cv = coarse_id[v];
        for &(u, w) in &c.adj[v] {
            let cu = coarse_id[u as usize];
            if cu != cv {
                adj[cv as usize].push((cu, w));
            }
        }
    }
    for a in &mut adj {
        a.sort_unstable_by_key(|&(v, _)| v);
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(a.len());
        for &(v, w) in a.iter() {
            match merged.last_mut() {
                Some(last) if last.0 == v => last.1 += w,
                _ => merged.push((v, w)),
            }
        }
        *a = merged;
    }
    let map = c.map.iter().map(|&f| coarse_id[f as usize]).collect();
    Coarse { adj, vweight, map }
}

/// Greedy balanced partition of the coarsest graph: BFS-grow k clusters to
/// the weight budget.
fn initial_partition(c: &Coarse, k: usize) -> Vec<u32> {
    let n = c.adj.len();
    let total: u32 = c.vweight.iter().sum();
    let budget = total.div_ceil(k as u32);
    let mut part = vec![u32::MAX; n];
    let mut weights = vec![0u32; k];
    let mut current = 0usize;
    // Seed order: heaviest first.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(c.vweight[v as usize]));
    for &seed in &order {
        if part[seed as usize] != u32::MAX {
            continue;
        }
        // BFS-grow the current cluster from this seed.
        let mut queue = std::collections::VecDeque::from([seed]);
        while let Some(v) = queue.pop_front() {
            if part[v as usize] != u32::MAX {
                continue;
            }
            if weights[current] + c.vweight[v as usize] > budget
                && weights[current] > 0
                && current + 1 < k
            {
                current += 1;
            }
            part[v as usize] = current as u32;
            weights[current] += c.vweight[v as usize];
            for &(u, _) in &c.adj[v as usize] {
                if part[u as usize] == u32::MAX {
                    queue.push_back(u);
                }
            }
        }
    }
    part
}

/// Boundary refinement: moves a vertex to a neighboring cluster when the
/// move reduces the cut and keeps balance.
fn refine(c: &Coarse, part: &mut [u32], k: usize, rounds: usize) {
    let total: u32 = c.vweight.iter().sum();
    let budget = (total as f64 / k as f64 * 1.1) as u32 + 1;
    let mut weights = vec![0u32; k];
    for (v, &p) in part.iter().enumerate() {
        weights[p as usize] += c.vweight[v];
    }
    for _ in 0..rounds {
        let mut moved = 0usize;
        for v in 0..c.adj.len() {
            let home = part[v] as usize;
            // Connectivity to each cluster.
            let mut conn = vec![0i64; k];
            for &(u, w) in &c.adj[v] {
                conn[part[u as usize] as usize] += w as i64;
            }
            let (best, &best_conn) = conn
                .iter()
                .enumerate()
                .max_by_key(|&(i, &c0)| (c0, std::cmp::Reverse(i)))
                .expect("k > 0");
            if best != home
                && best_conn > conn[home]
                && weights[best] + c.vweight[v] <= budget
            {
                weights[home] -= c.vweight[v];
                weights[best] += c.vweight[v];
                part[v] = best as u32;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
    // Rebalance: drain overweight clusters into the lightest ones,
    // preferring vertices with the least connectivity to their home.
    for _ in 0..8 {
        let max_c = (0..k).max_by_key(|&c0| weights[c0]).expect("k > 0");
        if weights[max_c] <= budget {
            break;
        }
        let mut moved_any = false;
        for (v, p) in part.iter_mut().enumerate().take(c.adj.len()) {
            if *p as usize != max_c || weights[max_c] <= budget {
                continue;
            }
            let min_c = (0..k).min_by_key(|&c0| weights[c0]).expect("k > 0");
            if min_c == max_c || weights[min_c] + c.vweight[v] > budget {
                continue;
            }
            weights[max_c] -= c.vweight[v];
            weights[min_c] += c.vweight[v];
            *p = min_c as u32;
            moved_any = true;
        }
        if !moved_any {
            break;
        }
    }
}

/// Multilevel k-way clustering.
///
/// # Panics
///
/// Panics if `k == 0` or the graph has no vertices.
pub fn multilevel_cluster(g: &Graph, k: usize) -> Clustering {
    assert!(k > 0, "need at least one cluster");
    assert!(g.num_vertices() > 0, "empty graph");
    let k = k.min(g.num_vertices());
    // Coarsen until small (or convergence).
    let mut levels = vec![initial_coarse(g)];
    while levels.last().expect("nonempty").adj.len() > (8 * k).max(64) {
        let next = coarsen(levels.last().expect("nonempty"));
        if next.adj.len() as f64
            > 0.95 * levels.last().expect("nonempty").adj.len() as f64
        {
            break; // matching stopped making progress
        }
        levels.push(next);
    }
    // Partition the coarsest level.
    let coarsest = levels.last().expect("nonempty");
    let mut part = initial_partition(coarsest, k);
    refine(coarsest, &mut part, k, 4);
    // Project back through the levels, refining at each.
    for i in (0..levels.len() - 1).rev() {
        let finer = &levels[i];
        let coarser = &levels[i + 1];
        // finer-vertex → coarse-vertex is recoverable from the maps: both
        // map *original* vertices; build coarse assignment per finer node.
        let mut finer_part = vec![0u32; finer.adj.len()];
        // map original → coarse id of level i ; coarser.map original → id
        // of level i+1. For each original vertex, propagate.
        for orig in 0..finer.map.len() {
            finer_part[finer.map[orig] as usize] =
                part[coarser.map[orig] as usize];
        }
        part = finer_part;
        refine(finer, &mut part, k, 2);
    }
    Clustering {
        assignment: part,
        k,
    }
}

/// Betty-style shared-neighbor-aware clustering (§4.3): reweights edges by
/// the number of shared neighbors before multilevel partitioning, so
/// vertices with common neighborhoods cluster together and redundant
/// neighbor loads drop.
pub fn shared_neighbor_cluster(g: &Graph, k: usize) -> Clustering {
    let csr = Csr::in_of(g);
    // Build a reweighted edge list: weight = 1 + |common in-neighbors|
    // (capped for cost). Approximation: count via sorted neighbor merge on
    // a sample of edges; small graphs do it exactly.
    let mut src = Vec::with_capacity(g.num_edges());
    let mut dst = Vec::with_capacity(g.num_edges());
    for e in 0..g.num_edges() {
        let (s, d) = (g.src()[e], g.dst()[e]);
        let mut ns: Vec<u32> = csr.neighbors(s as usize).map(|(v, _)| v).collect();
        let mut nd: Vec<u32> = csr.neighbors(d as usize).map(|(v, _)| v).collect();
        ns.sort_unstable();
        nd.sort_unstable();
        let mut shared = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < ns.len() && j < nd.len() {
            match ns[i].cmp(&nd[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    shared += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        // Duplicate the edge `1 + min(shared, 4)` times: a crude but
        // effective weight encoding reusing the unweighted pipeline.
        for _ in 0..=shared.min(4) {
            src.push(s);
            dst.push(d);
        }
    }
    let n_edges = src.len();
    let weighted = Graph::new(g.num_vertices(), 1, src, dst, vec![0; n_edges]);
    multilevel_cluster(&weighted, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{labeled_graph, rmat, LabeledParams, RmatParams};

    #[test]
    fn clusters_cover_all_vertices_and_balance() {
        let g = rmat(&RmatParams::standard(1000, 8000, 91));
        let c = multilevel_cluster(&g, 8);
        assert_eq!(c.assignment.len(), 1000);
        assert!(c.assignment.iter().all(|&p| (p as usize) < 8));
        assert!(
            c.imbalance(1000) < 1.6,
            "imbalance {}",
            c.imbalance(1000)
        );
    }

    #[test]
    fn beats_random_assignment_on_community_graph() {
        let lg = labeled_graph(&LabeledParams {
            num_vertices: 800,
            num_classes: 8,
            homophily: 0.95,
            ..Default::default()
        });
        let g = &lg.graph;
        let c = multilevel_cluster(g, 8);
        // Random assignment cuts ~7/8 of edges; a real partitioner far
        // fewer on a strongly clustered graph.
        let cut = c.edge_cut(g) as f64 / g.num_edges() as f64;
        assert!(cut < 0.6, "cut fraction {cut}");
    }

    #[test]
    fn permutation_is_valid_and_groups_clusters() {
        let g = rmat(&RmatParams::standard(300, 2500, 93));
        let c = multilevel_cluster(&g, 4);
        let perm = c.to_permutation();
        let mut seen = vec![false; perm.len()];
        for &p in &perm {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        // New ids within a cluster are contiguous.
        let mut by_new: Vec<(u32, u32)> = (0..perm.len())
            .map(|old| (perm[old], c.assignment[old]))
            .collect();
        by_new.sort_unstable();
        for w in by_new.windows(2) {
            assert!(w[0].1 <= w[1].1, "clusters must be contiguous");
        }
    }

    #[test]
    fn composes_with_gtask_partitioning() {
        // §4.3: reorder by clustering, then gTask-partition the relabeled
        // graph — partition statistics are preserved, locality improves.
        use crate::reorder::edge_span;
        let lg = labeled_graph(&LabeledParams {
            num_vertices: 600,
            num_classes: 6,
            homophily: 0.9,
            ..Default::default()
        });
        let g = &lg.graph;
        let c = multilevel_cluster(g, 6);
        let perm = c.to_permutation();
        let identity: Vec<u32> = (0..g.num_vertices() as u32).collect();
        assert!(edge_span(g, &perm) < edge_span(g, &identity));
        let r = g.relabel(&perm);
        assert_eq!(r.num_edges(), g.num_edges());
    }

    #[test]
    fn shared_neighbor_variant_runs_and_cuts() {
        let lg = labeled_graph(&LabeledParams {
            num_vertices: 300,
            num_classes: 4,
            homophily: 0.9,
            avg_degree: 6,
            ..Default::default()
        });
        let c = shared_neighbor_cluster(&lg.graph, 4);
        assert_eq!(c.assignment.len(), 300);
        let cut = c.edge_cut(&lg.graph) as f64 / lg.graph.num_edges() as f64;
        assert!(cut < 0.75, "cut fraction {cut}");
    }

    #[test]
    fn k_one_is_trivial() {
        let g = rmat(&RmatParams::standard(100, 500, 95));
        let c = multilevel_cluster(&g, 1);
        assert_eq!(c.edge_cut(&g), 0);
        assert!(c.assignment.iter().all(|&p| p == 0));
    }
}
