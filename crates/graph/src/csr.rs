//! Compressed sparse row adjacency built from an edge-list graph.

use crate::graph::Graph;

/// CSR adjacency indexed by destination vertex (in-edges).
///
/// `Csr::in_edges(v)` returns, for each edge arriving at `v`, the pair
/// `(source vertex, original edge id)`. An out-edge CSR can be built with
/// [`Csr::out_of`].
#[derive(Clone, Debug)]
pub struct Csr {
    offsets: Vec<usize>,
    endpoints: Vec<u32>,
    edge_ids: Vec<u32>,
}

impl Csr {
    /// Builds an in-edge CSR (rows are destination vertices).
    pub fn in_of(g: &Graph) -> Self {
        Self::build(g.num_vertices(), g.dst(), g.src())
    }

    /// Builds an out-edge CSR (rows are source vertices).
    pub fn out_of(g: &Graph) -> Self {
        Self::build(g.num_vertices(), g.src(), g.dst())
    }

    fn build(num_vertices: usize, rows: &[u32], cols: &[u32]) -> Self {
        let mut counts = vec![0usize; num_vertices + 1];
        for &r in rows {
            counts[r as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut endpoints = vec![0u32; rows.len()];
        let mut edge_ids = vec![0u32; rows.len()];
        for (e, (&r, &c)) in rows.iter().zip(cols.iter()).enumerate() {
            let slot = cursor[r as usize];
            endpoints[slot] = c;
            edge_ids[slot] = e as u32;
            cursor[r as usize] += 1;
        }
        Self {
            offsets,
            endpoints,
            edge_ids,
        }
    }

    /// Number of rows (vertices).
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored edges.
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// Degree of row `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The neighbor endpoints of row `v` with their original edge ids.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        let range = self.offsets[v]..self.offsets[v + 1];
        self.endpoints[range.clone()]
            .iter()
            .copied()
            .zip(self.edge_ids[range].iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_graph() -> Graph {
        Graph::new(
            5,
            2,
            vec![0, 1, 0, 1, 2, 2, 3, 4, 3, 4, 0],
            vec![0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 4],
            vec![0, 0, 0, 0, 1, 0, 1, 1, 1, 1, 0],
        )
    }

    #[test]
    fn in_csr_matches_degrees() {
        let g = paper_graph();
        let csr = Csr::in_of(&g);
        assert_eq!(csr.num_rows(), 5);
        assert_eq!(csr.num_edges(), 11);
        for v in 0..5 {
            assert_eq!(csr.degree(v), g.in_degree()[v] as usize);
        }
    }

    #[test]
    fn neighbors_carry_edge_ids() {
        let g = paper_graph();
        let csr = Csr::in_of(&g);
        let nbrs: Vec<(u32, u32)> = csr.neighbors(1).collect();
        // Vertex 1 receives edges 2, 3, 4 from sources 0, 1, 2.
        assert_eq!(nbrs, vec![(0, 2), (1, 3), (2, 4)]);
    }

    #[test]
    fn out_csr_is_transpose() {
        let g = paper_graph();
        let out = Csr::out_of(&g);
        let nbrs: Vec<u32> = out.neighbors(0).map(|(v, _)| v).collect();
        // Vertex 0 sends edges to 0 (edge 0), 1 (edge 2), 4 (edge 10).
        assert_eq!(nbrs, vec![0, 1, 4]);
        // Round trip: every out-edge appears exactly once.
        let total: usize = (0..5).map(|v| out.degree(v)).sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn empty_rows_have_zero_degree() {
        let g = Graph::untyped(4, vec![0], vec![1]);
        let csr = Csr::in_of(&g);
        assert_eq!(csr.degree(0), 0);
        assert_eq!(csr.degree(1), 1);
        assert_eq!(csr.degree(2), 0);
        assert_eq!(csr.degree(3), 0);
    }
}
