//! Graph serialization: a simple text edge-list format and a compact
//! binary format.
//!
//! The text format is the interchange format of most graph tooling (one
//! `src dst [type]` triple per line, `#` comments); the binary format is a
//! little-endian dump with a magic header for fast reloads of generated
//! datasets.

use crate::graph::Graph;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes of the binary format.
const MAGIC: &[u8; 8] = b"WGGRAPH1";

/// Writes the graph as a text edge list: a header comment, then one
/// `src dst type` line per edge.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_edge_list<W: Write>(g: &Graph, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(
        w,
        "# wisegraph edge list: {} vertices, {} edges, {} edge types",
        g.num_vertices(),
        g.num_edges(),
        g.num_edge_types()
    )?;
    writeln!(w, "# vertices {}", g.num_vertices())?;
    writeln!(w, "# edge-types {}", g.num_edge_types())?;
    for e in 0..g.num_edges() {
        writeln!(w, "{} {} {}", g.src()[e], g.dst()[e], g.etype()[e])?;
    }
    w.flush()
}

/// Reads a text edge list written by [`write_edge_list`] (or any
/// whitespace-separated `src dst [type]` file; vertex count defaults to
/// `max id + 1` when no header is present).
///
/// # Errors
///
/// Returns `InvalidData` for malformed lines.
pub fn read_edge_list<R: Read>(r: R) -> io::Result<Graph> {
    let r = BufReader::new(r);
    let mut num_vertices: Option<usize> = None;
    let mut num_types: Option<usize> = None;
    let mut src = Vec::new();
    let mut dst = Vec::new();
    let mut ety = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut it = rest.split_whitespace();
            match (it.next(), it.next()) {
                (Some("vertices"), Some(n)) => num_vertices = n.parse().ok(),
                (Some("edge-types"), Some(n)) => num_types = n.parse().ok(),
                _ => {}
            }
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<u32> {
            tok.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: missing field", lineno + 1),
                )
            })?
            .parse()
            .map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: {e}", lineno + 1),
                )
            })
        };
        src.push(parse(it.next())?);
        dst.push(parse(it.next())?);
        ety.push(match it.next() {
            Some(tok) => tok.parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: {e}", lineno + 1),
                )
            })?,
            None => 0,
        });
    }
    let max_v = src
        .iter()
        .chain(dst.iter())
        .copied()
        .max()
        .map_or(0, |m| m as usize + 1);
    let n = num_vertices.unwrap_or(max_v).max(max_v);
    let t = num_types
        .unwrap_or_else(|| ety.iter().copied().max().map_or(0, |m| m as usize + 1));
    let t = t.max(ety.iter().copied().max().map_or(1, |m| m as usize + 1));
    Ok(Graph::new(n.max(1), t, src, dst, ety))
}

/// Writes the graph in the compact binary format.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_binary<W: Write>(g: &Graph, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    let header = [
        g.num_vertices() as u64,
        g.num_edges() as u64,
        g.num_edge_types() as u64,
    ];
    for v in header {
        w.write_all(&v.to_le_bytes())?;
    }
    let dump = |w: &mut BufWriter<W>, xs: &[u32]| -> io::Result<()> {
        for &x in xs {
            w.write_all(&x.to_le_bytes())?;
        }
        Ok(())
    };
    dump(&mut w, g.src())?;
    dump(&mut w, g.dst())?;
    dump(&mut w, g.etype())?;
    w.flush()
}

/// Reads a graph from the compact binary format.
///
/// # Errors
///
/// Returns `InvalidData` if the magic or sizes are wrong.
pub fn read_binary<R: Read>(mut r: R) -> io::Result<Graph> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad magic: not a wisegraph binary graph",
        ));
    }
    let read_u64 = |r: &mut R| -> io::Result<u64> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    };
    let v = read_u64(&mut r)? as usize;
    let e = read_u64(&mut r)? as usize;
    let t = read_u64(&mut r)? as usize;
    let read_vec = |r: &mut R| -> io::Result<Vec<u32>> {
        let mut out = Vec::with_capacity(e);
        let mut b = [0u8; 4];
        for _ in 0..e {
            r.read_exact(&mut b)?;
            out.push(u32::from_le_bytes(b));
        }
        Ok(out)
    };
    let src = read_vec(&mut r)?;
    let dst = read_vec(&mut r)?;
    let ety = read_vec(&mut r)?;
    Ok(Graph::new(v, t.max(1), src, dst, ety))
}

/// Convenience: saves a graph to a path, choosing the format by extension
/// (`.bin` → binary, anything else → text edge list).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save<P: AsRef<Path>>(g: &Graph, path: P) -> io::Result<()> {
    let f = std::fs::File::create(&path)?;
    if path.as_ref().extension().is_some_and(|x| x == "bin") {
        write_binary(g, f)
    } else {
        write_edge_list(g, f)
    }
}

/// Convenience: loads a graph from a path, choosing the format by
/// extension.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn load<P: AsRef<Path>>(path: P) -> io::Result<Graph> {
    let f = std::fs::File::open(&path)?;
    if path.as_ref().extension().is_some_and(|x| x == "bin") {
        read_binary(f)
    } else {
        read_edge_list(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{rmat, RmatParams};

    fn sample() -> Graph {
        rmat(&RmatParams::standard(200, 1500, 77).with_edge_types(5))
    }

    fn graphs_equal(a: &Graph, b: &Graph) -> bool {
        a.num_vertices() == b.num_vertices()
            && a.num_edge_types() == b.num_edge_types()
            && a.src() == b.src()
            && a.dst() == b.dst()
            && a.etype() == b.etype()
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert!(graphs_equal(&g, &back));
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert!(graphs_equal(&g, &back));
        // Fixed-size records: 8 magic + 24 header + 12 bytes per edge.
        assert_eq!(buf.len(), 8 + 24 + 12 * g.num_edges());
    }

    #[test]
    fn reads_untyped_third_party_edge_lists() {
        let data = "0 1\n1 2\n2 0\n";
        let g = read_edge_list(data.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.etype().iter().all(|&t| t == 0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_edge_list("0 banana\n".as_bytes()).is_err());
        assert!(read_binary(&b"NOTMAGIC"[..]).is_err());
        assert!(read_binary(&b"WGGRAPH1\x01"[..]).is_err()); // truncated
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let data = "# a comment\n\n0 1 2\n# another\n1 0 1\n";
        let g = read_edge_list(data.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_edge_types(), 3);
    }
}
