//! The edge-attribute vocabulary of the graph partition table.
//!
//! Paper §4 organizes graph partitioning around *edge attributes*: values
//! attached to each edge (directly or through its endpoint vertices) that
//! indexing operations use to address memory. The partition table (Figure 6)
//! rows are exactly these attributes.

use std::fmt;

/// Where an edge attribute physically lives (the columns of Figure 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AttrLocation {
    /// Stored per edge (e.g. `edge-id`, `edge-type`).
    Edge,
    /// A property of the source endpoint (e.g. `src-id`, `src-degree`).
    Source,
    /// A property of the destination endpoint (e.g. `dst-id`, `dst-degree`).
    Destination,
}

/// The kinds of edge attributes WiseGraph can restrict on.
///
/// `EdgeId`, `SrcId`, `DstId` and `EdgeType` are *indexing* attributes when
/// the model's DFG uses them to address tensors; degrees are *inherent*
/// attributes (never indexed but performance-relevant, §4.2); vertex types
/// stand in for attributes a model may leave *unused*.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttrKind {
    /// The edge's own identifier (position in the edge list).
    EdgeId,
    /// Identifier of the source vertex.
    SrcId,
    /// Identifier of the destination vertex.
    DstId,
    /// Relation type of the edge (used by RGCN to select weights).
    EdgeType,
    /// In-degree of the destination vertex (inherent).
    DstDegree,
    /// Out-degree of the source vertex (inherent).
    SrcDegree,
    /// Type of the source vertex (unused by the evaluated models).
    SrcVertexType,
    /// Type of the destination vertex (unused by the evaluated models).
    DstVertexType,
}

impl AttrKind {
    /// All attribute kinds, in a stable order.
    pub const ALL: [AttrKind; 8] = [
        AttrKind::EdgeId,
        AttrKind::SrcId,
        AttrKind::DstId,
        AttrKind::EdgeType,
        AttrKind::DstDegree,
        AttrKind::SrcDegree,
        AttrKind::SrcVertexType,
        AttrKind::DstVertexType,
    ];

    /// Returns where this attribute lives.
    pub fn location(self) -> AttrLocation {
        match self {
            AttrKind::EdgeId | AttrKind::EdgeType => AttrLocation::Edge,
            AttrKind::SrcId | AttrKind::SrcDegree | AttrKind::SrcVertexType => {
                AttrLocation::Source
            }
            AttrKind::DstId | AttrKind::DstDegree | AttrKind::DstVertexType => {
                AttrLocation::Destination
            }
        }
    }

    /// Returns `true` for attributes derived from graph structure rather
    /// than used by indexing operations (the paper's *inherent attributes*).
    pub fn is_inherent(self) -> bool {
        matches!(self, AttrKind::DstDegree | AttrKind::SrcDegree)
    }
}

impl fmt::Display for AttrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AttrKind::EdgeId => "edge-id",
            AttrKind::SrcId => "src-id",
            AttrKind::DstId => "dst-id",
            AttrKind::EdgeType => "edge-type",
            AttrKind::DstDegree => "dst-degree",
            AttrKind::SrcDegree => "src-degree",
            AttrKind::SrcVertexType => "src-vertex-type",
            AttrKind::DstVertexType => "dst-vertex-type",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locations_match_figure6() {
        assert_eq!(AttrKind::EdgeId.location(), AttrLocation::Edge);
        assert_eq!(AttrKind::EdgeType.location(), AttrLocation::Edge);
        assert_eq!(AttrKind::SrcId.location(), AttrLocation::Source);
        assert_eq!(AttrKind::DstDegree.location(), AttrLocation::Destination);
    }

    #[test]
    fn inherent_attributes() {
        assert!(AttrKind::DstDegree.is_inherent());
        assert!(AttrKind::SrcDegree.is_inherent());
        assert!(!AttrKind::SrcId.is_inherent());
        assert!(!AttrKind::EdgeType.is_inherent());
    }

    #[test]
    fn display_names() {
        assert_eq!(AttrKind::SrcId.to_string(), "src-id");
        assert_eq!(AttrKind::DstDegree.to_string(), "dst-degree");
    }

    #[test]
    fn all_is_exhaustive_and_unique() {
        let mut v = AttrKind::ALL.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 8);
    }
}
