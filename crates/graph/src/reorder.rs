//! Vertex reorderings that compose with gTask partitioning.
//!
//! §4.3 of the paper: Metis/Rabbit-style methods output a *reordered graph*
//! with better locality, and "Metis-style and WiseGraph graph partition work
//! at different levels and can be combined". We implement three lightweight
//! orderings: degree sort, BFS clustering (Metis-flavoured), and a
//! single-pass label-propagation community ordering (Rabbit-flavoured).

use crate::csr::Csr;
use crate::graph::Graph;

/// Returns a permutation (old id → new id) sorting vertices by descending
/// in-degree, ties broken by id.
pub fn degree_order(g: &Graph) -> Vec<u32> {
    let mut by_degree: Vec<u32> = (0..g.num_vertices() as u32).collect();
    by_degree.sort_by_key(|&v| (std::cmp::Reverse(g.in_degree()[v as usize]), v));
    invert(&by_degree)
}

/// Returns a BFS-clustered permutation: vertices discovered together get
/// adjacent ids (a cheap stand-in for Metis k-way clustering locality).
pub fn bfs_cluster_order(g: &Graph) -> Vec<u32> {
    let csr = Csr::in_of(&g.clone());
    let out = Csr::out_of(g);
    let n = g.num_vertices();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    for root in 0..n {
        if visited[root] {
            continue;
        }
        visited[root] = true;
        let mut queue = std::collections::VecDeque::from([root as u32]);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for (nbr, _) in csr.neighbors(v as usize).chain(out.neighbors(v as usize)) {
                if !visited[nbr as usize] {
                    visited[nbr as usize] = true;
                    queue.push_back(nbr);
                }
            }
        }
    }
    invert(&order)
}

/// Returns a community-clustered permutation via one round of label
/// propagation followed by grouping vertices of the same label (a
/// lightweight Rabbit-order analogue).
pub fn label_propagation_order(g: &Graph, rounds: usize) -> Vec<u32> {
    let n = g.num_vertices();
    let csr = Csr::in_of(&g.clone());
    let out = Csr::out_of(g);
    let mut label: Vec<u32> = (0..n as u32).collect();
    for _ in 0..rounds {
        for v in 0..n {
            // Adopt the most frequent neighbor label (min label on ties).
            let mut counts: std::collections::BTreeMap<u32, usize> =
                std::collections::BTreeMap::new();
            for (nbr, _) in csr.neighbors(v).chain(out.neighbors(v)) {
                *counts.entry(label[nbr as usize]).or_insert(0) += 1;
            }
            if let Some((&best, _)) = counts
                .iter()
                .max_by_key(|(&l, &c)| (c, std::cmp::Reverse(l)))
            {
                label[v] = best;
            }
        }
    }
    let mut by_label: Vec<u32> = (0..n as u32).collect();
    by_label.sort_by_key(|&v| (label[v as usize], v));
    invert(&by_label)
}

/// Converts an ordering (position → old id) into a permutation
/// (old id → new id).
fn invert(order: &[u32]) -> Vec<u32> {
    let mut perm = vec![0u32; order.len()];
    for (new, &old) in order.iter().enumerate() {
        perm[old as usize] = new as u32;
    }
    perm
}

/// Measures locality of an ordering: the mean |src - dst| gap over edges,
/// normalized by the vertex count (smaller is more local).
pub fn edge_span(g: &Graph, perm: &[u32]) -> f64 {
    if g.num_edges() == 0 {
        return 0.0;
    }
    let total: u64 = g
        .src()
        .iter()
        .zip(g.dst().iter())
        .map(|(&s, &d)| {
            let a = perm[s as usize] as i64;
            let b = perm[d as usize] as i64;
            (a - b).unsigned_abs()
        })
        .sum();
    total as f64 / (g.num_edges() as f64 * g.num_vertices() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{labeled_graph, rmat, LabeledParams, RmatParams};

    fn is_permutation(perm: &[u32]) -> bool {
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            if (p as usize) >= perm.len() || seen[p as usize] {
                return false;
            }
            seen[p as usize] = true;
        }
        true
    }

    #[test]
    fn all_orders_are_permutations() {
        let g = rmat(&RmatParams::standard(500, 4000, 9));
        assert!(is_permutation(&degree_order(&g)));
        assert!(is_permutation(&bfs_cluster_order(&g)));
        assert!(is_permutation(&label_propagation_order(&g, 2)));
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let g = rmat(&RmatParams::standard(500, 8000, 11));
        let perm = degree_order(&g);
        let hub = (0..500)
            .max_by_key(|&v| g.in_degree()[v])
            .unwrap();
        assert_eq!(perm[hub], 0, "highest-degree vertex must get id 0");
        let relabeled = g.relabel(&perm);
        // Degrees must now be non-increasing.
        for w in relabeled.in_degree().windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn clustering_improves_locality_on_community_graph() {
        // A homophilous graph has communities; clustering should reduce span
        // versus a deliberately shuffled labeling.
        let lg = labeled_graph(&LabeledParams {
            num_vertices: 600,
            num_classes: 6,
            homophily: 0.95,
            ..Default::default()
        });
        let g = &lg.graph;
        // Baseline: pseudo-random shuffle permutation.
        let mut shuffled: Vec<u32> = (0..600u32).collect();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, (i * 7919) % (i + 1));
        }
        let base = edge_span(g, &shuffled);
        let lp = edge_span(g, &label_propagation_order(g, 3));
        assert!(
            lp < base,
            "label propagation should improve locality: {lp} vs {base}"
        );
    }

    #[test]
    fn relabel_roundtrip_preserves_edges() {
        let g = rmat(&RmatParams::standard(300, 2000, 13));
        let perm = bfs_cluster_order(&g);
        let r = g.relabel(&perm);
        assert_eq!(r.num_edges(), g.num_edges());
        // Invert and check we recover original endpoints.
        let mut inv = vec![0u32; perm.len()];
        for (old, &new) in perm.iter().enumerate() {
            inv[new as usize] = old as u32;
        }
        for e in 0..g.num_edges() {
            assert_eq!(inv[r.src()[e] as usize], g.src()[e]);
            assert_eq!(inv[r.dst()[e] as usize], g.dst()[e]);
        }
    }
}
