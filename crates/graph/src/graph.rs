//! The core edge-list graph type with typed edge attributes.

use crate::attr::AttrKind;

/// A directed graph in coordinate (edge-list) form with edge types.
///
/// Edges are stored as parallel arrays `src[e]`, `dst[e]`, `etype[e]`;
/// the edge's own id is its index. Vertex types are optional (used only to
/// model the partition table's *unused attributes* row).
///
/// In GNN convention an edge `(src, dst)` carries a message from the source
/// to the destination vertex.
#[derive(Clone, Debug)]
pub struct Graph {
    num_vertices: usize,
    num_edge_types: usize,
    src: Vec<u32>,
    dst: Vec<u32>,
    etype: Vec<u32>,
    vertex_type: Option<Vec<u32>>,
    in_degree: Vec<u32>,
    out_degree: Vec<u32>,
}

impl Graph {
    /// Builds a graph from parallel edge arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays have different lengths, any endpoint is out of
    /// bounds, or any edge type is `>= num_edge_types`.
    pub fn new(
        num_vertices: usize,
        num_edge_types: usize,
        src: Vec<u32>,
        dst: Vec<u32>,
        etype: Vec<u32>,
    ) -> Self {
        assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
        assert_eq!(src.len(), etype.len(), "src/etype length mismatch");
        let mut in_degree = vec![0u32; num_vertices];
        let mut out_degree = vec![0u32; num_vertices];
        for (&s, (&d, &t)) in src.iter().zip(dst.iter().zip(etype.iter())) {
            assert!((s as usize) < num_vertices, "src {s} out of bounds");
            assert!((d as usize) < num_vertices, "dst {d} out of bounds");
            assert!(
                (t as usize) < num_edge_types.max(1),
                "edge type {t} out of bounds"
            );
            out_degree[s as usize] += 1;
            in_degree[d as usize] += 1;
        }
        Self {
            num_vertices,
            num_edge_types: num_edge_types.max(1),
            src,
            dst,
            etype,
            vertex_type: None,
            in_degree,
            out_degree,
        }
    }

    /// Builds an untyped graph (all edges get type 0).
    pub fn untyped(num_vertices: usize, src: Vec<u32>, dst: Vec<u32>) -> Self {
        let etype = vec![0u32; src.len()];
        Self::new(num_vertices, 1, src, dst, etype)
    }

    /// Attaches per-vertex types (for the unused-attribute table rows).
    ///
    /// # Panics
    ///
    /// Panics if `types.len() != num_vertices`.
    pub fn with_vertex_types(mut self, types: Vec<u32>) -> Self {
        assert_eq!(types.len(), self.num_vertices, "vertex type length");
        self.vertex_type = Some(types);
        self
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }

    /// Number of distinct edge types.
    pub fn num_edge_types(&self) -> usize {
        self.num_edge_types
    }

    /// Source vertex ids, one per edge.
    pub fn src(&self) -> &[u32] {
        &self.src
    }

    /// Destination vertex ids, one per edge.
    pub fn dst(&self) -> &[u32] {
        &self.dst
    }

    /// Edge types, one per edge.
    pub fn etype(&self) -> &[u32] {
        &self.etype
    }

    /// In-degrees (number of incoming edges) per vertex.
    pub fn in_degree(&self) -> &[u32] {
        &self.in_degree
    }

    /// Out-degrees per vertex.
    pub fn out_degree(&self) -> &[u32] {
        &self.out_degree
    }

    /// Returns the value of an edge attribute for edge `e`.
    ///
    /// This is the single accessor the partitioner uses: every attribute the
    /// graph partition table can restrict on is funneled through here.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    pub fn edge_attr(&self, kind: AttrKind, e: usize) -> u64 {
        match kind {
            AttrKind::EdgeId => e as u64,
            AttrKind::SrcId => self.src[e] as u64,
            AttrKind::DstId => self.dst[e] as u64,
            AttrKind::EdgeType => self.etype[e] as u64,
            AttrKind::DstDegree => self.in_degree[self.dst[e] as usize] as u64,
            AttrKind::SrcDegree => self.out_degree[self.src[e] as usize] as u64,
            AttrKind::SrcVertexType => self
                .vertex_type
                .as_ref()
                .map_or(0, |t| t[self.src[e] as usize] as u64),
            AttrKind::DstVertexType => self
                .vertex_type
                .as_ref()
                .map_or(0, |t| t[self.dst[e] as usize] as u64),
        }
    }

    /// Returns a new graph with vertices renamed by `perm` (old id → new id).
    ///
    /// Edge order is preserved; only endpoint ids change. Used to compose a
    /// Metis/Rabbit-style reordering with gTask partitioning (§4.3).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..num_vertices`.
    pub fn relabel(&self, perm: &[u32]) -> Graph {
        assert_eq!(perm.len(), self.num_vertices, "permutation length");
        let mut seen = vec![false; self.num_vertices];
        for &p in perm {
            assert!(
                (p as usize) < self.num_vertices && !seen[p as usize],
                "perm is not a permutation"
            );
            seen[p as usize] = true;
        }
        let src = self.src.iter().map(|&s| perm[s as usize]).collect();
        let dst = self.dst.iter().map(|&d| perm[d as usize]).collect();
        let mut g = Graph::new(
            self.num_vertices,
            self.num_edge_types,
            src,
            dst,
            self.etype.clone(),
        );
        if let Some(vt) = &self.vertex_type {
            let mut new_vt = vec![0u32; self.num_vertices];
            for (old, &new) in perm.iter().enumerate() {
                new_vt[new as usize] = vt[old];
            }
            g.vertex_type = Some(new_vt);
        }
        g
    }

    /// Returns the subgraph induced by the given edge subset, with vertices
    /// renumbered compactly. Returns `(subgraph, vertex_map)` where
    /// `vertex_map[new_id] = old_id`.
    ///
    /// # Panics
    ///
    /// Panics if an edge index is out of bounds.
    pub fn edge_subgraph(&self, edges: &[usize]) -> (Graph, Vec<u32>) {
        let mut remap = vec![u32::MAX; self.num_vertices];
        let mut vmap: Vec<u32> = Vec::new();
        let map_vertex = |v: u32, remap: &mut Vec<u32>, vmap: &mut Vec<u32>| -> u32 {
            if remap[v as usize] == u32::MAX {
                remap[v as usize] = vmap.len() as u32;
                vmap.push(v);
            }
            remap[v as usize]
        };
        let mut src = Vec::with_capacity(edges.len());
        let mut dst = Vec::with_capacity(edges.len());
        let mut etype = Vec::with_capacity(edges.len());
        for &e in edges {
            src.push(map_vertex(self.src[e], &mut remap, &mut vmap));
            dst.push(map_vertex(self.dst[e], &mut remap, &mut vmap));
            etype.push(self.etype[e]);
        }
        let g = Graph::new(vmap.len(), self.num_edge_types, src, dst, etype);
        (g, vmap)
    }

    /// Estimated bytes to store this graph's topology (u32 COO + types).
    pub fn topology_bytes(&self) -> usize {
        self.num_edges() * (4 + 4 + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_graph() -> Graph {
        // The 5-vertex, 11-edge example of Figure 5(a):
        // Edge ID:   0 1 2 3 4 5 6 7 8 9 10
        // Dst ID:    0 0 1 1 1 2 2 2 3 3 4
        // Src ID:    0 1 0 1 2 2 3 4 3 4 0
        // Edge type: a a a a b a b b b b a   (a=0, b=1)
        Graph::new(
            5,
            2,
            vec![0, 1, 0, 1, 2, 2, 3, 4, 3, 4, 0],
            vec![0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 4],
            vec![0, 0, 0, 0, 1, 0, 1, 1, 1, 1, 0],
        )
    }

    #[test]
    fn construction_and_degrees() {
        let g = paper_graph();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 11);
        assert_eq!(g.in_degree(), &[2, 3, 3, 2, 1]);
        assert_eq!(g.out_degree(), &[3, 2, 2, 2, 2]);
    }

    #[test]
    fn edge_attr_matches_figure5() {
        let g = paper_graph();
        assert_eq!(g.edge_attr(AttrKind::EdgeId, 4), 4);
        assert_eq!(g.edge_attr(AttrKind::SrcId, 4), 2);
        assert_eq!(g.edge_attr(AttrKind::DstId, 4), 1);
        assert_eq!(g.edge_attr(AttrKind::EdgeType, 4), 1);
        assert_eq!(g.edge_attr(AttrKind::DstDegree, 4), 3);
        assert_eq!(g.edge_attr(AttrKind::SrcDegree, 4), 2);
    }

    #[test]
    fn vertex_types_default_to_zero() {
        let g = paper_graph();
        assert_eq!(g.edge_attr(AttrKind::SrcVertexType, 0), 0);
        let g = g.with_vertex_types(vec![0, 1, 2, 3, 4]);
        assert_eq!(g.edge_attr(AttrKind::SrcVertexType, 4), 2);
        assert_eq!(g.edge_attr(AttrKind::DstVertexType, 4), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_bad_endpoint() {
        Graph::untyped(2, vec![0, 2], vec![1, 0]);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = paper_graph();
        // Reverse the vertex ids.
        let perm: Vec<u32> = (0..5).rev().collect();
        let r = g.relabel(&perm);
        assert_eq!(r.num_edges(), g.num_edges());
        // Edge 4 was (2 -> 1); now (2 -> 3).
        assert_eq!(r.src()[4], 2);
        assert_eq!(r.dst()[4], 3);
        // Degree multiset is preserved.
        let mut a = g.in_degree().to_vec();
        let mut b = r.in_degree().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn relabel_rejects_non_permutation() {
        paper_graph().relabel(&[0, 0, 1, 2, 3]);
    }

    #[test]
    fn edge_subgraph_compacts_vertices() {
        let g = paper_graph();
        let (sub, vmap) = g.edge_subgraph(&[5, 6, 7]); // edges into vertex 2
        assert_eq!(sub.num_edges(), 3);
        // Vertices touched: 2 (src of 5 and dst of all), 3, 4.
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(vmap.len(), 3);
        // Every subgraph edge maps back to an original edge.
        for i in 0..3 {
            let (s, d) = (vmap[sub.src()[i] as usize], vmap[sub.dst()[i] as usize]);
            assert_eq!(d, 2);
            assert!([2, 3, 4].contains(&s));
        }
    }
}
