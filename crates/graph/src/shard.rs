//! Vertex-range sharding for multi-device execution (paper §5.4).
//!
//! Devices own contiguous destination-vertex ranges — the same
//! `ceil(|V| / D)` chunking the multi-device cost model's
//! `max_remote_unique_src` assumes — so the owner of a vertex (and of its
//! embedding row, and of its row in every reduction output) is a pure
//! function of the vertex id. The graph *structure* is replicated on every
//! device; only embeddings and reduction rows are partitioned. From the
//! replicated structure each device derives, deterministically, both its
//! own halo (the remote sources its edges gather from) and every peer's,
//! which is what lets the push-style collectives in `kernels::cluster` run
//! without a handshake round.

use crate::graph::Graph;
use std::ops::Range;

/// A contiguous vertex-range sharding over `num_shards` devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    num_vertices: usize,
    num_shards: usize,
    chunk: usize,
}

impl ShardSpec {
    /// Shards `num_vertices` vertices over `num_shards` devices in
    /// contiguous ranges of `ceil(num_vertices / num_shards)`.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards == 0`.
    pub fn new(num_vertices: usize, num_shards: usize) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        Self {
            num_vertices,
            num_shards,
            chunk: num_vertices.div_ceil(num_shards).max(1),
        }
    }

    /// Number of shards (devices).
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Total vertices being sharded.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The shard owning vertex `v` — identical to the cost model's
    /// `(v / chunk).min(d - 1)` convention, so predicted and executed
    /// remote-unique volumes agree by construction.
    pub fn owner(&self, v: u32) -> usize {
        (v as usize / self.chunk).min(self.num_shards - 1)
    }

    /// The contiguous vertex range shard `d` owns. Trailing shards may own
    /// an empty range when `num_shards` exceeds the vertex count.
    ///
    /// # Panics
    ///
    /// Panics if `d >= num_shards`.
    pub fn owned_range(&self, d: usize) -> Range<usize> {
        assert!(d < self.num_shards, "shard {d} out of range");
        let start = (d * self.chunk).min(self.num_vertices);
        let end = if d + 1 == self.num_shards {
            self.num_vertices
        } else {
            ((d + 1) * self.chunk).min(self.num_vertices)
        };
        start..end
    }

    /// The sources shard `d`'s edges gather from that live on other
    /// shards: sorted, deduplicated — the halo rows a data-parallel
    /// all-to-all must deliver to `d`. Edges are attributed to the shard
    /// owning their *destination*.
    pub fn remote_unique_src(&self, g: &Graph, d: usize) -> Vec<u32> {
        let own = self.owned_range(d);
        let mut remote: Vec<u32> = g
            .src()
            .iter()
            .zip(g.dst().iter())
            .filter(|&(&s, &d_)| {
                self.owner(d_) == d && !(own.start..own.end).contains(&(s as usize))
            })
            .map(|(&s, _)| s)
            .collect();
        remote.sort_unstable();
        remote.dedup();
        remote
    }

    /// Largest remote-unique-source count over all shards — the quantity
    /// the all-to-all volume formulas charge for.
    pub fn max_remote_unique_src(&self, g: &Graph) -> usize {
        (0..self.num_shards)
            .map(|d| self.remote_unique_src(g, d).len())
            .max()
            .unwrap_or(0)
    }

    /// Edge ids whose destination shard is `d` — the edge subset of `d`'s
    /// data-parallel plan.
    pub fn owned_dst_edges(&self, g: &Graph, d: usize) -> Vec<usize> {
        g.dst()
            .iter()
            .enumerate()
            .filter(|&(_, &v)| self.owner(v) == d)
            .map(|(e, _)| e)
            .collect()
    }
}

/// A fixed decomposition of the vertex id space into `num_groups`
/// contiguous source ranges, *independent of the device count*: the
/// compute-then-reduce schedule partitions edges by source group and sums
/// the per-group partial aggregates in ascending global group order, so
/// its float summation sequence — and therefore its output bits — do not
/// change when the groups are re-distributed over a different number of
/// devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SrcGroups {
    spec: ShardSpec,
}

impl SrcGroups {
    /// The canonical group count. Eight divides evenly over the 1/2/4/8
    /// device sweeps the determinism suite runs.
    pub const CANONICAL: usize = 8;

    /// Decomposes `num_vertices` sources into `num_groups` contiguous
    /// ranges.
    ///
    /// # Panics
    ///
    /// Panics if `num_groups == 0`.
    pub fn new(num_vertices: usize, num_groups: usize) -> Self {
        Self {
            spec: ShardSpec::new(num_vertices, num_groups),
        }
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.spec.num_shards()
    }

    /// The group owning source vertex `v`.
    pub fn group_of(&self, v: u32) -> usize {
        self.spec.owner(v)
    }

    /// The groups device `d` of `devices` executes: a contiguous range of
    /// group ids, assigned by the same chunking as vertex ownership.
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0` or `d >= devices`.
    pub fn groups_of_device(&self, d: usize, devices: usize) -> Range<usize> {
        ShardSpec::new(self.num_groups(), devices).owned_range(d)
    }

    /// Edge ids whose source falls in group `group`.
    pub fn group_edges(&self, g: &Graph, group: usize) -> Vec<usize> {
        g.src()
            .iter()
            .enumerate()
            .filter(|&(_, &s)| self.group_of(s) == group)
            .map(|(e, _)| e)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{rmat, RmatParams};

    #[test]
    fn ranges_cover_vertices_exactly_once() {
        for (v, d) in [(5usize, 1usize), (11, 2), (11, 4), (3, 8), (100, 7)] {
            let s = ShardSpec::new(v, d);
            let mut next = 0;
            for shard in 0..d {
                let r = s.owned_range(shard);
                assert_eq!(r.start, next, "{v} vertices / {d} shards");
                assert!(r.end >= r.start);
                for vid in r.clone() {
                    assert_eq!(s.owner(vid as u32), shard);
                }
                next = r.end;
            }
            assert_eq!(next, v);
        }
    }

    #[test]
    fn halo_is_exactly_the_non_owned_sources() {
        let g = rmat(&RmatParams::standard(60, 400, 17));
        let s = ShardSpec::new(g.num_vertices(), 4);
        let mut total_edges = 0;
        for d in 0..4 {
            let own = s.owned_range(d);
            let halo = s.remote_unique_src(&g, d);
            // Sorted, deduplicated, disjoint from the owned range.
            assert!(halo.windows(2).all(|w| w[0] < w[1]));
            assert!(halo.iter().all(|&v| !own.contains(&(v as usize))));
            let edges = s.owned_dst_edges(&g, d);
            for &e in &edges {
                let src = g.src()[e] as usize;
                assert!(own.contains(&src) || halo.binary_search(&(src as u32)).is_ok());
            }
            total_edges += edges.len();
        }
        assert_eq!(total_edges, g.num_edges());
        assert!(s.max_remote_unique_src(&g) > 0);
    }

    #[test]
    fn single_shard_has_no_halo() {
        let g = rmat(&RmatParams::standard(40, 200, 19));
        let s = ShardSpec::new(g.num_vertices(), 1);
        assert!(s.remote_unique_src(&g, 0).is_empty());
        assert_eq!(s.owned_dst_edges(&g, 0).len(), g.num_edges());
    }

    #[test]
    fn src_groups_partition_edges_and_ignore_device_count() {
        let g = rmat(&RmatParams::standard(50, 300, 23));
        let groups = SrcGroups::new(g.num_vertices(), SrcGroups::CANONICAL);
        let mut seen = vec![false; g.num_edges()];
        for grp in 0..groups.num_groups() {
            for e in groups.group_edges(&g, grp) {
                assert!(!seen[e], "edge {e} in two groups");
                seen[e] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
        // The group → device assignment re-chunks, but the groups (and
        // hence per-group edge sets) are the same for every device count.
        for devices in 1..=8usize {
            let mut covered = vec![false; groups.num_groups()];
            for d in 0..devices {
                for grp in groups.groups_of_device(d, devices) {
                    assert!(!covered[grp]);
                    covered[grp] = true;
                }
            }
            assert!(covered.iter().all(|&x| x), "{devices} devices");
        }
    }
}
