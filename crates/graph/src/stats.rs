//! Graph statistics used for calibration and reporting.

/// Gini coefficient of a degree sequence (0 = uniform, →1 = concentrated).
///
/// Used to verify that synthetic graphs reproduce the power-law skew the
/// paper's joint optimization exploits (§6: "power-law distribution of graph
/// data").
pub fn degree_gini(degrees: &[u32]) -> f64 {
    if degrees.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<u64> = degrees.iter().map(|&d| d as u64).collect();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let total: u64 = sorted.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut cum = 0.0f64;
    let mut weighted = 0.0f64;
    for (i, &d) in sorted.iter().enumerate() {
        cum += d as f64;
        weighted += cum;
        let _ = i;
    }
    // Gini = 1 - 2·B where B is the area under the Lorenz curve.
    1.0 - 2.0 * (weighted / (n * total as f64)) + 1.0 / n
}

/// A log-binned degree histogram: `(lower_bound, count)` pairs.
pub fn degree_histogram_log2(degrees: &[u32]) -> Vec<(u32, usize)> {
    let max = degrees.iter().copied().max().unwrap_or(0);
    let bins = 64 - u64::from(max).leading_zeros() as usize + 1;
    let mut hist = vec![0usize; bins.max(1)];
    for &d in degrees {
        let bin = if d == 0 {
            0
        } else {
            64 - u64::from(d).leading_zeros() as usize
        };
        hist[bin.min(bins - 1)] += 1;
    }
    hist.into_iter()
        .enumerate()
        .filter(|&(_, c)| c > 0)
        .map(|(b, c)| (if b == 0 { 0 } else { 1u32 << (b - 1) }, c))
        .collect()
}

/// Fraction of all edges incident (as destination) to the top `k` vertices.
pub fn top_k_in_degree_share(degrees: &[u32], k: usize) -> f64 {
    let total: u64 = degrees.iter().map(|&d| d as u64).sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u32> = degrees.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let top: u64 = sorted.iter().take(k).map(|&d| d as u64).sum();
    top as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_of_uniform_is_near_zero() {
        let g = degree_gini(&[5; 100]);
        assert!(g.abs() < 0.02, "gini = {g}");
    }

    #[test]
    fn gini_of_concentrated_is_high() {
        let mut d = vec![0u32; 99];
        d.push(1000);
        let g = degree_gini(&d);
        assert!(g > 0.95, "gini = {g}");
    }

    #[test]
    fn gini_handles_empty_and_zero() {
        assert_eq!(degree_gini(&[]), 0.0);
        assert_eq!(degree_gini(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn histogram_bins_cover_all_vertices() {
        let d = [0, 1, 1, 2, 3, 4, 8, 9, 1000];
        let h = degree_histogram_log2(&d);
        let total: usize = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, d.len());
        // Bin lower bounds are increasing powers of two (after the 0 bin).
        for w in h.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn top_k_share() {
        let d = [10, 10, 10, 70];
        assert!((top_k_in_degree_share(&d, 1) - 0.7).abs() < 1e-9);
        assert!((top_k_in_degree_share(&d, 4) - 1.0).abs() < 1e-9);
    }
}
