//! Presets mirroring the paper's evaluation datasets (Table 1).
//!
//! The originals are OGB graphs; Papers and FriendSter have billions of
//! edges. We regenerate structurally similar power-law graphs with the RMAT
//! generator, scaling the largest down and recording the scale factor so the
//! simulator can report paper-comparable (full-scale) workloads.

use crate::generate::{rmat, RmatParams};
use crate::graph::Graph;

/// The seven evaluation graphs of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// OGBN-Arxiv: 169K vertices, 2.3M edges, dim 128, 40 classes.
    Arxiv,
    /// OGBN-Products: 2.4M vertices, 123M edges, dim 100, 47 classes.
    Products,
    /// Reddit: 233K vertices, 114M edges, dim 602, 41 classes.
    Reddit,
    /// Papers100M sampled: 1.2M vertices, 1.5M edges, dim 128, 172 classes.
    PapersSample,
    /// FriendSter sampled: 1.4M vertices, 1.6M edges, dim 384, 64 classes.
    FriendSterSample,
    /// Papers100M full: 111M vertices, 1.6B edges (multi-GPU).
    Papers,
    /// FriendSter full: 66M vertices, 3.6B edges (multi-GPU).
    FriendSter,
}

impl DatasetKind {
    /// All dataset kinds in Table 1 order.
    pub const ALL: [DatasetKind; 7] = [
        DatasetKind::Arxiv,
        DatasetKind::Products,
        DatasetKind::Reddit,
        DatasetKind::PapersSample,
        DatasetKind::FriendSterSample,
        DatasetKind::Papers,
        DatasetKind::FriendSter,
    ];

    /// The five single-GPU datasets (Figure 13 rows).
    pub const SINGLE_GPU: [DatasetKind; 5] = [
        DatasetKind::Arxiv,
        DatasetKind::Products,
        DatasetKind::Reddit,
        DatasetKind::PapersSample,
        DatasetKind::FriendSterSample,
    ];

    /// The short name used in the paper's tables ("AR", "PR", ...).
    pub fn short_name(self) -> &'static str {
        match self {
            DatasetKind::Arxiv => "AR",
            DatasetKind::Products => "PR",
            DatasetKind::Reddit => "RE",
            DatasetKind::PapersSample => "PA-S",
            DatasetKind::FriendSterSample => "FS-S",
            DatasetKind::Papers => "PA",
            DatasetKind::FriendSter => "FS",
        }
    }

    /// The generation spec for this dataset.
    pub fn spec(self) -> DatasetSpec {
        // paper_* fields are the true Table 1 sizes; gen_* are what we
        // instantiate. scale = paper_edges / gen_edges is applied by the
        // simulator when reporting full-size workloads.
        match self {
            DatasetKind::Arxiv => DatasetSpec {
                kind: self,
                paper_vertices: 169_000,
                paper_edges: 2_300_000,
                gen_vertices: 42_250,
                gen_edges: 575_000,
                feature_dim: 128,
                num_classes: 40,
                num_edge_types: 8,
            },
            DatasetKind::Products => DatasetSpec {
                kind: self,
                paper_vertices: 2_400_000,
                paper_edges: 123_000_000,
                gen_vertices: 48_000,
                gen_edges: 2_460_000,
                feature_dim: 100,
                num_classes: 47,
                num_edge_types: 8,
            },
            DatasetKind::Reddit => DatasetSpec {
                kind: self,
                paper_vertices: 233_000,
                paper_edges: 114_000_000,
                gen_vertices: 4_660,
                gen_edges: 2_280_000,
                feature_dim: 602,
                num_classes: 41,
                num_edge_types: 8,
            },
            DatasetKind::PapersSample => DatasetSpec {
                kind: self,
                paper_vertices: 1_200_000,
                paper_edges: 1_500_000,
                gen_vertices: 120_000,
                gen_edges: 150_000,
                feature_dim: 128,
                num_classes: 172,
                num_edge_types: 8,
            },
            DatasetKind::FriendSterSample => DatasetSpec {
                kind: self,
                paper_vertices: 1_400_000,
                paper_edges: 1_600_000,
                gen_vertices: 140_000,
                gen_edges: 160_000,
                feature_dim: 384,
                num_classes: 64,
                num_edge_types: 8,
            },
            DatasetKind::Papers => DatasetSpec {
                kind: self,
                paper_vertices: 111_000_000,
                paper_edges: 1_600_000_000,
                gen_vertices: 111_000,
                gen_edges: 1_600_000,
                feature_dim: 128,
                num_classes: 172,
                num_edge_types: 8,
            },
            DatasetKind::FriendSter => DatasetSpec {
                kind: self,
                paper_vertices: 66_000_000,
                paper_edges: 3_600_000_000,
                gen_vertices: 66_000,
                gen_edges: 3_600_000,
                feature_dim: 384,
                num_classes: 64,
                num_edge_types: 8,
            },
        }
    }
}

/// A dataset preset: true paper sizes plus the generated analogue's sizes.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Which Table 1 dataset this mirrors.
    pub kind: DatasetKind,
    /// Vertex count reported in the paper.
    pub paper_vertices: usize,
    /// Edge count reported in the paper.
    pub paper_edges: usize,
    /// Vertex count we instantiate.
    pub gen_vertices: usize,
    /// Edge count we instantiate.
    pub gen_edges: usize,
    /// Input embedding dimension (Table 1 "Dim.").
    pub feature_dim: usize,
    /// Number of classification classes.
    pub num_classes: usize,
    /// Edge types assigned for RGCN experiments.
    pub num_edge_types: usize,
}

impl DatasetSpec {
    /// Workload scale factor: full-size edges per generated edge.
    pub fn scale(&self) -> f64 {
        self.paper_edges as f64 / self.gen_edges as f64
    }

    /// Instantiates the synthetic analogue of this dataset.
    pub fn build(&self) -> Graph {
        let seed = self.kind as u64 + 100;
        rmat(
            &RmatParams::standard(self.gen_vertices, self.gen_edges, seed)
                .with_edge_types(self.num_edge_types),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn specs_match_table1_shapes() {
        let ar = DatasetKind::Arxiv.spec();
        assert_eq!(ar.feature_dim, 128);
        assert_eq!(ar.num_classes, 40);
        let re = DatasetKind::Reddit.spec();
        assert_eq!(re.feature_dim, 602);
        // Reddit's defining property: extremely dense (avg degree ~489).
        assert!(re.gen_edges / re.gen_vertices > 400);
        let fs = DatasetKind::FriendSter.spec();
        assert!((fs.scale() - 1000.0).abs() < 1.0);
    }

    #[test]
    fn avg_degree_ratio_preserved() {
        for kind in DatasetKind::ALL {
            let s = kind.spec();
            let paper_avg = s.paper_edges as f64 / s.paper_vertices as f64;
            let gen_avg = s.gen_edges as f64 / s.gen_vertices as f64;
            // Within 4× of the paper's average degree (deliberate for the
            // scaled giants, where we keep more vertices for partition
            // diversity).
            assert!(
                gen_avg / paper_avg < 4.0 && paper_avg / gen_avg < 4.0,
                "{kind:?}: paper avg {paper_avg}, generated avg {gen_avg}"
            );
        }
    }

    #[test]
    fn build_arxiv_analogue() {
        let spec = DatasetKind::Arxiv.spec();
        let g = spec.build();
        assert_eq!(g.num_vertices(), spec.gen_vertices);
        assert_eq!(g.num_edges(), spec.gen_edges);
        assert_eq!(g.num_edge_types(), spec.num_edge_types);
        // Power-law skew present.
        assert!(stats::degree_gini(g.in_degree()) > 0.35);
    }

    #[test]
    fn short_names() {
        assert_eq!(DatasetKind::Arxiv.short_name(), "AR");
        assert_eq!(DatasetKind::FriendSterSample.short_name(), "FS-S");
    }
}
