//! Incremental gTask maintenance for evolving graphs.
//!
//! The paper notes: "WiseGraph is unable to tackle the situation where
//! graph structure changes dramatically at every iteration" (§6.3) — its
//! answer for sampled training is plan *reuse*. This module extends that to
//! streaming edge insertions: new edges are admitted into existing gTasks
//! when the table's restrictions still hold, spilled into fresh tasks
//! otherwise, and the plan is rebuilt from scratch once fragmentation
//! degrades beyond a threshold. Per-insertion cost is O(candidate tasks),
//! amortized far below the O(E log E) full partition.

use crate::partition::partition;
use crate::restriction::PartitionTable;
use crate::task::{GTask, PartitionPlan};
use std::collections::{BTreeMap, HashMap, HashSet};
use wisegraph_graph::{AttrKind, Graph};

/// A partition plan that admits streamed edge insertions.
#[derive(Debug)]
pub struct IncrementalPlan {
    table: PartitionTable,
    tasks: Vec<TaskState>,
    /// Candidate-task index: first exact attribute's value → tasks that
    /// already contain it (value-reuse admission).
    by_key: HashMap<u64, Vec<usize>>,
    /// Open-task index: the tuple of `Exact(1)` attribute values → tasks
    /// with spare capacity on the looser attributes (spare-capacity
    /// admission). Entries are pruned lazily when tasks fill up.
    open_by_tight: HashMap<Vec<u64>, Vec<usize>>,
    /// Edges admitted since the last full rebuild.
    inserted_since_rebuild: usize,
    /// Task count right after the last full rebuild.
    tasks_at_rebuild: usize,
}

#[derive(Debug)]
struct TaskState {
    edges: Vec<usize>,
    /// Distinct values per `Exact` attribute.
    uniq: Vec<HashSet<u64>>,
}

impl IncrementalPlan {
    /// Builds the initial plan with the greedy partitioner.
    pub fn new(g: &Graph, table: PartitionTable) -> Self {
        let plan = partition(g, &table);
        let mut this = Self {
            table,
            tasks: Vec::new(),
            by_key: HashMap::new(),
            open_by_tight: HashMap::new(),
            inserted_since_rebuild: 0,
            tasks_at_rebuild: 0,
        };
        this.adopt(g, plan);
        this
    }

    fn exact_attrs(&self) -> Vec<(AttrKind, u64)> {
        self.table.exact_attrs()
    }

    fn adopt(&mut self, g: &Graph, plan: PartitionPlan) {
        let exact = self.exact_attrs();
        self.tasks = plan
            .tasks
            .into_iter()
            .map(|t| {
                let uniq = exact
                    .iter()
                    .map(|&(attr, _)| {
                        t.edges.iter().map(|&e| g.edge_attr(attr, e)).collect()
                    })
                    .collect();
                TaskState {
                    edges: t.edges,
                    uniq,
                }
            })
            .collect();
        self.by_key.clear();
        self.open_by_tight.clear();
        let exact = self.exact_attrs();
        for (i, t) in self.tasks.iter().enumerate() {
            if let Some(first) = t.uniq.first() {
                for &v in first {
                    self.by_key.entry(v).or_default().push(i);
                }
            }
            let has_spare = exact
                .iter()
                .enumerate()
                .any(|(j, &(_, bound))| (t.uniq[j].len() as u64) < bound);
            if has_spare {
                let tight = Self::tight_key_of(&exact, &t.uniq);
                if let Some(tight) = tight {
                    self.open_by_tight.entry(tight).or_default().push(i);
                }
            }
        }
        self.inserted_since_rebuild = 0;
        self.tasks_at_rebuild = self.tasks.len();
    }

    /// The tuple of `Exact(1)` attribute values of a task (`None` if such
    /// an attribute has no value yet — cannot happen for nonempty tasks).
    fn tight_key_of(
        exact: &[(AttrKind, u64)],
        uniq: &[HashSet<u64>],
    ) -> Option<Vec<u64>> {
        exact
            .iter()
            .enumerate()
            .filter(|&(_, &(_, bound))| bound == 1)
            .map(|(j, _)| uniq[j].iter().next().copied())
            .collect()
    }

    /// Admits edge `e` of `g` (the graph must already contain it) into an
    /// existing task when every `Exact` bound still holds, otherwise into a
    /// fresh task.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds for `g`.
    pub fn insert(&mut self, g: &Graph, e: usize) {
        assert!(e < g.num_edges(), "edge {e} out of bounds");
        let exact = self.exact_attrs();
        let values: Vec<u64> = exact.iter().map(|&(a, _)| g.edge_attr(a, e)).collect();
        let fits = |t: &TaskState| -> bool {
            exact.iter().enumerate().all(|(i, &(_, bound))| {
                let set = &t.uniq[i];
                set.contains(&values[i]) || (set.len() as u64) < bound
            })
        };
        // Tier 1: tasks already containing the first restricted value.
        let tier1: Vec<usize> = match values.first() {
            Some(&v0) => self.by_key.get(&v0).cloned().unwrap_or_default(),
            None => (0..self.tasks.len().min(1)).collect(),
        };
        // Tier 2: open tasks matching the tight (bound-1) attribute values.
        let tight: Vec<u64> = exact
            .iter()
            .enumerate()
            .filter(|&(_, &(_, bound))| bound == 1)
            .map(|(i, _)| values[i])
            .collect();
        let tier2: Vec<usize> = self
            .open_by_tight
            .get(&tight)
            .cloned()
            .unwrap_or_default();
        for &ti in tier1.iter().chain(tier2.iter()) {
            if !fits(&self.tasks[ti]) {
                continue;
            }
            let t = &mut self.tasks[ti];
            t.edges.push(e);
            for (i, &v) in values.iter().enumerate() {
                let newly = t.uniq[i].insert(v);
                if newly && i == 0 {
                    self.by_key.entry(v).or_default().push(ti);
                }
            }
            // Lazily close the task if every bound is saturated.
            let full = exact
                .iter()
                .enumerate()
                .all(|(i, &(_, bound))| (self.tasks[ti].uniq[i].len() as u64) >= bound);
            if full {
                if let Some(list) = self.open_by_tight.get_mut(&tight) {
                    list.retain(|&x| x != ti);
                }
            }
            self.inserted_since_rebuild += 1;
            return;
        }
        // Fresh task.
        let uniq: Vec<HashSet<u64>> =
            values.iter().map(|&v| HashSet::from([v])).collect();
        self.tasks.push(TaskState {
            edges: vec![e],
            uniq,
        });
        let ti = self.tasks.len() - 1;
        if let Some(&v0) = values.first() {
            self.by_key.entry(v0).or_default().push(ti);
        }
        self.open_by_tight.entry(tight).or_default().push(ti);
        self.inserted_since_rebuild += 1;
    }

    /// Fragmentation: current tasks relative to what a fresh partition of
    /// the same edges would produce, approximated by the rebuild baseline
    /// scaled with the insertions (1.0 = as good as fresh).
    pub fn fragmentation(&self, g: &Graph) -> f64 {
        let fresh = partition(g, &self.table).num_tasks().max(1);
        self.tasks.len() as f64 / fresh as f64
    }

    /// Rebuilds from scratch when fragmentation exceeds `threshold`
    /// (e.g. 1.5 = 50% more tasks than a fresh partition). Returns whether
    /// a rebuild happened.
    pub fn rebuild_if_fragmented(&mut self, g: &Graph, threshold: f64) -> bool {
        if self.fragmentation(g) > threshold {
            let plan = partition(g, &self.table);
            self.adopt(g, plan);
            true
        } else {
            false
        }
    }

    /// Snapshots the current tasks as a [`PartitionPlan`].
    pub fn snapshot(&self, g: &Graph) -> PartitionPlan {
        let exact = self.exact_attrs();
        let tasks = self
            .tasks
            .iter()
            .map(|t| {
                let mut uniq = BTreeMap::new();
                for (i, &(attr, _)) in exact.iter().enumerate() {
                    uniq.insert(attr, t.uniq[i].len());
                }
                let _ = g;
                GTask {
                    edges: t.edges.clone(),
                    uniq,
                }
            })
            .collect();
        PartitionPlan {
            table: self.table.clone(),
            tasks,
        }
    }

    /// Number of tasks currently held.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Edges admitted since the last rebuild.
    pub fn inserted_since_rebuild(&self) -> usize {
        self.inserted_since_rebuild
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_graph::generate::{rmat, RmatParams};

    /// Splits a graph into a prefix graph and the list of later edges.
    fn prefix_graph(g: &Graph, cut: usize) -> Graph {
        Graph::new(
            g.num_vertices(),
            g.num_edge_types(),
            g.src()[..cut].to_vec(),
            g.dst()[..cut].to_vec(),
            g.etype()[..cut].to_vec(),
        )
    }

    fn check_invariants(g: &Graph, plan: &PartitionPlan) {
        let mut seen = vec![false; g.num_edges()];
        for t in &plan.tasks {
            assert!(!t.edges.is_empty());
            for &e in &t.edges {
                assert!(!seen[e], "edge {e} duplicated");
                seen[e] = true;
            }
            for (attr, bound) in plan.table.exact_attrs() {
                assert!(
                    t.uniq_of(g, attr) as u64 <= bound,
                    "uniq({attr}) exceeds {bound}"
                );
            }
        }
        assert!(seen.into_iter().all(|s| s), "every edge covered");
    }

    #[test]
    fn streaming_insertions_preserve_invariants() {
        let g = rmat(&RmatParams::standard(300, 4000, 101).with_edge_types(4));
        let cut = 2000;
        let g0 = prefix_graph(&g, cut);
        let table = PartitionTable::src_batch_per_type(16);
        let mut inc = IncrementalPlan::new(&g0, table);
        // Note: degrees change as edges arrive, so the stream uses the
        // final graph for attribute lookups (id/type attributes are
        // stable; this table restricts only stable attributes).
        for e in cut..g.num_edges() {
            inc.insert(&g, e);
        }
        let plan = inc.snapshot(&g);
        check_invariants(&g, &plan);
    }

    #[test]
    fn admission_reuses_existing_tasks() {
        let g = rmat(&RmatParams::standard(200, 3000, 103).with_edge_types(2));
        let cut = 1500;
        let g0 = prefix_graph(&g, cut);
        let mut inc =
            IncrementalPlan::new(&g0, PartitionTable::src_batch_per_type(32));
        let before = inc.num_tasks();
        for e in cut..g.num_edges() {
            inc.insert(&g, e);
        }
        // Far fewer new tasks than new edges: most edges join existing
        // tasks.
        let grown = inc.num_tasks() - before;
        assert!(
            grown < (g.num_edges() - cut) / 4,
            "grew {grown} tasks for {} edges",
            g.num_edges() - cut
        );
    }

    #[test]
    fn fragmentation_triggers_rebuild() {
        let g = rmat(&RmatParams::standard(150, 2400, 107).with_edge_types(2));
        let cut = 300;
        let g0 = prefix_graph(&g, cut);
        // Tight table: vertex-centric with tiny batches fragments fast
        // under out-of-order insertion.
        let table = PartitionTable::new()
            .exact(AttrKind::DstId, 1)
            .exact(AttrKind::EdgeId, 4);
        let mut inc = IncrementalPlan::new(&g0, table);
        for e in cut..g.num_edges() {
            inc.insert(&g, e);
        }
        let frag = inc.fragmentation(&g);
        let rebuilt = inc.rebuild_if_fragmented(&g, 1.05);
        if frag > 1.05 {
            assert!(rebuilt);
            assert!(inc.fragmentation(&g) <= 1.0 + 1e-9);
            assert_eq!(inc.inserted_since_rebuild(), 0);
        }
        check_invariants(&g, &inc.snapshot(&g));
    }

    #[test]
    fn incremental_matches_fresh_partition_quality_approximately() {
        let g = rmat(&RmatParams::standard(250, 4000, 109).with_edge_types(4));
        let cut = 2000;
        let g0 = prefix_graph(&g, cut);
        let table = PartitionTable::src_batch_per_type(16);
        let mut inc = IncrementalPlan::new(&g0, table.clone());
        for e in cut..g.num_edges() {
            inc.insert(&g, e);
        }
        let fresh = partition(&g, &table);
        let ratio = inc.num_tasks() as f64 / fresh.num_tasks() as f64;
        assert!(
            ratio < 2.0,
            "incremental {} vs fresh {} tasks",
            inc.num_tasks(),
            fresh.num_tasks()
        );
    }
}
