//! Incremental gTask maintenance for evolving graphs.
//!
//! The paper notes: "WiseGraph is unable to tackle the situation where
//! graph structure changes dramatically at every iteration" (§6.3) — its
//! answer for sampled training is plan *reuse*. This module extends that to
//! streaming edge insertions *and deletions* over a fixed universe graph:
//! the graph holds every edge that ever existed, and the plan covers the
//! *live* subset. New edges are admitted into existing gTasks when the
//! table's restrictions still hold, spilled into fresh tasks otherwise;
//! deleted edges are pulled out of their task (leaving a tombstone when the
//! task empties); and the plan is rebuilt from scratch — over the live set
//! only, via [`partition_edges`] — once fragmentation degrades beyond a
//! threshold. Per-update cost is O(candidate tasks) for inserts and
//! O(task size · restrictions) for deletes, amortized far below the
//! O(E log E) full partition.
//!
//! All internal indices are `BTreeMap`/`BTreeSet`, so the repair order —
//! and therefore the repaired plan — is a deterministic function of the
//! update sequence (the hermetic scanner forbids iteration over hash
//! maps for exactly this reason).

use crate::partition::partition_edges;
use crate::restriction::PartitionTable;
use crate::task::{GTask, PartitionPlan};
use std::collections::{BTreeMap, BTreeSet};
use wisegraph_graph::{AttrKind, Graph};

/// A batch of edge updates against the universe graph: ids to add to and
/// remove from the live set. Deletes apply before inserts, so a delta may
/// move an edge out and back in one step.
#[derive(Debug, Clone, Default)]
pub struct GraphDelta {
    /// Edge ids to admit into the plan.
    pub insert: Vec<usize>,
    /// Edge ids to remove from the plan.
    pub delete: Vec<usize>,
}

impl GraphDelta {
    /// A delta that only inserts.
    pub fn inserting(insert: Vec<usize>) -> Self {
        Self {
            insert,
            delete: Vec::new(),
        }
    }

    /// A delta that only deletes.
    pub fn deleting(delete: Vec<usize>) -> Self {
        Self {
            insert: Vec::new(),
            delete,
        }
    }

    /// True when the delta carries no updates.
    pub fn is_empty(&self) -> bool {
        self.insert.is_empty() && self.delete.is_empty()
    }
}

/// What a [`IncrementalPlan::apply`] call actually changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Edges newly admitted into the live set.
    pub inserted: usize,
    /// Edges removed from the live set.
    pub removed: usize,
    /// Updates that were no-ops (inserting a live edge, deleting a dead
    /// one).
    pub ignored: usize,
}

/// A partition plan that admits streamed edge insertions and deletions.
#[derive(Debug)]
pub struct IncrementalPlan {
    table: PartitionTable,
    /// Task slots; a slot with no edges is a tombstone left by deletions
    /// and is skipped by [`snapshot`](Self::snapshot) and the counts.
    tasks: Vec<TaskState>,
    /// Candidate-task index: first exact attribute's value → tasks that
    /// already contain it (value-reuse admission).
    by_key: BTreeMap<u64, Vec<usize>>,
    /// Open-task index: the tuple of `Exact(1)` attribute values → tasks
    /// with spare capacity on the looser attributes (spare-capacity
    /// admission). Entries are pruned lazily when tasks fill up.
    open_by_tight: BTreeMap<Vec<u64>, Vec<usize>>,
    /// Live-edge index: edge id → slot of the task covering it.
    task_of: BTreeMap<usize, usize>,
    /// Non-tombstone task count.
    live_tasks: usize,
    /// Edges admitted since the last full rebuild.
    inserted_since_rebuild: usize,
    /// Edges removed since the last full rebuild.
    removed_since_rebuild: usize,
    /// Task count right after the last full rebuild.
    tasks_at_rebuild: usize,
}

#[derive(Debug)]
struct TaskState {
    edges: Vec<usize>,
    /// Distinct values per `Exact` attribute.
    uniq: Vec<BTreeSet<u64>>,
}

impl IncrementalPlan {
    /// Builds the initial plan over *all* edges of `g` with the greedy
    /// partitioner.
    pub fn new(g: &Graph, table: PartitionTable) -> Self {
        let live: Vec<usize> = (0..g.num_edges()).collect();
        Self::new_over(g, table, &live)
    }

    /// Builds the initial plan over the given live subset of `g`'s edges.
    pub fn new_over(g: &Graph, table: PartitionTable, live: &[usize]) -> Self {
        let plan = partition_edges(g, &table, live);
        let mut this = Self {
            table,
            tasks: Vec::new(),
            by_key: BTreeMap::new(),
            open_by_tight: BTreeMap::new(),
            task_of: BTreeMap::new(),
            live_tasks: 0,
            inserted_since_rebuild: 0,
            removed_since_rebuild: 0,
            tasks_at_rebuild: 0,
        };
        this.adopt(g, plan);
        this
    }

    /// The table this plan maintains.
    pub fn table(&self) -> &PartitionTable {
        &self.table
    }

    fn exact_attrs(&self) -> Vec<(AttrKind, u64)> {
        self.table.exact_attrs()
    }

    fn adopt(&mut self, g: &Graph, plan: PartitionPlan) {
        let exact = self.exact_attrs();
        self.tasks = plan
            .tasks
            .into_iter()
            .map(|t| {
                let uniq = exact
                    .iter()
                    .map(|&(attr, _)| {
                        t.edges.iter().map(|&e| g.edge_attr(attr, e)).collect()
                    })
                    .collect();
                TaskState {
                    edges: t.edges,
                    uniq,
                }
            })
            .collect();
        self.by_key.clear();
        self.open_by_tight.clear();
        self.task_of.clear();
        for (i, t) in self.tasks.iter().enumerate() {
            if let Some(first) = t.uniq.first() {
                for &v in first {
                    self.by_key.entry(v).or_default().push(i);
                }
            }
            for &e in &t.edges {
                self.task_of.insert(e, i);
            }
            let has_spare = exact
                .iter()
                .enumerate()
                .any(|(j, &(_, bound))| (t.uniq[j].len() as u64) < bound);
            if has_spare {
                let tight = Self::tight_key_of(&exact, &t.uniq);
                if let Some(tight) = tight {
                    self.open_by_tight.entry(tight).or_default().push(i);
                }
            }
        }
        self.live_tasks = self.tasks.len();
        self.inserted_since_rebuild = 0;
        self.removed_since_rebuild = 0;
        self.tasks_at_rebuild = self.tasks.len();
    }

    /// The tuple of `Exact(1)` attribute values of a task (`None` if such
    /// an attribute has no value yet — cannot happen for nonempty tasks).
    fn tight_key_of(
        exact: &[(AttrKind, u64)],
        uniq: &[BTreeSet<u64>],
    ) -> Option<Vec<u64>> {
        exact
            .iter()
            .enumerate()
            .filter(|&(_, &(_, bound))| bound == 1)
            .map(|(j, _)| uniq[j].iter().next().copied())
            .collect()
    }

    /// Admits edge `e` of `g` into an existing task when every `Exact`
    /// bound still holds, otherwise into a fresh task. Returns `false`
    /// without changing anything when `e` is already live.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds for `g`.
    pub fn insert(&mut self, g: &Graph, e: usize) -> bool {
        assert!(e < g.num_edges(), "edge {e} out of bounds");
        if self.task_of.contains_key(&e) {
            return false;
        }
        let exact = self.exact_attrs();
        let values: Vec<u64> = exact.iter().map(|&(a, _)| g.edge_attr(a, e)).collect();
        let fits = |t: &TaskState| -> bool {
            exact.iter().enumerate().all(|(i, &(_, bound))| {
                let set = &t.uniq[i];
                set.contains(&values[i]) || (set.len() as u64) < bound
            })
        };
        // Tier 1: tasks already containing the first restricted value.
        let tier1: Vec<usize> = match values.first() {
            Some(&v0) => self.by_key.get(&v0).cloned().unwrap_or_default(),
            None => (0..self.tasks.len().min(1)).collect(),
        };
        // Tier 2: open tasks matching the tight (bound-1) attribute values.
        let tight: Vec<u64> = exact
            .iter()
            .enumerate()
            .filter(|&(_, &(_, bound))| bound == 1)
            .map(|(i, _)| values[i])
            .collect();
        let tier2: Vec<usize> = self
            .open_by_tight
            .get(&tight)
            .cloned()
            .unwrap_or_default();
        for &ti in tier1.iter().chain(tier2.iter()) {
            if !fits(&self.tasks[ti]) {
                continue;
            }
            let was_tombstone = self.tasks[ti].edges.is_empty();
            let t = &mut self.tasks[ti];
            t.edges.push(e);
            for (i, &v) in values.iter().enumerate() {
                let newly = t.uniq[i].insert(v);
                if newly && i == 0 {
                    self.by_key.entry(v).or_default().push(ti);
                }
            }
            // Lazily close the task if every bound is saturated.
            let full = exact
                .iter()
                .enumerate()
                .all(|(i, &(_, bound))| (self.tasks[ti].uniq[i].len() as u64) >= bound);
            if full {
                if let Some(list) = self.open_by_tight.get_mut(&tight) {
                    list.retain(|&x| x != ti);
                }
            }
            self.task_of.insert(e, ti);
            if was_tombstone {
                self.live_tasks += 1;
            }
            self.inserted_since_rebuild += 1;
            return true;
        }
        // Fresh task.
        let uniq: Vec<BTreeSet<u64>> =
            values.iter().map(|&v| BTreeSet::from([v])).collect();
        self.tasks.push(TaskState {
            edges: vec![e],
            uniq,
        });
        let ti = self.tasks.len() - 1;
        if let Some(&v0) = values.first() {
            self.by_key.entry(v0).or_default().push(ti);
        }
        self.open_by_tight.entry(tight).or_default().push(ti);
        self.task_of.insert(e, ti);
        self.live_tasks += 1;
        self.inserted_since_rebuild += 1;
        true
    }

    /// Removes edge `e` from the plan, repairing only the task that held
    /// it. Returns `false` when `e` is not live.
    ///
    /// The task's distinct-value sets are recomputed from its remaining
    /// edges; dropped first-attribute values leave the `by_key` index and a
    /// previously saturated task re-opens. A task that empties becomes a
    /// tombstone (skipped by [`snapshot`](Self::snapshot)); its slot may be
    /// re-used by a later insertion. `Exact(1)` attribute values cannot
    /// change while the task is nonempty (every edge in it shares them), so
    /// the open-task key stays stable.
    pub fn remove(&mut self, g: &Graph, e: usize) -> bool {
        let Some(ti) = self.task_of.remove(&e) else {
            return false;
        };
        let exact = self.exact_attrs();
        let was_full = exact
            .iter()
            .enumerate()
            .all(|(i, &(_, bound))| (self.tasks[ti].uniq[i].len() as u64) >= bound);
        let tight = Self::tight_key_of(&exact, &self.tasks[ti].uniq);
        let old_first: Option<BTreeSet<u64>> = self.tasks[ti].uniq.first().cloned();

        let t = &mut self.tasks[ti];
        t.edges.retain(|&x| x != e);
        for (i, &(attr, _)) in exact.iter().enumerate() {
            t.uniq[i] = t.edges.iter().map(|&x| g.edge_attr(attr, x)).collect();
        }
        let now_empty = t.edges.is_empty();

        // Values the first exact attribute lost → drop from by_key.
        if let (Some(old), Some(new)) = (old_first, self.tasks[ti].uniq.first()) {
            for v in old.difference(new) {
                if let Some(list) = self.by_key.get_mut(v) {
                    list.retain(|&x| x != ti);
                    if list.is_empty() {
                        self.by_key.remove(v);
                    }
                }
            }
        }

        if let Some(tight) = tight {
            if now_empty {
                // Tombstone: no longer a candidate for spare-capacity
                // admission under its old key.
                if let Some(list) = self.open_by_tight.get_mut(&tight) {
                    list.retain(|&x| x != ti);
                    if list.is_empty() {
                        self.open_by_tight.remove(&tight);
                    }
                }
            } else if was_full {
                // The task regained spare capacity.
                let list = self.open_by_tight.entry(tight).or_default();
                if !list.contains(&ti) {
                    list.push(ti);
                }
            }
        }

        if now_empty {
            self.live_tasks -= 1;
        }
        self.removed_since_rebuild += 1;
        true
    }

    /// Applies a batch of updates: deletes first, then inserts. Returns
    /// what actually changed; updates that are already reflected (inserting
    /// a live edge, deleting a dead one) are counted as ignored.
    pub fn apply(&mut self, g: &Graph, delta: &GraphDelta) -> DeltaStats {
        let mut sp = wisegraph_obs::span!(
            "gtask.incremental.apply",
            inserts = delta.insert.len(),
            deletes = delta.delete.len()
        );
        let mut stats = DeltaStats::default();
        for &e in &delta.delete {
            if self.remove(g, e) {
                stats.removed += 1;
            } else {
                stats.ignored += 1;
            }
        }
        for &e in &delta.insert {
            if self.insert(g, e) {
                stats.inserted += 1;
            } else {
                stats.ignored += 1;
            }
        }
        sp.arg("tasks", self.live_tasks);
        stats
    }

    /// The live edge ids, ascending.
    pub fn live_edges(&self) -> Vec<usize> {
        self.task_of.keys().copied().collect()
    }

    /// Number of live edges.
    pub fn num_live_edges(&self) -> usize {
        self.task_of.len()
    }

    /// Fragmentation: current tasks relative to what a fresh partition of
    /// the same live edges would produce (1.0 = as good as fresh).
    pub fn fragmentation(&self, g: &Graph) -> f64 {
        let live = self.live_edges();
        let fresh = partition_edges(g, &self.table, &live).num_tasks().max(1);
        self.live_tasks as f64 / fresh as f64
    }

    /// Rebuilds from scratch over the live set when fragmentation exceeds
    /// `threshold` (e.g. 1.5 = 50% more tasks than a fresh partition).
    /// Returns whether a rebuild happened.
    pub fn rebuild_if_fragmented(&mut self, g: &Graph, threshold: f64) -> bool {
        if self.fragmentation(g) > threshold {
            let live = self.live_edges();
            let plan = partition_edges(g, &self.table, &live);
            self.adopt(g, plan);
            true
        } else {
            false
        }
    }

    /// Snapshots the current live tasks as a [`PartitionPlan`], skipping
    /// tombstones. Task order is slot order, which is deterministic for a
    /// given update sequence.
    pub fn snapshot(&self, g: &Graph) -> PartitionPlan {
        let exact = self.exact_attrs();
        let tasks = self
            .tasks
            .iter()
            .filter(|t| !t.edges.is_empty())
            .map(|t| {
                let mut uniq = BTreeMap::new();
                for (i, &(attr, _)) in exact.iter().enumerate() {
                    uniq.insert(attr, t.uniq[i].len());
                }
                let _ = g;
                GTask {
                    edges: t.edges.clone(),
                    uniq,
                }
            })
            .collect();
        PartitionPlan {
            table: self.table.clone(),
            tasks,
        }
    }

    /// Number of live (non-tombstone) tasks currently held.
    pub fn num_tasks(&self) -> usize {
        self.live_tasks
    }

    /// Edges admitted since the last rebuild.
    pub fn inserted_since_rebuild(&self) -> usize {
        self.inserted_since_rebuild
    }

    /// Edges removed since the last rebuild.
    pub fn removed_since_rebuild(&self) -> usize {
        self.removed_since_rebuild
    }

    /// Task count right after the last rebuild.
    pub fn tasks_at_rebuild(&self) -> usize {
        self.tasks_at_rebuild
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_graph::generate::{rmat, RmatParams};

    /// Splits a graph into a prefix graph and the list of later edges.
    fn prefix_graph(g: &Graph, cut: usize) -> Graph {
        Graph::new(
            g.num_vertices(),
            g.num_edge_types(),
            g.src()[..cut].to_vec(),
            g.dst()[..cut].to_vec(),
            g.etype()[..cut].to_vec(),
        )
    }

    fn check_invariants(g: &Graph, plan: &PartitionPlan) {
        let mut seen = vec![false; g.num_edges()];
        for t in &plan.tasks {
            assert!(!t.edges.is_empty());
            for &e in &t.edges {
                assert!(!seen[e], "edge {e} duplicated");
                seen[e] = true;
            }
            for (attr, bound) in plan.table.exact_attrs() {
                assert!(
                    t.uniq_of(g, attr) as u64 <= bound,
                    "uniq({attr}) exceeds {bound}"
                );
            }
        }
        assert!(seen.into_iter().all(|s| s), "every edge covered");
    }

    /// Like `check_invariants` but against an explicit live set.
    fn check_covers_exactly(g: &Graph, plan: &PartitionPlan, live: &[usize]) {
        let mut seen = vec![false; g.num_edges()];
        for t in &plan.tasks {
            assert!(!t.edges.is_empty());
            for &e in &t.edges {
                assert!(!seen[e], "edge {e} duplicated");
                seen[e] = true;
            }
            for (attr, bound) in plan.table.exact_attrs() {
                assert!(t.uniq_of(g, attr) as u64 <= bound);
            }
        }
        let want: std::collections::BTreeSet<usize> = live.iter().copied().collect();
        for (e, &s) in seen.iter().enumerate() {
            assert_eq!(s, want.contains(&e), "edge {e} coverage mismatch");
        }
    }

    #[test]
    fn streaming_insertions_preserve_invariants() {
        let g = rmat(&RmatParams::standard(300, 4000, 101).with_edge_types(4));
        let cut = 2000;
        let g0 = prefix_graph(&g, cut);
        let table = PartitionTable::src_batch_per_type(16);
        let mut inc = IncrementalPlan::new(&g0, table);
        // Note: degrees change as edges arrive, so the stream uses the
        // final graph for attribute lookups (id/type attributes are
        // stable; this table restricts only stable attributes).
        for e in cut..g.num_edges() {
            assert!(inc.insert(&g, e));
        }
        let plan = inc.snapshot(&g);
        check_invariants(&g, &plan);
    }

    #[test]
    fn admission_reuses_existing_tasks() {
        let g = rmat(&RmatParams::standard(200, 3000, 103).with_edge_types(2));
        let cut = 1500;
        let g0 = prefix_graph(&g, cut);
        let mut inc =
            IncrementalPlan::new(&g0, PartitionTable::src_batch_per_type(32));
        let before = inc.num_tasks();
        for e in cut..g.num_edges() {
            inc.insert(&g, e);
        }
        // Far fewer new tasks than new edges: most edges join existing
        // tasks.
        let grown = inc.num_tasks() - before;
        assert!(
            grown < (g.num_edges() - cut) / 4,
            "grew {grown} tasks for {} edges",
            g.num_edges() - cut
        );
    }

    #[test]
    fn fragmentation_triggers_rebuild() {
        let g = rmat(&RmatParams::standard(150, 2400, 107).with_edge_types(2));
        let cut = 300;
        let g0 = prefix_graph(&g, cut);
        // Tight table: vertex-centric with tiny batches fragments fast
        // under out-of-order insertion.
        let table = PartitionTable::new()
            .exact(AttrKind::DstId, 1)
            .exact(AttrKind::EdgeId, 4);
        let mut inc = IncrementalPlan::new(&g0, table);
        for e in cut..g.num_edges() {
            inc.insert(&g, e);
        }
        let frag = inc.fragmentation(&g);
        let rebuilt = inc.rebuild_if_fragmented(&g, 1.05);
        if frag > 1.05 {
            assert!(rebuilt);
            assert!(inc.fragmentation(&g) <= 1.0 + 1e-9);
            assert_eq!(inc.inserted_since_rebuild(), 0);
        }
        check_invariants(&g, &inc.snapshot(&g));
    }

    #[test]
    fn incremental_matches_fresh_partition_quality_approximately() {
        let g = rmat(&RmatParams::standard(250, 4000, 109).with_edge_types(4));
        let cut = 2000;
        let g0 = prefix_graph(&g, cut);
        let table = PartitionTable::src_batch_per_type(16);
        let mut inc = IncrementalPlan::new(&g0, table.clone());
        for e in cut..g.num_edges() {
            inc.insert(&g, e);
        }
        let fresh = partition_edges(&g, &table, &inc.live_edges());
        let ratio = inc.num_tasks() as f64 / fresh.num_tasks() as f64;
        assert!(
            ratio < 2.0,
            "incremental {} vs fresh {} tasks",
            inc.num_tasks(),
            fresh.num_tasks()
        );
    }

    #[test]
    fn removal_repairs_only_the_affected_task() {
        let g = rmat(&RmatParams::standard(200, 2500, 113).with_edge_types(4));
        let table = PartitionTable::src_batch_per_type(8);
        let mut inc = IncrementalPlan::new(&g, table);
        // Delete every 7th edge.
        let doomed: Vec<usize> = (0..g.num_edges()).step_by(7).collect();
        for &e in &doomed {
            assert!(inc.remove(&g, e));
            assert!(!inc.remove(&g, e), "double delete must be a no-op");
        }
        let live = inc.live_edges();
        assert_eq!(live.len(), g.num_edges() - doomed.len());
        check_covers_exactly(&g, &inc.snapshot(&g), &live);
    }

    #[test]
    fn delete_then_reinsert_restores_coverage() {
        let g = rmat(&RmatParams::standard(120, 1500, 117).with_edge_types(2));
        let mut inc = IncrementalPlan::new(&g, PartitionTable::dst_and_type());
        let delta = GraphDelta::deleting((0..300).collect());
        let stats = inc.apply(&g, &delta);
        assert_eq!(stats.removed, 300);
        let back = GraphDelta::inserting((0..300).collect());
        let stats = inc.apply(&g, &back);
        assert_eq!(stats.inserted, 300);
        assert_eq!(inc.num_live_edges(), g.num_edges());
        check_invariants(&g, &inc.snapshot(&g));
    }

    #[test]
    fn tombstoned_slot_leaves_no_phantom_task() {
        let g = rmat(&RmatParams::standard(80, 600, 119).with_edge_types(2));
        let mut inc = IncrementalPlan::new(&g, PartitionTable::vertex_centric());
        let before = inc.num_tasks();
        // Delete all edges pointing at destination of edge 0 → its task
        // empties and must not appear in the snapshot.
        let dst0 = g.dst()[0];
        let doomed: Vec<usize> =
            (0..g.num_edges()).filter(|&e| g.dst()[e] == dst0).collect();
        for &e in &doomed {
            inc.remove(&g, e);
        }
        assert_eq!(inc.num_tasks(), before - 1);
        let plan = inc.snapshot(&g);
        assert_eq!(plan.num_tasks(), before - 1);
        assert!(plan.tasks.iter().all(|t| !t.edges.is_empty()));
    }
}
