//! The graph partition table and its restrictions (paper §4.2, Figure 6).

use std::collections::BTreeMap;
use std::fmt;
use wisegraph_graph::AttrKind;

/// A restriction on the number of unique values of one edge attribute
/// within a gTask.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Restriction {
    /// `uniq(attr) = k`: at most `k` distinct values per gTask.
    Exact(u64),
    /// `uniq(attr) = min`: prefer gTasks with few distinct values (drives
    /// the sort order but does not bound task size).
    Min,
    /// No restriction.
    Free,
}

/// The graph partition table: one restriction per edge attribute.
///
/// Attributes not mentioned are unrestricted (`Free`). Iteration order over
/// entries is the insertion-independent `AttrKind` order, which also defines
/// the sort-key order of the greedy partitioner.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartitionTable {
    entries: BTreeMap<AttrKind, Restriction>,
}

impl PartitionTable {
    /// Creates an empty (fully unrestricted) table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `uniq(attr) = k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn exact(mut self, attr: AttrKind, k: u64) -> Self {
        assert!(k > 0, "uniq(attr) = 0 is meaningless");
        self.entries.insert(attr, Restriction::Exact(k));
        self
    }

    /// Adds `uniq(attr) = min`.
    pub fn min(mut self, attr: AttrKind) -> Self {
        self.entries.insert(attr, Restriction::Min);
        self
    }

    /// Looks up the restriction for an attribute (`Free` if absent).
    pub fn restriction(&self, attr: AttrKind) -> Restriction {
        self.entries
            .get(&attr)
            .copied()
            .unwrap_or(Restriction::Free)
    }

    /// Attributes with an `Exact` bound, in canonical order.
    pub fn exact_attrs(&self) -> Vec<(AttrKind, u64)> {
        self.entries
            .iter()
            .filter_map(|(&a, &r)| match r {
                Restriction::Exact(k) => Some((a, k)),
                _ => None,
            })
            .collect()
    }

    /// Attributes with a `Min` preference, in canonical order.
    pub fn min_attrs(&self) -> Vec<AttrKind> {
        self.entries
            .iter()
            .filter_map(|(&a, &r)| matches!(r, Restriction::Min).then_some(a))
            .collect()
    }

    /// All restricted attributes (exact or min).
    pub fn restricted_attrs(&self) -> Vec<AttrKind> {
        self.entries.keys().copied().collect()
    }

    /// Returns `true` when no attribute is restricted.
    pub fn is_unrestricted(&self) -> bool {
        self.entries.is_empty()
    }

    // ---- The classic plans of Figure 7 as special cases --------------

    /// Figure 7(b): vertex-centric, `uniq(dst-id) = 1`.
    pub fn vertex_centric() -> Self {
        Self::new().exact(AttrKind::DstId, 1)
    }

    /// Figure 7(e): edge-centric, `uniq(edge-id) = 1`.
    pub fn edge_centric() -> Self {
        Self::new().exact(AttrKind::EdgeId, 1)
    }

    /// Figure 7(f): 2-D partition, `uniq(dst-id) = k & uniq(src-id) = k`.
    pub fn two_d(k: u64) -> Self {
        Self::new().exact(AttrKind::DstId, k).exact(AttrKind::SrcId, k)
    }

    /// Figure 7(d): per-destination, per-type,
    /// `uniq(dst-id) = 1 & uniq(edge-type) = 1`.
    pub fn dst_and_type() -> Self {
        Self::new()
            .exact(AttrKind::DstId, 1)
            .exact(AttrKind::EdgeType, 1)
    }

    /// Figure 7(g): destination-degree grouping, `uniq(dst-degree) = 1`.
    pub fn dst_degree_grouped() -> Self {
        Self::new().exact(AttrKind::DstDegree, 1)
    }

    /// Figure 7(h): `uniq(dst-id) = k & uniq(dst-degree) = min` — pads
    /// destinations with similar degrees together for high parallelism.
    pub fn dst_batch_min_degree(k: u64) -> Self {
        Self::new()
            .exact(AttrKind::DstId, k)
            .min(AttrKind::DstDegree)
    }

    /// RGCN-style source batching: `uniq(src-id) = k & uniq(edge-type) = 1`
    /// (the gTask of Figure 18a).
    pub fn src_batch_per_type(k: u64) -> Self {
        Self::new()
            .exact(AttrKind::SrcId, k)
            .exact(AttrKind::EdgeType, 1)
    }

    /// Edge-count batching: `uniq(edge-id) = k` (bounded workload per task,
    /// the plan WiseGraph finds for SAGE/GCN in Figure 15e).
    pub fn edge_batch(k: u64) -> Self {
        Self::new().exact(AttrKind::EdgeId, k)
    }
}

impl fmt::Display for PartitionTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return f.write_str("unrestricted");
        }
        let parts: Vec<String> = self
            .entries
            .iter()
            .map(|(a, r)| match r {
                Restriction::Exact(k) => format!("uniq({a})={k}"),
                Restriction::Min => format!("uniq({a})=min"),
                Restriction::Free => format!("uniq({a})=free"),
            })
            .collect();
        f.write_str(&parts.join(" & "))
    }
}

/// Enumerates candidate partition tables for a model whose DFG uses the
/// given indexing attributes (paper §4: restrictions are applied to the
/// identified indexing attributes, plus inherent degree attributes).
///
/// `batch_sizes` parameterizes the `Exact(k)` variants (the paper sweeps
/// powers of two, Figure 18).
pub fn enumerate_tables(
    indexing: &[AttrKind],
    batch_sizes: &[u64],
) -> Vec<PartitionTable> {
    let mut out = vec![
        PartitionTable::vertex_centric(),
        PartitionTable::edge_centric(),
    ];
    for &k in batch_sizes {
        out.push(PartitionTable::edge_batch(k));
        out.push(PartitionTable::two_d(k));
        out.push(PartitionTable::dst_batch_min_degree(k));
        if indexing.contains(&AttrKind::EdgeType) {
            out.push(PartitionTable::src_batch_per_type(k));
            out.push(
                PartitionTable::new()
                    .exact(AttrKind::DstId, k)
                    .exact(AttrKind::EdgeType, 1),
            );
        }
        if indexing.contains(&AttrKind::SrcId) {
            out.push(PartitionTable::new().exact(AttrKind::SrcId, k));
        }
    }
    if indexing.contains(&AttrKind::EdgeType) {
        out.push(PartitionTable::dst_and_type());
    }
    out.push(PartitionTable::dst_degree_grouped());
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(
            PartitionTable::vertex_centric().to_string(),
            "uniq(dst-id)=1"
        );
        assert_eq!(
            PartitionTable::dst_batch_min_degree(3).to_string(),
            "uniq(dst-id)=3 & uniq(dst-degree)=min"
        );
        assert_eq!(PartitionTable::new().to_string(), "unrestricted");
    }

    #[test]
    fn lookup_defaults_to_free() {
        let t = PartitionTable::vertex_centric();
        assert_eq!(t.restriction(AttrKind::DstId), Restriction::Exact(1));
        assert_eq!(t.restriction(AttrKind::SrcId), Restriction::Free);
    }

    #[test]
    fn exact_and_min_attr_lists() {
        let t = PartitionTable::dst_batch_min_degree(4);
        assert_eq!(t.exact_attrs(), vec![(AttrKind::DstId, 4)]);
        assert_eq!(t.min_attrs(), vec![AttrKind::DstDegree]);
        assert_eq!(
            t.restricted_attrs(),
            vec![AttrKind::DstId, AttrKind::DstDegree]
        );
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn exact_zero_rejected() {
        let _ = PartitionTable::new().exact(AttrKind::DstId, 0);
    }

    #[test]
    fn enumerate_covers_classics_and_model_specific() {
        let tables = enumerate_tables(
            &[AttrKind::SrcId, AttrKind::DstId, AttrKind::EdgeType],
            &[32],
        );
        assert!(tables.contains(&PartitionTable::vertex_centric()));
        assert!(tables.contains(&PartitionTable::edge_centric()));
        assert!(tables.contains(&PartitionTable::src_batch_per_type(32)));
        assert!(tables.contains(&PartitionTable::dst_and_type()));
        // Without edge-type indexing, type-restricted plans disappear.
        let untyped = enumerate_tables(&[AttrKind::SrcId, AttrKind::DstId], &[32]);
        assert!(!untyped.contains(&PartitionTable::dst_and_type()));
        assert!(untyped.len() < tables.len());
    }
}
