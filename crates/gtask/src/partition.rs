//! The greedy sort-and-scan graph partitioner (paper §4.2).
//!
//! "We first sort the edges of the graph according to edge attributes
//! involved in the restrictions. Then we scan these edges in order. If a
//! restriction condition is satisfied after including the current edge, we
//! add it to the current gTask's graph data. If any restrictions are not
//! satisfied after adding the current edge, we stop the graph partition for
//! the current gTask and start a new gTask."
//!
//! Sort-key order: `Min` attributes first (grouping similar values so their
//! unique count per task stays small), then `Exact` attributes from the
//! tightest bound to the loosest (so e.g. `uniq(edge-type)=1 &
//! uniq(src-id)=K` groups by type before batching sources — otherwise every
//! type change would cut a batch short), then the edge id for stability.
//! The scan enforces only `Exact` bounds.

use crate::restriction::PartitionTable;
use crate::task::{GTask, PartitionPlan};
use std::collections::{BTreeMap, HashSet};
use wisegraph_graph::{AttrKind, Graph};

/// Partitions the graph into gTasks according to the table.
///
/// Complexity: one O(E log E) sort plus an O(E · R) scan where R is the
/// number of `Exact` restrictions — the light-weight method the paper uses
/// so plans can be regenerated per candidate table.
pub fn partition(g: &Graph, table: &PartitionTable) -> PartitionPlan {
    let all: Vec<usize> = (0..g.num_edges()).collect();
    partition_edges(g, table, &all)
}

/// Partitions a subset of the graph's edges into gTasks.
///
/// Tasks reference the *original* edge ids from `edges`, so the resulting
/// plan executes against the full graph while covering only the given live
/// set. This is the rebuild primitive of the incremental/delta path
/// (`IncrementalPlan`) and the from-scratch reference the repair-equivalence
/// pass (`C001`) compares against; `partition` is the whole-graph special
/// case. Duplicate ids in `edges` produce duplicate coverage — callers pass
/// a set.
pub fn partition_edges(g: &Graph, table: &PartitionTable, edges: &[usize]) -> PartitionPlan {
    let mut sp = wisegraph_obs::span!("gtask.partition", edges = edges.len());
    let exact = table.exact_attrs();
    let min_attrs = table.min_attrs();

    // Sort keys: min attrs, then exact attrs tightest-bound first, then
    // edge id.
    let mut exact_sorted = exact.clone();
    exact_sorted.sort_by_key(|&(_, k)| k);
    let mut key_attrs: Vec<AttrKind> = Vec::new();
    key_attrs.extend(&min_attrs);
    key_attrs.extend(exact_sorted.iter().map(|&(a, _)| a));

    // Always sort (even with no key attrs, by edge id) so the result is a
    // pure function of the edge *set*, independent of caller order.
    let mut order: Vec<usize> = edges.to_vec();
    if key_attrs.is_empty() {
        order.sort_unstable();
    } else {
        order.sort_by(|&a, &b| {
            for &attr in &key_attrs {
                let (va, vb) = (g.edge_attr(attr, a), g.edge_attr(attr, b));
                if va != vb {
                    return va.cmp(&vb);
                }
            }
            a.cmp(&b)
        });
    }

    let mut tasks: Vec<GTask> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    let mut seen: Vec<HashSet<u64>> = exact.iter().map(|_| HashSet::new()).collect();

    let close = |current: &mut Vec<usize>,
                 seen: &mut Vec<HashSet<u64>>,
                 tasks: &mut Vec<GTask>| {
        if current.is_empty() {
            return;
        }
        let mut uniq = BTreeMap::new();
        for (i, &(attr, _)) in exact.iter().enumerate() {
            uniq.insert(attr, seen[i].len());
        }
        // Track min attrs' achieved uniqueness too (cheap: recompute).
        for &attr in &min_attrs {
            let mut vals: Vec<u64> =
                current.iter().map(|&e| g.edge_attr(attr, e)).collect();
            vals.sort_unstable();
            vals.dedup();
            uniq.insert(attr, vals.len());
        }
        tasks.push(GTask {
            edges: std::mem::take(current),
            uniq,
        });
        for s in seen.iter_mut() {
            s.clear();
        }
    };

    for &e in &order {
        // Would adding `e` violate any Exact bound?
        let violates = exact.iter().enumerate().any(|(i, &(attr, k))| {
            let v = g.edge_attr(attr, e);
            !seen[i].contains(&v) && seen[i].len() as u64 + 1 > k
        });
        if violates {
            close(&mut current, &mut seen, &mut tasks);
        }
        for (i, &(attr, _)) in exact.iter().enumerate() {
            seen[i].insert(g.edge_attr(attr, e));
        }
        current.push(e);
    }
    close(&mut current, &mut seen, &mut tasks);

    sp.arg("tasks", tasks.len());
    PartitionPlan {
        table: table.clone(),
        tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_graph::generate::{rmat, RmatParams};
    use wisegraph_testkit::prelude::*;

    fn paper_graph() -> Graph {
        Graph::new(
            5,
            2,
            vec![0, 1, 0, 1, 2, 2, 3, 4, 3, 4, 0],
            vec![0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 4],
            vec![0, 0, 0, 0, 1, 0, 1, 1, 1, 1, 0],
        )
    }

    fn covers_all_edges_once(plan: &PartitionPlan, num_edges: usize) -> bool {
        let mut seen = vec![false; num_edges];
        for t in &plan.tasks {
            for &e in &t.edges {
                if seen[e] {
                    return false;
                }
                seen[e] = true;
            }
        }
        seen.into_iter().all(|s| s)
    }

    #[test]
    fn vertex_centric_one_task_per_destination() {
        let g = paper_graph();
        let plan = partition(&g, &PartitionTable::vertex_centric());
        // 5 destinations, all with in-edges → 5 tasks.
        assert_eq!(plan.num_tasks(), 5);
        assert!(covers_all_edges_once(&plan, g.num_edges()));
        for t in &plan.tasks {
            assert_eq!(t.uniq_of(&g, AttrKind::DstId), 1);
        }
    }

    #[test]
    fn edge_centric_one_task_per_edge() {
        let g = paper_graph();
        let plan = partition(&g, &PartitionTable::edge_centric());
        assert_eq!(plan.num_tasks(), g.num_edges());
        assert!(plan.tasks.iter().all(|t| t.num_edges() == 1));
    }

    #[test]
    fn dst_and_type_partition_matches_figure7d() {
        let g = paper_graph();
        let plan = partition(&g, &PartitionTable::dst_and_type());
        assert!(covers_all_edges_once(&plan, g.num_edges()));
        for t in &plan.tasks {
            assert_eq!(t.uniq_of(&g, AttrKind::DstId), 1);
            assert_eq!(t.uniq_of(&g, AttrKind::EdgeType), 1);
        }
        // Figure 7(d): destinations 1 and 2 each split into two tasks
        // (types a and b); 0, 3, 4 are single-type → 7 tasks total.
        assert_eq!(plan.num_tasks(), 7);
    }

    #[test]
    fn dst_degree_grouping_matches_figure7g() {
        let g = paper_graph();
        let plan = partition(&g, &PartitionTable::dst_degree_grouped());
        for t in &plan.tasks {
            assert_eq!(t.uniq_of(&g, AttrKind::DstDegree), 1);
        }
        // In-degrees are [2, 3, 3, 2, 1] → three distinct degrees → 3 tasks.
        assert_eq!(plan.num_tasks(), 3);
    }

    #[test]
    fn min_restriction_groups_similar_degrees() {
        let g = paper_graph();
        let plan = partition(&g, &PartitionTable::dst_batch_min_degree(3));
        assert!(covers_all_edges_once(&plan, g.num_edges()));
        for t in &plan.tasks {
            assert!(t.uniq_of(&g, AttrKind::DstId) <= 3);
        }
        // Sorting by degree first, the K=3 destination groups mix degrees
        // as little as possible: uniq(dst-degree) per task stays ≤ 2 here.
        for t in &plan.tasks {
            assert!(t.uniq_of(&g, AttrKind::DstDegree) <= 2);
        }
    }

    #[test]
    fn src_batch_per_type_bounds_hold() {
        let g = rmat(&RmatParams::standard(128, 2000, 33).with_edge_types(4));
        let plan = partition(&g, &PartitionTable::src_batch_per_type(8));
        assert!(covers_all_edges_once(&plan, g.num_edges()));
        for t in &plan.tasks {
            assert!(t.uniq_of(&g, AttrKind::SrcId) <= 8);
            assert_eq!(t.uniq_of(&g, AttrKind::EdgeType), 1);
        }
    }

    #[test]
    fn two_d_partition_bounds_hold() {
        let g = rmat(&RmatParams::standard(64, 1000, 35));
        let plan = partition(&g, &PartitionTable::two_d(4));
        for t in &plan.tasks {
            assert!(t.uniq_of(&g, AttrKind::DstId) <= 4);
            assert!(t.uniq_of(&g, AttrKind::SrcId) <= 4);
        }
    }

    #[test]
    fn unrestricted_table_yields_single_task() {
        let g = paper_graph();
        let plan = partition(&g, &PartitionTable::new());
        assert_eq!(plan.num_tasks(), 1);
        assert_eq!(plan.tasks[0].num_edges(), g.num_edges());
    }

    #[test]
    fn recorded_uniq_counts_are_correct() {
        let g = rmat(&RmatParams::standard(64, 800, 36).with_edge_types(4));
        let plan = partition(&g, &PartitionTable::src_batch_per_type(8));
        for t in &plan.tasks {
            // The scan-recorded counts must match a fresh recount.
            let recount = |attr: AttrKind| {
                let mut v: Vec<u64> =
                    t.edges.iter().map(|&e| g.edge_attr(attr, e)).collect();
                v.sort_unstable();
                v.dedup();
                v.len()
            };
            assert_eq!(t.uniq[&AttrKind::SrcId], recount(AttrKind::SrcId));
            assert_eq!(t.uniq[&AttrKind::EdgeType], recount(AttrKind::EdgeType));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every plan covers every edge exactly once, and all Exact bounds
        /// hold for every generated task.
        fn partition_invariants(
            seed in 0u64..1000,
            k in 1u64..16,
            table_idx in 0usize..6,
        ) {
            let g = rmat(&RmatParams::standard(96, 700, seed).with_edge_types(3));
            let table = match table_idx {
                0 => PartitionTable::vertex_centric(),
                1 => PartitionTable::edge_centric(),
                2 => PartitionTable::two_d(k),
                3 => PartitionTable::src_batch_per_type(k),
                4 => PartitionTable::dst_batch_min_degree(k),
                _ => PartitionTable::edge_batch(k),
            };
            let plan = partition(&g, &table);
            prop_assert!(covers_all_edges_once(&plan, g.num_edges()));
            for t in &plan.tasks {
                prop_assert!(t.num_edges() > 0);
                for (attr, bound) in table.exact_attrs() {
                    prop_assert!(
                        t.uniq_of(&g, attr) as u64 <= bound,
                        "uniq({attr}) exceeded {bound} in task"
                    );
                }
            }
        }
    }
}
