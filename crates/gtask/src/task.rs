//! gTasks and their data patterns (paper §3, §5.1).

use crate::restriction::PartitionTable;
use std::collections::{BTreeMap, BTreeSet};
use wisegraph_dfg::Binding;
use wisegraph_graph::{AttrKind, Graph};

/// One gTask: a subset of edges plus the unique-value counts the partitioner
/// observed for the table's restricted attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GTask {
    /// Original edge ids, in partition (sorted) order.
    pub edges: Vec<usize>,
    /// `uniq(attr)` within this task, for every restricted attribute.
    pub uniq: BTreeMap<AttrKind, usize>,
}

impl GTask {
    /// Number of edges in the task.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// `uniq(attr)` within this task, computing it from the graph if the
    /// partitioner did not track the attribute.
    pub fn uniq_of(&self, g: &Graph, attr: AttrKind) -> usize {
        if let Some(&u) = self.uniq.get(&attr) {
            return u;
        }
        let mut vals: Vec<u64> = self.edges.iter().map(|&e| g.edge_attr(attr, e)).collect();
        vals.sort_unstable();
        vals.dedup();
        vals.len()
    }

    /// The set of values attribute `attr` takes over this task's edges.
    /// This is the symbolic row set the schedule-interference analyzer
    /// intersects across co-scheduled tasks: e.g. `DstId` gives exactly
    /// the accumulator rows a destination-scattering program writes for
    /// this task.
    pub fn attr_rows(&self, g: &Graph, attr: AttrKind) -> BTreeSet<u64> {
        self.edges.iter().map(|&e| g.edge_attr(attr, e)).collect()
    }

    /// Builds the symbolic-dimension binding for this task's scope.
    pub fn binding(&self, g: &Graph) -> Binding {
        Binding::from_edge_set(g, Some(&self.edges))
    }

    /// Extracts the gTask-level data patterns of §5.1.
    pub fn data_patterns(&self, g: &Graph) -> DataPatterns {
        let attrs = [
            AttrKind::SrcId,
            AttrKind::DstId,
            AttrKind::EdgeType,
        ];
        let mut duplication = BTreeMap::new();
        let mut batch = BTreeMap::new();
        for a in attrs {
            let u = self.uniq_of(g, a);
            batch.insert(a, u);
            duplication.insert(a, self.num_edges() as f64 / u.max(1) as f64);
        }
        let src_u = batch[&AttrKind::SrcId].max(1) as f64;
        let dst_u = batch[&AttrKind::DstId].max(1) as f64;
        DataPatterns {
            duplication,
            batch,
            volume_ratio: dst_u / src_u,
        }
    }
}

/// gTask-level data patterns (paper §5.1, Figure 4c).
#[derive(Clone, Debug)]
pub struct DataPatterns {
    /// *Duplicated data*: edges per unique value (`> 1` means computation
    /// can be shared via DFG transformation).
    pub duplication: BTreeMap<AttrKind, f64>,
    /// *Batched data*: the number of unique values per attribute — the
    /// batch size available to a generated kernel.
    pub batch: BTreeMap<AttrKind, usize>,
    /// *Changing data volume*: output rows (`uniq(dst)`) over input rows
    /// (`uniq(src)`); `< 1` means computation shrinks data, so communication
    /// should follow computation in multi-device placement.
    pub volume_ratio: f64,
}

impl DataPatterns {
    /// Returns `true` if any attribute shows meaningful duplication.
    pub fn has_duplication(&self) -> bool {
        self.duplication.values().any(|&d| d > 1.5)
    }
}

/// A graph partition plan: the table that generated it plus the gTasks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionPlan {
    /// The restrictions that produced this plan.
    pub table: PartitionTable,
    /// The generated gTasks, covering every edge exactly once.
    pub tasks: Vec<GTask>,
}

impl PartitionPlan {
    /// Number of gTasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Total edges across tasks.
    pub fn total_edges(&self) -> usize {
        self.tasks.iter().map(GTask::num_edges).sum()
    }

    /// Median edges per task.
    pub fn median_task_edges(&self) -> usize {
        if self.tasks.is_empty() {
            return 0;
        }
        let mut sizes: Vec<usize> = self.tasks.iter().map(GTask::num_edges).collect();
        sizes.sort_unstable();
        sizes[sizes.len() / 2]
    }

    /// Maximum edges in any task.
    pub fn max_task_edges(&self) -> usize {
        self.tasks.iter().map(GTask::num_edges).max().unwrap_or(0)
    }

    /// Reports the plan's shape into a counter registry under the
    /// `partition.*` keys: task and edge totals, max/median task sizes,
    /// and the edge-weighted dedup ratio (`Σ uniq(attr) / Σ edges`) per
    /// restricted attribute — the quantity WiseGraph's restriction tables
    /// exist to drive below 1. Everything recorded is
    /// [`Class::Work`](wisegraph_obs::Class::Work): a pure function of
    /// graph and table.
    pub fn record_counters(&self, c: &mut wisegraph_obs::Counters) {
        use wisegraph_obs::{keys, Class};
        c.add(keys::PARTITION_TASKS, self.num_tasks() as u64);
        c.add(keys::PARTITION_EDGES, self.total_edges() as u64);
        c.record_max(
            keys::PARTITION_MAX_TASK_EDGES,
            self.max_task_edges() as u64,
            Class::Work,
        );
        c.record_max(
            keys::PARTITION_MEDIAN_TASK_EDGES,
            self.median_task_edges() as u64,
            Class::Work,
        );
        let total = self.total_edges().max(1) as f64;
        let mut uniq_totals: BTreeMap<AttrKind, usize> = BTreeMap::new();
        for t in &self.tasks {
            for (&attr, &u) in &t.uniq {
                *uniq_totals.entry(attr).or_insert(0) += u;
            }
        }
        for (attr, uniq_sum) in uniq_totals {
            c.set_gauge(
                keys::partition_dedup_ratio(&attr.to_string()),
                uniq_sum as f64 / total,
                Class::Work,
            );
        }
    }

    /// Restricts the plan to the edges `keep` accepts, preserving every
    /// task *slot*: a task whose edges are all filtered out stays in the
    /// plan as a zero-edge task. Slot preservation is what makes sharded
    /// execution deterministic across device counts — the filtered plan
    /// has the same task count as the original, so the engine's
    /// chunk-to-worker mapping (and with it every accumulator's float
    /// addition order) is identical on every device to the single-device
    /// run. `uniq` counts are recomputed over the surviving edges for the
    /// table's restricted attributes.
    pub fn filtered<F: Fn(usize) -> bool>(&self, g: &Graph, keep: F) -> PartitionPlan {
        let restricted: Vec<AttrKind> =
            self.tasks.first().map_or_else(Vec::new, |t| t.uniq.keys().copied().collect());
        let tasks = self
            .tasks
            .iter()
            .map(|t| {
                let edges: Vec<usize> =
                    t.edges.iter().copied().filter(|&e| keep(e)).collect();
                let mut uniq = BTreeMap::new();
                for &attr in &restricted {
                    let mut vals: Vec<u64> =
                        edges.iter().map(|&e| g.edge_attr(attr, e)).collect();
                    vals.sort_unstable();
                    vals.dedup();
                    uniq.insert(attr, vals.len());
                }
                GTask { edges, uniq }
            })
            .collect();
        PartitionPlan {
            table: self.table.clone(),
            tasks,
        }
    }

    /// Task-id assignment per edge (for visualization, Figure 15).
    pub fn task_of_edge(&self, num_edges: usize) -> Vec<u32> {
        let mut out = vec![u32::MAX; num_edges];
        for (t, task) in self.tasks.iter().enumerate() {
            for &e in &task.edges {
                out[e] = t as u32;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;

    fn paper_graph() -> Graph {
        Graph::new(
            5,
            2,
            vec![0, 1, 0, 1, 2, 2, 3, 4, 3, 4, 0],
            vec![0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 4],
            vec![0, 0, 0, 0, 1, 0, 1, 1, 1, 1, 0],
        )
    }

    #[test]
    fn data_patterns_on_type_restricted_task() {
        let g = paper_graph();
        let plan = partition(&g, &PartitionTable::src_batch_per_type(4));
        // Every task: one edge type, up to 4 unique sources.
        for task in &plan.tasks {
            let p = task.data_patterns(&g);
            assert_eq!(p.batch[&AttrKind::EdgeType], 1);
            assert!(p.batch[&AttrKind::SrcId] <= 4);
            if task.num_edges() > 1 {
                // Type is duplicated across all edges of the task.
                assert!(p.duplication[&AttrKind::EdgeType] >= 2.0);
            }
        }
    }

    #[test]
    fn volume_ratio_reflects_reduction() {
        let g = paper_graph();
        // Vertex-centric: uniq(dst) = 1 per task, so volume shrinks for any
        // task with more than one source.
        let plan = partition(&g, &PartitionTable::vertex_centric());
        for task in &plan.tasks {
            let p = task.data_patterns(&g);
            if p.batch[&AttrKind::SrcId] > 1 {
                assert!(p.volume_ratio < 1.0);
            }
        }
    }

    #[test]
    fn plan_statistics() {
        let g = paper_graph();
        let plan = partition(&g, &PartitionTable::edge_batch(4));
        assert_eq!(plan.total_edges(), g.num_edges());
        assert!(plan.max_task_edges() <= 4);
        assert!(plan.median_task_edges() >= 1);
        let assignment = plan.task_of_edge(g.num_edges());
        assert!(assignment.iter().all(|&t| t != u32::MAX));
    }

    #[test]
    fn filtered_plan_preserves_task_slots() {
        let g = paper_graph();
        let plan = partition(&g, &PartitionTable::src_batch_per_type(2));
        // Keep only edges into vertices 0..2; every slot must survive,
        // including slots left with zero edges.
        let f = plan.filtered(&g, |e| g.dst()[e] < 2);
        assert_eq!(f.num_tasks(), plan.num_tasks());
        assert_eq!(f.table, plan.table);
        let kept: usize = (0..g.num_edges()).filter(|&e| g.dst()[e] < 2).count();
        assert_eq!(f.total_edges(), kept);
        assert!(f.tasks.iter().any(|t| t.edges.is_empty()));
        for (orig, filt) in plan.tasks.iter().zip(f.tasks.iter()) {
            // Surviving edges keep their original in-task order.
            let expect: Vec<usize> =
                orig.edges.iter().copied().filter(|&e| g.dst()[e] < 2).collect();
            assert_eq!(filt.edges, expect);
            // uniq recomputed over survivors, never larger than before.
            for (attr, &u) in &filt.uniq {
                assert!(u <= orig.uniq[attr]);
                assert_eq!(u, filt.attr_rows(&g, *attr).len());
            }
        }
    }

    #[test]
    fn recorded_counters_describe_the_plan() {
        use wisegraph_obs::keys;
        let g = paper_graph();
        let plan = partition(&g, &PartitionTable::vertex_centric());
        let mut c = wisegraph_obs::Counters::new();
        plan.record_counters(&mut c);
        assert_eq!(c.count(keys::PARTITION_TASKS), plan.num_tasks() as u64);
        assert_eq!(c.count(keys::PARTITION_EDGES), g.num_edges() as u64);
        assert_eq!(
            c.count(keys::PARTITION_MAX_TASK_EDGES),
            plan.max_task_edges() as u64
        );
        // Vertex-centric: 5 unique destinations over 11 edges.
        let dedup = c
            .gauge(&keys::partition_dedup_ratio(&AttrKind::DstId.to_string()))
            .expect("dst dedup ratio recorded");
        assert!((dedup - 5.0 / 11.0).abs() < 1e-12, "{dedup}");
    }
}
