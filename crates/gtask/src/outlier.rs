//! Outlier gTask identification (paper §6.1).
//!
//! Most gTasks are regular thanks to the power-law degree distribution;
//! three kinds of outliers arise from graph irregularity:
//!
//! - **Underfill**: an `Exact(k)` attribute with far fewer unique values
//!   than `k` (e.g. a destination with fewer than K neighbors) — wasted
//!   batching assumptions and idle resources;
//! - **Overfill**: an unrestricted attribute exploding the task far beyond
//!   the typical size — load imbalance and long-tail effects;
//! - **Frequent value**: a restricted attribute value recurring across many
//!   gTasks (a hub vertex split over tasks) — shared work and data races.

use crate::restriction::Restriction;
use crate::task::PartitionPlan;
use std::collections::HashMap;
use wisegraph_graph::{AttrKind, Graph};

/// The outlier classes of §6.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OutlierKind {
    /// Insufficient data for a restricted attribute.
    Underfill,
    /// Extremely large task from an unrestricted attribute.
    Overfill,
    /// Restricted attribute values recurring across many gTasks.
    FrequentValue,
}

/// Tunable thresholds for outlier classification.
#[derive(Clone, Copy, Debug)]
pub struct OutlierConfig {
    /// Underfill when `uniq(attr) < bound / underfill_divisor` (default 2).
    pub underfill_divisor: u64,
    /// Overfill when `edges > overfill_factor × median edges` (default 4).
    pub overfill_factor: usize,
    /// Frequent when a value appears in more than this many tasks
    /// (default 8).
    pub frequent_task_count: usize,
}

impl Default for OutlierConfig {
    fn default() -> Self {
        Self {
            underfill_divisor: 2,
            overfill_factor: 4,
            frequent_task_count: 8,
        }
    }
}

/// Classifies every task of a plan; `None` marks a regular task.
///
/// A task can match several classes; the reported one follows the priority
/// FrequentValue > Overfill > Underfill (a value recurring across tasks is
/// the most specific diagnosis; plain size imbalance comes next).
pub fn classify_outliers(
    g: &Graph,
    plan: &PartitionPlan,
    cfg: &OutlierConfig,
) -> Vec<Option<OutlierKind>> {
    let exact = plan.table.exact_attrs();
    let median = plan.median_task_edges().max(1);

    // Count, per restricted attribute value, how many tasks contain it.
    let mut value_tasks: HashMap<(AttrKind, u64), usize> = HashMap::new();
    for task in &plan.tasks {
        for &(attr, _) in &exact {
            let mut vals: Vec<u64> =
                task.edges.iter().map(|&e| g.edge_attr(attr, e)).collect();
            vals.sort_unstable();
            vals.dedup();
            for v in vals {
                *value_tasks.entry((attr, v)).or_insert(0) += 1;
            }
        }
    }

    plan.tasks
        .iter()
        .map(|task| {
            // Frequent value: any of this task's restricted values is
            // shared by many tasks.
            for &(attr, _) in &exact {
                let mut vals: Vec<u64> =
                    task.edges.iter().map(|&e| g.edge_attr(attr, e)).collect();
                vals.sort_unstable();
                vals.dedup();
                if vals
                    .iter()
                    .any(|&v| value_tasks[&(attr, v)] > cfg.frequent_task_count)
                {
                    return Some(OutlierKind::FrequentValue);
                }
            }
            // Overfill: size blowup relative to the plan's median.
            if task.num_edges() > cfg.overfill_factor * median {
                return Some(OutlierKind::Overfill);
            }
            // Underfill: achieved uniqueness far below the bound.
            for &(attr, bound) in &exact {
                if bound >= 2 {
                    let u = task.uniq_of(g, attr) as u64;
                    if u < bound / cfg.underfill_divisor.max(1) {
                        return Some(OutlierKind::Underfill);
                    }
                }
            }
            // Underfill also applies to Min-restricted batches that came
            // out with a single edge (no batching possible).
            if task.num_edges() == 1
                && plan
                    .table
                    .restricted_attrs()
                    .iter()
                    .any(|&a| plan.table.restriction(a) != Restriction::Exact(1))
                && median > 1
            {
                return Some(OutlierKind::Underfill);
            }
            None
        })
        .collect()
}

/// Summary of an outlier classification.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OutlierSummary {
    /// Number of regular tasks.
    pub regular: usize,
    /// Number of underfill tasks.
    pub underfill: usize,
    /// Number of overfill tasks.
    pub overfill: usize,
    /// Number of frequent-value tasks.
    pub frequent: usize,
    /// Fraction of all edges residing in outlier tasks.
    pub outlier_edge_fraction: f64,
}

/// Aggregates a classification into counts and the outlier edge share.
pub fn summarize(plan: &PartitionPlan, classes: &[Option<OutlierKind>]) -> OutlierSummary {
    let mut s = OutlierSummary::default();
    let mut outlier_edges = 0usize;
    for (task, class) in plan.tasks.iter().zip(classes) {
        match class {
            None => s.regular += 1,
            Some(OutlierKind::Underfill) => {
                s.underfill += 1;
                outlier_edges += task.num_edges();
            }
            Some(OutlierKind::Overfill) => {
                s.overfill += 1;
                outlier_edges += task.num_edges();
            }
            Some(OutlierKind::FrequentValue) => {
                s.frequent += 1;
                outlier_edges += task.num_edges();
            }
        }
    }
    let total = plan.total_edges().max(1);
    s.outlier_edge_fraction = outlier_edges as f64 / total as f64;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;
    use crate::restriction::PartitionTable;
    use wisegraph_graph::generate::{rmat, RmatParams};

    /// A star graph: one hub receiving edges from everyone, plus a sparse
    /// tail — maximal irregularity.
    fn star_graph(n: usize) -> Graph {
        let mut src = Vec::new();
        let mut dst = Vec::new();
        for v in 1..n as u32 {
            src.push(v);
            dst.push(0); // hub
        }
        // A few scattered edges among the tail.
        for v in 1..(n as u32 / 4) {
            src.push(v);
            dst.push(v + 1);
        }
        let n_edges = src.len();
        Graph::new(n, 1, src, dst, vec![0; n_edges])
    }

    #[test]
    fn hub_creates_overfill_under_vertex_centric() {
        let g = star_graph(256);
        let plan = partition(&g, &PartitionTable::vertex_centric());
        let classes = classify_outliers(&g, &plan, &OutlierConfig::default());
        let overfill: Vec<usize> = classes
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == Some(OutlierKind::Overfill))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(overfill.len(), 1, "exactly the hub task");
        assert_eq!(plan.tasks[overfill[0]].num_edges(), 255);
    }

    #[test]
    fn hub_creates_frequent_value_under_edge_batching() {
        // dst-id=1 & edge-id=K: the hub's dst value recurs in many tasks.
        let g = star_graph(256);
        let table = PartitionTable::new()
            .exact(AttrKind::DstId, 1)
            .exact(AttrKind::EdgeId, 8);
        let plan = partition(&g, &table);
        let classes = classify_outliers(&g, &plan, &OutlierConfig::default());
        let frequent = classes
            .iter()
            .filter(|c| **c == Some(OutlierKind::FrequentValue))
            .count();
        // The hub's 255 edges split into ~32 tasks of 8, all sharing dst 0.
        assert!(frequent >= 30, "frequent tasks: {frequent}");
    }

    #[test]
    fn low_degree_vertices_create_underfill() {
        // dst-id=K batching on a graph where most destinations have degree
        // far below K.
        let g = rmat(&RmatParams::standard(512, 1024, 41));
        let table = PartitionTable::new().exact(AttrKind::EdgeId, 64);
        let plan = partition(&g, &table);
        // Only the final task can be underfilled for pure edge batching;
        // switch to a two-attribute table where group boundaries force
        // early task closes.
        let table2 = PartitionTable::new()
            .exact(AttrKind::DstId, 1)
            .exact(AttrKind::EdgeId, 64);
        let plan2 = partition(&g, &table2);
        let classes = classify_outliers(&g, &plan2, &OutlierConfig::default());
        let underfill = classes
            .iter()
            .filter(|c| **c == Some(OutlierKind::Underfill))
            .count();
        assert!(
            underfill > plan2.num_tasks() / 4,
            "underfill {underfill} of {}",
            plan2.num_tasks()
        );
        let _ = plan;
    }

    #[test]
    fn regular_plan_has_few_outliers() {
        // Pure edge batching on a uniform-ish graph: balanced by design.
        let g = rmat(&RmatParams::standard(256, 4096, 43));
        let plan = partition(&g, &PartitionTable::edge_batch(32));
        let classes = classify_outliers(&g, &plan, &OutlierConfig::default());
        let s = summarize(&plan, &classes);
        assert!(
            s.regular as f64 >= 0.9 * plan.num_tasks() as f64,
            "{s:?}"
        );
        assert!(s.outlier_edge_fraction < 0.2);
    }

    #[test]
    fn summary_counts_add_up() {
        let g = star_graph(128);
        let plan = partition(&g, &PartitionTable::vertex_centric());
        let classes = classify_outliers(&g, &plan, &OutlierConfig::default());
        let s = summarize(&plan, &classes);
        assert_eq!(
            s.regular + s.underfill + s.overfill + s.frequent,
            plan.num_tasks()
        );
    }
}
