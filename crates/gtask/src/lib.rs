//! The gTask abstraction: joint workload partition of graph data.
//!
//! A *gTask* (paper §3) is a subset of edges produced by a graph partition
//! plan, later paired with an operation partition plan. This crate covers
//! the graph side (§4) and the analyses that feed the operation side (§5.1)
//! and the joint optimizer (§6.1):
//!
//! - [`restriction`]: the graph partition table (Figure 6) — per-attribute
//!   restrictions `uniq(attr) = k`, `uniq(attr) = min`, or unrestricted —
//!   plus constructors for the classic plans of Figure 7 (vertex-centric,
//!   edge-centric, 2-D, …) and the adaptive plan enumerator;
//! - [`partition`]: the greedy sort-and-scan partitioner (O(E log E));
//! - [`task`]: the [`GTask`] type and its gTask-level data patterns
//!   (duplicated data, batched data, changing data volume);
//! - [`outlier`]: identification of underfill / overfill / frequent-value
//!   outlier gTasks.

pub mod incremental;
pub mod outlier;
pub mod partition;
pub mod restriction;
pub mod task;

pub use outlier::{classify_outliers, OutlierKind};
pub use incremental::{DeltaStats, GraphDelta, IncrementalPlan};
pub use partition::{partition, partition_edges};
pub use restriction::{PartitionTable, Restriction};
pub use task::{DataPatterns, GTask, PartitionPlan};
